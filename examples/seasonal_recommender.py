#!/usr/bin/env python
"""A season-aware recommender from recurring association rules.

Run with::

    python examples/seasonal_recommender.py

The paper's last future-work item: use the recurring-pattern model to
improve an association-rule recommender.  The point is temporal
context: a classical recommender learns "jackets => gloves" as a global
rule and recommends gloves in July; a recurring rule knows *when* the
association actually fires.

The script mines recurring rules from a year-long synthetic purchase
stream with two winter seasons of jacket+glove buying, builds a
:class:`~repro.core.rules.SeasonalRecommender`, and queries it at a
winter and a summer date.
"""

import numpy as np

from repro import TransactionalDatabase, derive_rules, mine_recurring_patterns
from repro.core.rules import SeasonalRecommender

DAYS = 420  # ~14 months: two winters
WINTERS = ((0, 75), (330, 420))  # day ranges with cold weather


def synthesize_purchases(seed: int = 2) -> TransactionalDatabase:
    """Daily basket stream: staples all year, winter gear in winters."""
    rng = np.random.default_rng(seed)
    staples = ["bread", "milk", "coffee", "apples", "rice", "pasta"]
    rows = []
    for day in range(DAYS):
        basket = set(
            rng.choice(staples, size=rng.integers(2, 5), replace=False)
        )
        in_winter = any(first <= day < last for first, last in WINTERS)
        if in_winter and rng.random() < 0.7:
            basket.add("jacket")
            if rng.random() < 0.85:
                basket.add("gloves")
        if rng.random() < 0.1:  # off-season returns/gifts: rare noise
            basket.add("jacket")
        rows.append((day, basket))
    return TransactionalDatabase(rows)


def main() -> None:
    database = synthesize_purchases()
    print(
        f"purchase stream: {len(database)} daily baskets, "
        f"{len(database.items())} products"
    )

    found = mine_recurring_patterns(
        database, per=3, min_ps=15, min_rec=2, engine="rp-eclat"
    )
    rules = derive_rules(found, database, min_confidence=0.6)
    seasonal_rules = [r for r in rules if "jacket" in r.antecedent]
    print(f"\n{len(rules)} recurring rules; jacket rules:")
    for rule in seasonal_rules:
        print(f"  {rule}")

    recommender = SeasonalRecommender(rules, slack=7)

    winter_day, summer_day = 40, 200
    for day, label in ((winter_day, "winter"), (summer_day, "summer")):
        picks = recommender.recommend(basket=["jacket", "bread"], ts=day)
        print(f"\ncustomer buys a jacket on day {day} ({label}):")
        print(f"  recommend: {picks if picks else 'nothing seasonal'}")

    # The contrast: ignoring seasons recommends gloves out of season.
    blind = recommender.recommend(
        basket=["jacket", "bread"], ts=summer_day, in_season_only=False
    )
    print(
        f"\na season-blind recommender would have suggested {blind} "
        f"on day {summer_day} — the association is real but dormant."
    )


if __name__ == "__main__":
    main()
