#!/usr/bin/env python
"""Co-rising stocks during rallies (the paper's stock-market motivation).

Run with::

    python examples/stock_rallies.py

"In the stock market, the set of high stocks indices that rise
periodically for a particular time interval may be of special interest
to companies and individuals." (Section 1.)

The script simulates two years of daily prices — a market of random
walkers plus one sector that rallies together during two bull windows —
symbolises each day into `<TICKER>+` events for stocks that rose more
than a threshold, and mines recurring patterns.  The sector's tickers
come out as one pattern whose interesting periodic-intervals are the
two rally windows; the analysis helpers then group discovered patterns
by co-seasonality, recovering the sector without price correlation ever
being computed.
"""

import numpy as np

from repro import EventSequence, mine_recurring_patterns
from repro.analysis import co_seasonal_groups, seasonality_score
from repro.bench.reporting import format_table
from repro.timeseries.database import TransactionalDatabase

DAYS = 500
SECTOR = ("CHIPX", "FABCO", "WAFR")  # the rallying semiconductor trio
OTHERS = tuple(f"STK{i}" for i in range(12))
RALLIES = ((60, 130), (320, 400))  # day windows of the sector bull runs
RISE_THRESHOLD = 0.004  # a day counts as "up" above +0.4%


def simulate_returns(seed: int = 8):
    """Daily log-returns: idiosyncratic noise + sector rally drift."""
    rng = np.random.default_rng(seed)
    tickers = SECTOR + OTHERS
    returns = {
        ticker: rng.normal(0.0, 0.01, size=DAYS) for ticker in tickers
    }
    for first, last in RALLIES:
        sector_drift = rng.normal(0.011, 0.004, size=last - first)
        for ticker in SECTOR:
            returns[ticker][first:last] += sector_drift
    return returns


def main() -> None:
    returns = simulate_returns()

    # Symbolise: one event per (stock, day) with an above-threshold rise.
    events = EventSequence(
        (f"{ticker}+", day)
        for ticker, series in returns.items()
        for day, value in enumerate(series)
        if value > RISE_THRESHOLD
    )
    database = TransactionalDatabase.from_events(events)
    print(
        f"symbolised {DAYS} trading days -> {len(database)} transactions, "
        f"{len(database.items())} rise-events"
    )

    found = mine_recurring_patterns(
        database, per=4, min_ps=12, min_rec=2, engine="rp-eclat"
    )
    multi = [p for p in found if p.length >= 2]
    rows = [
        (
            " ".join(map(str, p.sorted_items())),
            p.support,
            p.recurrence,
            "; ".join(
                f"days {iv.start:g}-{iv.end:g}" for iv in p.intervals
            ),
            f"{seasonality_score(p, database):.2f}",
        )
        for p in multi
    ]
    print()
    print(
        format_table(
            ["co-rising stocks", "sup", "rec", "rally windows", "seasonality"],
            rows,
            title="Recurring co-rise patterns (per=4d, minPS=12, minRec=2)",
        )
    )

    groups = co_seasonal_groups(multi, min_overlap=0.3)
    print("\nco-seasonal groups (who rallies together):")
    for group in groups:
        names = sorted(
            {str(item) for pattern in group for item in pattern.items}
        )
        print(f"  {names}")

    top = max(multi, key=lambda p: p.length, default=None)
    expected = {f"{ticker}+" for ticker in SECTOR}
    if top is None or set(map(str, top.items)) != expected:
        raise SystemExit("expected the full sector trio to be recovered!")
    print(
        f"\nthe {len(SECTOR)}-stock sector was recovered as one pattern, "
        "with its two rally windows as the interesting periodic-intervals."
    )


if __name__ == "__main__":
    main()
