#!/usr/bin/env python
"""Network-event monitoring: rare severe events vs routine maintenance.

Run with::

    python examples/network_monitoring.py

The paper's introduction motivates recurring patterns for network
administrators: high-severity events (a cascading failure that flares
up in episodes) matter more than routine periodic events (nightly
backups), yet a single global support threshold either misses the rare
failures or drowns in noise.

This example builds a raw event log from scratch — timestamps are
seconds, so it also demonstrates the discretisation step — and mines it
with the full pipeline::

    raw events -> discretize -> group into transactions -> mine
"""

import numpy as np

from repro import EventSequence, mine_recurring_patterns
from repro.bench.reporting import format_table
from repro.timeseries.transform import discretize_timestamps, events_to_database

MINUTE = 60.0
HOUR = 60 * MINUTE
DAY = 24 * HOUR
SIMULATION_DAYS = 30


def synthesize_log(seed: int = 0) -> EventSequence:
    """A month of syslog-style events with second timestamps."""
    rng = np.random.default_rng(seed)
    events = []

    # Routine: nightly backup at ~02:00 touching two subsystems.
    for day in range(SIMULATION_DAYS):
        ts = day * DAY + 2 * HOUR + float(rng.normal(0, 120))
        events.append(("backup_start", ts))
        events.append(("db_snapshot", ts))

    # Routine: health-check heartbeat every 15 minutes, all month.
    ts = 0.0
    while ts < SIMULATION_DAYS * DAY:
        events.append(("heartbeat", ts))
        ts += 15 * MINUTE + float(rng.normal(0, 20))

    # Rare + severe: two cascading-failure episodes (days 6-8, 21-23)
    # where link-down and bgp-flap alarms fire every few minutes.
    for first_day, last_day in ((6, 8), (21, 23)):
        ts = first_day * DAY
        while ts < (last_day + 1) * DAY:
            events.append(("link_down", ts))
            events.append(("bgp_flap", ts))
            ts += float(rng.exponential(4 * MINUTE)) + 30.0

    # Background: uncorrelated warning chatter.
    n_noise = 4000
    for _ in range(n_noise):
        item = f"warn_{rng.integers(0, 40)}"
        events.append((item, float(rng.uniform(0, SIMULATION_DAYS * DAY))))

    return EventSequence(events)


def main() -> None:
    raw = synthesize_log()
    print(f"raw log: {len(raw)} events with second-granularity timestamps")

    # Snap to minutes, then group co-occurring events into transactions.
    database = events_to_database(
        discretize_timestamps(raw, bucket=MINUTE, label="index")
    )
    print(f"database: {len(database)} minute-transactions, "
          f"{len(database.items())} event types")

    # Mine with per = 1 hour: an episode is a stretch where the pattern
    # repeats at least every hour, for at least 30 repetitions, in at
    # least 2 distinct episodes.
    minutes_per_day = int(DAY / MINUTE)
    found = mine_recurring_patterns(
        database, per=60, min_ps=30, min_rec=2, engine="rp-eclat"
    )

    rows = [
        (
            " ".join(map(str, p.sorted_items())),
            p.support,
            p.recurrence,
            "; ".join(
                f"day {int(iv.start) // minutes_per_day}"
                f"-{int(iv.end) // minutes_per_day}"
                for iv in p.intervals
            ),
        )
        for p in found
    ]
    print()
    print(
        format_table(
            ["pattern", "sup", "rec", "episodes"],
            rows,
            title="Recurring event patterns (per=1h, minPS=30, minRec=2)",
        )
    )

    failure = found.get(["link_down", "bgp_flap"])
    if failure is None:
        raise SystemExit("expected the cascading-failure pattern!")
    print()
    print("cascading failure episodes pinpointed:")
    for interval in failure.intervals:
        start_day = interval.start / minutes_per_day
        end_day = interval.end / minutes_per_day
        print(
            f"  days {start_day:5.1f} .. {end_day:5.1f}: "
            f"{interval.periodic_support} correlated alarms"
        )
    print(
        "\nthe heartbeat/backup routines recur all month (recurrence 1 at "
        "month scale),\nwhile the severe {link_down, bgp_flap} pattern is "
        "rare globally but precisely\nlocalised — exactly the asymmetry "
        "the paper's introduction calls for."
    )


if __name__ == "__main__":
    main()
