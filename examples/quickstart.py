#!/usr/bin/env python
"""Quickstart: mine the paper's running example (Table 1 -> Table 2).

Run with::

    python examples/quickstart.py

Walks the library's core workflow: build a time series, convert it to a
temporally ordered transactional database, mine recurring patterns, and
inspect the temporal metadata each pattern carries.
"""

from repro import EventSequence, TransactionalDatabase, mine_recurring_patterns
from repro.bench.reporting import format_table
from repro.datasets import paper_running_example_events


def main() -> None:
    # 1. A time series is a sequence of (item, timestamp) events.  This
    #    is Figure 1 of the paper; you would normally build it from your
    #    own logs (see the other examples).
    events: EventSequence = paper_running_example_events()
    print(f"time series: {len(events)} events over [{events.start:g}, {events.end:g}]")

    # 2. Group simultaneous events into transactions.  The conversion is
    #    lossless: every pattern's occurrence timestamps are preserved.
    database = TransactionalDatabase.from_events(events)
    print(f"database:    {len(database)} transactions, {len(database.items())} items")

    # 3. Mine.  per: how close two occurrences must be to count as one
    #    cyclic repetition; min_ps: how many consecutive repetitions a
    #    periodic stretch needs to be interesting; min_rec: how many
    #    interesting stretches a pattern needs to be *recurring*.
    found = mine_recurring_patterns(database, per=2, min_ps=3, min_rec=2)

    # 4. Every pattern carries support, recurrence, and the exact time
    #    windows in which it behaved periodically (Table 2).
    print()
    print(
        format_table(
            ["pattern", "sup", "rec", "interesting periodic-intervals"],
            found.as_rows(),
            title="Recurring patterns at per=2, minPS=3, minRec=2 (paper Table 2)",
        )
    )

    # 5. The model is not anti-monotone: 'c' is not recurring (it has one
    #    long periodic stretch, not two) while its superset 'cd' is.
    print()
    print("'c' recurring?  ", "c" in found)
    print("'cd' recurring? ", "cd" in found)
    print()
    print("full description of 'ab':", found.pattern("ab"))


if __name__ == "__main__":
    main()
