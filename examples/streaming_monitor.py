#!/usr/bin/env python
"""Live monitoring: detect recurring behaviour as events arrive.

Run with::

    python examples/streaming_monitor.py

The batch miners answer "what recurred in this archive?".  An operator
usually asks the online version: "is this alarm pattern *currently*
inside a periodic episode, and how many episodes has it had?"  The
:class:`~repro.core.streaming.StreamingRecurrenceMonitor` maintains the
paper's Algorithm 1/5 state incrementally — O(1) per event — and fires
a callback the moment an interesting periodic-interval closes.

The script replays a synthetic ops stream minute by minute and prints
alerts as episodes of the watched alarm pair complete.
"""

import numpy as np

from repro import StreamingRecurrenceMonitor
from repro.viz import render_sparkline

MINUTES = 3_000
EPISODES = ((300, 700), (1_600, 2_100))  # alarm storms (minute ranges)


def synthesize_stream(seed: int = 5):
    """Yield (minute, [events...]) pairs: heartbeats + alarm storms."""
    rng = np.random.default_rng(seed)
    storm_next = {start: start for start, _ in EPISODES}
    for minute in range(MINUTES):
        events = []
        if minute % 15 == 0:
            events.append("heartbeat")
        for start, end in EPISODES:
            if start <= minute < end and minute >= storm_next[start]:
                events.extend(["disk_err", "raid_degraded"])
                storm_next[start] = minute + 1 + int(rng.exponential(3.0))
        if rng.random() < 0.02:
            events.append(f"warn_{rng.integers(0, 5)}")
        if events:
            yield minute, events


def main() -> None:
    alerts = []

    def on_interval(item, interval):
        if item == "disk+raid":
            alerts.append(interval)
            print(
                f"  ALERT closed episode: correlated disk/raid alarms "
                f"minutes {interval.start:g}-{interval.end:g} "
                f"({interval.periodic_support} repetitions)"
            )

    monitor = StreamingRecurrenceMonitor(
        per=20, min_ps=20, min_rec=2, on_interval=on_interval
    )
    monitor.watch_pattern(["disk_err", "raid_degraded"], label="disk+raid")

    print(f"replaying {MINUTES} minutes of ops events...\n")
    was_recurring = False
    for minute, events in synthesize_stream():
        monitor.observe(minute, events)
        if not was_recurring and monitor.is_recurring("disk+raid"):
            was_recurring = True
            print(
                f"  minute {minute}: the disk/raid pattern has now RECURRED "
                f"{monitor.recurrence('disk+raid', include_open_run=True)} times"
            )

    print("\nfinal state:")
    print(f"  heartbeat support: {monitor.support('heartbeat')}")
    print(
        "  heartbeat episodes:",
        [str(iv) for iv in monitor.intervals("heartbeat", include_open_run=True)],
    )
    print(f"  disk+raid episodes: {[str(iv) for iv in alerts]}")

    # A quick per-100-minute activity profile of the alarm pair.
    state = monitor.state("disk+raid")
    buckets = [0] * (MINUTES // 100)
    for interval in monitor.intervals("disk+raid", include_open_run=True):
        for minute in range(int(interval.start), int(interval.end) + 1):
            buckets[minute // 100] += 1
    print(f"  activity profile: {render_sparkline(buckets)}")
    assert state.support > 0


if __name__ == "__main__":
    main()
