#!/usr/bin/env python
"""Bursty hashtags in a Twitter-style stream (paper Table 6 / Figure 8).

Run with::

    python examples/twitter_bursts.py

Generates a hashtag stream modelled on the paper's 2013 Twitter corpus:
a Zipfian background of always-on hashtags plus rare, event-driven
hashtag groups that are intensely periodic only during their events
(floods, elections, a tornado).  Recurring-pattern mining surfaces the
event groups *with their time windows* — including rare hashtags a
global support threshold would miss — and a daily frequency profile
reproduces the shape of the paper's Figure 8.
"""

from repro import mine_recurring_patterns
from repro.bench.reporting import format_series, format_table
from repro.datasets import TwitterConfig, generate_twitter
from repro.datasets.twitter import DEFAULT_BURSTS, MINUTES_PER_DAY
from repro.timeseries.stats import item_frequency_series

DAYS = 90  # covers every default burst window


def day_of(ts: float) -> int:
    return int(ts) // MINUTES_PER_DAY


def main() -> None:
    database = generate_twitter(TwitterConfig(days=DAYS, seed=13))
    print(
        f"hashtag stream: {len(database)} minute-transactions over "
        f"{DAYS} days, {len(database.items())} hashtags"
    )

    # per = 6 hours, minRec = 1 — the paper's Table 6 setting.  The
    # paper uses minPS = 2% of its 177k-transaction corpus; 1% of this
    # smaller stream admits the same four event groups.
    found = mine_recurring_patterns(
        database,
        per=360,
        min_ps=0.01,
        min_rec=1,
        engine="rp-eclat",
    )
    print(f"\n{len(found)} recurring patterns in total")

    # The planted event groups (the Table 6 analogues).
    burst_tags = {tag for burst in DEFAULT_BURSTS for tag in burst.tags}
    event_patterns = [
        p for p in found
        if set(map(str, p.items)) <= burst_tags and p.length >= 2
    ]
    rows = [
        (
            " ".join(f"#{item}" for item in p.sorted_items()),
            p.support,
            p.recurrence,
            "; ".join(
                f"day {day_of(iv.start)} - day {day_of(iv.end)}"
                for iv in p.intervals
            ),
        )
        for p in event_patterns
    ]
    print()
    print(
        format_table(
            ["pattern", "sup", "rec", "periodic duration"],
            rows,
            title="Event hashtag groups (cf. paper Table 6)",
        )
    )

    # Figure 8 analogue: daily frequencies of one rare tag vs a hot one.
    print()
    series = item_frequency_series(
        database, ["uttarakhand", "h0"], bucket=MINUTES_PER_DAY
    )
    window = range(45, 70)  # days around the flood burst
    print(
        format_series(
            "day",
            list(window),
            {
                "#uttarakhand": [
                    series["uttarakhand"].get(day * MINUTES_PER_DAY, 0)
                    for day in window
                ],
                "#h0 (background)": [
                    series["h0"].get(day * MINUTES_PER_DAY, 0)
                    for day in window
                ],
            },
            title="Daily tweet counts (cf. paper Figure 8)",
        )
    )
    print(
        "\n#uttarakhand is rare globally yet strongly periodic inside its "
        "burst window;\nrecurring-pattern mining finds it without flooding "
        "the output with low-support noise\n(the 'rare item problem' "
        "tolerance of Section 5.2)."
    )


if __name__ == "__main__":
    main()
