#!/usr/bin/env python
"""Seasonal purchases in a retail clickstream (the paper's Shop-14 use case).

Run with::

    python examples/retail_seasonality.py

Generates a Shop-14-style minute-granularity clickstream with two
seasonal promotion campaigns (think jackets-and-gloves: active in two
winter windows, silent otherwise), then shows the paper's central
contrast:

* **recurring-pattern mining** finds the seasonal category pairs *and*
  reports exactly when each season ran;
* **periodic-frequent mining** (complete cyclic repetition over the
  whole database) cannot find them at any sensible threshold, because
  the pairs vanish between seasons.
"""

from repro import mine_recurring_patterns
from repro.baselines import mine_periodic_frequent_patterns
from repro.bench.reporting import format_table
from repro.datasets import ClickstreamConfig, generate_clickstream
from repro.datasets.clickstream import MINUTES_PER_DAY

SEASONAL = (
    # category 120+121 run in two "winter" windows; 125+126 in two others.
    (120, ((3, 9), (24, 30))),
    (125, ((6, 12), (30, 36))),
)


def day_of(ts: float) -> int:
    return int(ts) // MINUTES_PER_DAY


def main() -> None:
    config = ClickstreamConfig(days=41, promo_windows=SEASONAL, seed=7)
    database = generate_clickstream(config)
    print(
        f"clickstream: {len(database)} minute-transactions over "
        f"{config.days} days, {len(database.items())} categories"
    )

    # One day of tolerance between visits; a season must hold for at
    # least 60 periodic repetitions; and we ask for >= 2 seasons.
    found = mine_recurring_patterns(
        database,
        per=MINUTES_PER_DAY,
        min_ps=60,
        min_rec=2,
        engine="rp-eclat",
    )
    seasonal_categories = {
        f"c{category + offset}" for category, _ in SEASONAL for offset in (0, 1)
    }
    seasonal = [
        p for p in found if set(map(str, p.items)) & seasonal_categories
    ]
    rows = [
        (
            " ".join(map(str, p.sorted_items())),
            p.support,
            p.recurrence,
            "; ".join(
                f"days {day_of(iv.start)}-{day_of(iv.end)}"
                for iv in p.intervals
            ),
        )
        for p in seasonal
    ]
    print()
    print(
        format_table(
            ["pattern", "sup", "rec", "seasons (discovered!)"],
            rows,
            title="Seasonal categories found as recurring patterns",
        )
    )

    # The regular-pattern baseline: a periodic-frequent pattern must
    # cycle through the ENTIRE 41 days.  The seasonal pairs are silent
    # for weeks, so they cannot qualify.
    pf = mine_periodic_frequent_patterns(
        database, min_sup=120, max_per=MINUTES_PER_DAY
    )
    pf_seasonal = [
        p for p in pf if set(map(str, p.items)) & seasonal_categories
    ]
    print()
    print(
        f"periodic-frequent baseline found {len(pf)} patterns, "
        f"of which {len(pf_seasonal)} involve the seasonal categories"
    )
    print(
        "=> the strict complete-cycling constraint misses seasonal "
        "associations; the recurring-pattern model captures them, with "
        "their seasons."
    )


if __name__ == "__main__":
    main()
