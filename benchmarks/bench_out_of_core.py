"""Out-of-core sharded mining: flat peak memory, bounded overhead.

Generates periodic transaction files at 1x and 10x scale (constant
pattern count, so only the raw data grows), mines them both in-memory
and through :func:`repro.shard.mine_sharded_file` at a fixed
``max_transactions``, and records the comparison to
``BENCH_oocore.json`` at the repository root in the ``repro-bench/v1``
envelope.

Two gates (the ISSUE 9 acceptance criteria):

* **flat memory** — the sharded pipeline's peak tracked memory on the
  10x input must stay within :data:`MEMORY_GATE` times its 1x peak,
  while the in-memory peak demonstrably grows with the input;
* **bounded overhead** — the sharded wall clock must stay within
  :data:`OVERHEAD_GATE` times the in-memory mine on the same file
  (three streaming passes plus per-shard engine startup are paid for
  with a memory profile that no longer scales with the input).

Byte-identity of the two result sets is asserted, not recorded — a
fast wrong answer is not a benchmark result.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.core.miner import mine_recurring_patterns
from repro.obs.memory import peak_memory
from repro.shard import mine_sharded_file
from repro.timeseries.io import load_transactional_database

#: Transactions at scale 1x; the big input is SCALE_FACTOR times this.
BASE_TRANSACTIONS = 3_000
SCALE_FACTOR = 10
#: Per-shard transaction bound for every sharded run.
SHARD_BOUND = 1_000
#: Best-of repetitions for wall-clock cells.
REPEATS = 3
#: Peak-memory gate: sharded peak at 10x vs sharded peak at 1x.
MEMORY_GATE = 1.5
#: Wall-clock gate: sharded vs in-memory on the same input.
OVERHEAD_GATE = 10.0

BENCH_PATH = pathlib.Path(__file__).parent.parent / "BENCH_oocore.json"

#: Mining parameters: two interleaved periodic item pairs plus a burst
#: pattern, constant pattern count at any length.
PER = 2
MIN_PS = 4
MIN_REC = 2


#: Interesting intervals per pattern, at any input length.
BURSTS = 4


def _write_workload(path, transactions: int) -> None:
    """A periodic file whose mined *output* is length-independent.

    ``a b`` fires every ``PER`` ticks in exactly :data:`BURSTS` long
    runs separated by gaps, so every pattern always has ``BURSTS``
    interesting intervals — the bursts get longer as the file grows,
    the result does not.  Only then is a flat sharded peak meaningful:
    nothing but the raw data scales with the input.
    """
    per_burst, remainder = divmod(transactions, BURSTS)
    with open(path, "w", encoding="utf-8") as handle:
        ts = 0
        for burst in range(BURSTS):
            length = per_burst + (remainder if burst == BURSTS - 1 else 0)
            for _ in range(length):
                handle.write(f"{ts}\ta b\n")
                ts += PER
            ts += 3 * PER  # gap: closes the periodic run


def _best(callable_, repeats=REPEATS):
    best_seconds = float("inf")
    value = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = callable_()
        seconds = time.perf_counter() - started
        if seconds < best_seconds:
            best_seconds = seconds
            value = result
    return best_seconds, value


def _measure(path):
    """In-memory and sharded peak/wall cells for one input file."""
    with peak_memory() as in_memory_peak:
        database = load_transactional_database(path)
        in_memory_result = mine_recurring_patterns(
            database, PER, MIN_PS, MIN_REC
        )
    in_memory_seconds, _ = _best(
        lambda: mine_recurring_patterns(
            load_transactional_database(path), PER, MIN_PS, MIN_REC
        )
    )
    del database

    with peak_memory() as sharded_peak:
        sharded_result, _, _, report = mine_sharded_file(
            path, PER, MIN_PS, MIN_REC, max_transactions=SHARD_BOUND
        )
    sharded_seconds, _ = _best(
        lambda: mine_sharded_file(
            path, PER, MIN_PS, MIN_REC, max_transactions=SHARD_BOUND
        )
    )
    assert sharded_result == in_memory_result  # identity before speed
    return {
        "transactions": report.as_dict()["sizes"]
        and sum(report.as_dict()["sizes"]),
        "shards": report.shard_count,
        "patterns": len(sharded_result),
        "stitched_runs": report.merge.stitched_runs,
        "in_memory_peak_bytes": in_memory_peak.bytes,
        "in_memory_seconds": in_memory_seconds,
        "sharded_peak_bytes": sharded_peak.bytes,
        "sharded_seconds": sharded_seconds,
    }


def test_out_of_core_scaling(record_artifact, tmp_path_factory):
    workdir = tmp_path_factory.mktemp("oocore")
    cells = {}
    for label, transactions in (
        ("1x", BASE_TRANSACTIONS),
        (f"{SCALE_FACTOR}x", SCALE_FACTOR * BASE_TRANSACTIONS),
    ):
        path = workdir / f"periodic_{label}.tsv"
        _write_workload(path, transactions)
        cells[label] = _measure(path)

    small, big = cells["1x"], cells[f"{SCALE_FACTOR}x"]
    memory_ratio = big["sharded_peak_bytes"] / small["sharded_peak_bytes"]
    in_memory_ratio = (
        big["in_memory_peak_bytes"] / small["in_memory_peak_bytes"]
    )
    overhead = {
        label: cell["sharded_seconds"] / cell["in_memory_seconds"]
        for label, cell in cells.items()
    }

    from repro.bench.reporting import format_table

    record_artifact(
        "out_of_core",
        format_table(
            ["scale", "transactions", "shards", "peak in-mem",
             "peak sharded", "secs in-mem", "secs sharded"],
            [
                (
                    label,
                    cell["transactions"],
                    cell["shards"],
                    f"{cell['in_memory_peak_bytes']:,}",
                    f"{cell['sharded_peak_bytes']:,}",
                    f"{cell['in_memory_seconds']:.3f}",
                    f"{cell['sharded_seconds']:.3f}",
                )
                for label, cell in cells.items()
            ],
            title=(
                f"Out-of-core mining, {SCALE_FACTOR}x input growth "
                f"(shard bound {SHARD_BOUND})"
            ),
        ),
    )

    payload = {
        "schema": "repro-bench/v1",
        "benchmark": "out-of-core",
        "created_unix": time.time(),
        "params": {"per": PER, "min_ps": MIN_PS, "min_rec": MIN_REC},
        "shard_bound": SHARD_BOUND,
        "scale_factor": SCALE_FACTOR,
        "memory_gate": MEMORY_GATE,
        "overhead_gate": OVERHEAD_GATE,
        "hardware": {
            "cpu_count": os.cpu_count() or 1,
            "platform": os.uname().sysname if hasattr(os, "uname") else "?",
        },
        "cells": cells,
        "sharded_peak_ratio": memory_ratio,
        "in_memory_peak_ratio": in_memory_ratio,
        "overhead": overhead,
    }
    BENCH_PATH.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    # The flat-memory gate, plus a sanity check that the workload could
    # have exposed growth (the in-memory peak must actually scale).
    assert memory_ratio <= MEMORY_GATE, payload
    assert in_memory_ratio >= SCALE_FACTOR / 2, payload
    for label, ratio in overhead.items():
        assert ratio <= OVERHEAD_GATE, (label, payload)
