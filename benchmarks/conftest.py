"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one of the paper's evaluation artefacts
(a table or a figure).  Besides the pytest-benchmark timing, every
bench writes the reproduced artefact as plain text under
``benchmarks/results/`` so the numbers can be inspected and pasted into
EXPERIMENTS.md.

Scales (fraction of the paper's database sizes) are chosen so the whole
suite runs in minutes on a laptop; see workloads.py for the mapping.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench.workloads import (
    clickstream_workload,
    quest_workload,
    twitter_workload,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Benchmark scales per dataset (fraction of paper scale).
QUEST_SCALE = 0.1  # 10k transactions (paper: 100k)
SHOP14_SCALE = 0.25  # 10 days (paper: 41)
TWITTER_SCALE = 0.1  # 12 days (paper: 123)


@pytest.fixture(scope="session")
def quest_db():
    return quest_workload(QUEST_SCALE)


@pytest.fixture(scope="session")
def shop14_db():
    return clickstream_workload(SHOP14_SCALE)


@pytest.fixture(scope="session")
def twitter_db():
    return twitter_workload(TWITTER_SCALE)


@pytest.fixture(scope="session")
def record_artifact():
    """Write a reproduced table/figure to benchmarks/results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return write
