"""Figure 7: Twitter recurring-pattern counts vs minPS.

One panel per minRec in {1, 2, 3}; within a panel, one series per
per in {360, 720, 1440}, minPS swept from 2% to 10%.  The paper's
curves fall steeply with minPS and sit higher for larger per; we assert
both shape properties on the stand-in.
"""

from repro.bench.harness import sweep_pattern_counts

PERS = (360, 720, 1440)
MIN_PS_SWEEP = (0.02, 0.04, 0.06, 0.08, 0.10)
MIN_RECS = (1, 2, 3)


def _sweep(db):
    return sweep_pattern_counts(
        db, "twitter", PERS, MIN_PS_SWEEP, MIN_RECS, engine="rp-growth"
    )


def test_fig7(twitter_db, benchmark, record_artifact):
    result = benchmark.pedantic(
        _sweep, args=(twitter_db,), rounds=1, iterations=1
    )
    panels = "\n\n".join(
        result.as_figure(min_rec) for min_rec in MIN_RECS
    )
    record_artifact("fig7_twitter_counts", panels)

    for min_rec in MIN_RECS:
        for per in PERS:
            counts = [
                result.value(per, ps, min_rec) for ps in MIN_PS_SWEEP
            ]
            # Falling in minPS.
            assert counts == sorted(counts, reverse=True), (min_rec, per)
        # Larger per dominates at minRec=1 (Section 5.2 observation).
        if min_rec == 1:
            for ps in MIN_PS_SWEEP:
                series = [result.value(per, ps, 1) for per in PERS]
                assert series == sorted(series), ps
