"""Extension E-N1: recall of planted patterns under dropout noise.

Evaluates the noise-tolerant miner (the paper's future-work item,
implemented in :mod:`repro.core.noise`) against the strict model:
planted recurring patterns are corrupted by increasing per-occurrence
dropout, and each miner's recall of the planted itemsets is measured.

Expected shape: strict-model recall degrades quickly with dropout (one
dropped occurrence can split an interesting interval below minPS),
while a single fault credit per interval keeps recall high at moderate
noise.  The bench asserts the tolerant miner is never worse and wins
somewhere in the sweep.
"""

import pytest

from repro.bench.reporting import format_table
from repro.core.noise import mine_noise_tolerant_patterns
from repro.core.rp_growth import RPGrowth
from repro.datasets import apply_dropout, generate_planted_workload

DROPOUT_RATES = (0.0, 0.05, 0.10, 0.15, 0.20)
#: Bursts are planted at ~20 occurrences but mined at minPS=12, so a
#: dropped occurrence cannot undershoot the support floor — the damage
#: mode is run SPLITTING, which is what fault credits repair.
WORKLOAD = dict(
    per=5, min_ps=20, min_rec=2, n_patterns=4, pattern_size=2, seed=33
)
MINE_MIN_PS = 12


def _recall(found, expected):
    expected_itemsets = {pattern.items for pattern in expected}
    hit = sum(
        1 for items in expected_itemsets if found.get(items) is not None
    )
    return hit / len(expected_itemsets)


def _sweep():
    workload = generate_planted_workload(**WORKLOAD)
    rows = []
    for rate in DROPOUT_RATES:
        noisy = apply_dropout(workload.database, rate, seed=7)
        strict = RPGrowth(
            workload.per, MINE_MIN_PS, workload.min_rec
        ).mine(noisy)
        tolerant = mine_noise_tolerant_patterns(
            noisy,
            workload.per,
            MINE_MIN_PS,
            workload.min_rec,
            max_faults=2,
        )
        rows.append(
            (
                f"{rate:.0%}",
                _recall(strict, workload.expected),
                _recall(tolerant, workload.expected),
            )
        )
    return rows


def test_noise_tolerance_recall(benchmark, record_artifact):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    record_artifact(
        "noise_tolerance_recall",
        format_table(
            ["dropout", "strict recall", "fault-tolerant recall"],
            rows,
            title="Planted-pattern recall under dropout (max_faults=2)",
        ),
    )
    for _, strict_recall, tolerant_recall in rows:
        assert tolerant_recall >= strict_recall
    # Clean data: both perfect.
    assert rows[0][1] == rows[0][2] == 1.0
    # Somewhere in the sweep the fault credits must actually pay off.
    assert any(tolerant > strict for _, strict, tolerant in rows)


@pytest.mark.parametrize("max_faults", [0, 2])
def test_noise_miner_runtime(max_faults, benchmark):
    workload = generate_planted_workload(**WORKLOAD)
    noisy = apply_dropout(workload.database, 0.1, seed=7)
    benchmark(
        mine_noise_tolerant_patterns,
        noisy,
        workload.per,
        MINE_MIN_PS,
        workload.min_rec,
        None,
        max_faults,
    )
