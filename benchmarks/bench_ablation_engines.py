"""Ablation E-A2: RP-growth (tree) vs RP-eclat (vertical).

The paper argues the ts-list tail-node tree is an efficient substrate
(Section 4.2).  This bench times both engines on the same workloads and
verifies they return identical results — the vertical engine is the
library's independent implementation of the same model.
"""

import pytest

from repro.core.accel import FastRPEclat
from repro.core.rp_eclat import RPEclat
from repro.core.rp_growth import RPGrowth

SETTINGS = [
    ("quest", 360, 0.002, 1),
    ("shop14", 1440, 0.002, 2),
    ("twitter", 360, 0.02, 1),
]

ENGINES = {
    "rp-growth": RPGrowth,
    "rp-eclat": RPEclat,
    "rp-eclat-np": FastRPEclat,
}


@pytest.mark.parametrize(
    "dataset,per,min_ps,min_rec",
    SETTINGS,
    ids=[s[0] for s in SETTINGS],
)
@pytest.mark.parametrize("engine", sorted(ENGINES))
def test_engine_runtime(
    dataset, per, min_ps, min_rec, engine, benchmark, request
):
    db = request.getfixturevalue(f"{dataset}_db")
    miner = ENGINES[engine](per, min_ps, min_rec)
    benchmark(miner.mine, db)


@pytest.mark.parametrize(
    "dataset,per,min_ps,min_rec",
    SETTINGS,
    ids=[s[0] for s in SETTINGS],
)
def test_engines_agree(dataset, per, min_ps, min_rec, benchmark, request):
    db = request.getfixturevalue(f"{dataset}_db")

    def run():
        return (
            RPGrowth(per, min_ps, min_rec).mine(db),
            RPEclat(per, min_ps, min_rec).mine(db),
            FastRPEclat(per, min_ps, min_rec).mine(db),
        )

    growth, eclat, fast = benchmark.pedantic(run, rounds=1, iterations=1)
    assert growth == eclat == fast
