"""Sweep-engine reuse: shared-scan grid vs independent per-cell mining.

The paper's evaluation grids (Table 7's layout: three ``per`` values
crossed with a ``minRec`` ladder) are the sweep engine's reason to
exist, so this bench runs that shape on the Quest workload twice:

* **independent** — one façade call per cell, each starting from the
  raw rows like any fresh mining session (database construction, the
  vertical scan and the full mine are paid per cell);
* **sweep** — one :func:`repro.sweep.run_sweep` over the identical
  grid (transform and scan once, one mine per ``(per, minPS)`` column,
  tighter ``minRec`` cells derived by the recurrence filter).

Both must produce identical per-cell pattern sets — reuse that changed
an answer would be a bug, not a speedup.  The wall-clock ratio is
recorded to ``BENCH_sweep.json`` (a ``repro-bench/v1`` envelope whose
payload embeds the validated ``repro-sweep/v1`` record) and **gated at
≥2×**: with four ``minRec`` levels per column the derivation layer
alone removes three-quarters of the mining work, so a failed gate means
the reuse layers regressed.  The gate is deliberately CPU-count
independent — the saving comes from not redoing work, not from
parallelism — so it holds on single-core CI runners too.
"""

import json
import os
import pathlib
import time

from repro.bench.reporting import format_table
from repro.core.miner import mine_recurring_patterns
from repro.obs.report import validate_sweep_record
from repro.qa.differential import canonical
from repro.sweep import SweepPlan, run_sweep
from repro.bench.workloads import quest_workload
from repro.timeseries.database import TransactionalDatabase

SCALE = 0.05
PERS = (360, 720, 1440)
MIN_PS_VALUES = (0.002,)
MIN_RECS = (1, 2, 3, 4)
#: The reuse gate: the shared-scan sweep must finish the grid at least
#: this much faster than independent per-cell mining.
MIN_SPEEDUP = 2.0

BENCH_PATH = pathlib.Path(__file__).parent.parent / "BENCH_sweep.json"


def _rows(database):
    """The raw rows an independent mining session would start from."""
    return [(t.ts, tuple(t.items)) for t in database]


def test_sweep_reuse_speedup(record_artifact):
    base = quest_workload(SCALE)
    rows = _rows(base)
    plan = SweepPlan(
        pers=PERS, min_ps_values=MIN_PS_VALUES, min_recs=MIN_RECS
    )

    # Independent baseline: every cell is its own session over the raw
    # rows — fresh database, fresh scan, full mine, like running the
    # façade (or the pre-sweep bench harness) once per cell.
    independent = {}
    started = time.perf_counter()
    for per, min_ps, min_rec in plan.cells():
        independent[(per, min_ps, min_rec)] = mine_recurring_patterns(
            TransactionalDatabase(rows), per, min_ps, min_rec
        )
    independent_seconds = time.perf_counter() - started

    started = time.perf_counter()
    result = run_sweep(
        TransactionalDatabase(rows), plan, dataset=f"quest-{SCALE:g}"
    )
    sweep_seconds = time.perf_counter() - started

    # Identical answers, cell for cell — the precondition of the gate.
    for key in plan.cells():
        assert canonical(result.patterns[key]) == canonical(
            independent[key]
        ), key
    assert result.cells_derived == plan.cell_count - result.cells_mined
    assert result.cells_derived > 0

    record = result.as_record()
    validate_sweep_record(record)
    speedup = independent_seconds / sweep_seconds

    record_artifact(
        "sweep_reuse",
        format_table(
            ["path", "seconds", "cells mined"],
            [
                ("independent", f"{independent_seconds:.4f}",
                 plan.cell_count),
                ("sweep", f"{sweep_seconds:.4f}", result.cells_mined),
                ("speedup", f"{speedup:.2f}x", ""),
            ],
            title=(
                f"Shared-scan sweep vs independent mining, quest "
                f"({plan.cell_count} cells)"
            ),
        ),
    )

    payload = {
        "schema": "repro-bench/v1",
        "benchmark": "sweep_reuse",
        "created_unix": time.time(),
        "params": {
            "pers": list(PERS),
            "min_ps_values": list(MIN_PS_VALUES),
            "min_recs": list(MIN_RECS),
            "scale": SCALE,
        },
        "hardware": {
            "cpu_count": os.cpu_count() or 1,
            "platform": os.uname().sysname if hasattr(os, "uname") else "?",
        },
        "independent_seconds": independent_seconds,
        "sweep_seconds": sweep_seconds,
        "speedup": speedup,
        "min_speedup_gate": MIN_SPEEDUP,
        "sweep_record": record,
    }
    BENCH_PATH.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    assert speedup >= MIN_SPEEDUP, (
        f"sweep reuse gate failed: {speedup:.2f}x < {MIN_SPEEDUP}x "
        f"(independent {independent_seconds:.3f}s, sweep "
        f"{sweep_seconds:.3f}s)"
    )
