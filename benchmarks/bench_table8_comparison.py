"""Table 8: periodic-frequent vs recurring vs p-patterns.

Paper setting (Section 5.4): per = 1440 (one day), w = 1;
minSup = 0.1% (Shop-14) / 2% (Twitter); minPS likewise.  The paper's
findings, asserted here on the stand-ins:

* periodic-frequent patterns (complete cycling) are far fewer than
  recurring patterns and are shorter;
* p-patterns are far more numerous than recurring patterns (the low
  single minSup floods the output with frequent-item combinations);
* the longest p-pattern is at least as long as the longest recurring
  pattern, which is at least as long as the longest periodic-frequent
  pattern.
"""

import pytest

from repro.bench.harness import compare_models

PER = 1440
SETTINGS = {
    "shop14": {"min_sup": 0.001, "min_ps": 0.001},
    "twitter": {"min_sup": 0.02, "min_ps": 0.02},
}


@pytest.mark.parametrize("dataset", ["shop14", "twitter"])
def test_table8(dataset, benchmark, record_artifact, request):
    db = request.getfixturevalue(f"{dataset}_db")
    config = SETTINGS[dataset]
    result = benchmark.pedantic(
        compare_models,
        args=(db, dataset),
        kwargs={
            "per": PER,
            "min_sup": config["min_sup"],
            "min_ps": config["min_ps"],
            "min_rec": 1,
        },
        rounds=1,
        iterations=1,
    )
    record_artifact(f"table8_{dataset}_comparison", result.as_table())

    counts, lengths = result.counts, result.max_lengths
    assert counts["periodic-frequent"] < counts["recurring"], counts
    assert counts["recurring"] < counts["p-pattern"], counts
    assert lengths["periodic-frequent"] <= lengths["recurring"], lengths
    assert lengths["recurring"] <= lengths["p-pattern"], lengths
