"""Telemetry overhead: instrumented vs uninstrumented mining.

The observability layer (``repro.obs``) promises near-zero cost: spans
are no-ops without an active collector, and with one active the only
additions are a handful of ``perf_counter`` calls per run plus the
counter increments the engines always did.  This bench quantifies
that promise on the Table 5 workloads (one representative cell per
dataset, the paper's Table 4 thresholds) and *fails* when full
telemetry collection (``collect_stats=True``) costs more than 5% over
a plain ``mine_recurring_patterns`` call.

It also seeds the machine-readable perf trajectory: the measured runs
are written to ``BENCH_telemetry.json`` at the repository root — one
``repro-run/v1`` record per (dataset, mode), wrapped in the
``repro-bench/v1`` envelope documented in ``docs/observability.md``.
"""

import json
import pathlib
import time

import pytest

from repro.bench.reporting import format_table
from repro.core.miner import mine_recurring_patterns
from repro.obs.report import validate_run_record

#: Allowed slowdown of an instrumented run (fraction of plain runtime).
MAX_OVERHEAD = 0.05
#: Absolute grace per run; perf_counter jitter dominates below this.
ABSOLUTE_SLACK_SECONDS = 0.005
#: Best-of repetitions per (dataset, mode).
REPEATS = 7

#: One representative Table 4/5 cell per dataset.
SETTINGS = {
    "quest": {"per": 360, "min_ps": 0.002, "min_rec": 1},
    "shop14": {"per": 1440, "min_ps": 0.002, "min_rec": 1},
    "twitter": {"per": 360, "min_ps": 0.02, "min_rec": 1},
}

BENCH_PATH = pathlib.Path(__file__).parent.parent / "BENCH_telemetry.json"


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _measure(db, params):
    plain_seconds, plain = _best_of(
        lambda: mine_recurring_patterns(db, **params)
    )
    instrumented_seconds, observed = _best_of(
        lambda: mine_recurring_patterns(db, **params, collect_stats=True)
    )
    found, telemetry = observed
    assert len(found) == len(plain)  # telemetry never changes the result
    return plain_seconds, instrumented_seconds, telemetry


def test_telemetry_overhead(record_artifact, request):
    rows = []
    runs = []
    failures = []
    for dataset, params in sorted(SETTINGS.items()):
        db = request.getfixturevalue(f"{dataset}_db")
        plain, instrumented, telemetry = _measure(db, params)
        overhead = instrumented / plain - 1.0
        budget = plain * (1.0 + MAX_OVERHEAD) + ABSOLUTE_SLACK_SECONDS
        if instrumented > budget:
            failures.append((dataset, plain, instrumented, overhead))
        rows.append(
            (
                dataset,
                f"{plain:.6f}",
                f"{instrumented:.6f}",
                f"{overhead * 100:+.2f}%",
                telemetry.patterns_found,
            )
        )
        telemetry.dataset = dataset
        record = telemetry.as_run_record()
        record["plain_seconds"] = plain
        validate_run_record(record)
        runs.append(record)

    table = format_table(
        [
            "dataset",
            "plain (s)",
            "instrumented (s)",
            "overhead",
            "patterns",
        ],
        rows,
        title="Telemetry overhead (best of %d)" % REPEATS,
    )
    record_artifact("telemetry_overhead", table)
    BENCH_PATH.write_text(
        json.dumps(
            {
                "schema": "repro-bench/v1",
                "benchmark": "telemetry_overhead",
                "created_unix": time.time(),
                "max_overhead": MAX_OVERHEAD,
                "runs": runs,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )
    assert not failures, (
        "telemetry overhead exceeded %.0f%%: %r" % (MAX_OVERHEAD * 100, failures)
    )


def test_disabled_spans_are_noops():
    """Without a collector, span() must hand back one shared object."""
    from repro.obs.spans import span

    assert span("a") is span("b")
