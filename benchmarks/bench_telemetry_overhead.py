"""Telemetry overhead: instrumented vs uninstrumented mining.

The observability layer (``repro.obs``) promises near-zero cost: spans
are no-ops without an active collector, and with one active the only
additions are a handful of ``perf_counter`` calls per run plus the
counter increments the engines always did.  This bench quantifies
that promise on the Table 5 workloads (one representative cell per
dataset, the paper's Table 4 thresholds) and *fails* when full
telemetry collection (``collect_stats=True``) costs more than 5% over
a plain ``mine_recurring_patterns`` call.

The same budget applies to the *live* mode — a run with a progress
reporter and a periodic metrics emitter attached (the ``--progress
--metrics-out`` CLI configuration).  That path adds a monitor call per
phase and a rate-limited snapshot, so it must stay just as cheap.

It also seeds the machine-readable perf trajectory: the measured runs
are written to ``BENCH_telemetry.json`` at the repository root — one
``repro-run/v1`` record per (dataset, mode), wrapped in the
``repro-bench/v1`` envelope documented in ``docs/observability.md``.
"""

import io
import json
import pathlib
import statistics
import time

import pytest

from repro.bench.reporting import format_table
from repro.core.miner import mine_recurring_patterns
from repro.core.options import ObservabilityOptions
from repro.obs.metrics import MetricsEmitter, MetricsRegistry
from repro.obs.progress import MiningMonitor, ProgressReporter
from repro.obs.report import validate_run_record

#: Allowed slowdown of an instrumented run (fraction of plain runtime).
MAX_OVERHEAD = 0.05
#: Absolute grace per run; perf_counter jitter dominates below this.
#: On a contended machine the per-round spread of a sub-100ms run is
#: tens of milliseconds, so the slack must cover that floor — the
#: relative gate still binds on the second-scale quest cell.
ABSOLUTE_SLACK_SECONDS = 0.02
#: Timed rounds per dataset.  Each round runs every mode back-to-back
#: (see _time_interleaved); the overhead estimate is the median of the
#: per-round ratios, so a load spike inflates one round's numerator
#: *and* denominator instead of skewing the comparison.
REPEATS = 11

#: One representative Table 4/5 cell per dataset.
SETTINGS = {
    "quest": {"per": 360, "min_ps": 0.002, "min_rec": 1},
    "shop14": {"per": 1440, "min_ps": 0.002, "min_rec": 1},
    "twitter": {"per": 360, "min_ps": 0.02, "min_rec": 1},
}

BENCH_PATH = pathlib.Path(__file__).parent.parent / "BENCH_telemetry.json"


def _time_interleaved(fns, repeats=REPEATS):
    """Per-round timings with the modes interleaved round-robin.

    Measuring each mode in its own block makes the comparison hostage
    to machine drift (a noisy neighbour during one block skews only
    that mode); cycling plain → instrumented → live each round exposes
    every mode to the same load profile.  Returns one list of round
    times per mode, plus each mode's last result.
    """
    times = [[] for _ in fns]
    results = [None] * len(fns)
    for _ in range(repeats):
        for index, fn in enumerate(fns):
            started = time.perf_counter()
            results[index] = fn()
            times[index].append(time.perf_counter() - started)
    return times, results


def _overhead(base_times, mode_times):
    """Median of the per-round slowdown ratios, as a fraction.

    The paired ratio cancels whatever slowed a given round (GC, CPU
    contention); the median then discards the rounds where a spike hit
    only one of the pair.  Far more stable than comparing two per-mode
    minima on a busy machine.
    """
    ratios = [
        mode / base for base, mode in zip(base_times, mode_times)
    ]
    return statistics.median(ratios) - 1.0


def _mine_live(db, params):
    monitor = MiningMonitor(
        reporter=ProgressReporter(io.StringIO(), min_interval=0.0),
        emitter=MetricsEmitter(MetricsRegistry(), io.StringIO(), interval=0.5),
    )
    try:
        return mine_recurring_patterns(
            db, **params,
            observability=ObservabilityOptions(monitor=monitor),
        )
    finally:
        monitor.close()


def _measure(db, params):
    times, results = _time_interleaved([
        lambda: mine_recurring_patterns(db, **params),
        lambda: mine_recurring_patterns(
            db, **params,
            observability=ObservabilityOptions(collect_stats=True),
        ),
        lambda: _mine_live(db, params),
    ])
    plain, observed, live = results
    found, telemetry = observed
    assert len(found) == len(plain)  # telemetry never changes the result
    assert len(live) == len(plain)  # neither does live reporting
    return times, telemetry


def test_telemetry_overhead(record_artifact, request):
    rows = []
    runs = []
    failures = []
    for dataset, params in sorted(SETTINGS.items()):
        db = request.getfixturevalue(f"{dataset}_db")
        times, telemetry = _measure(db, params)
        plain_times, instrumented_times, live_times = times
        plain = min(plain_times)
        instrumented = min(instrumented_times)
        live = min(live_times)
        overhead = _overhead(plain_times, instrumented_times)
        live_overhead = _overhead(plain_times, live_times)
        slack = ABSOLUTE_SLACK_SECONDS / plain
        if overhead > MAX_OVERHEAD + slack:
            failures.append((dataset, "stats", plain, overhead))
        if live_overhead > MAX_OVERHEAD + slack:
            failures.append((dataset, "live", plain, live_overhead))
        rows.append(
            (
                dataset,
                f"{plain:.6f}",
                f"{instrumented:.6f}",
                f"{overhead * 100:+.2f}%",
                f"{live:.6f}",
                f"{live_overhead * 100:+.2f}%",
                telemetry.patterns_found,
            )
        )
        telemetry.dataset = dataset
        record = telemetry.as_run_record()
        record["plain_seconds"] = plain
        record["live_seconds"] = live
        validate_run_record(record)
        runs.append(record)

    table = format_table(
        [
            "dataset",
            "plain (s)",
            "instrumented (s)",
            "overhead",
            "live (s)",
            "live overhead",
            "patterns",
        ],
        rows,
        title=(
            "Telemetry overhead (best-of seconds, median-ratio "
            "overhead, %d rounds)" % REPEATS
        ),
    )
    record_artifact("telemetry_overhead", table)
    BENCH_PATH.write_text(
        json.dumps(
            {
                "schema": "repro-bench/v1",
                "benchmark": "telemetry_overhead",
                "created_unix": time.time(),
                "max_overhead": MAX_OVERHEAD,
                "runs": runs,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )
    assert not failures, (
        "telemetry overhead exceeded %.0f%%: %r" % (MAX_OVERHEAD * 100, failures)
    )


def test_disabled_spans_are_noops():
    """Without a collector, span() must hand back one shared object."""
    from repro.obs.spans import span

    assert span("a") is span("b")
