"""Baseline algorithm ablations.

Two algorithm-choice claims from the literature the paper leans on:

* Ma & Hellerstein (and the paper's Section 5): the **periodic-first**
  p-pattern algorithm is "relatively faster than the association-first
  algorithm" — both are implemented here and timed on the same
  workloads (outputs are identical, asserted);
* the periodic-frequent miners: the **PF-tree** pattern-growth engine
  vs the vertical ts-list engine (identical outputs, asserted).
"""

import pytest

from repro.baselines.pf_growth import mine_periodic_frequent_patterns
from repro.baselines.pf_tree import mine_periodic_frequent_patterns_tree
from repro.baselines.ppattern import mine_p_patterns

P_PATTERN_SETTINGS = [
    ("shop14", 1440, 0.002),
    ("twitter", 360, 0.02),
]

PF_SETTINGS = [
    ("shop14", 0.002, 1440),
    ("twitter", 0.02, 1440),
]


@pytest.mark.parametrize(
    "dataset,per,min_sup",
    P_PATTERN_SETTINGS,
    ids=[s[0] for s in P_PATTERN_SETTINGS],
)
@pytest.mark.parametrize("algorithm", ["periodic-first", "association-first"])
def test_p_pattern_algorithm_runtime(
    dataset, per, min_sup, algorithm, benchmark, request
):
    db = request.getfixturevalue(f"{dataset}_db")
    benchmark(mine_p_patterns, db, per, min_sup, 0, "threshold", algorithm)


@pytest.mark.parametrize(
    "dataset,per,min_sup",
    P_PATTERN_SETTINGS,
    ids=[s[0] for s in P_PATTERN_SETTINGS],
)
def test_p_pattern_algorithms_agree(dataset, per, min_sup, benchmark, request):
    db = request.getfixturevalue(f"{dataset}_db")

    def run():
        return (
            mine_p_patterns(db, per, min_sup),
            mine_p_patterns(db, per, min_sup, algorithm="association-first"),
        )

    periodic_first, association_first = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert periodic_first == association_first


@pytest.mark.parametrize(
    "dataset,min_sup,max_per",
    PF_SETTINGS,
    ids=[s[0] for s in PF_SETTINGS],
)
@pytest.mark.parametrize("engine", ["tree", "vertical"])
def test_pf_engine_runtime(
    dataset, min_sup, max_per, engine, benchmark, request
):
    db = request.getfixturevalue(f"{dataset}_db")
    miner = (
        mine_periodic_frequent_patterns_tree
        if engine == "tree"
        else mine_periodic_frequent_patterns
    )
    benchmark(miner, db, min_sup, max_per)


@pytest.mark.parametrize(
    "dataset,min_sup,max_per",
    PF_SETTINGS,
    ids=[s[0] for s in PF_SETTINGS],
)
def test_pf_engines_agree(dataset, min_sup, max_per, benchmark, request):
    db = request.getfixturevalue(f"{dataset}_db")

    def run():
        return (
            mine_periodic_frequent_patterns_tree(db, min_sup, max_per),
            mine_periodic_frequent_patterns(db, min_sup, max_per),
        )

    tree, vertical = benchmark.pedantic(run, rounds=1, iterations=1)
    assert tree == vertical
