"""Memory ablation: the RP-tree's footprint vs its Lemma 2 bound.

Two structural claims from Section 4.2.1 are quantified here:

* **Lemma 2** — the node count of an RP-tree is bounded by the total
  size of the candidate-item projections, and prefix sharing keeps it
  far below the bound in practice;
* **tail-node ts-lists** — keeping occurrence timestamps only at tail
  nodes stores exactly one entry per transaction, versus the full
  projection size if every node on a path carried its own list (the
  naive design the paper's related work improves on).
"""

import pytest

from repro.bench.reporting import format_table
from repro.core.model import MiningParameters
from repro.core.rp_tree import build_rp_tree

SETTINGS = {
    "quest": MiningParameters(per=360, min_ps=0.002, min_rec=1),
    "shop14": MiningParameters(per=1440, min_ps=0.002, min_rec=1),
    "twitter": MiningParameters(per=360, min_ps=0.02, min_rec=1),
}


@pytest.mark.parametrize("dataset", sorted(SETTINGS))
def test_tree_construction_runtime(dataset, benchmark, request):
    db = request.getfixturevalue(f"{dataset}_db")
    params = SETTINGS[dataset].resolve(len(db))
    benchmark(build_rp_tree, db, params)


def test_memory_accounting(benchmark, record_artifact, request):
    def run():
        rows = []
        for dataset, params in sorted(SETTINGS.items()):
            db = request.getfixturevalue(f"{dataset}_db")
            resolved = params.resolve(len(db))
            tree, rp_list = build_rp_tree(db, resolved)
            bound = sum(
                len(rp_list.sort_transaction(itemset))
                for _, itemset in db
            )
            rows.append(
                (
                    dataset,
                    tree.node_count(),
                    bound,
                    f"{tree.node_count() / max(1, bound):.3f}",
                    tree.ts_entry_count(),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_artifact(
        "memory_rp_tree",
        format_table(
            [
                "dataset",
                "tree nodes",
                "Lemma 2 bound",
                "nodes/bound",
                "ts entries (tail-only)",
            ],
            rows,
            title="RP-tree footprint vs the Lemma 2 bound",
        ),
    )
    for dataset, nodes, bound, _, ts_entries in rows:
        # Lemma 2 holds...
        assert nodes <= bound, dataset
        # ...and prefix sharing plus tail-only storage actually pay:
        # the tree stores fewer ts entries than the naive
        # every-node-keeps-its-list design would (= the bound).
        assert ts_entries <= bound, dataset
