"""Ablation: the support-descending item order of the RP-tree.

Section 4.2.1: items are "arranged in support-descending order" "to
facilitate a high degree of compactness".  This bench builds the tree
under three global orders, compares node counts, and verifies mining
output is order-invariant.
"""

import pytest

from repro.bench.reporting import format_table
from repro.core.model import MiningParameters
from repro.core.rp_growth import RPGrowth
from repro.core.rp_tree import ITEM_ORDERS, build_rp_tree

SETTINGS = {
    "quest": MiningParameters(per=360, min_ps=0.002, min_rec=1),
    "shop14": MiningParameters(per=1440, min_ps=0.002, min_rec=1),
    "twitter": MiningParameters(per=360, min_ps=0.02, min_rec=1),
}


@pytest.mark.parametrize("dataset", sorted(SETTINGS))
@pytest.mark.parametrize("order", ITEM_ORDERS)
def test_tree_build_runtime(dataset, order, benchmark, request):
    db = request.getfixturevalue(f"{dataset}_db")
    params = SETTINGS[dataset].resolve(len(db))
    benchmark(build_rp_tree, db, params, None, order)


def test_tree_compactness(benchmark, record_artifact, request):
    def run():
        rows = []
        for dataset, params in sorted(SETTINGS.items()):
            db = request.getfixturevalue(f"{dataset}_db")
            resolved = params.resolve(len(db))
            counts = {
                order: build_rp_tree(db, resolved, item_order=order)[0].node_count()
                for order in ITEM_ORDERS
            }
            rows.append((dataset, *(counts[o] for o in ITEM_ORDERS)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_artifact(
        "ablation_item_order",
        format_table(
            ["dataset", *ITEM_ORDERS],
            rows,
            title="RP-tree node count by global item order",
        ),
    )
    for dataset, desc, asc, lex in rows:
        # The paper's choice must never lose to ascending order, and in
        # practice wins against lexicographic too.
        assert desc <= asc, dataset


@pytest.mark.parametrize("dataset", ["shop14", "twitter"])
def test_output_order_invariant(dataset, benchmark, request):
    db = request.getfixturevalue(f"{dataset}_db")
    params = SETTINGS[dataset]

    def run():
        return [
            RPGrowth(
                params.per, params.min_ps, params.min_rec, item_order=order
            ).mine(db)
            for order in ITEM_ORDERS
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert results[0] == results[1] == results[2]
