"""Ablation E-A1: the Erec pruning bound vs the naive support bound.

Section 4.1 motivates Erec as the device that restores (candidate)
anti-monotonicity.  This bench runs the vertical engine twice on the
same workload — once with the paper's Erec bound, once with the best
bound available without it (support >= minPS * minRec) — and measures
both the wall clock and the number of lattice nodes expanded.  The two
runs must return identical pattern sets; Erec must never expand more.
"""

import pytest

from repro.core.rp_eclat import RPEclat

SETTINGS = [
    ("quest", 360, 0.002, 2),
    ("shop14", 1440, 0.002, 2),
    ("twitter", 360, 0.02, 2),
]


@pytest.mark.parametrize(
    "dataset,per,min_ps,min_rec",
    SETTINGS,
    ids=[s[0] for s in SETTINGS],
)
@pytest.mark.parametrize("pruning", ["erec", "support"])
def test_pruning_runtime(
    dataset, per, min_ps, min_rec, pruning, benchmark, request
):
    db = request.getfixturevalue(f"{dataset}_db")
    miner = RPEclat(per, min_ps, min_rec, pruning=pruning)
    benchmark(miner.mine, db)


@pytest.mark.parametrize(
    "dataset,per,min_ps,min_rec",
    SETTINGS,
    ids=[s[0] for s in SETTINGS],
)
def test_pruning_effectiveness(
    dataset, per, min_ps, min_rec, benchmark, record_artifact, request
):
    db = request.getfixturevalue(f"{dataset}_db")

    def run():
        strong = RPEclat(per, min_ps, min_rec, pruning="erec")
        strong_result = strong.mine(db)
        weak = RPEclat(per, min_ps, min_rec, pruning="support")
        weak_result = weak.mine(db)
        return strong, strong_result, weak, weak_result

    strong, strong_result, weak, weak_result = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert strong_result == weak_result
    expanded_strong = strong.last_stats.candidate_patterns
    expanded_weak = weak.last_stats.candidate_patterns
    assert expanded_strong <= expanded_weak
    record_artifact(
        f"ablation_pruning_{dataset}",
        (
            f"{dataset} per={per} minPS={min_ps} minRec={min_rec}\n"
            f"patterns found:        {len(strong_result)}\n"
            f"expanded with Erec:    {expanded_strong}\n"
            f"expanded with support: {expanded_weak}\n"
            f"expansion saved:       "
            f"{100 * (1 - expanded_strong / max(1, expanded_weak)):.1f}%"
        ),
    )
