"""Parallel scaling: wall-clock vs worker count on the Quest workload.

Mines the scalability dataset (the E-A3 configuration of
``bench_scalability.py``: per=360, minPS=0.2%, minRec=1) at
``jobs in {1, 2, 4}`` on two database scales and records the speedup
curve to ``BENCH_parallel.json`` at the repository root — one
``repro-run/v1`` record per (scale, jobs) cell wrapped in the
``repro-bench/v1`` envelope, plus the hardware context the curve only
makes sense against.

The acceptance gate is hardware-aware: on a multi-core machine the
large configuration must not be *slower* at ``jobs=4`` than serially
(and the recorded curve shows the achieved speedup); on a single-CPU
machine four workers time-slice one core, so no speedup is physically
possible — the bench then only asserts result parity and records
``hardware_capped: true`` with the reason, as ``docs/performance.md``
documents.

Since the resilience layer landed, every parallel cell also records
its retry counters (``chunks_retried`` / ``chunks_fallback``, asserted
zero — no faults are injected here) and the large configuration
additionally measures **supervision overhead**: supervised vs
``supervised=False`` (the raw PR-2 fan-out) at ``jobs=2``, recorded as
``resilience_overhead`` and gated at <2% on multi-core hardware.
"""

import json
import os
import pathlib
import time

from repro.bench.workloads import quest_workload
from repro.core.miner import mine_recurring_patterns
from repro.core.options import ObservabilityOptions
from repro.obs.report import validate_run_record
from repro.parallel import ParallelMiner

JOB_COUNTS = (1, 2, 4)
SCALES = (0.05, 0.2)  # small sanity point + the "large config" gate
PARAMS = {"per": 360, "min_ps": 0.002, "min_rec": 1}
#: Best-of repetitions per cell; pool start-up noise dominates singles.
REPEATS = 3
#: Multi-core gate: jobs=4 must not be slower than jobs=1 on the large
#: configuration (5% timing-noise slack) — a failed gate means the
#: partition layer regressed, not that the workload is too small.
MAX_SLOWDOWN = 0.05
#: Multi-core gate: chunk supervision (markers, the wait loop, result
#: validation) may cost at most 2% wall-clock when no faults fire.
MAX_RESILIENCE_OVERHEAD = 0.02

BENCH_PATH = pathlib.Path(__file__).parent.parent / "BENCH_parallel.json"


def _supervision_overhead(db):
    """Best-of wall-clock of supervised vs raw fan-out at jobs=2.

    Both paths run the identical chunk plan; the delta is exactly the
    resilience layer's bookkeeping (marker files, the wait loop,
    result validation).
    """
    timings = {}
    for supervised in (True, False):
        best = float("inf")
        for _ in range(REPEATS):
            miner = ParallelMiner(
                **PARAMS, jobs=2, supervised=supervised
            )
            started = time.perf_counter()
            miner.mine(db)
            best = min(best, time.perf_counter() - started)
        timings[supervised] = best
    return {
        "supervised_seconds": timings[True],
        "unsupervised_seconds": timings[False],
        "overhead_fraction": timings[True] / timings[False] - 1.0,
    }


def _best_run(db, jobs):
    best_seconds = float("inf")
    best = None
    for _ in range(REPEATS):
        started = time.perf_counter()
        found, telemetry = mine_recurring_patterns(
            db, **PARAMS, jobs=jobs,
            observability=ObservabilityOptions(collect_stats=True),
        )
        seconds = time.perf_counter() - started
        if seconds < best_seconds:
            best_seconds = seconds
            best = (found, telemetry)
    return best_seconds, best[0], best[1]


def test_parallel_scaling_curve(record_artifact):
    cpus = os.cpu_count() or 1
    hardware_capped = cpus < 2
    runs = []
    rows = []
    large_seconds = {}
    for scale in SCALES:
        db = quest_workload(scale)
        serial_counters = None
        serial_patterns = None
        for jobs in JOB_COUNTS:
            seconds, found, telemetry = _best_run(db, jobs)
            if jobs == 1:
                serial_patterns = found
                serial_counters = telemetry.stats.as_dict()
                baseline = seconds
            else:
                # The contract the speedup curve rides on: identical
                # pattern sets and exactly merged counters.
                assert found == serial_patterns, (scale, jobs)
                assert telemetry.stats.as_dict() == serial_counters
            if scale == SCALES[-1]:
                large_seconds[jobs] = seconds
            speedup = baseline / seconds
            telemetry.dataset = f"quest-{scale:g}"
            record = telemetry.as_run_record()
            record["wall_seconds"] = seconds
            record["speedup_vs_serial"] = speedup
            validate_run_record(record)
            # No faults are injected here, so supervision must be
            # invisible in the counters — tracked over time so a
            # spurious-retry regression shows up in the artefact.
            assert record["counters"]["chunks_retried"] == 0, record
            assert record["counters"]["chunks_fallback"] == 0, record
            runs.append(record)
            rows.append((scale, len(db), jobs, seconds, speedup))

    overhead = _supervision_overhead(quest_workload(SCALES[-1]))

    from repro.bench.reporting import format_table

    record_artifact(
        "parallel_scaling",
        format_table(
            ["scale", "transactions", "jobs", "seconds", "speedup"],
            [
                (s, n, j, f"{sec:.4f}", f"{sp:.2f}x")
                for s, n, j, sec, sp in rows
            ],
            title=f"Parallel scaling, quest (cpus={cpus})",
        ),
    )

    payload = {
        "schema": "repro-bench/v1",
        "benchmark": "parallel_scaling",
        "created_unix": time.time(),
        "params": PARAMS,
        "job_counts": list(JOB_COUNTS),
        "scales": list(SCALES),
        "hardware": {
            "cpu_count": cpus,
            "platform": os.uname().sysname if hasattr(os, "uname") else "?",
        },
        "hardware_capped": hardware_capped,
        "resilience_overhead": overhead,
        "runs": runs,
    }
    if hardware_capped:
        payload["hardware_cap_reason"] = (
            f"os.cpu_count()={cpus}: all worker processes time-slice a "
            "single core, so parallel speedup is physically impossible "
            "here; this bench therefore asserts only result parity and "
            "bounded overhead.  Re-run on a multi-core machine to "
            "record a real speedup curve (>=1.5x at jobs=4 expected; "
            "see docs/performance.md)."
        )
    BENCH_PATH.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    if not hardware_capped:
        # The large config must not be slower in parallel than serial.
        assert large_seconds[4] <= large_seconds[1] * (1 + MAX_SLOWDOWN), (
            large_seconds
        )
        # Fault-free supervision must stay under its overhead budget.
        # (On single-CPU hardware the timings are scheduler noise, so
        # the number is recorded but not gated — see the module doc.)
        assert overhead["overhead_fraction"] <= MAX_RESILIENCE_OVERHEAD, (
            overhead
        )
