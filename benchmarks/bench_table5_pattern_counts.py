"""Table 5: number of recurring patterns across the parameter grid.

Paper setting (Table 4): per in {360, 720, 1440}; minRec in {1, 2, 3};
minPS in {0.1%, 0.2%, 0.3%} for T10I4D100K and Shop-14, {2%, 5%, 10%}
for Twitter.  We run the identical grid on the scaled stand-ins and
check the qualitative observations of Section 5.2:

* at fixed per and minRec, raising minPS lowers the count;
* at fixed per and minPS, raising minRec lowers the count;
* at minRec = 1, raising per raises the count.
"""

import pytest

from repro.bench.harness import sweep_pattern_counts

PERS = (360, 720, 1440)
MIN_RECS = (1, 2, 3)

GRIDS = {
    "quest": (0.001, 0.002, 0.003),
    "shop14": (0.001, 0.002, 0.003),
    "twitter": (0.02, 0.05, 0.10),
}


def _sweep(db, name):
    return sweep_pattern_counts(db, name, PERS, GRIDS[name], MIN_RECS)


def _check_trends(result):
    pers, ps_values, recs = result.pers, result.min_ps_values, result.min_recs
    # Counts decrease (weakly) in minPS.
    for per in pers:
        for rec in recs:
            counts = [result.value(per, ps, rec) for ps in ps_values]
            assert counts == sorted(counts, reverse=True), (per, rec, counts)
    # Counts decrease (weakly) in minRec.
    for per in pers:
        for ps in ps_values:
            counts = [result.value(per, ps, rec) for rec in recs]
            assert counts == sorted(counts, reverse=True), (per, ps, counts)
    # At minRec=1, counts increase (weakly) in per.
    for ps in ps_values:
        counts = [result.value(per, ps, 1) for per in pers]
        assert counts == sorted(counts), (ps, counts)


@pytest.mark.parametrize("dataset", ["quest", "shop14", "twitter"])
def test_table5(dataset, benchmark, record_artifact, request):
    db = request.getfixturevalue(f"{dataset}_db")
    result = benchmark.pedantic(
        _sweep, args=(db, dataset), rounds=1, iterations=1
    )
    record_artifact(f"table5_{dataset}", result.as_table())
    _check_trends(result)
    # The grid must not be degenerate: the loosest cell finds patterns.
    loosest = result.value(PERS[-1], GRIDS[dataset][0], 1)
    assert loosest > 0
