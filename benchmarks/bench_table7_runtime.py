"""Table 7: RP-growth runtime over the parameter grid.

pytest-benchmark measures representative cells directly (one benchmark
per (dataset, per, minPS, minRec) sample of the grid); a full grid is
additionally recorded as text via the harness, mirroring Table 7's
layout.  The paper's runtime trends — slower for larger per, faster for
larger minPS and minRec — are asserted on the recorded grid.
"""

import pytest

from repro.bench.harness import sweep_runtime
from repro.core.miner import mine_recurring_patterns

GRID_PERS = (360, 720, 1440)
GRID_RECS = (1, 2, 3)
GRIDS = {
    "quest": (0.001, 0.002, 0.003),
    "shop14": (0.001, 0.002, 0.003),
    "twitter": (0.02, 0.05, 0.10),
}

# Representative cells timed precisely by pytest-benchmark.
CELLS = [
    ("quest", 360, 0.002, 1),
    ("quest", 1440, 0.002, 1),
    ("shop14", 360, 0.002, 1),
    ("shop14", 1440, 0.002, 3),
    ("twitter", 360, 0.02, 1),
    ("twitter", 1440, 0.02, 1),
    ("twitter", 1440, 0.10, 3),
]


@pytest.mark.parametrize(
    "dataset,per,min_ps,min_rec",
    CELLS,
    ids=[f"{d}-per{p}-ps{ps}-rec{r}" for d, p, ps, r in CELLS],
)
def test_runtime_cell(dataset, per, min_ps, min_rec, benchmark, request):
    db = request.getfixturevalue(f"{dataset}_db")
    found = benchmark(
        mine_recurring_patterns, db, per, min_ps, min_rec
    )
    assert found is not None


@pytest.mark.parametrize("dataset", ["quest", "shop14", "twitter"])
def test_table7_grid(dataset, benchmark, record_artifact, request):
    db = request.getfixturevalue(f"{dataset}_db")
    result = benchmark.pedantic(
        sweep_runtime,
        args=(db, dataset, GRID_PERS, GRIDS[dataset], GRID_RECS),
        rounds=1,
        iterations=1,
    )
    record_artifact(f"table7_{dataset}_runtime", result.as_table())
    # Directional check (loose, single-run timings are noisy): the
    # loosest cell must not be faster than the tightest by more than
    # noise — i.e. the tightest cell should win or roughly tie.
    loosest = result.value(GRID_PERS[-1], GRIDS[dataset][0], 1)
    tightest = result.value(GRID_PERS[0], GRIDS[dataset][-1], GRID_RECS[-1])
    assert tightest <= loosest * 1.5, (tightest, loosest)
