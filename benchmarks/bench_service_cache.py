"""Service result cache: warm (cached) vs cold (mined) request latency.

The daemon's reason to exist over one-shot CLI runs is that repeated
questions — the workflow the paper's evaluation grids institutionalise
— should not re-pay the mine.  This bench boots a real
:class:`~repro.service.MiningService`, submits a small ``per`` ladder
over the Quest workload **cold** (every request a cache miss, mined in
full), then re-submits the identical requests **warm** (every request
an exact cache hit), measuring end-to-end client latency — submit,
poll, fetch — for both.

Every warm answer must be byte-identical to its cold counterpart, and a
derived request (tighter ``min_rec`` against the cached column) must be
byte-identical to a fresh local mine — caching that changed an answer
would be a bug, not a speedup.  The median warm/cold ratio is recorded
to ``BENCH_service.json`` (a ``repro-bench/v1`` envelope embedding the
service's final metrics snapshot) and **gated at ≥2×**.  The gate is
conservative: a warm hit pays dataset load + digest + HTTP, a cold miss
pays all of that plus the mine, and at this workload's thresholds the
mine alone is several times the rest.
"""

import asyncio
import io
import json
import os
import pathlib
import statistics
import threading
import time

from repro import mine_recurring_patterns
from repro.bench.reporting import format_table
from repro.bench.workloads import quest_workload
from repro.core.request import DatasetRef, MiningRequest
from repro.patterns_io import save_patterns
from repro.service import MiningService, ServiceClient
from repro.timeseries.io import save_transactional_database

SCALE = 0.05
PERS = (360, 720, 1440)
MIN_PS = 0.002
WARM_REPEATS = 3
#: The cache gate: the median warm (hit) request must complete at least
#: this much faster than the median cold (mined) request.
MIN_SPEEDUP = 2.0

BENCH_PATH = pathlib.Path(__file__).parent.parent / "BENCH_service.json"


def _serve_one(client: ServiceClient, request: MiningRequest):
    """One full client interaction; returns (seconds, result body)."""
    started = time.perf_counter()
    job_id = client.submit(request)
    status = client.wait(job_id, timeout=300, interval=0.01)
    assert status["status"] == "done", status
    result = client.result(job_id)
    return time.perf_counter() - started, result


def test_service_cache_speedup(record_artifact, tmp_path_factory):
    data = tmp_path_factory.mktemp("service") / "quest.tsv"
    base = quest_workload(SCALE)
    save_transactional_database(base, str(data))
    source = DatasetRef.file(str(data))
    requests = [
        MiningRequest(per=per, min_ps=MIN_PS, source=source)
        for per in PERS
    ]

    service = MiningService(port=0, workers=1, cache_size=16)
    ready = threading.Event()
    state = {}

    def run():
        async def main():
            state["loop"] = asyncio.get_running_loop()
            state["stop"] = asyncio.Event()
            await service.start()
            ready.set()
            await state["stop"].wait()
            await service.stop()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(10), "service failed to start"
    try:
        client = ServiceClient(port=service.port)

        cold_seconds, cold_results = [], {}
        for request in requests:
            seconds, result = _serve_one(client, request)
            assert result["cache"] == "miss", result
            cold_seconds.append(seconds)
            cold_results[request.per] = result["patterns_tsv"]

        warm_seconds = []
        for _ in range(WARM_REPEATS):
            for request in requests:
                seconds, result = _serve_one(client, request)
                assert result["cache"] == "hit", result
                # Byte-identical to the cold answer — the precondition.
                assert (
                    result["patterns_tsv"] == cold_results[request.per]
                ), f"warm hit diverged at per={request.per}"
                warm_seconds.append(seconds)

        # One derived request, checked against a fresh local mine.
        _, derived = _serve_one(
            client, requests[0].with_thresholds(min_rec=2)
        )
        assert derived["cache"] == "derived", derived
        buffer = io.StringIO()
        save_patterns(
            mine_recurring_patterns(
                base, PERS[0], MIN_PS, 2
            ),
            buffer,
        )
        assert derived["patterns_tsv"] == buffer.getvalue()

        snapshot = service.registry.snapshot()
    finally:
        state["loop"].call_soon_threadsafe(state["stop"].set)
        thread.join(30)

    cold_median = statistics.median(cold_seconds)
    warm_median = statistics.median(warm_seconds)
    speedup = cold_median / warm_median

    record_artifact(
        "service_cache",
        format_table(
            ["path", "median seconds", "requests"],
            [
                ("cold (mined)", f"{cold_median:.4f}", len(cold_seconds)),
                ("warm (cache hit)", f"{warm_median:.4f}",
                 len(warm_seconds)),
                ("speedup", f"{speedup:.2f}x", ""),
            ],
            title=(
                f"Service result cache, quest scale={SCALE:g} "
                f"({len(PERS)} per values, minPS={MIN_PS})"
            ),
        ),
    )

    payload = {
        "schema": "repro-bench/v1",
        "benchmark": "service_cache",
        "created_unix": time.time(),
        "params": {
            "pers": list(PERS),
            "min_ps": MIN_PS,
            "scale": SCALE,
            "warm_repeats": WARM_REPEATS,
        },
        "hardware": {
            "cpu_count": os.cpu_count() or 1,
            "platform": os.uname().sysname if hasattr(os, "uname") else "?",
        },
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "cold_median_seconds": cold_median,
        "warm_median_seconds": warm_median,
        "speedup": speedup,
        "min_speedup_gate": MIN_SPEEDUP,
        "service_metrics": snapshot,
    }
    BENCH_PATH.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    assert speedup >= MIN_SPEEDUP, (
        f"service cache gate failed: {speedup:.2f}x < {MIN_SPEEDUP}x "
        f"(cold {cold_median:.3f}s, warm {warm_median:.3f}s)"
    )
