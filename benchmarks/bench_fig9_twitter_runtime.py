"""Figure 9: RP-growth runtime on Twitter vs minPS.

One panel per minRec, one series per per, minPS swept 2%-10%; the
paper's curves fall with minPS and rise with per.  Single-run wall
clocks are noisy, so the shape assertions compare the endpoints with a
generous tolerance rather than demanding strict monotonicity.
"""

from repro.bench.harness import sweep_runtime

PERS = (360, 720, 1440)
MIN_PS_SWEEP = (0.02, 0.04, 0.06, 0.08, 0.10)
MIN_RECS = (1, 2, 3)


def _sweep(db):
    return sweep_runtime(
        db, "twitter", PERS, MIN_PS_SWEEP, MIN_RECS, repeats=2
    )


def test_fig9(twitter_db, benchmark, record_artifact):
    result = benchmark.pedantic(
        _sweep, args=(twitter_db,), rounds=1, iterations=1
    )
    panels = "\n\n".join(result.as_figure(min_rec) for min_rec in MIN_RECS)
    record_artifact("fig9_twitter_runtime", panels)

    for min_rec in MIN_RECS:
        for per in PERS:
            loose = result.value(per, MIN_PS_SWEEP[0], min_rec)
            tight = result.value(per, MIN_PS_SWEEP[-1], min_rec)
            # Mining at 10% minPS must not be slower than at 2% beyond
            # timing noise.
            assert tight <= loose * 1.5, (min_rec, per, tight, loose)
