"""Optional paper-scale runs (opt-in: set ``REPRO_PAPER_SCALE=1``).

The regular benchmark suite runs the evaluation at ~10% of the paper's
database sizes so it finishes in minutes of pure Python.  This module
executes one representative Table 5/7 cell per dataset at full paper
scale (quest: 100k transactions; shop14: 41 days; twitter: 123 days) —
expect several minutes per cell — and records the measurements so
EXPERIMENTS.md can quote full-scale numbers.
"""

import os

import pytest

from repro.bench.reporting import format_table
from repro.bench.workloads import (
    clickstream_workload,
    quest_workload,
    twitter_workload,
)
from repro.core.rp_growth import RPGrowth

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_PAPER_SCALE") != "1",
    reason="paper-scale runs are opt-in: set REPRO_PAPER_SCALE=1",
)

CELLS = [
    ("quest", quest_workload, 360, 0.002, 1),
    ("shop14", clickstream_workload, 1440, 0.002, 2),
    ("twitter", twitter_workload, 360, 0.02, 1),
]


@pytest.mark.parametrize(
    "dataset,workload,per,min_ps,min_rec",
    CELLS,
    ids=[c[0] for c in CELLS],
)
def test_paper_scale_cell(
    dataset, workload, per, min_ps, min_rec, benchmark, record_artifact
):
    db = workload(1.0)
    miner = RPGrowth(per, min_ps, min_rec)
    found = benchmark.pedantic(miner.mine, args=(db,), rounds=1, iterations=1)
    record_artifact(
        f"paper_scale_{dataset}",
        format_table(
            ["metric", "value"],
            [
                ("transactions", len(db)),
                ("items", len(db.items())),
                ("per", per),
                ("minPS", min_ps),
                ("minRec", min_rec),
                ("patterns", len(found)),
                ("max length", found.max_length()),
            ],
            title=f"{dataset} at paper scale",
        ),
    )
    assert len(found) > 0
