"""Scalability E-A3: runtime vs database size (supports the paper's
"our algorithm is efficient" claim).

RP-growth is run on Quest databases of growing size at fixed relative
thresholds; runtime should grow roughly linearly (the algorithm scans
the database twice and the tree work is bounded by the candidate
projections).  We assert sub-quadratic growth, which is robust to
timing noise.
"""

import time

import pytest

from repro.bench.reporting import format_table
from repro.bench.workloads import quest_workload
from repro.core.rp_growth import RPGrowth

SIZES = (0.02, 0.05, 0.1, 0.2)  # fraction of the paper's 100k transactions


@pytest.mark.parametrize("scale", SIZES, ids=[f"scale{s}" for s in SIZES])
def test_scalability_cell(scale, benchmark):
    db = quest_workload(scale)
    miner = RPGrowth(per=360, min_ps=0.002, min_rec=1)
    benchmark(miner.mine, db)


def test_scalability_curve(benchmark, record_artifact):
    def run():
        rows = []
        for scale in SIZES:
            db = quest_workload(scale)
            started = time.perf_counter()
            found = RPGrowth(per=360, min_ps=0.002, min_rec=1).mine(db)
            rows.append((len(db), len(found), time.perf_counter() - started))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_artifact(
        "scalability_quest",
        format_table(
            ["transactions", "patterns", "seconds"],
            rows,
            title="RP-growth scalability (per=360, minPS=0.2%, minRec=1)",
        ),
    )
    smallest_n, _, smallest_t = rows[0]
    largest_n, _, largest_t = rows[-1]
    ratio_n = largest_n / smallest_n
    ratio_t = largest_t / max(smallest_t, 1e-9)
    assert ratio_t < ratio_n ** 2, (ratio_n, ratio_t)
