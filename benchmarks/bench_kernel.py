"""Columnar kernel: ``rp-eclat-vec`` vs the scalar engines.

Mines the ``BENCH_parallel.json`` quest grids (the E-A3 configuration:
per=360, minPS=0.2%, minRec=1, scales 0.05 and 0.2) with the batched
columnar engine and its scalar ancestors, asserts byte-identical
pattern sets, and records the wall-clock comparison to
``BENCH_kernel.json`` at the repository root in the ``repro-bench/v1``
envelope.

The acceptance gate is the kernel's reason to exist: on every grid,
``rp-eclat-vec`` must be at least :data:`MIN_SPEEDUP` times faster
than ``rp-growth`` (best-of-:data:`REPEATS` on both sides, so pool
noise and first-run cache effects cancel).  ``rp-eclat`` rides along
unrepeated as the scalar vertical baseline — it is one to two orders
of magnitude off the pace and only there for scale.

The bench also measures the dense-bitmap vs ``intersect1d`` crossover
that :func:`repro.core.accel.intersect_arrays` hard-codes (combined
operand size >= universe / 8): a density sweep on a synthetic universe,
recorded (not gated) so the constant can be revisited on new hardware.
"""

import json
import os
import pathlib
import time

import numpy as np

from repro.bench.workloads import quest_workload
from repro.core.accel import intersect_arrays
from repro.core.engines import get_engine

SCALES = (0.05, 0.2)  # the BENCH_parallel quest grids
PARAMS = {"per": 360, "min_ps": 0.002, "min_rec": 1}
#: Best-of repetitions for the gated engines; the scalar ``rp-eclat``
#: baseline runs once (it is ~50x slower and not part of the gate).
REPEATS = 5
ENGINE_REPEATS = {"rp-growth": REPEATS, "rp-eclat": 1, "rp-eclat-vec": REPEATS}
#: The gate: the columnar kernel must beat rp-growth by this factor on
#: every grid (ISSUE 7 acceptance criterion).
MIN_SPEEDUP = 5.0

BENCH_PATH = pathlib.Path(__file__).parent.parent / "BENCH_kernel.json"


def _best_mine(engine_name, db):
    spec = get_engine(engine_name)
    best_seconds = float("inf")
    patterns = None
    for _ in range(ENGINE_REPEATS[engine_name]):
        miner = spec.factory(**PARAMS)
        started = time.perf_counter()
        found = miner.mine(db)
        seconds = time.perf_counter() - started
        if seconds < best_seconds:
            best_seconds = seconds
            patterns = found
    return best_seconds, patterns


def _intersection_crossover():
    """Bitmap vs sort-merge timings across operand density.

    Both paths compute the same intersection; the recorded table shows
    where the dense gather starts to win (the ``universe >> 3``
    constant in :func:`repro.core.accel.intersect_arrays`).
    """
    universe = 200_000
    rng = np.random.default_rng(7)
    rows = []
    for denominator in (64, 32, 16, 8, 4, 2):
        size = universe // denominator
        left = np.sort(rng.choice(universe, size=size, replace=False))
        right = np.sort(rng.choice(universe, size=size, replace=False))
        timings = {}
        for label, kwargs in (
            ("merge", {}),                      # forces intersect1d
            ("bitmap", {"universe": universe}),  # density >= 1/8 cases
        ):
            best = float("inf")
            for _ in range(3):
                started = time.perf_counter()
                result = intersect_arrays(left, right, **kwargs)
                best = min(best, time.perf_counter() - started)
            timings[label] = best
        assert np.array_equal(
            intersect_arrays(left, right),
            intersect_arrays(left, right, universe=universe),
        )
        rows.append(
            {
                "combined_over_universe": 2 * size / universe,
                "merge_seconds": timings["merge"],
                "bitmap_seconds": timings["bitmap"],
            }
        )
    return rows


def test_kernel_speedup(record_artifact):
    cells = []
    table_rows = []
    for scale in SCALES:
        db = quest_workload(scale)
        results = {}
        for engine in ENGINE_REPEATS:
            seconds, patterns = _best_mine(engine, db)
            results[engine] = (seconds, patterns)
        # The speedup only counts because the outputs are identical.
        reference = list(results["rp-growth"][1])
        for engine, (_, patterns) in results.items():
            assert list(patterns) == reference, (scale, engine)
        growth_seconds = results["rp-growth"][0]
        for engine, (seconds, patterns) in results.items():
            speedup = growth_seconds / seconds
            cells.append(
                {
                    "scale": scale,
                    "transactions": len(db),
                    "engine": engine,
                    "wall_seconds": seconds,
                    "speedup_vs_growth": speedup,
                    "patterns": len(patterns),
                    "repeats": ENGINE_REPEATS[engine],
                }
            )
            table_rows.append(
                (scale, len(db), engine, f"{seconds:.4f}", f"{speedup:.2f}x")
            )

    crossover = _intersection_crossover()

    from repro.bench.reporting import format_table

    record_artifact(
        "kernel",
        format_table(
            ["scale", "transactions", "engine", "seconds", "vs growth"],
            table_rows,
            title="Columnar kernel vs scalar engines, quest",
        ),
    )

    payload = {
        "schema": "repro-bench/v1",
        "benchmark": "kernel",
        "created_unix": time.time(),
        "params": PARAMS,
        "scales": list(SCALES),
        "min_speedup_gate": MIN_SPEEDUP,
        "hardware": {
            "cpu_count": os.cpu_count() or 1,
            "platform": os.uname().sysname if hasattr(os, "uname") else "?",
        },
        "cells": cells,
        "intersection_crossover": {
            "universe": 200_000,
            "bitmap_threshold": "combined size >= universe / 8",
            "rows": crossover,
        },
    }
    BENCH_PATH.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    for cell in cells:
        if cell["engine"] == "rp-eclat-vec":
            assert cell["speedup_vs_growth"] >= MIN_SPEEDUP, cell
