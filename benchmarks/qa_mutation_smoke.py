"""Mutation smoke test: does the ``repro qa`` gate actually have teeth?

A conformance gate that never goes red is indistinguishable from one
that checks nothing.  This script measures the gate's bite directly:
it copies ``src/`` into a temporary directory, applies one deliberate
off-by-one mutation at a time to the shared interval mathematics
(``core/intervals.py``) and the RP-list construction
(``core/rp_list.py``), runs ``python -m repro.cli qa`` against the
mutated tree, and asserts that **every mutant is rejected** (nonzero
exit) while the unmutated baseline passes.

The mutations are chosen to be the lockstep kind — they move every
engine *and* the naive oracle together, so differential testing alone
cannot see them; the golden corpus is what must catch them.

Deliberately named so pytest does not collect it (``bench_*.py`` files
are test modules here); run it directly:

    PYTHONPATH=src python benchmarks/qa_mutation_smoke.py
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import tempfile
from typing import List, NamedTuple, Tuple

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
GOLDEN_DIR = os.path.join(REPO, "tests", "qa", "golden")

#: Gate invocation used for every run: small budget, no extra relation
#: cases, a short differential sweep — enough for the golden corpus and
#: the mandatory relation matrix to run.
QA_ARGS = [
    "qa",
    "--budget", "30",
    "--relation-cases", "0",
    "--differential-cases", "5",
    "--golden-dir", GOLDEN_DIR,
    "--report", "-",
]


class Mutation(NamedTuple):
    """One single-site, off-by-one textual mutation."""

    name: str
    path: str  # relative to src/
    before: str
    after: str


MUTATIONS: Tuple[Mutation, ...] = (
    Mutation(
        name="intervals-strict-gap",
        path="repro/core/intervals.py",
        before="if current - previous <= per:",
        after="if current - previous < per:",
    ),
    Mutation(
        name="intervals-strict-minps",
        path="repro/core/intervals.py",
        before="if run[2] >= min_ps]",
        after="if run[2] > min_ps]",
    ),
    Mutation(
        name="rp-list-strict-gap",
        path="repro/core/rp_list.py",
        before="elif ts - self.last_ts <= per:",
        after="elif ts - self.last_ts < per:",
    ),
    # Streaming-only: batch engines and the oracle are untouched, so
    # neither differential testing nor the goldens can see it — only
    # the stream-batch / stream-checkpoint-resume relations go red.
    Mutation(
        name="streaming-strict-gap",
        path="repro/streaming/monitor.py",
        before="elif ts - state.last_ts <= self.per:",
        after="elif ts - state.last_ts < self.per:",
    ),
    # Merge-stage only: the sharded pipeline's run stitching drops one
    # periodic-support unit per stitched cut.  In-memory mining, the
    # oracle and the goldens never execute repro/shard/merge.py, so
    # only the shard-merge relation can go red.
    Mutation(
        name="shard-merge-stitch-ps",
        path="repro/shard/merge.py",
        before="merged[-1] = (previous[0], run[1], previous[2] + run[2])",
        after=(
            "merged[-1] = (previous[0], run[1], "
            "previous[2] + run[2] - 1)"
        ),
    ),
)


def copy_tree(destination: str) -> str:
    """Copy ``src/`` into ``destination``; returns the new PYTHONPATH."""
    mutated_src = os.path.join(destination, "src")
    shutil.copytree(
        os.path.join(REPO, "src"),
        mutated_src,
        ignore=shutil.ignore_patterns("__pycache__"),
    )
    return mutated_src


def apply_mutation(src_root: str, mutation: Mutation) -> None:
    """Rewrite exactly one occurrence of the target line."""
    path = os.path.join(src_root, mutation.path)
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    occurrences = text.count(mutation.before)
    if occurrences != 1:
        raise SystemExit(
            f"{mutation.name}: expected exactly one occurrence of "
            f"{mutation.before!r} in {mutation.path}, found {occurrences} "
            "- the mutation targets have drifted; update this script"
        )
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text.replace(mutation.before, mutation.after))


def run_gate(src_root: str) -> int:
    """Run the qa gate against ``src_root``; returns the exit code."""
    environment = dict(os.environ, PYTHONPATH=src_root)
    completed = subprocess.run(
        [sys.executable, "-m", "repro.cli", *QA_ARGS],
        env=environment,
        cwd=REPO,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    return completed.returncode


def main() -> int:
    rows: List[Tuple[str, str, str]] = []
    failed = False

    with tempfile.TemporaryDirectory(prefix="repro-mutation-") as workdir:
        baseline_src = copy_tree(os.path.join(workdir, "baseline"))
        code = run_gate(baseline_src)
        verdict = "ok" if code == 0 else "GATE BROKEN"
        failed = failed or code != 0
        rows.append(("(baseline)", "expects exit 0", f"exit {code}: {verdict}"))

        for mutation in MUTATIONS:
            mutant_src = copy_tree(os.path.join(workdir, mutation.name))
            apply_mutation(mutant_src, mutation)
            code = run_gate(mutant_src)
            caught = code != 0
            failed = failed or not caught
            rows.append((
                mutation.name,
                f"{mutation.before.strip()} -> {mutation.after.strip()}",
                f"exit {code}: {'caught' if caught else 'MISSED'}",
            ))

    width = max(len(row[0]) for row in rows)
    print("qa gate mutation smoke")
    for name, change, outcome in rows:
        print(f"  {name:<{width}}  {outcome:<18}  {change}")
    if failed:
        print("FAIL: the gate missed a mutant (or rejected the baseline)")
        return 1
    print("PASS: baseline green, every mutant rejected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
