"""Unit tests for the Shop-14-style clickstream generator."""

import pytest

from repro import mine_recurring_patterns
from repro.datasets.clickstream import (
    MINUTES_PER_DAY,
    ClickstreamConfig,
    generate_clickstream,
)
from repro.exceptions import ParameterError

SMALL = ClickstreamConfig(days=3, n_categories=30, promo_windows=(), seed=2)


class TestDeterminism:
    def test_same_seed_same_database(self):
        assert generate_clickstream(SMALL) == generate_clickstream(SMALL)


class TestShape:
    def test_time_span(self):
        db = generate_clickstream(SMALL)
        assert db.start >= 0
        assert db.end < 3 * MINUTES_PER_DAY

    def test_categories_in_range(self):
        db = generate_clickstream(SMALL)
        for item in db.items():
            assert item.startswith("c")
            assert 0 <= int(item[1:]) < 30

    def test_night_is_quiet(self):
        db = generate_clickstream(SMALL)
        # 01:00-06:00 has zero intensity by construction.
        for ts, _ in db:
            minute_of_day = ts % MINUTES_PER_DAY
            assert not 60 <= minute_of_day < 360

    def test_popular_categories_dominate(self):
        db = generate_clickstream(SMALL)
        counts = db.item_timestamps()
        assert len(counts["c0"]) > len(counts.get("c29", ()))


class TestPromotions:
    CONFIG = ClickstreamConfig(
        days=14,
        n_categories=30,
        promo_windows=((20, ((1, 3), (8, 10))),),
        promo_rate=0.9,
        seed=4,
    )

    def test_promo_pair_active_only_in_windows(self):
        db = generate_clickstream(self.CONFIG)
        for ts in db.timestamps_of(["c20", "c21"]):
            day = int(ts) // MINUTES_PER_DAY
            assert day in (1, 2, 3, 8, 9, 10)

    def test_promo_pair_is_recurring(self):
        db = generate_clickstream(self.CONFIG)
        found = mine_recurring_patterns(
            db, per=MINUTES_PER_DAY, min_ps=50, min_rec=2, engine="rp-eclat"
        )
        promo = found.get(["c20", "c21"])
        assert promo is not None
        assert promo.recurrence == 2

    def test_promo_windows_clamped_to_days(self):
        config = ClickstreamConfig(
            days=2,
            n_categories=30,
            promo_windows=((20, ((0, 10),)),),
            seed=4,
        )
        db = generate_clickstream(config)
        assert db.end < 2 * MINUTES_PER_DAY


class TestValidation:
    def test_rejects_bad_days(self):
        with pytest.raises(ParameterError):
            ClickstreamConfig(days=0)

    def test_rejects_promo_category_out_of_range(self):
        with pytest.raises(ParameterError):
            ClickstreamConfig(
                n_categories=10, promo_windows=((9, ((0, 1),)),)
            )

    def test_rejects_inverted_window(self):
        with pytest.raises(ParameterError):
            ClickstreamConfig(promo_windows=((5, ((4, 2),)),))

    def test_rejects_bad_correlation(self):
        with pytest.raises(ParameterError):
            ClickstreamConfig(correlation_probability=2.0)
