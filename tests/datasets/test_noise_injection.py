"""Tests for the dropout/jitter noise injectors."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datasets.noise import apply_dropout, apply_jitter
from repro.exceptions import ParameterError
from repro.timeseries.database import TransactionalDatabase
from tests.conftest import small_databases

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestDropout:
    def test_rate_zero_is_identity(self, running_example):
        assert apply_dropout(running_example, 0.0) == running_example

    def test_rate_one_erases_everything(self, running_example):
        assert len(apply_dropout(running_example, 1.0)) == 0

    def test_deterministic_per_seed(self, running_example):
        assert apply_dropout(running_example, 0.3, seed=5) == apply_dropout(
            running_example, 0.3, seed=5
        )

    def test_occurrences_only_removed_never_added(self, running_example):
        noisy = apply_dropout(running_example, 0.4, seed=1)
        original = {
            (ts, item)
            for ts, items in running_example
            for item in items
        }
        corrupted = {
            (ts, item) for ts, items in noisy for item in items
        }
        assert corrupted <= original
        assert len(corrupted) < len(original)

    def test_rejects_bad_rate(self, running_example):
        with pytest.raises(ParameterError):
            apply_dropout(running_example, 1.5)

    @RELAXED
    @given(db=small_databases(), rate=st.floats(0.0, 1.0))
    def test_random_databases_shrink_monotonically(self, db, rate):
        noisy = apply_dropout(db, rate, seed=3)
        assert len(noisy) <= len(db)
        for _, items in noisy:
            assert items  # no empty transactions survive


class TestJitter:
    def test_zero_offset_is_identity(self, running_example):
        assert apply_jitter(running_example, 0.0) is running_example

    def test_preserves_transaction_count_and_items(self, running_example):
        noisy = apply_jitter(running_example, 0.4, seed=2)
        assert len(noisy) == len(running_example)
        assert [items for _, items in noisy] == [
            items for _, items in running_example
        ]

    def test_order_never_crosses(self):
        db = TransactionalDatabase([(ts, "a") for ts in range(0, 100, 3)])
        noisy = apply_jitter(db, max_offset=10.0, seed=9)
        timestamps = [ts for ts, _ in noisy]
        assert timestamps == sorted(timestamps)
        assert len(noisy) == len(db)

    def test_offsets_bounded(self):
        db = TransactionalDatabase([(ts, "a") for ts in range(0, 1000, 10)])
        noisy = apply_jitter(db, max_offset=2.0, seed=4)
        for (orig, _), (new, _) in zip(db, noisy):
            assert abs(new - orig) <= 2.0

    def test_rejects_negative_offset(self, running_example):
        with pytest.raises(ParameterError):
            apply_jitter(running_example, -1.0)

    @RELAXED
    @given(db=small_databases(), offset=st.floats(0.0, 5.0))
    def test_random_databases_keep_structure(self, db, offset):
        noisy = apply_jitter(db, offset, seed=11)
        assert len(noisy) == len(db)
        timestamps = [ts for ts, _ in noisy]
        assert timestamps == sorted(timestamps)
