"""Unit tests for the bundled running example."""

from repro.datasets import (
    paper_running_example,
    paper_running_example_events,
    paper_table2_patterns,
)
from repro.timeseries.database import TransactionalDatabase


class TestRunningExample:
    def test_matches_table1(self):
        db = paper_running_example()
        assert len(db) == 12
        assert db[0] == (1, frozenset("abg"))
        assert db[-1] == (14, frozenset("abg"))

    def test_events_and_database_agree(self):
        assert TransactionalDatabase.from_events(
            paper_running_example_events()
        ) == paper_running_example()

    def test_fresh_copy_each_call(self):
        assert paper_running_example() is not paper_running_example()

    def test_table2_has_eight_patterns(self):
        table = paper_table2_patterns()
        assert len(table) == 8
        assert set(table) == {"a", "b", "d", "e", "f", "ab", "cd", "ef"}

    def test_table2_metadata_consistent(self):
        db = paper_running_example()
        for items, (support, rec, intervals) in paper_table2_patterns().items():
            assert db.support(items) == support
            assert len(intervals) == rec
