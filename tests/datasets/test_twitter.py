"""Unit tests for the Twitter-style hashtag stream generator."""

import pytest

from repro import mine_recurring_patterns
from repro.datasets.twitter import (
    MINUTES_PER_DAY,
    BurstSpec,
    TwitterConfig,
    generate_twitter,
)
from repro.exceptions import ParameterError

SMALL = TwitterConfig(days=3, n_hashtags=50, bursts=(), seed=9)


class TestDeterminism:
    def test_same_seed_same_database(self):
        assert generate_twitter(SMALL) == generate_twitter(SMALL)


class TestBackground:
    def test_time_span(self):
        db = generate_twitter(SMALL)
        assert db.end < 3 * MINUTES_PER_DAY

    def test_zipf_skew(self):
        db = generate_twitter(SMALL)
        counts = db.item_timestamps()
        assert len(counts["h0"]) > len(counts.get("h49", ()))

    def test_background_tags_always_on(self):
        db = generate_twitter(SMALL)
        # The hottest hashtag appears on every one of the 3 days.
        days = {int(ts) // MINUTES_PER_DAY for ts in db.item_timestamps()["h0"]}
        assert days == {0, 1, 2}


class TestBursts:
    CONFIG = TwitterConfig(
        days=10,
        n_hashtags=50,
        bursts=(
            BurstSpec(("flood", "rescue"), ((1, 2), (6, 7)), mean_gap=4.0),
        ),
        seed=1,
    )

    def test_burst_tags_confined_to_windows(self):
        db = generate_twitter(self.CONFIG)
        for ts in db.item_timestamps()["flood"]:
            day = int(ts) // MINUTES_PER_DAY
            assert day in (1, 2, 6, 7)

    def test_burst_pair_is_recurring_with_two_intervals(self):
        db = generate_twitter(self.CONFIG)
        found = mine_recurring_patterns(
            db, per=360, min_ps=50, min_rec=2, engine="rp-eclat"
        )
        burst = found.get(["flood", "rescue"])
        assert burst is not None
        assert burst.recurrence == 2
        (first, second) = burst.intervals
        assert first.start >= 1 * MINUTES_PER_DAY
        assert first.end < 3 * MINUTES_PER_DAY
        assert second.start >= 6 * MINUTES_PER_DAY

    def test_bursts_truncated_by_short_streams(self):
        config = TwitterConfig(
            days=2,
            n_hashtags=50,
            bursts=(BurstSpec(("late",), ((5, 6),)),),
            seed=1,
        )
        db = generate_twitter(config)
        assert "late" not in db.items()

    def test_default_bursts_present_at_paper_scale_days(self):
        db = generate_twitter(TwitterConfig(days=75, n_hashtags=100, seed=0))
        for tag in ("yyc", "uttarakhand", "nuclear", "hibaku"):
            assert tag in db.items()


class TestValidation:
    def test_rejects_empty_burst(self):
        with pytest.raises(ParameterError):
            BurstSpec((), ((0, 1),))

    def test_rejects_inverted_window(self):
        with pytest.raises(ParameterError):
            BurstSpec(("a",), ((3, 1),))

    def test_rejects_bad_gap(self):
        with pytest.raises(ParameterError):
            BurstSpec(("a",), ((0, 1),), mean_gap=0)

    def test_rejects_bad_days(self):
        with pytest.raises(ParameterError):
            TwitterConfig(days=0)
