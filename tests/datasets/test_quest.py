"""Unit tests for the IBM Quest-style generator."""

import statistics

import pytest

from repro.datasets.quest import QuestConfig, generate_quest
from repro.exceptions import ParameterError


SMALL = QuestConfig(n_transactions=500, n_items=100, n_patterns=40, seed=11)


class TestDeterminism:
    def test_same_seed_same_database(self):
        assert generate_quest(SMALL) == generate_quest(SMALL)

    def test_different_seed_different_database(self):
        other = QuestConfig(
            n_transactions=500, n_items=100, n_patterns=40, seed=12
        )
        assert generate_quest(SMALL) != generate_quest(other)


class TestShape:
    def test_transaction_count(self):
        db = generate_quest(SMALL)
        # Empty baskets are dropped, but they are rare.
        assert 450 <= len(db) <= 500

    def test_item_universe_respected(self):
        db = generate_quest(SMALL)
        for item in db.items():
            assert item.startswith("i")
            assert 0 <= int(item[1:]) < 100

    def test_mean_basket_size_near_target(self):
        db = generate_quest(
            QuestConfig(
                n_transactions=800,
                n_items=200,
                avg_transaction_size=10.0,
                seed=3,
            )
        )
        mean_size = statistics.fmean(len(items) for _, items in db)
        assert 6.0 <= mean_size <= 14.0

    def test_sequential_timestamps_without_gaps(self):
        db = generate_quest(SMALL)
        timestamps = [ts for ts, _ in db]
        assert timestamps[0] >= 1
        assert timestamps[-1] <= 500

    def test_gap_probability_stretches_time(self):
        gapped = generate_quest(
            QuestConfig(
                n_transactions=500,
                n_items=100,
                gap_probability=0.5,
                seed=5,
            )
        )
        dense = generate_quest(
            QuestConfig(n_transactions=500, n_items=100, seed=5)
        )
        assert gapped.end > dense.end

    def test_skewed_item_popularity(self):
        db = generate_quest(SMALL)
        counts = sorted(
            (len(ts) for ts in db.item_timestamps().values()), reverse=True
        )
        # The potential-itemset weighting concentrates mass: the busiest
        # decile must beat the quietest by a wide margin.
        top = statistics.fmean(counts[: max(1, len(counts) // 10)])
        bottom = statistics.fmean(counts[-max(1, len(counts) // 10):])
        assert top > 4 * bottom


class TestValidation:
    def test_rejects_bad_counts(self):
        with pytest.raises(ParameterError):
            QuestConfig(n_transactions=0)
        with pytest.raises(ParameterError):
            QuestConfig(n_items=0)

    def test_rejects_bad_correlation(self):
        with pytest.raises(ParameterError):
            QuestConfig(correlation=1.5)

    def test_rejects_bad_gap_probability(self):
        with pytest.raises(ParameterError):
            QuestConfig(gap_probability=1.0)
