"""Recall tests: planted recurring patterns must be recovered exactly."""

import pytest

from repro import mine_recurring_patterns
from repro.core.intervals import recurrence
from repro.datasets.planted import PlantedBurst, generate_planted_workload
from repro.exceptions import ParameterError


class TestPlantedBurst:
    def test_timestamps(self):
        burst = PlantedBurst(("a",), start=10, step=3, count=4)
        assert burst.timestamps() == (10, 13, 16, 19)
        assert burst.end == 19

    def test_rejects_empty_items(self):
        with pytest.raises(ParameterError):
            PlantedBurst((), start=1, step=1, count=1)

    def test_rejects_bad_step(self):
        with pytest.raises(ParameterError):
            PlantedBurst(("a",), start=1, step=0, count=1)


class TestGroundTruthRecovery:
    @pytest.mark.parametrize("engine", ["rp-growth", "rp-eclat"])
    def test_exact_recovery(self, engine):
        workload = generate_planted_workload(seed=7)
        found = mine_recurring_patterns(
            workload.database,
            per=workload.per,
            min_ps=workload.min_ps,
            min_rec=workload.min_rec,
            engine=engine,
        )
        expected_by_items = {p.items: p for p in workload.expected}
        # Every planted pattern (and subset) is found with exact
        # support, recurrence and interval boundaries.
        for items, expected in expected_by_items.items():
            got = found.get(items)
            assert got is not None, items
            assert got.support == expected.support
            assert got.intervals == expected.intervals
        # And nothing else is found: noise cannot recur by construction.
        assert found.itemsets() == set(expected_by_items)

    def test_noise_items_never_recur(self):
        workload = generate_planted_workload(
            noise_items=20, noise_rate=0.6, seed=3
        )
        db = workload.database
        for item, timestamps in db.item_timestamps().items():
            if item.startswith("n"):
                assert recurrence(
                    timestamps, workload.per, workload.min_ps
                ) == 0

    def test_parameter_scaling(self):
        workload = generate_planted_workload(
            per=10, min_ps=6, min_rec=3, n_patterns=2, pattern_size=3, seed=5
        )
        found = mine_recurring_patterns(
            workload.database,
            per=workload.per,
            min_ps=workload.min_ps,
            min_rec=workload.min_rec,
        )
        # 2 planted patterns of size 3 -> 7 non-empty subsets each.
        assert len(found) == 14

    def test_expected_metadata_is_internally_consistent(self):
        workload = generate_planted_workload(seed=0)
        for pattern in workload.expected:
            assert pattern.recurrence == workload.min_rec
            for interval in pattern.intervals:
                assert interval.periodic_support >= workload.min_ps
