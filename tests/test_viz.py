"""Unit tests for the terminal visualisations."""

import pytest

from repro import mine_recurring_patterns
from repro.core.model import PeriodicInterval, RecurringPattern
from repro.exceptions import ParameterError
from repro.viz import render_interval_ruler, render_sparkline, render_timeline


def make_pattern(items, intervals):
    return RecurringPattern(
        items=frozenset(items),
        support=sum(ps for _, _, ps in intervals),
        intervals=tuple(
            PeriodicInterval(start, end, ps) for start, end, ps in intervals
        ),
    )


class TestTimeline:
    def test_intervals_fill_expected_cells(self):
        pattern = make_pattern("x", [(0, 4, 5)])
        text = render_timeline([pattern], 0, 9, width=10)
        row = text.splitlines()[0]
        assert row == "x |█████·····|"

    def test_multiple_rows_aligned(self):
        patterns = [
            make_pattern("a", [(0, 1, 2)]),
            make_pattern("bc", [(8, 9, 2)]),
        ]
        lines = render_timeline(patterns, 0, 9, width=10).splitlines()
        bars = [line.index("|") for line in lines[:2]]
        assert bars[0] == bars[1]

    def test_point_interval_is_visible(self):
        pattern = make_pattern("x", [(5, 5, 1)])
        text = render_timeline([pattern], 0, 10, width=11)
        assert "█" in text

    def test_out_of_range_intervals_clamped(self):
        pattern = make_pattern("x", [(0, 100, 3)])
        text = render_timeline([pattern], 10, 20, width=10)
        row = text.splitlines()[0]
        assert row.count("█") == 10

    def test_ruler_always_appended(self):
        pattern = make_pattern("x", [(0, 1, 2)])
        assert "0^" in render_timeline([pattern], 0, 9, width=10)

    def test_empty_patterns_render_ruler_only(self):
        assert render_timeline([], 0, 9, width=10) == (
            render_interval_ruler(0, 9, 10)
        )

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            render_timeline([], 10, 0)

    def test_rejects_tiny_width(self):
        with pytest.raises(ParameterError):
            render_timeline([], 0, 10, width=1)

    def test_running_example_rows(self, running_example):
        found = mine_recurring_patterns(
            running_example, per=2, min_ps=3, min_rec=2
        )
        text = render_timeline(found, 1, 14, width=28)
        assert len(text.splitlines()) == 9  # 8 patterns + ruler


class TestSparkline:
    def test_ascending(self):
        assert render_sparkline(range(8)) == "▁▂▃▄▅▆▇█"

    def test_constant(self):
        assert render_sparkline([3, 3]) == "▁▁"

    def test_empty(self):
        assert render_sparkline([]) == ""

    def test_length_matches_input(self):
        assert len(render_sparkline([5, 1, 9, 2, 2])) == 5

    def test_extremes_hit_extreme_glyphs(self):
        line = render_sparkline([0, 100, 50])
        assert line[0] == "▁"
        assert line[1] == "█"


class TestRuler:
    def test_endpoints_labelled(self):
        ruler = render_interval_ruler(5, 95, width=20)
        assert ruler.startswith("5^")
        assert ruler.endswith("^95")

    def test_width_respected(self):
        assert len(render_interval_ruler(0, 9, width=30)) == 32
