"""Monitor-level tests: same-timestamp merging and exact serialization.

The merge tests are the regression suite for the bug where a repeated
timestamp raised instead of merging (the batch ``TransactionalDatabase``
constructor has always merged same-timestamp rows, so the streamed
state silently diverged from batch on split inputs).
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.streaming import StreamingRecurrenceMonitor
from repro.exceptions import DataFormatError
from repro.streaming import decode_item, encode_item, item_sort_key
from repro.timeseries.database import TransactionalDatabase
from tests.conftest import mining_parameters, small_databases

RELAXED = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestSameTimestampMerge:
    def test_repeated_timestamp_merges_instead_of_raising(self):
        monitor = StreamingRecurrenceMonitor(per=1, min_ps=1)
        monitor.observe(5, "ab")
        monitor.observe(5, "bc")  # regression: used to raise ValueError
        # A transaction is a set: one occurrence each, not two for "b".
        assert monitor.support("a") == 1
        assert monitor.support("b") == 1
        assert monitor.support("c") == 1

    def test_decreasing_timestamp_still_raises(self):
        monitor = StreamingRecurrenceMonitor(per=1, min_ps=1)
        monitor.observe(5, "a")
        with pytest.raises(ValueError, match="non-decreasing"):
            monitor.observe(4, "b")

    def test_merge_completes_a_watched_composite_exactly_once(self):
        monitor = StreamingRecurrenceMonitor(per=2, min_ps=1)
        monitor.watch_pattern("ab", label="A+B")
        monitor.observe(1, "a")
        monitor.observe(1, "b")  # merge completes the composite
        monitor.observe(1, "ab")  # already counted at ts=1: no double
        assert monitor.support("A+B") == 1
        monitor.observe(2, "ab")
        assert monitor.support("A+B") == 2

    def test_split_rows_stream_to_the_batch_state(self, running_example):
        # Feed every transaction as one-item rows sharing a timestamp;
        # the monitor must land in the same state as a whole-row feed.
        split = StreamingRecurrenceMonitor(per=2, min_ps=3, min_rec=2)
        whole = StreamingRecurrenceMonitor(per=2, min_ps=3, min_rec=2)
        for label in ("A+B",):
            split.watch_pattern("ab", label=label)
            whole.watch_pattern("ab", label=label)
        whole.observe_database(running_example)
        for ts, itemset in running_example:
            for item in sorted(itemset):
                split.observe(ts, [item])
        assert split.state_dict() == whole.state_dict()

    @RELAXED
    @given(db=small_databases(), params=mining_parameters())
    def test_split_feed_equals_whole_feed_on_random_streams(
        self, db, params
    ):
        per, min_ps, min_rec = params
        split = StreamingRecurrenceMonitor(per, min_ps, min_rec)
        whole = StreamingRecurrenceMonitor(per, min_ps, min_rec)
        whole.observe_database(db)
        for ts, itemset in db:
            for item in sorted(itemset):
                split.observe(ts, [item])
        assert split.state_dict() == whole.state_dict()


class TestItemCodec:
    def test_scalars_pass_through(self):
        for item in ("a", 3, 2.5, True):
            assert decode_item(encode_item(item)) == item

    def test_composite_labels_round_trip(self):
        label = frozenset(["b", "a"])
        assert decode_item(encode_item(label)) == label
        nested = ("pair", frozenset(["x", "y"]))
        assert decode_item(encode_item(nested)) == nested

    def test_unsupported_type_is_an_error_not_a_lossy_fallback(self):
        with pytest.raises(DataFormatError, match="cannot serialize"):
            encode_item(object())

    def test_unrecognised_encoding_rejected(self):
        with pytest.raises(DataFormatError):
            decode_item({"set": ["a"]})

    def test_sort_key_is_deterministic_for_frozensets(self):
        a = frozenset(["a", "b", "c"])
        b = frozenset(["c", "b", "a"])
        assert item_sort_key(a) == item_sort_key(b)


class TestStateDict:
    def _example_monitor(self):
        monitor = StreamingRecurrenceMonitor(per=2, min_ps=2, min_rec=1)
        monitor.watch_pattern("ab", label=frozenset("ab"))
        for ts, items in [(1, "ab"), (2, "a"), (3, "ab"), (7, "b")]:
            monitor.observe(ts, items)
        return monitor

    def test_round_trip_is_bit_identical(self):
        monitor = self._example_monitor()
        clone = StreamingRecurrenceMonitor.from_state(monitor.state_dict())
        assert clone.state_dict() == monitor.state_dict()

    def test_round_trip_preserves_the_merge_buffer(self):
        monitor = self._example_monitor()
        clone = StreamingRecurrenceMonitor.from_state(monitor.state_dict())
        # Observing the checkpointed timestamp again must merge, not
        # re-count: the buffer of items seen at last_ts survived.
        monitor.observe(7, "b")
        clone.observe(7, "b")
        assert clone.support("b") == monitor.support("b")
        assert clone.state_dict() == monitor.state_dict()

    def test_resumed_monitor_tracks_the_original_forever(self):
        monitor = self._example_monitor()
        clone = StreamingRecurrenceMonitor.from_state(monitor.state_dict())
        for ts, items in [(8, "ab"), (9, "a"), (15, "ab")]:
            monitor.observe(ts, items)
            clone.observe(ts, items)
        assert clone.state_dict() == monitor.state_dict()

    def test_threshold_mismatch_rejected(self):
        state = self._example_monitor().state_dict()
        other = StreamingRecurrenceMonitor(per=9, min_ps=2, min_rec=1)
        with pytest.raises(DataFormatError, match="per"):
            other.load_state(state)

    def test_wrong_kind_rejected(self):
        with pytest.raises(DataFormatError, match="kind"):
            StreamingRecurrenceMonitor.from_state({"kind": "nope"})

    def test_state_dict_is_json_stable_across_insertion_order(self):
        import json

        forward = StreamingRecurrenceMonitor(per=2, min_ps=1)
        backward = StreamingRecurrenceMonitor(per=2, min_ps=1)
        forward.observe(1, ["a", "b", "c"])
        backward.observe(1, ["c", "b", "a"])
        assert json.dumps(forward.state_dict()) == json.dumps(
            backward.state_dict()
        )

    def test_compat_import_path_still_works(self):
        from repro.core.streaming import (  # noqa: F401
            ItemState,
            StreamingRecurrenceMonitor as Legacy,
        )

        assert Legacy is StreamingRecurrenceMonitor
