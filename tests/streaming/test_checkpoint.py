"""Checkpoint/restore: byte identity, resharding, validation, goldens.

The central guarantee — also enforced as the ``stream-checkpoint-
resume`` QA relation — is that ``checkpoint → restore → resume`` is
indistinguishable from never stopping: the restored registry holds the
identical state (same active set, same LRU order, same monitor
internals) and re-checkpoints to the *identical bytes*.

The committed golden checkpoint under ``tests/qa/golden/`` pins the
``repro-stream/v1`` byte format itself: refresh it with
``pytest tests/streaming --update-golden`` after an intentional format
change (and say so in the changelog — old checkpoints stop resuming).
"""

import io
import json
import os

import pytest

from repro.datasets import paper_running_example
from repro.exceptions import DataFormatError
from repro.obs.report import validate_stream_record
from repro.streaming import (
    CalendarPeriod,
    ShardedMonitorRegistry,
    read_checkpoint,
    shard_of,
)

GOLDEN_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "qa", "golden", "stream-checkpoint.jsonl",
)


def _example_registry(shards=4, max_active=2):
    """A deterministic multi-tenant registry over the running example."""
    registry = ShardedMonitorRegistry(
        per=2, min_ps=3, min_rec=2, shards=shards, max_active=max_active
    )
    registry.watch_pattern("ab", label=frozenset("ab"))
    for n, (ts, itemset) in enumerate(paper_running_example()):
        registry.observe(f"tenant-{n % 3}", ts, itemset)
    return registry


def _checkpoint_bytes(registry):
    buffer = io.StringIO()
    written = registry.checkpoint(buffer)
    return buffer.getvalue(), written


class TestByteIdentity:
    def test_reported_bytes_match_actual_output(self):
        text, written = _checkpoint_bytes(_example_registry())
        assert written == len(text.encode("utf-8"))

    def test_checkpoint_is_deterministic(self):
        first, _ = _checkpoint_bytes(_example_registry())
        second, _ = _checkpoint_bytes(_example_registry())
        assert first == second

    def test_restore_then_checkpoint_is_byte_identical(self):
        original, _ = _checkpoint_bytes(_example_registry())
        restored = ShardedMonitorRegistry.restore(io.StringIO(original))
        again, _ = _checkpoint_bytes(restored)
        assert again == original

    def test_resume_equals_uninterrupted(self):
        rows = list(paper_running_example())
        cut = len(rows) // 2
        full = ShardedMonitorRegistry(per=2, min_ps=3, max_active=2)
        half = ShardedMonitorRegistry(per=2, min_ps=3, max_active=2)
        for n, (ts, itemset) in enumerate(rows):
            full.observe(f"tenant-{n % 3}", ts, itemset)
            if n < cut:
                half.observe(f"tenant-{n % 3}", ts, itemset)
        middle, _ = _checkpoint_bytes(half)
        resumed = ShardedMonitorRegistry.restore(io.StringIO(middle))
        for n, (ts, itemset) in enumerate(rows):
            if n >= cut:
                resumed.observe(f"tenant-{n % 3}", ts, itemset)
        assert _checkpoint_bytes(resumed)[0] == _checkpoint_bytes(full)[0]


class TestResharding:
    @pytest.mark.parametrize("new_shards", (1, 3, 16))
    def test_restore_at_a_different_shard_count(self, new_shards):
        registry = _example_registry(shards=4)
        text, _ = _checkpoint_bytes(registry)
        restored = ShardedMonitorRegistry.restore(
            io.StringIO(text), shards=new_shards
        )
        assert restored.shards == new_shards
        assert restored.streams() == registry.streams()
        for stream in registry.streams():
            assert restored.monitor(stream).state_dict() == \
                registry.monitor(stream).state_dict()

    def test_placement_is_stable_across_processes(self):
        # crc32 of the canonical encoding, not the salted builtin hash.
        assert shard_of("alice", 16) == 14
        assert shard_of(frozenset("ab"), 7) == shard_of(frozenset("ba"), 7)


class TestValidation:
    def test_record_validator_rejects_bogus_schema(self):
        with pytest.raises(ValueError, match="repro-stream/v1"):
            validate_stream_record({"schema": "bogus", "kind": "x"})

    def test_missing_header_rejected(self):
        text, _ = _checkpoint_bytes(_example_registry())
        body = "\n".join(
            line for line in text.splitlines()
            if '"stream-checkpoint"' not in line
        )
        with pytest.raises(DataFormatError, match="no stream-checkpoint"):
            read_checkpoint(io.StringIO(body))

    def test_duplicate_header_rejected(self):
        text, _ = _checkpoint_bytes(_example_registry())
        header = text.splitlines()[0]
        with pytest.raises(DataFormatError, match="more than one header"):
            read_checkpoint(io.StringIO(header + "\n" + text))

    def test_stream_count_mismatch_rejected(self):
        text, _ = _checkpoint_bytes(_example_registry())
        lines = text.splitlines()
        truncated = "\n".join(lines[:-1]) + "\n"
        with pytest.raises(DataFormatError, match="promises"):
            read_checkpoint(io.StringIO(truncated))

    def test_threshold_params_are_required(self):
        with pytest.raises(ValueError, match="min_ps"):
            validate_stream_record({
                "schema": "repro-stream/v1",
                "kind": "stream-checkpoint",
                "shards": 4,
                "params": {"per": 2},
                "streams": 0,
                "active": 0,
                "evicted": 0,
                "lru": [],
                "watched": [],
            })


class TestCalendarRegistry:
    def _registry(self):
        registry = ShardedMonitorRegistry(
            calendar=CalendarPeriod("hour-of-day"), min_ps=2, shards=2
        )
        for day in range(3):
            registry.observe("ops", day * 1440 + 9 * 60, ["login"])
            registry.observe("ops", day * 1440 + 14 * 60, ["scan"])
        return registry

    def test_round_trip_preserves_calendar_state(self):
        registry = self._registry()
        text, _ = _checkpoint_bytes(registry)
        header, _ = read_checkpoint(io.StringIO(text))
        assert header["params"]["calendar"] == "hour-of-day"
        restored = ShardedMonitorRegistry.restore(io.StringIO(text))
        assert restored.calendar.mode == "hour-of-day"
        monitor = restored.monitor("ops")
        assert monitor.recurring_items() == [(9, "login"), (14, "scan")]
        assert _checkpoint_bytes(restored)[0] == text


class TestGoldenCheckpoint:
    def test_committed_golden_matches_current_writer(self, request):
        text, _ = _checkpoint_bytes(_example_registry())
        if request.config.getoption("--update-golden"):
            with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
                handle.write(text)
            pytest.skip(f"snapshot refreshed: {GOLDEN_PATH}")
        with open(GOLDEN_PATH, encoding="utf-8") as handle:
            golden = handle.read()
        assert text == golden, (
            "repro-stream/v1 byte format drifted from the committed "
            "golden; if intentional, refresh with --update-golden"
        )

    def test_committed_golden_still_restores_and_resumes(self):
        restored = ShardedMonitorRegistry.restore(GOLDEN_PATH)
        assert restored.streams() == ["tenant-0", "tenant-1", "tenant-2"]
        # Old checkpoints must keep resuming under the current code.
        restored.observe("tenant-0", 100, ["a"])
        assert restored.monitor("tenant-0").support("a") > 0

    def test_golden_records_validate_individually(self):
        with open(GOLDEN_PATH, encoding="utf-8") as handle:
            for line in handle:
                validate_stream_record(json.loads(line))
