"""Eviction exactness: spilling a stream must be observationally invisible.

The registry's ``max_active`` cap spills the least-recently-observed
stream's monitor to a serialized state dict.  These tests pin the
"exact re-admission" contract: an evicted-then-readmitted stream is
*bit-identical* to one that was never evicted — open-run counters
(``current_ps``, ``run_start``), the same-timestamp merge buffer and
closed intervals included.
"""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.streaming import ShardedMonitorRegistry


def _interleaved(events_per_stream=6):
    """alice/bob/carol events interleaved, independent clocks."""
    events = []
    for n in range(events_per_stream):
        events.append(("alice", 1 + 2 * n, ["login", "mail"]))
        events.append(("bob", 10 * n, ["backup"]))
        events.append(("carol", 5 * n, ["scan"]))
    return events


def _feed(registry):
    for stream, ts, items in _interleaved():
        registry.observe(stream, ts, items)


class TestExactReadmission:
    def test_readmitted_state_is_bit_identical(self):
        capped = ShardedMonitorRegistry(per=2, min_ps=2, max_active=1)
        free = ShardedMonitorRegistry(per=2, min_ps=2)
        _feed(capped)
        _feed(free)
        assert capped.evicted_streams >= 2  # the cap really bit
        for stream in ("alice", "bob", "carol"):
            readmitted = capped.monitor(stream)
            untouched = free.monitor(stream)
            assert readmitted.state_dict() == untouched.state_dict()

    def test_open_run_counters_survive_the_spill(self):
        registry = ShardedMonitorRegistry(per=2, min_ps=3, max_active=1)
        registry.observe("alice", 1, ["a"])
        registry.observe("alice", 3, ["a"])  # open run: ps=2, start=1
        registry.observe("bob", 100, ["b"])  # evicts alice mid-run
        assert registry.evicted_streams == 1
        state = registry.monitor("alice").state("a")
        assert state.current_ps == 2
        assert state.run_start == 1
        assert state.last_ts == 3
        # The re-admitted run continues as if nothing happened.
        registry.observe("alice", 4, ["a"])
        assert registry.monitor("alice").recurrence(
            "a", include_open_run=True
        ) == 1

    def test_merge_buffer_survives_the_spill(self):
        registry = ShardedMonitorRegistry(per=2, min_ps=1, max_active=1)
        registry.observe("alice", 7, ["a"])
        registry.observe("bob", 1, ["b"])  # evicts alice at ts=7
        registry.observe("alice", 7, ["a"])  # same ts again: must merge
        assert registry.monitor("alice").support("a") == 1

    def test_interval_callback_rebinds_after_readmission(self):
        closed = []
        registry = ShardedMonitorRegistry(
            per=2,
            min_ps=2,
            max_active=1,
            on_interval=lambda stream, item, iv: closed.append(
                (stream, item, iv.start, iv.end)
            ),
        )
        registry.observe("alice", 1, ["a"])
        registry.observe("alice", 2, ["a"])
        registry.observe("bob", 50, ["b"])  # spill alice mid-open-run
        registry.observe("alice", 90, ["a"])  # break closes [1, 2]
        assert closed == [("alice", "a", 1, 2)]

    def test_watched_composites_apply_to_readmitted_streams(self):
        registry = ShardedMonitorRegistry(per=2, min_ps=1, max_active=1)
        registry.watch_pattern("ab", label="A+B")
        registry.observe("alice", 1, "ab")
        registry.observe("bob", 1, "ab")  # evicts alice
        registry.observe("alice", 2, "ab")
        assert registry.monitor("alice").support("A+B") == 2


class TestRegistryBookkeeping:
    def test_lru_picks_least_recently_observed(self):
        registry = ShardedMonitorRegistry(per=2, min_ps=1, max_active=2)
        registry.observe("alice", 1, ["a"])
        registry.observe("bob", 1, ["b"])
        registry.observe("alice", 2, ["a"])  # bob is now LRU
        registry.observe("carol", 1, ["c"])  # evicts bob, not alice
        assert registry.active_streams == 2
        assert registry.evicted_streams == 1
        spilled = [
            key
            for shard in registry._spilled
            for key in shard
        ]
        assert spilled == ["bob"]

    def test_unknown_stream_raises_keyerror(self):
        registry = ShardedMonitorRegistry(per=2, min_ps=1)
        with pytest.raises(KeyError, match="ghost"):
            registry.monitor("ghost")

    def test_streams_lists_active_and_spilled(self):
        registry = ShardedMonitorRegistry(per=2, min_ps=1, max_active=1)
        _feed(registry)
        assert registry.streams() == ["alice", "bob", "carol"]
        assert registry.active_streams == 1
        assert registry.evicted_streams == 2

    def test_metrics_counters_and_gauges(self):
        metrics = MetricsRegistry()
        registry = ShardedMonitorRegistry(
            per=2, min_ps=2, max_active=1, metrics=metrics
        )
        _feed(registry)
        names = {
            (sample["name"], sample["value"])
            for sample in metrics.snapshot()["counters"]
        }
        events = len(_interleaved())
        assert ("repro_stream_events_total", float(events)) in names
        by_name = dict(names)
        assert by_name["repro_stream_evictions_total"] > 0
        assert by_name["repro_stream_readmissions_total"] > 0
        gauges = {
            sample["name"]: sample["value"]
            for sample in metrics.snapshot()["gauges"]
        }
        assert gauges["repro_stream_active_streams"] == 1.0
        assert gauges["repro_stream_evicted_streams"] == 2.0
