"""Streamed ≡ batch, on every prefix, across shard counts.

The conformance property of the whole streaming subsystem: feeding any
transaction stream through a :class:`ShardedMonitorRegistry` — at any
shard count, with other tenants interleaved, even under eviction
pressure — yields, *after every prefix*, exactly the recurrence, Erec
and interesting intervals the batch interval code computes on that
prefix.  Shard counts {1, 4, 16} mirror the QA gate's matrix.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.intervals import (
    estimated_recurrence,
    interesting_intervals,
    recurrence,
)
from repro.streaming import ShardedMonitorRegistry
from tests.conftest import mining_parameters, small_databases

SHARD_COUNTS = (1, 4, 16)

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
THOROUGH = settings(
    max_examples=75,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _assert_prefix_equal(monitor, seen, per, min_ps):
    """The streamed state equals batch on the prefix fed so far."""
    for item, stamps in seen.items():
        assert monitor.erec(item) == estimated_recurrence(
            stamps, per, min_ps
        )
        assert monitor.recurrence(
            item, include_open_run=True
        ) == recurrence(stamps, per, min_ps)
        assert [
            (iv.start, iv.end, iv.periodic_support)
            for iv in monitor.intervals(item, include_open_run=True)
        ] == interesting_intervals(stamps, per, min_ps)


def _feed_and_check(db, per, min_ps, shards, max_active=None):
    registry = ShardedMonitorRegistry(
        per=per, min_ps=min_ps, shards=shards, max_active=max_active
    )
    seen = {}
    for index, (ts, itemset) in enumerate(db):
        registry.observe("tenant", ts, itemset)
        # Interleave other tenants (their clocks are independent); with
        # max_active set this keeps evicting and re-admitting "tenant".
        registry.observe(f"pad-{index % 3}", index, ["noise"])
        for item in itemset:
            seen.setdefault(item, []).append(ts)
        _assert_prefix_equal(registry.monitor("tenant"), seen, per, min_ps)
    return registry


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@RELAXED
@given(db=small_databases(max_transactions=12), params=mining_parameters())
def test_streamed_equals_batch_on_every_prefix(shards, db, params):
    per, min_ps, _ = params
    _feed_and_check(db, per, min_ps, shards)


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@RELAXED
@given(db=small_databases(max_transactions=12), params=mining_parameters())
def test_equality_survives_eviction_pressure(shards, db, params):
    # max_active=2 with three pad tenants: "tenant" is spilled and
    # re-admitted constantly, and must never notice.
    per, min_ps, _ = params
    registry = _feed_and_check(db, per, min_ps, shards, max_active=2)
    if len(db) >= 2:
        assert registry.evicted_streams > 0


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_running_example_tenants_are_independent(running_example, shards):
    # Ten tenants, each fed a time-shifted copy of the running example,
    # interleaved round-robin: every one must equal batch on the full
    # stream, regardless of which shard it hashed to.
    per, min_ps = 2, 3
    registry = ShardedMonitorRegistry(per=per, min_ps=min_ps, shards=shards)
    tenants = [f"tenant-{n}" for n in range(10)]
    rows = list(running_example)
    for ts, itemset in rows:
        for offset, tenant in enumerate(tenants):
            registry.observe(tenant, ts + offset, itemset)
    stamps = {}
    for ts, itemset in rows:
        for item in itemset:
            stamps.setdefault(item, []).append(ts)
    for offset, tenant in enumerate(tenants):
        monitor = registry.monitor(tenant)
        for item, base in stamps.items():
            shifted = [ts + offset for ts in base]
            assert monitor.erec(item) == estimated_recurrence(
                shifted, per, min_ps
            )
            assert [
                (iv.start, iv.end, iv.periodic_support)
                for iv in monitor.intervals(item, include_open_run=True)
            ] == interesting_intervals(shifted, per, min_ps)


@pytest.mark.slow
@pytest.mark.parametrize("shards", SHARD_COUNTS)
@THOROUGH
@given(db=small_databases(), params=mining_parameters())
def test_streamed_equals_batch_full_depth(shards, db, params):
    # Nightly lane: full-size databases, more examples, both with and
    # without eviction pressure.
    per, min_ps, _ = params
    _feed_and_check(db, per, min_ps, shards)
    _feed_and_check(db, per, min_ps, shards, max_active=2)
