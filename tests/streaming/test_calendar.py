"""Calendar-anchored recurrence: slot/tick math, batch ≡ streaming."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import ParameterError
from repro.streaming import (
    CALENDAR_MODES,
    CalendarPeriod,
    CalendarRecurrenceMonitor,
    mine_calendar_patterns,
)
from repro.timeseries.database import TransactionalDatabase

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

MINUTE_9AM = 9 * 60
DAY = 1440


class TestCalendarPeriod:
    def test_hour_of_day_slot_and_tick(self):
        cal = CalendarPeriod("hour-of-day")
        assert cal.slots == 24
        assert cal.slot(2 * DAY + MINUTE_9AM + 30) == 9
        assert cal.tick(2 * DAY + MINUTE_9AM + 30) == 2
        assert cal.label(9) == "09h"

    def test_day_of_week_slot_and_tick(self):
        cal = CalendarPeriod("day-of-week")
        assert cal.slots == 7
        assert cal.slot(9 * DAY) == 2  # day 9 = week 1, weekday 2
        assert cal.tick(9 * DAY) == 1
        assert cal.label(0) == "Mon"
        assert cal.label(6) == "Sun"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ParameterError, match="calendar mode"):
            CalendarPeriod("phase-of-moon")

    def test_label_range_checked(self):
        with pytest.raises(ParameterError, match="slot"):
            CalendarPeriod("day-of-week").label(7)

    def test_project_groups_same_slot_same_tick(self):
        cal = CalendarPeriod("hour-of-day")
        db = TransactionalDatabase([
            (MINUTE_9AM, ["a"]),
            (MINUTE_9AM + 10, ["b"]),  # same 9am hour, same day: merge
            (DAY + MINUTE_9AM, ["a"]),
            (14 * 60, ["c"]),
        ])
        by_slot = cal.project(db)
        assert sorted(by_slot) == [9, 14]
        assert [
            (ts, tuple(sorted(items))) for ts, items in by_slot[9]
        ] == [(0, ("a", "b")), (1, ("a",))]


class TestBatchStreamingAgreement:
    def _database(self, mode):
        # "login" every morning for 4 days, "scan" Mondays only, noise
        # in other slots.
        rows = []
        for day in range(4):
            rows.append((day * DAY + MINUTE_9AM, ["login"]))
            rows.append((day * DAY + 11 * 60, ["noise"]))
        for week in range(3):
            rows.append((week * 7 * DAY + 10 * 60, ["scan"]))
        return TransactionalDatabase(rows)

    @pytest.mark.parametrize("mode", CALENDAR_MODES)
    def test_streamed_slots_match_mined_slots(self, mode):
        cal = CalendarPeriod(mode)
        db = self._database(mode)
        mined = mine_calendar_patterns(db, cal, min_ps=3, min_rec=1)
        monitor = CalendarRecurrenceMonitor(cal, min_ps=3, min_rec=1)
        monitor.observe_database(db)
        streamed = {}
        for slot, item in monitor.recurring_items():
            streamed.setdefault(slot, set()).add(frozenset([item]))
        assert streamed == {
            slot: {p.items for p in patterns}
            for slot, patterns in mined.items()
        }

    @RELAXED
    @given(
        days=st.lists(
            st.integers(min_value=0, max_value=20),
            min_size=0, max_size=15, unique=True,
        ),
        minute=st.integers(min_value=0, max_value=1439),
        min_ps=st.integers(min_value=1, max_value=4),
    )
    def test_random_single_item_agreement(self, days, minute, min_ps):
        # One item dropped into the same minute-of-day on random days:
        # streaming recurrence per slot equals batch mining per slot.
        cal = CalendarPeriod("hour-of-day")
        rows = [(day * DAY + minute, ["x"]) for day in sorted(days)]
        db = TransactionalDatabase(rows)
        mined = mine_calendar_patterns(db, cal, min_ps=min_ps)
        monitor = CalendarRecurrenceMonitor(cal, min_ps=min_ps)
        monitor.observe_database(db)
        slot = minute // 60
        streamed_recurring = monitor.is_recurring("x", slot)
        assert streamed_recurring == (slot in mined)
        if rows:
            assert monitor.support("x", slot) == len(days)

    def test_same_tick_events_merge_like_the_projection(self):
        cal = CalendarPeriod("hour-of-day")
        monitor = CalendarRecurrenceMonitor(cal, min_ps=2)
        monitor.observe(MINUTE_9AM, ["login"])
        monitor.observe(MINUTE_9AM + 30, ["login"])  # same day, same hour
        assert monitor.support("login", 9) == 1

    def test_watch_pattern_reaches_existing_and_future_slots(self):
        cal = CalendarPeriod("hour-of-day")
        monitor = CalendarRecurrenceMonitor(cal, min_ps=1)
        monitor.observe(MINUTE_9AM, "ab")
        monitor.watch_pattern("ab", label="A+B")
        monitor.observe(DAY + MINUTE_9AM, "ab")  # existing slot 9
        monitor.observe(DAY + 14 * 60, "ab")  # brand-new slot 14
        assert monitor.support("A+B", 9) == 1  # registered after day 0
        assert monitor.support("A+B", 14) == 1

    def test_state_round_trip_is_bit_identical(self):
        cal = CalendarPeriod("day-of-week")
        monitor = CalendarRecurrenceMonitor(cal, min_ps=2)
        monitor.watch_pattern("ab", label="A+B")
        for week in range(3):
            monitor.observe(week * 7 * DAY, "ab")
        clone = CalendarRecurrenceMonitor.from_state(monitor.state_dict())
        assert clone.state_dict() == monitor.state_dict()
        monitor.observe(3 * 7 * DAY, "ab")
        clone.observe(3 * 7 * DAY, "ab")
        assert clone.state_dict() == monitor.state_dict()

    def test_interval_callback_carries_the_slot(self):
        closed = []
        cal = CalendarPeriod("hour-of-day")
        monitor = CalendarRecurrenceMonitor(
            cal,
            min_ps=2,
            on_interval=lambda slot, item, iv: closed.append(
                (slot, item, iv.start, iv.end)
            ),
        )
        for day in range(2):
            monitor.observe(day * DAY + MINUTE_9AM, ["login"])
        monitor.observe(10 * DAY + MINUTE_9AM, ["login"])  # gap: closes
        assert closed == [(9, "login", 0, 1)]
