"""End-to-end tests for the ``repro-mine stream`` subcommand."""

import json

import pytest

from repro.cli import main
from repro.datasets import paper_running_example
from repro.timeseries.io import save_transactional_database


@pytest.fixture
def example_file(tmp_path):
    path = tmp_path / "example.tsv"
    save_transactional_database(paper_running_example(), path)
    return str(path)


@pytest.fixture
def events_jsonl(tmp_path):
    path = tmp_path / "events.jsonl"
    rows = [
        {"stream": "alice", "ts": 1, "items": ["login"]},
        {"stream": "bob", "ts": 10, "items": ["backup"]},
        {"stream": "alice", "ts": 3, "items": ["login"]},
        {"stream": "alice", "ts": 4, "items": ["login", "mail"]},
        {"stream": "bob", "ts": 12, "items": ["backup"]},
    ]
    path.write_text("\n".join(json.dumps(row) for row in rows))
    return str(path)


class TestFeeding:
    def test_database_file_single_stream(self, example_file, capsys):
        code = main([
            "stream", "--input", example_file,
            "--per", "2", "--min-ps", "3", "--min-rec", "2",
            "--stream", "tenant-1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "fed 12 event(s) into 1 stream(s)" in out
        # Table 2's recurring single items, streamed.
        assert "tenant-1: 5 recurring: a, b, d, e, f" in out

    def test_jsonl_multi_tenant(self, events_jsonl, capsys):
        code = main([
            "stream", "--input", events_jsonl, "--format", "jsonl",
            "--per", "2", "--min-ps", "2", "--shards", "4",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 stream(s) across 4 shard(s)" in out
        assert "alice" in out and "login" in out
        assert "bob" in out and "backup" in out

    def test_calendar_mode(self, tmp_path, capsys):
        path = tmp_path / "mornings.jsonl"
        path.write_text("\n".join(
            json.dumps({"stream": "ops", "ts": day * 1440 + 9 * 60,
                        "items": ["login"]})
            for day in range(3)
        ))
        code = main([
            "stream", "--input", str(path), "--format", "jsonl",
            "--calendar", "hour-of-day", "--min-ps", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "09h:login" in out


class TestCheckpointFlow:
    def test_checkpoint_then_restore_resumes(
        self, events_jsonl, tmp_path, capsys
    ):
        checkpoint = str(tmp_path / "ck.jsonl")
        assert main([
            "stream", "--input", events_jsonl, "--format", "jsonl",
            "--per", "2", "--min-ps", "2",
            "--checkpoint", checkpoint,
        ]) == 0
        capsys.readouterr()
        more = tmp_path / "more.jsonl"
        more.write_text(json.dumps(
            {"stream": "alice", "ts": 5, "items": ["login"]}
        ))
        code = main([
            "stream", "--restore", checkpoint,
            "--input", str(more), "--format", "jsonl",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "restored 2 stream(s)" in captured.err
        assert "fed 1 event(s) into 2 stream(s)" in captured.out

    def test_metrics_out_writes_a_snapshot(
        self, events_jsonl, tmp_path, capsys
    ):
        metrics_path = tmp_path / "metrics.jsonl"
        assert main([
            "stream", "--input", events_jsonl, "--format", "jsonl",
            "--per", "2", "--min-ps", "2",
            "--metrics-out", str(metrics_path),
        ]) == 0
        record = json.loads(metrics_path.read_text().splitlines()[0])
        assert record["schema"] == "repro-metrics/v1"
        names = {sample["name"] for sample in record["counters"]}
        assert "repro_stream_events_total" in names


class TestErrorPaths:
    def test_missing_thresholds(self, capsys):
        assert main(["stream"]) == 1
        assert "--min-ps is required" in capsys.readouterr().err

    def test_per_and_calendar_are_exclusive(self, capsys):
        assert main([
            "stream", "--min-ps", "2", "--per", "2",
            "--calendar", "hour-of-day",
        ]) == 1
        assert "exactly one of" in capsys.readouterr().err

    def test_restore_rejects_thresholds(self, tmp_path, capsys):
        assert main([
            "stream", "--restore", str(tmp_path / "nope"), "--per", "2",
        ]) == 1
        assert "carries its own thresholds" in capsys.readouterr().err

    def test_stdin_requires_jsonl(self, capsys):
        assert main([
            "stream", "--input", "-", "--per", "2", "--min-ps", "2",
        ]) == 1
        assert "requires --format jsonl" in capsys.readouterr().err

    def test_bad_jsonl_line_reports_line_number(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"stream": "a", "ts": 1, "items": ["x"]}\n{oops\n')
        assert main([
            "stream", "--input", str(path), "--format", "jsonl",
            "--per", "2", "--min-ps", "2",
        ]) == 1
        assert "line 2" in capsys.readouterr().err

    def test_timestamp_decrease_is_a_clean_error(self, tmp_path, capsys):
        path = tmp_path / "back.jsonl"
        path.write_text("\n".join([
            json.dumps({"stream": "a", "ts": 5, "items": ["x"]}),
            json.dumps({"stream": "a", "ts": 4, "items": ["x"]}),
        ]))
        assert main([
            "stream", "--input", str(path), "--format", "jsonl",
            "--per", "2", "--min-ps", "2",
        ]) == 1
        assert "non-decreasing" in capsys.readouterr().err
