"""Documentation-coverage guard: every public item carries a docstring.

"Doc comments on every public item" is a deliverable; this meta-test
enforces it structurally so a future addition cannot silently regress
it.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _all_modules():
    names = ["repro"]
    for module_info in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    ):
        names.append(module_info.name)
    return sorted(names)


def _public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (
            inspect.isclass(member) or inspect.isfunction(member)
        ):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their home module
        yield name, member


@pytest.mark.parametrize("module_name", _all_modules())
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", _all_modules())
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, member in _public_members(module):
        if not (member.__doc__ and member.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(member):
            for method_name, method in vars(member).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                if not (method.__doc__ and method.__doc__.strip()):
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, (
        f"undocumented public items in {module_name}: {undocumented}"
    )
