"""Integration tests: the full pipeline on realistic synthetic data."""

import io

import pytest

from repro import (
    EventSequence,
    RPEclat,
    RPGrowth,
    TransactionalDatabase,
    mine_recurring_patterns,
)
from repro.datasets import (
    generate_clickstream,
    generate_planted_workload,
    generate_twitter,
)
from repro.datasets.clickstream import MINUTES_PER_DAY, ClickstreamConfig
from repro.datasets.twitter import BurstSpec, TwitterConfig
from repro.timeseries.io import (
    load_transactional_database,
    save_transactional_database,
)
from repro.timeseries.transform import discretize_timestamps, events_to_database


class TestRawSeriesToPatterns:
    def test_discretize_group_mine(self):
        # Sub-minute sensor readings -> minute transactions -> patterns.
        events = []
        for burst_start in (0.0, 5000.0):
            ts = burst_start
            for _ in range(30):
                events.append(("alarm_a", ts + 0.2))
                events.append(("alarm_b", ts + 0.4))
                ts += 60.0
        raw = EventSequence(events)
        database = events_to_database(
            discretize_timestamps(raw, bucket=60.0, label="index")
        )
        found = mine_recurring_patterns(database, per=2, min_ps=20, min_rec=2)
        pattern = found.pattern(["alarm_a", "alarm_b"])
        assert pattern.recurrence == 2
        assert pattern.support == 60

    def test_file_round_trip_preserves_mining_result(self, tmp_path):
        workload = generate_planted_workload(seed=21)
        direct = mine_recurring_patterns(
            workload.database, workload.per, workload.min_ps, workload.min_rec
        )
        path = tmp_path / "db.tsv"
        save_transactional_database(workload.database, path)
        reloaded = load_transactional_database(path)
        via_file = mine_recurring_patterns(
            reloaded, workload.per, workload.min_ps, workload.min_rec
        )
        assert direct == via_file


class TestRealisticWorkloads:
    def test_clickstream_end_to_end(self):
        db = generate_clickstream(
            ClickstreamConfig(
                days=10,
                promo_windows=((120, ((1, 3), (6, 8))),),
                seed=3,
            )
        )
        found = mine_recurring_patterns(
            db, per=MINUTES_PER_DAY, min_ps=40, min_rec=2, engine="rp-eclat"
        )
        promo = found.get(["c120", "c121"])
        assert promo is not None
        assert promo.recurrence == 2
        days = [
            (int(iv.start) // MINUTES_PER_DAY, int(iv.end) // MINUTES_PER_DAY)
            for iv in promo.intervals
        ]
        assert days == [(1, 3), (6, 8)]

    def test_twitter_rare_item_tolerance(self):
        # The paper's "rare item problem" claim (Sections 2 and 5.2): a
        # threshold low enough to capture a rare bursty tag makes
        # p-pattern mining flood the output, while the recurring model
        # keeps the result compact because it demands *consecutive*
        # periodic appearances.
        from repro.baselines import mine_p_patterns

        db = generate_twitter(
            TwitterConfig(
                days=8,
                n_hashtags=80,
                bursts=(BurstSpec(("rare_event",), ((2, 3),), mean_gap=5.0),),
                seed=17,
            )
        )
        recurring = mine_recurring_patterns(
            db, per=60, min_ps=100, min_rec=1, engine="rp-eclat"
        )
        assert ["rare_event"] in recurring
        p_patterns = mine_p_patterns(db, per=60, min_sup=100)
        assert ["rare_event"] in p_patterns
        assert len(recurring) < len(p_patterns)

    def test_engines_agree_on_realistic_data(self):
        db = generate_twitter(TwitterConfig(days=6, n_hashtags=60, seed=5))
        growth = RPGrowth(per=360, min_ps=30, min_rec=1).mine(db)
        eclat = RPEclat(per=360, min_ps=30, min_rec=1).mine(db)
        assert growth == eclat


class TestLargeValueRobustness:
    def test_huge_timestamps(self):
        base = 1_700_000_000  # epoch-seconds scale
        db = TransactionalDatabase(
            [(base + offset, "xy") for offset in range(0, 600, 60)]
        )
        found = mine_recurring_patterns(db, per=60, min_ps=5, min_rec=1)
        assert found.pattern("xy").support == 10

    def test_negative_timestamps(self):
        db = TransactionalDatabase(
            [(ts, "a") for ts in range(-10, 0)]
        )
        found = mine_recurring_patterns(db, per=1, min_ps=10, min_rec=1)
        assert found.pattern("a").intervals[0].start == -10
