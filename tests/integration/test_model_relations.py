"""Cross-model containment relations (the theory behind Table 8).

These are the formal relationships between the three pattern families
the paper compares; they explain *why* the counts in Table 8 are
ordered the way they are.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import mine_recurring_patterns
from repro.baselines import (
    mine_p_patterns,
    mine_periodic_frequent_patterns,
)
from tests.conftest import small_databases

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestContainments:
    @RELAXED
    @given(
        db=small_databases(),
        per=st.integers(1, 8),
        min_sup=st.integers(2, 5),
    )
    def test_periodic_frequent_subset_of_recurring(self, db, per, min_sup):
        """PF(minSup, maxPer) ⊆ RP(per=maxPer, minPS=minSup, minRec=1).

        A periodic-frequent pattern cycles through the whole database,
        so all its occurrences sit in one periodic-interval whose
        periodic-support equals its support.
        """
        pf = mine_periodic_frequent_patterns(db, min_sup, per)
        recurring = mine_recurring_patterns(db, per, min_sup, 1)
        assert pf.itemsets() <= recurring.itemsets()

    @RELAXED
    @given(
        db=small_databases(),
        per=st.integers(1, 8),
        min_ps=st.integers(2, 5),
        min_rec=st.integers(1, 3),
    )
    def test_recurring_subset_of_p_patterns(self, db, per, min_ps, min_rec):
        """RP(per, minPS, minRec) ⊆ PP(per, minSup=minRec*(minPS-1)).

        Each interesting periodic-interval with ps occurrences
        contributes ps-1 >= minPS-1 periodic inter-arrival times, and a
        recurring pattern has at least minRec of them.
        """
        recurring = mine_recurring_patterns(db, per, min_ps, min_rec)
        min_sup = min_rec * (min_ps - 1)
        if min_sup < 1:
            return
        p_patterns = mine_p_patterns(db, per, min_sup)
        assert recurring.itemsets() <= p_patterns.itemsets()

    @RELAXED
    @given(db=small_databases(), per=st.integers(1, 8))
    def test_p_patterns_ignore_localisation(self, db, per):
        """Every p-pattern count equals the recurring model's total
        periodic appearances: sum over ALL periodic-intervals of
        (ps - 1)."""
        from repro.core.intervals import periodic_intervals

        for pattern in mine_p_patterns(db, per, 1):
            ts = db.timestamps_of(pattern.items)
            total = sum(
                ps - 1 for _, _, ps in periodic_intervals(ts, per)
            )
            assert pattern.periodic_support == total


class TestRareItemTolerance:
    @RELAXED
    @given(db=small_databases(), per=st.integers(1, 5))
    def test_recurring_never_reports_scattered_patterns(self, db, per):
        """With minPS >= 3 every reported pattern has a dense stretch —
        three consecutive occurrences each within per — which a plain
        support threshold cannot guarantee."""
        found = mine_recurring_patterns(db, per, min_ps=3, min_rec=1)
        for pattern in found:
            ts = db.timestamps_of(pattern.items)
            has_dense_stretch = any(
                later2 - later1 <= per and later1 - earlier <= per
                for earlier, later1, later2 in zip(ts, ts[1:], ts[2:])
            )
            assert has_dense_stretch
