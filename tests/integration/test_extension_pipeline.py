"""Integration: the extension modules composed into one workflow.

mine → condense → analyse → derive rules → report → persist → reload,
on a realistic seasonal workload, checking the hand-offs between
modules rather than any one module's internals.
"""

import io

import pytest

from repro import (
    SeasonalRecommender,
    closed_patterns,
    derive_rules,
    maximal_patterns,
    mine_patterns_containing,
    mine_recurring_patterns,
    suggest_per,
)
from repro.analysis import co_seasonal_groups, seasonality_score
from repro.datasets import generate_planted_workload
from repro.patterns_io import load_patterns, save_patterns
from repro.report import render_mining_report


@pytest.fixture(scope="module")
def workload():
    return generate_planted_workload(
        per=5, min_ps=6, min_rec=2, n_patterns=3, pattern_size=3, seed=77
    )


@pytest.fixture(scope="module")
def mined(workload):
    return mine_recurring_patterns(
        workload.database, workload.per, workload.min_ps, workload.min_rec
    )


class TestPipeline:
    def test_mined_matches_ground_truth(self, workload, mined):
        assert mined.itemsets() == {p.items for p in workload.expected}

    def test_condensations_nest(self, mined):
        closed = closed_patterns(mined)
        maximal = maximal_patterns(mined)
        assert maximal.itemsets() <= closed.itemsets() <= mined.itemsets()
        # Planted itemsets always co-occur: the 3 maximal patterns are
        # exactly the 3 planted triples.
        assert len(maximal) == 3
        assert all(p.length == 3 for p in maximal)

    def test_analysis_recovers_plant_structure(self, workload, mined):
        for pattern in mined:
            assert seasonality_score(
                pattern, workload.database
            ) == pytest.approx(1.0)
        groups = co_seasonal_groups(list(maximal_patterns(mined)), 0.5)
        # The three plants occupy disjoint time ranges.
        assert len(groups) == 3

    def test_targeted_mining_agrees(self, workload, mined):
        anchor = next(iter(workload.expected)).sorted_items()[0]
        anchored = mine_patterns_containing(
            workload.database,
            [anchor],
            workload.per,
            workload.min_ps,
            workload.min_rec,
        )
        assert anchored.itemsets() == {
            p.items for p in mined if anchor in p.items
        }

    def test_rules_from_planted_patterns_are_certain(self, workload, mined):
        rules = derive_rules(mined, workload.database, min_confidence=0.9)
        assert rules, "co-occurring plants must yield rules"
        for rule in rules:
            assert rule.confidence == pytest.approx(1.0)
            assert rule.interval_confidence == pytest.approx(1.0)
        recommender = SeasonalRecommender(rules)
        first = next(iter(maximal_patterns(mined)))
        items = list(first.sorted_items())
        inside_ts = first.intervals[0].start
        picks = recommender.recommend(basket=items[:2], ts=inside_ts)
        assert items[2] in picks

    def test_suggest_per_reproduces_plant_step(self, workload):
        # The dominant gap is the planted step (= per).
        suggestion = suggest_per(workload.database, quantile=0.5)
        assert suggestion.per <= workload.per * 2

    def test_report_and_persistence(self, workload, mined):
        text = render_mining_report(
            workload.database,
            mined,
            workload.per,
            workload.min_ps,
            workload.min_rec,
        )
        assert "## Patterns" in text
        assert "### Co-seasonal groups" in text
        buffer = io.StringIO()
        save_patterns(mined, buffer)
        buffer.seek(0)
        assert load_patterns(buffer) == mined
