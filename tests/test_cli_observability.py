"""CLI tests for the observability flags (--profile/--trace-out/--log-level)."""

import json
import logging

import pytest

from repro.cli import main
from repro.datasets import paper_running_example
from repro.obs.report import read_trace, validate_run_record
from repro.timeseries.io import save_transactional_database


@pytest.fixture
def example_file(tmp_path):
    path = tmp_path / "example.tsv"
    save_transactional_database(paper_running_example(), path)
    return str(path)


BASE = ["--per", "2", "--min-ps", "3", "--min-rec", "2"]


class TestMineProfile:
    def test_profile_prints_phase_table_to_stderr(
        self, example_file, capsys
    ):
        code = main(["mine", "--input", example_file, *BASE, "--profile"])
        captured = capsys.readouterr()
        assert code == 0
        # stdout is the unchanged pattern table ...
        assert "8 recurring patterns" in captured.out
        assert "first_scan" not in captured.out
        # ... the phase table and counters go to stderr.
        for phase in ("transform", "first_scan", "tree_build", "mine"):
            assert phase in captured.err
        assert "patterns_found" in captured.err

    def test_trace_out_writes_valid_run_record(
        self, example_file, tmp_path, capsys
    ):
        trace = tmp_path / "run.jsonl"
        code = main([
            "mine", "--input", example_file, *BASE,
            "--trace-out", str(trace),
        ])
        assert code == 0
        records = read_trace(str(trace))
        assert [r["kind"] for r in records[:-1]] == ["span"] * (
            len(records) - 1
        )
        final = records[-1]
        validate_run_record(final)
        assert final["patterns_found"] == 8
        assert final["engine"] == "rp-growth"

    def test_trace_lines_are_individually_parseable(
        self, example_file, tmp_path, capsys
    ):
        trace = tmp_path / "run.jsonl"
        assert main([
            "mine", "--input", example_file, *BASE,
            "--trace-out", str(trace),
        ]) == 0
        for line in trace.read_text().splitlines():
            json.loads(line)

    def test_profiled_run_mines_identical_patterns(
        self, example_file, capsys
    ):
        assert main(["mine", "--input", example_file, *BASE]) == 0
        plain = capsys.readouterr().out
        assert main([
            "mine", "--input", example_file, *BASE,
            "--profile", "--track-memory",
        ]) == 0
        profiled = capsys.readouterr().out
        assert profiled == plain

    def test_track_memory_reports_peaks(self, example_file, capsys):
        code = main([
            "mine", "--input", example_file, *BASE,
            "--profile", "--track-memory",
        ])
        assert code == 0
        assert "peak mem" in capsys.readouterr().err

    @pytest.mark.parametrize("engine", ["rp-eclat", "rp-eclat-np", "rp-eclat-vec", "naive"])
    def test_every_engine_supports_profiling(
        self, example_file, tmp_path, capsys, engine
    ):
        trace = tmp_path / "run.jsonl"
        code = main([
            "mine", "--input", example_file, *BASE,
            "--engine", engine, "--profile", "--trace-out", str(trace),
        ])
        assert code == 0
        final = read_trace(str(trace))[-1]
        validate_run_record(final)
        assert final["engine"] == engine
        assert final["counters"]["patterns_found"] == 8

    def test_noise_tolerant_path_profiles_too(self, tmp_path, capsys):
        from repro.timeseries.database import TransactionalDatabase

        db = TransactionalDatabase([(ts, "a") for ts in [1, 2, 3, 5, 6, 7]])
        path = tmp_path / "noisy.tsv"
        save_transactional_database(db, path)
        trace = tmp_path / "noise.jsonl"
        code = main([
            "mine", "--input", str(path), "--per", "1", "--min-ps", "4",
            "--max-faults", "1", "--profile", "--trace-out", str(trace),
        ])
        assert code == 0
        final = read_trace(str(trace))[-1]
        validate_run_record(final)
        assert final["engine"] == "noise-tolerant"


class TestBaselineProfile:
    def test_profile_and_trace(self, example_file, tmp_path, capsys):
        trace = tmp_path / "baseline.jsonl"
        code = main([
            "baseline", "--input", example_file, "--model", "p-pattern",
            "--per", "2", "--min-sup", "4",
            "--profile", "--trace-out", str(trace),
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "p-pattern patterns" in captured.out
        assert "run" in captured.err
        final = read_trace(str(trace))[-1]
        validate_run_record(final)
        assert final["engine"] == "baseline/p-pattern"


class TestBenchTrace:
    def test_trace_out_emits_one_run_record_per_cell(self, tmp_path, capsys):
        trace = tmp_path / "bench.jsonl"
        code = main([
            "bench", "--dataset", "quest", "--scale", "0.005",
            "--pers", "10", "50", "--min-ps", "0.01", "--min-recs", "1",
            "--trace-out", str(trace), "--profile",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "quest: seconds" in captured.out  # runtime sweep implied
        assert "phase totals" in captured.err
        records = read_trace(str(trace))
        assert len(records) == 2  # one per (per, min_ps, min_rec) cell
        for record in records:
            validate_run_record(record)
            assert record["dataset"] == "quest"
            assert any(s["name"] == "mine" for s in record["spans"])


class TestProgressFlag:
    def test_progress_streams_lines_to_stderr(self, example_file, capsys):
        code = main([
            "mine", "--input", example_file, *BASE, "--progress",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "8 recurring patterns" in captured.out
        # capsys stderr is not a TTY, so lines append plainly.
        assert "mine[rp-growth]: 1/1 (100%)" in captured.err
        assert "rp-growth: 8 patterns" in captured.err

    def test_no_progress_is_silent(self, example_file, capsys):
        code = main([
            "mine", "--input", example_file, *BASE, "--no-progress",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "1/1" not in captured.err

    def test_progress_flags_are_mutually_exclusive(
        self, example_file, capsys
    ):
        with pytest.raises(SystemExit):
            main([
                "mine", "--input", example_file, *BASE,
                "--progress", "--no-progress",
            ])

    def test_progress_does_not_change_stdout(self, example_file, capsys):
        assert main(["mine", "--input", example_file, *BASE]) == 0
        plain = capsys.readouterr().out
        assert main([
            "mine", "--input", example_file, *BASE, "--progress",
        ]) == 0
        assert capsys.readouterr().out == plain

    def test_every_long_subcommand_accepts_the_flag(
        self, example_file, tmp_path, capsys
    ):
        assert main([
            "mine", "--input", example_file, *BASE, "--no-progress",
        ]) == 0
        assert main([
            "baseline", "--input", example_file, "--model", "p-pattern",
            "--per", "2", "--min-sup", "4", "--no-progress",
        ]) == 0
        assert main([
            "sweep", "--input", example_file, "--pers", "2",
            "--min-ps", "3", "--min-recs", "2", "--no-progress",
        ]) == 0
        assert main([
            "bench", "--dataset", "quest", "--scale", "0.005",
            "--pers", "50", "--min-ps", "0.01", "--min-recs", "1",
            "--no-progress",
        ]) == 0
        capsys.readouterr()

    def test_sweep_progress_counts_cells(self, example_file, capsys):
        code = main([
            "sweep", "--input", example_file, "--pers", "2",
            "--min-ps", "3", "--min-recs", "1", "2", "--progress",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "sweep: 2/2 (100%)" in captured.err

    def test_qa_progress_reports_suite_boundaries(self, capsys):
        code = main([
            "qa", "--budget", "5", "--skip", "golden",
            "--skip", "differential", "--engines", "rp-growth",
            "--relation-cases", "0", "--report", "-", "--progress",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "qa: relations" in captured.err
        assert "passed" in captured.err


class TestMetricsOut:
    def test_metrics_out_writes_valid_snapshots(
        self, example_file, tmp_path, capsys
    ):
        from repro.obs.metrics import validate_metrics_record

        metrics = tmp_path / "metrics.jsonl"
        code = main([
            "mine", "--input", example_file, *BASE,
            "--metrics-out", str(metrics),
        ])
        assert code == 0
        records = read_trace(str(metrics))
        assert records
        for record in records:
            validate_metrics_record(record)
        names = {e["name"] for e in records[-1]["counters"]}
        assert "repro_mining_patterns_found_total" in names
        assert "repro_runs_total" in names

    def test_bench_metrics_out_single_file_both_sweeps(
        self, tmp_path, capsys
    ):
        from repro.obs.metrics import validate_metrics_record

        metrics = tmp_path / "metrics.jsonl"
        code = main([
            "bench", "--dataset", "quest", "--scale", "0.005",
            "--pers", "50", "--min-ps", "0.01", "--min-recs", "1",
            "--runtime", "--metrics-out", str(metrics),
        ])
        capsys.readouterr()
        assert code == 0
        records = read_trace(str(metrics))
        assert records
        for record in records:
            validate_metrics_record(record)
        # One shared monitor: the final snapshot accumulates both the
        # count sweep and the runtime sweep (2 cells + repeats).
        counters = {
            e["name"]: e["value"] for e in records[-1]["counters"]
        }
        assert counters.get("repro_sweep_cells_mined_total", 0) >= 2


class TestTraceSubcommand:
    def _write_run_trace(self, example_file, tmp_path, name="run.jsonl"):
        trace = tmp_path / name
        assert main([
            "mine", "--input", example_file, *BASE,
            "--trace-out", str(trace),
        ]) == 0
        return str(trace)

    def test_renders_tree_phases_critical_path(
        self, example_file, tmp_path, capsys
    ):
        trace = self._write_run_trace(example_file, tmp_path)
        capsys.readouterr()
        code = main(["trace", "--input", trace])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 run" in out
        assert "span tree:" in out
        assert "per-phase aggregate" in out
        assert "critical path:" in out
        assert "8 patterns" in out

    def test_compare_renders_deltas(self, example_file, tmp_path, capsys):
        a = self._write_run_trace(example_file, tmp_path, "a.jsonl")
        b = self._write_run_trace(example_file, tmp_path, "b.jsonl")
        capsys.readouterr()
        code = main(["trace", "--input", a, "--compare", b])
        out = capsys.readouterr().out
        assert code == 0
        assert "A (s)" in out and "B (s)" in out
        assert "patterns: A=8 B=8" in out
        assert "DIFFER" not in out

    def test_reads_sweep_and_qa_traces(self, tmp_path, capsys):
        trace = tmp_path / "qa.jsonl"
        assert main([
            "qa", "--budget", "5", "--skip", "golden",
            "--skip", "differential", "--engines", "rp-growth",
            "--relation-cases", "0", "--no-progress",
            "--report", str(trace),
        ]) == 0
        capsys.readouterr()
        code = main(["trace", "--input", str(trace)])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 qa" in out
        assert "qa: PASS" in out

    def test_malformed_trace_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("this is not json\n")
        code = main(["trace", "--input", str(bad)])
        captured = capsys.readouterr()
        assert code == 1
        assert "error" in captured.err


class TestLogLevel:
    def test_log_level_wires_stdlib_logging(self, example_file, capsys):
        root = logging.getLogger()
        previous_handlers = root.handlers[:]
        previous_level = root.level
        try:
            root.handlers = []
            code = main([
                "mine", "--input", example_file, *BASE,
                "--profile", "--log-level", "debug",
            ])
            assert code == 0
            assert root.level == logging.DEBUG
        finally:
            root.handlers = previous_handlers
            root.level = previous_level

    def test_log_level_accepted_by_every_subcommand(self, tmp_path):
        out = tmp_path / "g.tsv"
        assert main([
            "generate", "--dataset", "quest", "--scale", "0.005",
            "--output", str(out), "--log-level", "warning",
        ]) == 0
        assert main([
            "stats", "--input", str(out), "--log-level", "warning",
        ]) == 0
