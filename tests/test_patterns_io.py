"""Round-trip tests for pattern-set persistence."""

import io

import pytest
from hypothesis import HealthCheck, given, settings

from repro import mine_recurring_patterns
from repro.core.rp_growth import RPGrowth
from repro.exceptions import DataFormatError
from repro.patterns_io import load_patterns, save_patterns
from tests.conftest import mining_parameters, small_databases


@pytest.fixture
def table2(running_example):
    return mine_recurring_patterns(running_example, 2, 3, 2)


class TestRoundTrip:
    def test_via_path(self, tmp_path, table2):
        path = tmp_path / "patterns.tsv"
        save_patterns(table2, path)
        assert load_patterns(path) == table2

    def test_via_handle(self, table2):
        buffer = io.StringIO()
        save_patterns(table2, buffer)
        buffer.seek(0)
        assert load_patterns(buffer) == table2

    def test_empty_set(self):
        from repro.core.model import RecurringPatternSet

        buffer = io.StringIO()
        save_patterns(RecurringPatternSet(), buffer)
        buffer.seek(0)
        assert len(load_patterns(buffer)) == 0

    def test_float_boundaries_survive(self):
        from repro.timeseries.database import TransactionalDatabase

        db = TransactionalDatabase(
            [(0.5, "a"), (1.0, "a"), (1.5, "a")]
        )
        found = mine_recurring_patterns(db, per=0.5, min_ps=3)
        buffer = io.StringIO()
        save_patterns(found, buffer)
        buffer.seek(0)
        assert load_patterns(buffer) == found

    def test_multi_char_items_survive(self):
        from repro.timeseries.database import TransactionalDatabase

        db = TransactionalDatabase(
            [(ts, ["link_down", "bgp_flap"]) for ts in range(5)]
        )
        found = mine_recurring_patterns(db, per=1, min_ps=5)
        buffer = io.StringIO()
        save_patterns(found, buffer)
        buffer.seek(0)
        assert load_patterns(buffer) == found

    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(db=small_databases(), params=mining_parameters())
    def test_random_pattern_sets(self, db, params):
        per, min_ps, min_rec = params
        found = RPGrowth(per, min_ps, min_rec).mine(db)
        buffer = io.StringIO()
        save_patterns(found, buffer)
        buffer.seek(0)
        assert load_patterns(buffer) == found


class TestMalformedInput:
    def test_missing_header(self):
        with pytest.raises(DataFormatError, match="header"):
            load_patterns(io.StringIO("a\t1\t1:1:1\n"))

    def test_wrong_column_count(self):
        text = "# repro recurring patterns v1\na\t1\n"
        with pytest.raises(DataFormatError, match="3 tab-separated"):
            load_patterns(io.StringIO(text))

    def test_bad_support(self):
        text = "# repro recurring patterns v1\na\tmany\t1:2:2\n"
        with pytest.raises(DataFormatError, match="bad support"):
            load_patterns(io.StringIO(text))

    def test_bad_interval(self):
        text = "# repro recurring patterns v1\na\t2\t1-2-2\n"
        with pytest.raises(DataFormatError, match="bad interval"):
            load_patterns(io.StringIO(text))

    def test_comments_and_blanks_tolerated(self, table2):
        buffer = io.StringIO()
        save_patterns(table2, buffer)
        text = buffer.getvalue() + "\n# trailing comment\n"
        assert load_patterns(io.StringIO(text)) == table2


class TestSeparatorSafety:
    def test_items_with_spaces_rejected(self):
        from repro.core.model import (
            PeriodicInterval,
            RecurringPattern,
            RecurringPatternSet,
        )

        patterns = RecurringPatternSet([
            RecurringPattern(
                items=frozenset({"two words"}),
                support=3,
                intervals=(PeriodicInterval(1, 3, 3),),
            )
        ])
        with pytest.raises(DataFormatError, match="separator"):
            save_patterns(patterns, io.StringIO())

    def test_items_with_colon_rejected(self):
        from repro.core.model import (
            PeriodicInterval,
            RecurringPattern,
            RecurringPatternSet,
        )

        patterns = RecurringPatternSet([
            RecurringPattern(
                items=frozenset({"a:b"}),
                support=3,
                intervals=(PeriodicInterval(1, 3, 3),),
            )
        ])
        with pytest.raises(DataFormatError):
            save_patterns(patterns, io.StringIO())
