"""Cut-boundary stitching: planted runs, every cut position, oracle.

The merge bug class lives exactly at shard boundaries — a maximal
periodic run split by a cut must be stitched back with its original
``ps``, and a pattern whose *only* interesting intervals span cuts must
still be recovered (no shard ever sees it as locally interesting).
These tests place cuts everywhere, including adversarially inside
planted bursts, and compare against both the in-memory engine and the
naive exhaustive oracle from ``qa/differential.py``.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.miner import mine_recurring_patterns
from repro.qa.differential import canonical, oracle_canonical
from repro.shard import mine_sharded_database
from repro.timeseries.database import TransactionalDatabase

from tests.conftest import mining_parameters, small_databases


def _rows(database):
    return [
        (ts, tuple(sorted(itemset, key=repr))) for ts, itemset in database
    ]


def _sharded_canonical(database, per, min_ps, min_rec, **plan):
    found, _, _, _ = mine_sharded_database(
        database, per, min_ps, min_rec, **plan
    )
    return canonical(found)


# ----------------------------------------------------------------------
# Every cut position on reference databases
# ----------------------------------------------------------------------
def test_every_single_cut_on_running_example(running_example):
    expected = canonical(mine_recurring_patterns(running_example, 2, 3, 2))
    oracle = oracle_canonical(_rows(running_example), (2, 3, 2))
    assert expected == oracle
    for transaction in list(running_example)[:-1]:
        got = _sharded_canonical(
            running_example, 2, 3, 2, cuts=[transaction.ts]
        )
        assert got == expected, f"cut at ts={transaction.ts}"


def test_every_single_cut_on_planted(planted_workload):
    w = planted_workload
    expected = canonical(
        mine_recurring_patterns(w.database, w.per, w.min_ps, w.min_rec)
    )
    for transaction in list(w.database)[:-1]:
        got = _sharded_canonical(
            w.database, w.per, w.min_ps, w.min_rec, cuts=[transaction.ts]
        )
        assert got == expected, f"cut at ts={transaction.ts}"


def test_cuts_inside_every_planted_burst(planted_workload):
    """Adversarial plan: one cut in the middle of every planted interval.

    Every planted burst is split mid-run, so *every* expected pattern
    must be recovered purely by boundary stitching — and the recurrence
    (Rec) and periodic-support (ps) counters must come out exact.
    """
    w = planted_workload
    cuts = [
        (interval.start + interval.end) // 2
        for pattern in w.expected
        for interval in pattern.intervals
    ]
    found, _, _, report = mine_sharded_database(
        w.database, w.per, w.min_ps, w.min_rec, cuts=cuts
    )
    expected = mine_recurring_patterns(w.database, w.per, w.min_ps, w.min_rec)
    assert found == expected
    assert report.merge.stitched_runs > 0
    for planted in w.expected:
        mined = found.pattern(planted.items)
        assert mined.recurrence == planted.recurrence
        assert mined.support == planted.support
        assert mined.intervals == planted.intervals


def test_pattern_interesting_only_across_cuts():
    # One 6-long run of "ab"; min_ps=6 means NO shard (cut mid-run)
    # sees an interesting interval — local mining at any threshold
    # finds nothing, so recovery relies purely on boundary candidates.
    database = TransactionalDatabase(
        [(t, "ab") for t in (1, 2, 3, 4, 5, 6)]
    )
    expected = mine_recurring_patterns(database, 1, 6, 1)
    assert len(expected) == 3  # a, b, ab
    for cut in (1, 2, 3, 4, 5):
        found, _, _, report = mine_sharded_database(
            database, 1, 6, 1, cuts=[cut]
        )
        assert found == expected, f"cut at {cut}"
        assert report.boundary_candidates >= 3
    # And with a cut at every transaction: maximal fragmentation.
    found, _, _, _ = mine_sharded_database(
        database, 1, 6, 1, cuts=[1, 2, 3, 4, 5]
    )
    assert found == expected


def test_run_chain_hops_over_absent_shard():
    # "a" occurs at 1..4 and 6..9 with per=2: one maximal run 1..9.
    # Cutting at 4 and 5 makes a middle shard (ts=5) where "a" is
    # absent — the stitch must chain across it.
    rows = [(t, "a") for t in (1, 2, 3, 4, 6, 7, 8, 9)] + [(5, "b")]
    database = TransactionalDatabase(rows)
    expected = mine_recurring_patterns(database, 2, 8, 1)
    assert [p.sorted_items() for p in expected] == [("a",)]
    found, _, _, report = mine_sharded_database(
        database, 2, 8, 1, cuts=[4, 5]
    )
    assert found == expected
    assert report.merge.stitched_runs >= 1


# ----------------------------------------------------------------------
# Randomized differential sweeps
# ----------------------------------------------------------------------
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    database=small_databases(),
    params=mining_parameters(),
    data=st.data(),
)
def test_random_databases_any_cuts_match_engine(database, params, data):
    per, min_ps, min_rec = params
    expected = canonical(
        mine_recurring_patterns(database, per, min_ps, min_rec)
    )
    timestamps = [transaction.ts for transaction in database]
    cuts = data.draw(
        st.lists(
            st.sampled_from(timestamps or [0]),
            min_size=0,
            max_size=4,
        )
    )
    got = _sharded_canonical(database, per, min_ps, min_rec, cuts=cuts)
    assert got == expected
    shards = data.draw(st.integers(min_value=1, max_value=8))
    got = _sharded_canonical(database, per, min_ps, min_rec, shards=shards)
    assert got == expected


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    database=small_databases(max_transactions=12),
    params=mining_parameters(),
    shards=st.integers(min_value=1, max_value=6),
)
def test_random_databases_match_naive_oracle(database, params, shards):
    per, min_ps, min_rec = params
    oracle = oracle_canonical(_rows(database), (per, min_ps, min_rec))
    got = _sharded_canonical(database, per, min_ps, min_rec, shards=shards)
    assert got == oracle


@pytest.mark.slow
def test_every_cut_pair_on_running_example(running_example):
    import itertools

    expected = canonical(mine_recurring_patterns(running_example, 2, 3, 2))
    timestamps = [t.ts for t in running_example][:-1]
    for pair in itertools.combinations(timestamps, 2):
        got = _sharded_canonical(running_example, 2, 3, 2, cuts=list(pair))
        assert got == expected, f"cuts at {pair}"
