"""Peak memory of out-of-core mining stays flat as the input grows.

The workload is a long strictly-periodic file (``ts<TAB>a b`` every
tick): pattern count and candidate state are constant, so the only
thing that grows with the input is the data itself.  In-memory mining
must hold it all; ``mine_sharded_file`` at a fixed
``max_transactions`` must not — its peak is bounded by one shard plus
output-sized state, whatever the file length.
"""

from __future__ import annotations

import pytest

from repro.core.miner import mine_recurring_patterns
from repro.obs.memory import peak_memory
from repro.shard import mine_sharded_file
from repro.timeseries.io import load_transactional_database

#: Per-shard transaction bound used by every measurement.
SHARD_BOUND = 500

#: Absolute slack (bytes) masking allocator noise on tiny peaks.
SLACK = 256 * 1024


def _write_periodic(path, transactions: int) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        for ts in range(1, transactions + 1):
            handle.write(f"{ts}\ta b\n")


def _sharded_peak(path, transactions: int) -> int:
    with peak_memory() as measured:
        found, _, _, _ = mine_sharded_file(
            path, 1, transactions, 1, max_transactions=SHARD_BOUND
        )
    # per=1, min_ps=n, min_rec=1: the single full-length run must
    # survive stitching across every shard boundary.
    assert {p.sorted_items() for p in found} == {
        ("a",), ("b",), ("a", "b")
    }
    return measured.bytes


def _run_scaling_check(small: int, big: int) -> None:
    import tempfile
    import os

    with tempfile.TemporaryDirectory() as workdir:
        small_path = os.path.join(workdir, "small.tsv")
        big_path = os.path.join(workdir, "big.tsv")
        _write_periodic(small_path, small)
        _write_periodic(big_path, big)
        peak_small = _sharded_peak(small_path, small)
        peak_big = _sharded_peak(big_path, big)
    ratio = big / small
    assert peak_big <= 1.5 * peak_small + SLACK, (
        f"out-of-core peak grew with input size: {peak_small} -> "
        f"{peak_big} bytes over a {ratio:g}x input"
    )


def test_peak_memory_flat_at_3x():
    _run_scaling_check(2_000, 6_000)


@pytest.mark.slow
def test_peak_memory_flat_at_10x():
    _run_scaling_check(3_000, 30_000)


@pytest.mark.slow
def test_in_memory_peak_grows_but_sharded_does_not(tmp_path):
    """The contrast measurement: same inputs, both pipelines.

    In-memory mining's peak must scale roughly with the input (sanity
    check that the workload *can* expose growth), while the sharded
    peak stays within the flat-profile gate.
    """
    sizes = (2_000, 20_000)
    in_memory, sharded = [], []
    for size in sizes:
        path = tmp_path / f"p{size}.tsv"
        _write_periodic(path, size)
        with peak_memory() as measured:
            database = load_transactional_database(path)
            mine_recurring_patterns(database, 1, size, 1)
        in_memory.append(measured.bytes)
        del database
        sharded.append(_sharded_peak(path, size))
    assert in_memory[1] >= 4 * in_memory[0], (
        "workload failed to stress memory; in-memory peaks: "
        f"{in_memory}"
    )
    assert sharded[1] <= 1.5 * sharded[0] + SLACK, (
        f"sharded peaks grew: {sharded}"
    )
