"""Sharded mining equals in-memory mining — API, façade and CLI."""

from __future__ import annotations

import json

import pytest

from repro.core.miner import mine_recurring_patterns
from repro.core.options import ObservabilityOptions
from repro.exceptions import ParameterError
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import MiningMonitor
from repro.qa.relations import engine_matrix
from repro.shard import (
    DEFAULT_MAX_TRANSACTIONS,
    mine_sharded_database,
    mine_sharded_file,
)
from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.io import save_transactional_database

SHARD_COUNTS = (1, 3, 8)


@pytest.mark.parametrize("engine,jobs", engine_matrix())
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_sharded_equals_in_memory_across_matrix(
    running_example, engine, jobs, shards
):
    expected = mine_recurring_patterns(
        running_example, 2, 3, 2, engine=engine, jobs=jobs
    )
    found, stats, faults, report = mine_sharded_database(
        running_example, 2, 3, 2, engine, jobs=jobs, shards=shards
    )
    assert found == expected
    assert faults == []
    assert report.shard_count == min(shards, len(running_example))
    assert stats.patterns_found == len(expected)


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_sharded_equals_in_memory_on_planted(planted_workload, shards):
    w = planted_workload
    expected = mine_recurring_patterns(w.database, w.per, w.min_ps, w.min_rec)
    found, _, _, _ = mine_sharded_database(
        w.database, w.per, w.min_ps, w.min_rec, shards=shards
    )
    assert found == expected
    assert {p.sorted_items() for p in found} >= {
        p.sorted_items() for p in w.expected
    }


def test_fractional_min_ps_resolves_against_full_database(running_example):
    # 3/12 = 0.25 of the full database; a shard-local resolution would
    # move the bar on small shards and change the result.
    expected = mine_recurring_patterns(running_example, 2, 0.25, 2)
    assert expected == mine_recurring_patterns(running_example, 2, 3, 2)
    for shards in SHARD_COUNTS:
        found, _, _, _ = mine_sharded_database(
            running_example, 2, 0.25, 2, shards=shards
        )
        assert found == expected


def test_exactly_one_plan_mode_required(running_example):
    with pytest.raises(ParameterError):
        mine_sharded_database(running_example, 2, 3, 2)
    with pytest.raises(ParameterError):
        mine_sharded_database(
            running_example, 2, 3, 2, shards=2, max_transactions=4
        )


def test_empty_database_mines_empty():
    found, stats, faults, report = mine_sharded_database(
        TransactionalDatabase([]), 2, 3, 1, shards=3
    )
    assert len(found) == 0
    assert faults == []
    assert report.shard_count == 0


def test_file_path_rejects_open_handles(tmp_path, running_example):
    path = tmp_path / "db.tsv"
    save_transactional_database(running_example, path)
    with open(path, encoding="utf-8") as handle:
        with pytest.raises(ParameterError):
            mine_sharded_file(handle, 2, 3, 2, max_transactions=4)


@pytest.mark.parametrize("use_mmap", (False, True))
def test_file_mining_matches_database_mining(
    tmp_path, planted_workload, use_mmap
):
    w = planted_workload
    path = tmp_path / "w.tsv"
    save_transactional_database(w.database, path)
    expected = mine_recurring_patterns(w.database, w.per, w.min_ps, w.min_rec)
    for max_transactions in (7, 23, DEFAULT_MAX_TRANSACTIONS):
        found, _, _, report = mine_sharded_file(
            path, w.per, w.min_ps, w.min_rec,
            max_transactions=max_transactions, use_mmap=use_mmap,
        )
        assert found == expected
        assert report.shard_count == -(
            -len(w.database) // max_transactions
        )


# ----------------------------------------------------------------------
# Façade wiring
# ----------------------------------------------------------------------
def test_facade_shards_kwarg(running_example):
    base = mine_recurring_patterns(running_example, 2, 3, 2)
    assert mine_recurring_patterns(running_example, 2, 3, 2, shards=3) == base
    assert (
        mine_recurring_patterns(
            running_example, 2, 3, 2, max_events_in_memory=4
        )
        == base
    )


def test_facade_rejects_both_shard_modes(running_example):
    with pytest.raises(ParameterError):
        mine_recurring_patterns(
            running_example, 2, 3, 2, shards=2, max_events_in_memory=4
        )


def test_facade_telemetry_carries_shard_report(running_example):
    found, telemetry = mine_recurring_patterns(
        running_example, 2, 3, 2, shards=3,
        observability=ObservabilityOptions(collect_stats=True),
    )
    assert found == mine_recurring_patterns(running_example, 2, 3, 2)
    info = telemetry.extra["shards"]
    assert info["shard_count"] == 3
    assert info["sizes"] == [4, 4, 4]
    assert len(info["cuts"]) == 2
    assert info["patterns_considered"] >= len(found)


def test_unsharded_telemetry_has_no_shard_extra(running_example):
    _, telemetry = mine_recurring_patterns(
        running_example, 2, 3, 2,
        observability=ObservabilityOptions(collect_stats=True),
    )
    assert "shards" not in telemetry.extra


def test_shard_metrics_counters(running_example):
    registry = MetricsRegistry()
    monitor = MiningMonitor(registry=registry)
    found, _, _, report = mine_sharded_database(
        running_example, 2, 3, 2, shards=3, monitor=monitor
    )

    def counter(name):
        return sum(
            entry["value"]
            for entry in registry.snapshot()["counters"]
            if entry["name"] == name
        )

    assert counter("repro_shard_runs_total") == 1
    assert counter("repro_shard_mined_total") == 3
    assert counter("repro_shard_transactions_total") == len(running_example)
    # Local and boundary candidates may overlap, so the published count
    # is the union size; it covers at least the final pattern count.
    assert counter("repro_shard_candidates_total") >= len(found)
    assert counter("repro_shard_stitched_runs_total") == (
        report.merge.stitched_runs
    )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _write(tmp_path, database):
    path = tmp_path / "db.tsv"
    save_transactional_database(database, path)
    return str(path)


def test_cli_shard_subcommand(tmp_path, capsys, running_example):
    from repro.cli import main

    path = _write(tmp_path, running_example)
    assert main([
        "shard", "--input", path, "--per", "2", "--min-ps", "3",
        "--min-rec", "2", "--max-events", "5", "--no-progress",
    ]) == 0
    out = capsys.readouterr().out
    assert "8 recurring patterns" in out
    assert "out-of-core" in out
    assert "shards: 3" in out


def test_cli_mine_shards_flag_matches_plain_mine(
    tmp_path, capsys, running_example
):
    from repro.cli import main

    path = _write(tmp_path, running_example)
    assert main([
        "mine", "--input", path, "--per", "2", "--min-ps", "3",
        "--min-rec", "2", "--no-progress",
    ]) == 0
    plain = capsys.readouterr().out
    assert main([
        "mine", "--input", path, "--per", "2", "--min-ps", "3",
        "--min-rec", "2", "--shards", "4", "--no-progress",
    ]) == 0
    sharded = capsys.readouterr().out
    assert sharded == plain


def test_cli_shard_writes_metrics(tmp_path, capsys, running_example):
    from repro.cli import main

    path = _write(tmp_path, running_example)
    metrics_path = tmp_path / "metrics.jsonl"
    assert main([
        "shard", "--input", path, "--per", "2", "--min-ps", "3",
        "--min-rec", "2", "--max-events", "4", "--no-progress",
        "--metrics-out", str(metrics_path),
    ]) == 0
    capsys.readouterr()
    lines = [
        json.loads(line)
        for line in metrics_path.read_text().splitlines()
        if line.strip()
    ]
    assert lines
    names = {
        counter["name"]
        for snapshot in lines
        for counter in snapshot.get("counters", [])
    }
    assert "repro_shard_mined_total" in names
