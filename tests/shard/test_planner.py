"""Shard planning: balanced plans, explicit cuts, slicing round-trips."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ParameterError
from repro.shard.planner import ShardPlan, ShardPlanner, plan_with_cuts
from repro.timeseries.database import TransactionalDatabase


def test_planner_requires_exactly_one_mode():
    with pytest.raises(ParameterError):
        ShardPlanner()
    with pytest.raises(ParameterError):
        ShardPlanner(shards=2, max_transactions=5)
    for bad in (0, -1, True, 1.5):
        with pytest.raises(ParameterError):
            ShardPlanner(shards=bad)
        with pytest.raises(ParameterError):
            ShardPlanner(max_transactions=bad)


def test_balanced_plan_by_shard_count():
    plan = ShardPlanner(shards=3).plan([1, 2, 3, 4, 5, 6, 7])
    assert plan.sizes == (3, 2, 2)
    assert plan.cuts == (3, 5)
    assert plan.shard_count == 3
    assert plan.total == 7


def test_shard_count_clamps_to_transaction_count():
    plan = ShardPlanner(shards=10).plan([5, 9])
    assert plan.sizes == (1, 1)
    assert plan.cuts == (5,)


def test_plan_by_max_transactions():
    plan = ShardPlanner(max_transactions=3).plan(list(range(8)))
    assert plan.shard_count == 3  # ceil(8 / 3)
    assert max(plan.sizes) <= 3
    assert plan.total == 8


def test_empty_plan():
    plan = ShardPlanner(shards=4).plan([])
    assert plan.sizes == ()
    assert plan.cuts == ()
    assert plan.shard_count == 0


def test_plan_validates_cut_arity():
    with pytest.raises(ParameterError):
        ShardPlan(cuts=(1, 2), sizes=(3, 4))


def test_plan_with_cuts_snaps_and_canonicalizes():
    timestamps = [1, 3, 5, 7, 9]
    # A cut between transactions snaps down; a cut at a transaction
    # keeps it on the left; duplicates and out-of-range cuts drop out.
    plan = plan_with_cuts(timestamps, [4, 3.5, 3, 100, -2, 9])
    assert plan.cuts == (3,)
    assert plan.sizes == (2, 3)
    assert plan_with_cuts(timestamps, []).sizes == (5,)
    assert plan_with_cuts([], [3]).sizes == ()


def test_slices_round_trip(running_example):
    timestamps = [transaction.ts for transaction in running_example]
    for shards in (1, 2, 3, len(timestamps)):
        plan = ShardPlanner(shards=shards).plan(timestamps)
        pieces = list(plan.slices(running_example))
        assert [len(piece) for piece in pieces] == list(plan.sizes)
        rebuilt = [
            (ts, itemset) for piece in pieces for ts, itemset in piece
        ]
        assert rebuilt == list(running_example)


@given(
    n=st.integers(min_value=0, max_value=50),
    shards=st.integers(min_value=1, max_value=12),
)
def test_balanced_plans_partition_everything(n, shards):
    timestamps = list(range(0, 2 * n, 2))
    plan = ShardPlanner(shards=shards).plan(timestamps)
    assert plan.total == n
    assert all(size >= 1 for size in plan.sizes)
    if n:
        assert plan.shard_count == min(shards, n)
        assert max(plan.sizes) - min(plan.sizes) <= 1
        # Cuts are the last timestamp of each non-final shard.
        offset = 0
        for size, cut in zip(plan.sizes[:-1], plan.cuts):
            offset += size
            assert cut == timestamps[offset - 1]


def test_plan_never_splits_duplicate_timestamps():
    # Constructor merges duplicate rows first, so the planner only ever
    # sees distinct timestamps; assert the end-to-end behaviour anyway.
    database = TransactionalDatabase(
        [(1, "a"), (1, "b"), (2, "a"), (2, "c"), (3, "a")]
    )
    timestamps = [transaction.ts for transaction in database]
    plan = ShardPlanner(shards=2).plan(timestamps)
    pieces = list(plan.slices(database))
    for piece in pieces:
        assert len({ts for ts, _ in piece}) == len(piece)
    assert sorted(ts for piece in pieces for ts, _ in piece) == [1, 2, 3]
