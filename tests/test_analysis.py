"""Unit and property tests for the temporal analysis helpers."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import mine_recurring_patterns
from repro.analysis import (
    co_seasonal_groups,
    interval_coverage,
    seasonality_score,
    temporal_overlap,
)
from repro.core.model import PeriodicInterval, RecurringPattern
from repro.exceptions import ParameterError
from tests.conftest import mining_parameters, small_databases


def make_pattern(items, spans):
    return RecurringPattern(
        items=frozenset(items),
        support=max(1, sum(3 for _ in spans)),
        intervals=tuple(PeriodicInterval(s, e, 3) for s, e in spans),
    )


class TestCoverage:
    def test_half_covered(self):
        pattern = make_pattern("x", [(0, 5), (15, 20)])
        assert interval_coverage(pattern, 0, 20) == pytest.approx(0.5)

    def test_clipping_to_range(self):
        pattern = make_pattern("x", [(0, 100)])
        assert interval_coverage(pattern, 40, 60) == pytest.approx(1.0)

    def test_disjoint_range(self):
        pattern = make_pattern("x", [(0, 5)])
        assert interval_coverage(pattern, 50, 60) == 0.0

    def test_rejects_empty_range(self):
        with pytest.raises(ParameterError):
            interval_coverage(make_pattern("x", [(0, 5)]), 5, 5)


class TestOverlap:
    def test_identical_is_one(self):
        a = make_pattern("a", [(0, 10), (20, 30)])
        b = make_pattern("b", [(0, 10), (20, 30)])
        assert temporal_overlap(a, b) == pytest.approx(1.0)

    def test_disjoint_is_zero(self):
        a = make_pattern("a", [(0, 10)])
        b = make_pattern("b", [(20, 30)])
        assert temporal_overlap(a, b) == 0.0

    def test_partial(self):
        a = make_pattern("a", [(0, 10)])
        b = make_pattern("b", [(5, 15)])
        assert temporal_overlap(a, b) == pytest.approx(5 / 15)

    def test_symmetry(self):
        a = make_pattern("a", [(0, 7)])
        b = make_pattern("b", [(3, 20)])
        assert temporal_overlap(a, b) == temporal_overlap(b, a)

    def test_point_intervals_are_safe(self):
        a = make_pattern("a", [(5, 5)])
        b = make_pattern("b", [(5, 5)])
        assert temporal_overlap(a, b) == 0.0

    def test_overlapping_own_intervals_merged(self):
        # Intervals of one pattern never overlap in practice, but the
        # span union must be robust anyway.
        a = make_pattern("a", [(0, 10), (5, 20)])
        b = make_pattern("b", [(0, 20)])
        assert temporal_overlap(a, b) == pytest.approx(1.0)


class TestGroups:
    def test_event_grouping(self):
        storm = [make_pattern(tag, [(0, 10)]) for tag in ("s1", "s2", "s3")]
        flood = [make_pattern("f1", [(50, 80)])]
        groups = co_seasonal_groups(storm + flood, min_overlap=0.5)
        assert [len(g) for g in groups] == [3, 1]

    def test_transitive_chaining(self):
        a = make_pattern("a", [(0, 10)])
        b = make_pattern("b", [(4, 14)])
        c = make_pattern("c", [(8, 18)])
        # a-b and b-c overlap >= 0.4; a-c barely overlap.
        groups = co_seasonal_groups([a, c, b], min_overlap=0.4)
        assert len(groups) == 1

    def test_empty_input(self):
        assert co_seasonal_groups([]) == []

    def test_rejects_bad_threshold(self):
        with pytest.raises(ParameterError):
            co_seasonal_groups([], min_overlap=2.0)

    def test_running_example_groups(self, running_example):
        found = mine_recurring_patterns(
            running_example, per=2, min_ps=3, min_rec=2
        )
        groups = co_seasonal_groups(found, min_overlap=0.6)
        # a/b/ab share seasons [1,4] & [11,14]; d/cd share [2,5] & [9,12];
        # e/f/ef share [3,6] & [10,12].
        by_members = {
            frozenset(
                "".join(sorted(map(str, p.items))) for p in group
            )
            for group in groups
        }
        assert frozenset({"a", "b", "ab"}) in by_members


class TestSeasonality:
    def test_planted_patterns_score_one(self, planted_workload):
        found = mine_recurring_patterns(
            planted_workload.database,
            planted_workload.per,
            planted_workload.min_ps,
            planted_workload.min_rec,
        )
        for pattern in found:
            assert seasonality_score(
                pattern, planted_workload.database
            ) == pytest.approx(1.0)

    def test_background_scores_below_one(self, running_example):
        found = mine_recurring_patterns(
            running_example, per=2, min_ps=3, min_rec=2
        )
        # a occurs at ts=7, outside its intervals [1,4] and [11,14].
        assert seasonality_score(
            found.pattern("a"), running_example
        ) == pytest.approx(7 / 8)

    def test_score_bounds(self, running_example):
        found = mine_recurring_patterns(
            running_example, per=2, min_ps=3, min_rec=1
        )
        for pattern in found:
            score = seasonality_score(pattern, running_example)
            assert 0.0 < score <= 1.0

    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(db=small_databases(), params=mining_parameters())
    def test_scores_always_in_unit_interval(self, db, params):
        per, min_ps, min_rec = params
        for pattern in mine_recurring_patterns(db, per, min_ps, min_rec):
            assert 0.0 < seasonality_score(pattern, db) <= 1.0
