"""Tests for live progress/ETA/heartbeat reporting (repro.obs.progress)."""

import io
import json
import os

import pytest

from repro import mine_recurring_patterns
from repro.core.options import ObservabilityOptions
from repro.datasets import paper_running_example
from repro.exceptions import ParameterError
from repro.obs.metrics import (
    MetricsEmitter,
    MetricsRegistry,
    validate_metrics_record,
)
from repro.obs.progress import (
    HEARTBEAT_GAUGE,
    MiningMonitor,
    ProgressReporter,
    ProgressTracker,
    monitor_from_options,
)
from repro.sweep import SweepPlan, run_sweep


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestProgressTracker:
    def test_uniform_units(self):
        clock = FakeClock()
        tracker = ProgressTracker("mine", units=4, clock=clock)
        tracker.advance()
        assert tracker.fraction == pytest.approx(0.25)
        clock.now = 1.0
        # 25% took 1s -> remaining 75% projects to 3s.
        assert tracker.eta_seconds() == pytest.approx(3.0)

    def test_weighted_eta_honours_lpt_weights(self):
        clock = FakeClock()
        tracker = ProgressTracker(
            "mine", weights=[9.0, 1.0], clock=clock
        )
        clock.now = 9.0
        tracker.advance(0)  # the huge chunk finished
        assert tracker.fraction == pytest.approx(0.9)
        assert tracker.eta_seconds() == pytest.approx(1.0)

    def test_all_zero_weights_fall_back_to_uniform(self):
        tracker = ProgressTracker("mine", weights=[0.0, 0.0])
        tracker.advance(0)
        assert tracker.fraction == pytest.approx(0.5)

    def test_needs_weights_or_units(self):
        with pytest.raises(ParameterError):
            ProgressTracker("mine")

    def test_line_shows_units_percent_eta(self):
        clock = FakeClock()
        tracker = ProgressTracker("mine", units=2, clock=clock)
        clock.now = 2.0
        tracker.advance()
        line = tracker.line()
        assert "mine: 1/2 (50%)" in line
        assert "eta" in line


class TestProgressReporter:
    def test_non_tty_appends_lines(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream, min_interval=0.0)
        reporter.update("a")
        reporter.update("b")
        assert stream.getvalue() == "a\nb\n"

    def test_rate_limit(self):
        clock = FakeClock()
        stream = io.StringIO()
        reporter = ProgressReporter(
            stream, min_interval=10.0, clock=clock
        )
        reporter.update("a")
        reporter.update("b")  # suppressed
        reporter.update("c", force=True)
        clock.now = 11.0
        reporter.update("d")
        assert stream.getvalue() == "a\nc\nd\n"

    def test_note_always_prints(self):
        clock = FakeClock()
        stream = io.StringIO()
        reporter = ProgressReporter(
            stream, min_interval=10.0, clock=clock
        )
        reporter.update("a")
        reporter.note("stale heartbeat: worker 1 silent")
        assert "stale heartbeat" in stream.getvalue()

    def test_closed_stream_is_not_fatal(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream, min_interval=0.0)
        stream.close()
        reporter.update("a")  # must not raise
        reporter.close()


class TestMiningMonitor:
    def test_phase_stack_unit_done_hits_innermost(self):
        stream = io.StringIO()
        monitor = MiningMonitor(
            reporter=ProgressReporter(stream, min_interval=0.0)
        )
        monitor.phase_started("sweep", units=2)
        monitor.phase_started("mine", units=3)
        monitor.unit_done(0)
        monitor.phase_finished()
        monitor.unit_done(0)
        monitor.phase_finished()
        out = stream.getvalue()
        assert "mine: 1/3" in out
        assert "sweep: 1/2" in out

    def test_worker_stale_dedupes_per_execution(self):
        monitor = MiningMonitor(registry=MetricsRegistry())
        first = monitor.worker_stale(3, 111, 40.0, execution=1)
        again = monitor.worker_stale(3, 111, 41.0, execution=1)
        second = monitor.worker_stale(3, 111, 12.0, execution=2)
        assert first is not None and second is not None
        assert again is None
        assert len(monitor.stale_reports) == 2
        assert "worker 111 on chunk 3 silent for 40.0s" in (
            first.describe()
        )
        counter = monitor.registry.counter("repro_worker_stale_total")
        assert counter.value == 2.0

    def test_heartbeat_gauge_labels(self):
        monitor = MiningMonitor(registry=MetricsRegistry())
        monitor.worker_beat(2, 4242, 0.7)
        snapshot = monitor.registry.snapshot()
        gauges = {
            (entry["name"], entry["labels"]["chunk"],
             entry["labels"]["pid"]): entry["value"]
            for entry in snapshot["gauges"]
        }
        assert gauges[(HEARTBEAT_GAUGE, "2", "4242")] == pytest.approx(0.7)

    def test_run_finished_emits_final_snapshot(self):
        stream = io.StringIO()
        monitor = MiningMonitor(
            emitter=MetricsEmitter(
                MetricsRegistry(), stream, interval=3600.0
            )
        )
        monitor.run_finished(
            engine="rp-growth", stats=None, seconds=0.5,
            patterns_found=8,
        )
        monitor.close()
        lines = [
            json.loads(line)
            for line in stream.getvalue().splitlines() if line.strip()
        ]
        assert lines, "run_finished must flush at least one snapshot"
        for record in lines:
            validate_metrics_record(record)
        names = {
            entry["name"] for entry in lines[-1]["counters"]
        }
        assert "repro_runs_total" in names

    def test_close_is_idempotent(self):
        monitor = MiningMonitor(
            reporter=ProgressReporter(io.StringIO(), min_interval=0.0)
        )
        monitor.close()
        monitor.close()


class TestMonitorFromOptions:
    def test_none_options_gives_none(self):
        assert monitor_from_options(None) is None

    def test_nothing_enabled_gives_none(self):
        options = ObservabilityOptions(progress=False)
        assert monitor_from_options(options) is None

    def test_injected_monitor_wins(self):
        injected = MiningMonitor()
        options = ObservabilityOptions(monitor=injected)
        assert monitor_from_options(options) is injected

    def test_metrics_only_builds_emitter_without_reporter(self):
        stream = io.StringIO()
        options = ObservabilityOptions(progress=False, metrics=stream)
        monitor = monitor_from_options(options)
        assert monitor is not None
        assert monitor.reporter is None
        assert monitor.emitter is not None
        monitor.close()
        assert stream.getvalue().strip()


class TestSerialEmission:
    """Satellite 6: jobs=1 must still emit, never silently drop."""

    def test_serial_mine_reports_progress_and_metrics(self):
        progress = io.StringIO()
        metrics = io.StringIO()
        monitor = MiningMonitor(
            reporter=ProgressReporter(progress, min_interval=0.0),
            emitter=MetricsEmitter(
                MetricsRegistry(), metrics, interval=3600.0
            ),
        )
        found = mine_recurring_patterns(
            paper_running_example(), per=2, min_ps=3, min_rec=2,
            observability=ObservabilityOptions(monitor=monitor),
        )
        monitor.close()
        assert len(found) == 8
        out = progress.getvalue()
        assert "mine[rp-growth]: 1/1 (100%)" in out
        assert "rp-growth: 8 patterns" in out
        records = [
            json.loads(line)
            for line in metrics.getvalue().splitlines() if line.strip()
        ]
        assert records, "serial run must emit at least one snapshot"
        last = records[-1]
        counter_names = {e["name"] for e in last["counters"]}
        assert "repro_mining_patterns_found_total" in counter_names
        heartbeat = [
            entry for entry in last["gauges"]
            if entry["name"] == HEARTBEAT_GAUGE
        ]
        assert heartbeat, "serial run must register the heartbeat gauge"
        assert heartbeat[0]["labels"]["chunk"] == "serial"
        assert heartbeat[0]["labels"]["pid"] == str(os.getpid())

    def test_serial_metrics_via_options_path(self):
        # The façade builds (and closes) the monitor itself from the
        # metrics= field; the file must hold >= 1 validated snapshot.
        metrics = io.StringIO()
        mine_recurring_patterns(
            paper_running_example(), per=2, min_ps=3, min_rec=2,
            observability=ObservabilityOptions(
                progress=False, metrics=metrics
            ),
        )
        records = [
            json.loads(line)
            for line in metrics.getvalue().splitlines() if line.strip()
        ]
        assert records
        for record in records:
            validate_metrics_record(record)

    def test_sweep_serial_progress_counts_cells(self):
        progress = io.StringIO()
        monitor = MiningMonitor(
            reporter=ProgressReporter(progress, min_interval=0.0)
        )
        run_sweep(
            paper_running_example(),
            SweepPlan(pers=(2,), min_ps_values=(3,), min_recs=(1, 2)),
            observability=ObservabilityOptions(monitor=monitor),
        )
        monitor.close()
        out = progress.getvalue()
        assert "sweep: 2/2 (100%)" in out
        assert "1 mined, 1 derived" in out

    def test_heartbeat_gauges_jobs_1_and_2_same_registry(self):
        # The same injected monitor accumulates heartbeat gauges across
        # a serial and a parallel run — the merged view a service would
        # hold.  Chunk labels must cover 'serial' and real chunk ids.
        registry = MetricsRegistry()
        monitor = MiningMonitor(registry=registry)
        for jobs in (1, 2):
            mine_recurring_patterns(
                paper_running_example(), per=2, min_ps=3, min_rec=2,
                jobs=jobs,
                observability=ObservabilityOptions(monitor=monitor),
            )
        monitor.close()
        chunks = {
            entry["labels"]["chunk"]
            for entry in registry.snapshot()["gauges"]
            if entry["name"] == HEARTBEAT_GAUGE
        }
        assert "serial" in chunks
        assert any(label != "serial" for label in chunks), chunks
        runs = registry.counter(
            "repro_runs_total", {"engine": "rp-growth"}
        )
        assert runs.value == 2.0
