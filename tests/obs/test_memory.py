"""Unit tests for tracemalloc-based memory sampling."""

import tracemalloc

from repro.obs.memory import MemoryTracker, peak_memory
from repro.obs.spans import SpanCollector, span


class TestMemoryTracker:
    def test_peak_sees_allocations(self):
        tracker = MemoryTracker()
        tracker.start()
        try:
            blob = bytearray(1 << 20)
            assert tracker.peak() >= 1 << 20
            del blob
        finally:
            tracker.stop()
        assert not tracemalloc.is_tracing()

    def test_does_not_stop_an_outer_trace(self):
        tracemalloc.start()
        try:
            tracker = MemoryTracker()
            tracker.start()
            tracker.stop()
            assert tracemalloc.is_tracing()
        finally:
            tracemalloc.stop()

    def test_reset_peak_narrows_the_window(self):
        tracker = MemoryTracker()
        tracker.start()
        try:
            blob = bytearray(1 << 20)
            del blob
            tracker.reset_peak()
            assert tracker.peak() < 1 << 20
        finally:
            tracker.stop()

    def test_sample_returns_current_and_peak(self):
        tracker = MemoryTracker()
        tracker.start()
        try:
            current, peak = tracker.sample()
            assert 0 <= current <= peak
        finally:
            tracker.stop()


class TestPeakMemoryContext:
    def test_measures_block_peak(self):
        with peak_memory() as measured:
            blob = bytearray(2 << 20)
            del blob
        assert measured.bytes >= 2 << 20
        assert not tracemalloc.is_tracing()


class TestSpanMemoryIntegration:
    def test_spans_record_peaks_when_tracking(self):
        collector = SpanCollector(track_memory=True)
        with collector:
            with span("alloc"):
                blob = bytearray(1 << 20)
                del blob
            with span("idle"):
                pass
        alloc, idle = collector.spans
        assert alloc.memory_peak_bytes >= 1 << 20
        assert idle.memory_peak_bytes is not None
        assert idle.memory_peak_bytes < 1 << 20
        assert collector.memory_peak_bytes >= 1 << 20
        assert not tracemalloc.is_tracing()

    def test_child_peak_folds_into_parent(self):
        collector = SpanCollector(track_memory=True)
        with collector:
            with span("outer"):
                with span("inner"):
                    blob = bytearray(1 << 20)
                    del blob
        (outer,) = collector.spans
        inner = outer.children[0]
        assert inner.memory_peak_bytes >= 1 << 20
        assert outer.memory_peak_bytes >= inner.memory_peak_bytes

    def test_no_memory_fields_when_tracking_off(self):
        collector = SpanCollector()
        with collector:
            with span("plain"):
                bytearray(1 << 16)
        assert collector.spans[0].memory_peak_bytes is None
        assert collector.memory_peak_bytes is None
