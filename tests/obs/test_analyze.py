"""Tests for post-hoc trace analysis (repro.obs.analyze)."""

import io

from repro import mine_recurring_patterns
from repro.core.options import ObservabilityOptions
from repro.datasets import paper_running_example
from repro.obs.analyze import (
    TraceAnalysis,
    analyze_trace,
    render_analysis,
    render_comparison,
    render_span_tree,
)
from repro.obs.report import iter_trace
from repro.sweep import SweepPlan, run_sweep


def _run_trace(engine="rp-growth"):
    stream = io.StringIO()
    mine_recurring_patterns(
        paper_running_example(), per=2, min_ps=3, min_rec=2,
        engine=engine,
        observability=ObservabilityOptions(
            trace=stream, progress=False
        ),
    )
    stream.seek(0)
    return stream


class TestIterTrace:
    def test_streams_lazily_from_handle(self):
        stream = io.StringIO('{"a": 1}\n\n{"b": 2}\n')
        iterator = iter_trace(stream)
        assert next(iterator) == {"a": 1}
        assert next(iterator) == {"b": 2}

    def test_path_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"kind": "span", "name": "x"}\n')
        assert list(iter_trace(str(path))) == [
            {"kind": "span", "name": "x"}
        ]

    def test_read_trace_matches_iter_trace(self, tmp_path):
        from repro.obs.report import read_trace

        path = tmp_path / "t.jsonl"
        path.write_text('{"a": 1}\n{"b": 2}\n')
        assert read_trace(str(path)) == list(iter_trace(str(path)))


class TestTraceAnalysis:
    def test_buckets_by_kind(self):
        analysis = analyze_trace(_run_trace())
        assert len(analysis.runs) == 1
        assert len(analysis.span_lines) == 4
        assert analysis.record_count == 5

    def test_run_spans_preferred_over_span_lines(self):
        # write_run emits span lines AND the run record (which embeds
        # the same spans) — counting both would double every phase.
        analysis = analyze_trace(_run_trace())
        totals = analysis.phase_totals()
        run = analysis.runs[0]
        recorded = {
            payload["name"]: payload["seconds"]
            for payload in run["spans"]
        }
        assert set(totals) == set(recorded)
        for name, seconds in recorded.items():
            assert totals[name] == seconds  # not doubled

    def test_span_lines_only_rebuilds_tree(self):
        records = [
            {"kind": "span", "path": "mine", "name": "mine",
             "seconds": 2.0},
            {"kind": "span", "path": "mine.chunk[0]",
             "name": "chunk[0]", "seconds": 1.5},
        ]
        analysis = TraceAnalysis.from_records(records)
        roots = analysis.span_roots()
        assert len(roots) == 1
        assert roots[0].name == "mine"
        assert roots[0].children[0].name == "chunk[0]"

    def test_critical_path_descends_max_child(self):
        records = [
            {"kind": "span", "path": "run", "name": "run",
             "seconds": 3.0},
            {"kind": "span", "path": "run.fast", "name": "fast",
             "seconds": 0.5},
            {"kind": "span", "path": "run.slow", "name": "slow",
             "seconds": 2.5},
            {"kind": "span", "path": "run.slow.inner", "name": "inner",
             "seconds": 2.0},
        ]
        analysis = TraceAnalysis.from_records(records)
        assert [name for name, _ in analysis.critical_path()] == [
            "run", "slow", "inner",
        ]

    def test_sweep_record_cells_become_roots(self):
        stream = io.StringIO()
        run_sweep(
            paper_running_example(),
            SweepPlan(pers=(2,), min_ps_values=(3,), min_recs=(1, 2)),
            observability=ObservabilityOptions(
                trace=stream, progress=False
            ),
        )
        stream.seek(0)
        analysis = analyze_trace(stream)
        assert len(analysis.sweeps) == 1
        roots = analysis.span_roots()
        assert len(roots) == 2
        assert any("derived" in root.name for root in roots)

    def test_total_seconds_from_records(self):
        analysis = analyze_trace(_run_trace())
        assert analysis.total_seconds() == analysis.runs[0]["seconds"]


class TestRendering:
    def test_render_analysis_has_all_sections(self):
        text = render_analysis(analyze_trace(_run_trace()))
        assert "1 run" in text
        assert "span tree:" in text
        assert "per-phase aggregate" in text
        assert "critical path:" in text
        assert "8 patterns" in text

    def test_render_span_tree_indents_and_shares(self):
        records = [
            {"kind": "span", "path": "run", "name": "run",
             "seconds": 2.0},
            {"kind": "span", "path": "run.mine", "name": "mine",
             "seconds": 1.0},
        ]
        roots = TraceAnalysis.from_records(records).span_roots()
        text = render_span_tree(roots)
        assert "run  2.000000s (100.0%)" in text
        assert "  mine  1.000000s ( 50.0%)" in text

    def test_render_comparison_deltas(self):
        a = analyze_trace(_run_trace("rp-growth"))
        b = analyze_trace(_run_trace("rp-eclat"))
        text = render_comparison(a, b, label_a="growth",
                                 label_b="eclat")
        assert "growth (s)" in text and "eclat (s)" in text
        assert "%" in text
        assert "patterns: growth=8 eclat=8" in text
        # phases unique to one side render a dash, delta n/a
        assert "n/a" in text

    def test_render_comparison_flags_pattern_mismatch(self):
        a = analyze_trace(_run_trace())
        records = [{
            "schema": "repro-run/v1", "kind": "run",
            "engine": "rp-growth", "params": {},
            "patterns_found": 3, "seconds": 1.0,
            "counters": {}, "spans": [],
        }]
        b = TraceAnalysis.from_records(records, source="other")
        assert "DIFFER" in render_comparison(a, b)

    def test_metrics_snapshot_rendered(self):
        records = [{
            "schema": "repro-metrics/v1", "kind": "metrics",
            "at_unix": 0.0,
            "counters": [
                {"name": "repro_runs_total",
                 "labels": {"engine": "rp-growth"}, "value": 2.0},
            ],
            "gauges": [], "histograms": [],
        }]
        text = render_analysis(TraceAnalysis.from_records(records))
        assert "final metrics snapshot" in text
        assert "repro_runs_total{engine=rp-growth}" in text
