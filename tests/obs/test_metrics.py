"""Tests for the process-safe metrics registry (repro.obs.metrics)."""

import io
import json
import threading

import pytest

from repro.exceptions import ParameterError
from repro.obs.metrics import (
    METRICS_SCHEMA,
    MetricsEmitter,
    MetricsRegistry,
    publish_mining_stats,
    render_prometheus,
    validate_metrics_record,
)
from repro.obs.counters import MiningStats


class TestCounter:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_things_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ParameterError):
            registry.counter("repro_things_total").inc(-1)

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", {"engine": "rp-growth"})
        b = registry.counter("repro_x_total", {"engine": "rp-growth"})
        assert a is b

    def test_label_sets_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", {"engine": "a"}).inc()
        registry.counter("repro_x_total", {"engine": "b"}).inc(2)
        snapshot = registry.snapshot()
        values = {
            tuple(sorted(entry["labels"].items())): entry["value"]
            for entry in snapshot["counters"]
        }
        assert values[(("engine", "a"),)] == 1.0
        assert values[(("engine", "b"),)] == 2.0

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(ParameterError):
            registry.gauge("repro_x_total")

    def test_bad_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ParameterError):
            registry.counter("bad name with spaces")


class TestHistogram:
    def test_boundary_value_lands_in_le_bucket(self):
        # Prometheus buckets are `le` (less-or-equal): an observation
        # exactly on a boundary belongs to that boundary's bucket.
        registry = MetricsRegistry()
        hist = registry.histogram("repro_h", boundaries=(1.0, 2.0))
        hist.observe(1.0)
        hist.observe(2.0)
        hist.observe(2.0001)
        assert hist.bucket_counts() == [1, 1, 1]
        assert hist.cumulative_counts() == [1, 2, 3]

    def test_below_first_and_above_last(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_h", boundaries=(1.0,))
        hist.observe(0.0)
        hist.observe(100.0)
        assert hist.bucket_counts() == [1, 1]
        assert hist.count == 2
        assert hist.sum == pytest.approx(100.0)

    def test_boundaries_must_increase(self):
        registry = MetricsRegistry()
        with pytest.raises(ParameterError):
            registry.histogram("repro_h", boundaries=(2.0, 1.0))

    def test_boundary_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("repro_h", boundaries=(1.0, 2.0))
        with pytest.raises(ParameterError):
            registry.histogram("repro_h", boundaries=(1.0, 3.0))


class TestSnapshot:
    def test_snapshot_validates(self):
        registry = MetricsRegistry()
        registry.counter("repro_c_total").inc()
        registry.gauge("repro_g").set(4.2)
        registry.histogram("repro_h", boundaries=(0.1, 1.0)).observe(0.5)
        record = registry.snapshot()
        validate_metrics_record(record)
        assert record["schema"] == METRICS_SCHEMA

    def test_snapshot_json_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("repro_c_total", {"engine": "rp-growth"}).inc(3)
        registry.histogram("repro_h", boundaries=(1.0,)).observe(0.5)
        record = json.loads(json.dumps(registry.snapshot()))
        validate_metrics_record(record)
        assert record["counters"][0]["value"] == 3.0

    def test_validation_catches_count_mismatch(self):
        registry = MetricsRegistry()
        registry.histogram("repro_h", boundaries=(1.0,)).observe(0.5)
        record = registry.snapshot()
        record["histograms"][0]["count"] = 99
        with pytest.raises(ValueError):
            validate_metrics_record(record)

    def test_snapshot_under_concurrent_update(self):
        # A snapshot taken while writers hammer the registry must be
        # internally consistent: every histogram's counts sum to its
        # count, and nothing raises.
        registry = MetricsRegistry()
        stop = threading.Event()

        def writer(tag):
            counter = registry.counter(
                "repro_w_total", {"writer": tag}
            )
            hist = registry.histogram(
                "repro_w_seconds", boundaries=(0.5,)
            )
            while not stop.is_set():
                counter.inc()
                hist.observe(0.25)

        threads = [
            threading.Thread(target=writer, args=(str(i),), daemon=True)
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        try:
            for _ in range(50):
                record = registry.snapshot()
                validate_metrics_record(record)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=5.0)
        final = registry.snapshot()
        validate_metrics_record(final)
        total = sum(entry["value"] for entry in final["counters"])
        assert total == final["histograms"][0]["count"]


class TestMergeSnapshot:
    def test_counters_add_gauges_overwrite_histograms_elementwise(self):
        a = MetricsRegistry()
        a.counter("repro_c_total").inc(1)
        a.gauge("repro_g").set(1.0)
        a.histogram("repro_h", boundaries=(1.0,)).observe(0.5)
        b = MetricsRegistry()
        b.counter("repro_c_total").inc(2)
        b.gauge("repro_g").set(7.0)
        b.histogram("repro_h", boundaries=(1.0,)).observe(2.0)
        a.merge_snapshot(b.snapshot())
        record = a.snapshot()
        assert record["counters"][0]["value"] == 3.0
        assert record["gauges"][0]["value"] == 7.0
        hist = record["histograms"][0]
        assert hist["counts"] == [1, 1]
        assert hist["count"] == 2

    def test_histogram_boundary_mismatch_rejected(self):
        a = MetricsRegistry()
        a.histogram("repro_h", boundaries=(1.0,)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("repro_h", boundaries=(2.0,)).observe(0.5)
        with pytest.raises(ParameterError):
            a.merge_snapshot(b.snapshot())


class TestPrometheusRendering:
    def test_cumulative_buckets_and_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "repro_h_seconds", boundaries=(0.1, 1.0)
        )
        hist.observe(0.1)
        hist.observe(0.5)
        hist.observe(5.0)
        text = render_prometheus(registry)
        assert 'repro_h_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_h_seconds_bucket{le="1.0"} 2' in text
        assert 'repro_h_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_h_seconds_count 3" in text
        assert "# TYPE repro_h_seconds histogram" in text

    def test_labels_rendered_and_escaped(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_c_total", {"path": 'a"b\\c'}
        ).inc()
        text = render_prometheus(registry)
        assert 'path="a\\"b\\\\c"' in text


class TestEmitter:
    def test_emit_writes_valid_jsonl(self):
        stream = io.StringIO()
        registry = MetricsRegistry()
        emitter = MetricsEmitter(registry, stream, interval=0.001)
        registry.counter("repro_c_total").inc()
        emitter.emit()
        emitter.close()
        lines = [
            json.loads(line)
            for line in stream.getvalue().splitlines()
            if line.strip()
        ]
        assert lines
        for record in lines:
            validate_metrics_record(record)

    def test_maybe_emit_rate_limited(self):
        stream = io.StringIO()
        emitter = MetricsEmitter(
            MetricsRegistry(), stream, interval=3600.0
        )
        first = emitter.maybe_emit()
        second = emitter.maybe_emit()
        assert first and not second
        emitter.close(final=False)
        assert len(stream.getvalue().splitlines()) == 1


class TestPublishMiningStats:
    def test_every_counter_field_published(self):
        registry = MetricsRegistry()
        stats = MiningStats(patterns_found=7, candidate_items=3)
        publish_mining_stats(registry, stats, engine="rp-growth")
        snapshot = registry.snapshot()
        names = {entry["name"] for entry in snapshot["counters"]}
        for field in MiningStats.field_names():
            assert f"repro_mining_{field}_total" in names
        values = {
            entry["name"]: entry["value"]
            for entry in snapshot["counters"]
        }
        assert values["repro_mining_patterns_found_total"] == 7.0
        labels = {
            tuple(entry["labels"].items())
            for entry in snapshot["counters"]
        }
        assert labels == {(("engine", "rp-growth"),)}
