"""MiningStats merge semantics — the basis of parallel counter parity."""

from repro.obs.counters import MiningStats


class TestMerge:
    def test_merge_adds_every_field(self):
        left = MiningStats(**{
            name: index
            for index, name in enumerate(MiningStats.field_names())
        })
        right = MiningStats(**{
            name: 10 * index
            for index, name in enumerate(MiningStats.field_names())
        })
        result = left.merge(right)
        assert result is left  # in place, chaining-friendly
        for index, name in enumerate(MiningStats.field_names()):
            assert getattr(left, name) == 11 * index

    def test_merge_with_zero_is_identity(self):
        stats = MiningStats(patterns_found=4, erec_evaluations=9)
        before = stats.as_dict()
        stats.merge(MiningStats())
        assert stats.as_dict() == before

    def test_merged_sums_many_parts(self):
        parts = [MiningStats(patterns_found=n) for n in (1, 2, 3)]
        total = MiningStats.merged(parts)
        assert total.patterns_found == 6
        assert all(part.patterns_found != 6 for part in parts[:2])

    def test_merged_of_nothing_is_zero(self):
        assert MiningStats.merged([]).as_dict() == MiningStats().as_dict()

    def test_merge_order_does_not_matter(self):
        a = MiningStats(candidate_items=2, conditional_trees=5)
        b = MiningStats(candidate_items=7, tid_list_entries=3)
        c = MiningStats(patterns_found=1)
        forward = MiningStats.merged([a, b, c]).as_dict()
        backward = MiningStats.merged([c, b, a]).as_dict()
        assert forward == backward
