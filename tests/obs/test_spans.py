"""Unit tests for the span/timer layer."""

import threading

from repro.obs.spans import SpanCollector, current_collector, span


class TestDisabledMode:
    def test_span_without_collector_is_shared_noop(self):
        first = span("anything")
        second = span("other")
        assert first is second  # the shared no-op singleton

    def test_noop_span_yields_none_and_swallows_nothing(self):
        with span("idle") as live:
            assert live is None

    def test_no_collector_active_by_default(self):
        assert current_collector() is None


class TestCollection:
    def test_flat_spans_are_roots(self):
        collector = SpanCollector()
        with collector:
            with span("a"):
                pass
            with span("b"):
                pass
        assert [s.name for s in collector.spans] == ["a", "b"]
        assert all(s.seconds >= 0.0 for s in collector.spans)

    def test_nested_spans_build_a_tree(self):
        collector = SpanCollector()
        with collector:
            with span("outer"):
                with span("inner"):
                    with span("leaf"):
                        pass
                with span("sibling"):
                    pass
        (outer,) = collector.spans
        assert [c.name for c in outer.children] == ["inner", "sibling"]
        assert [c.name for c in outer.children[0].children] == ["leaf"]
        assert list((name, depth) for depth, s in outer.walk()
                    for name in [s.name]) == [
            ("outer", 0), ("inner", 1), ("leaf", 2), ("sibling", 1),
        ]

    def test_child_time_is_contained_in_parent(self):
        collector = SpanCollector()
        with collector:
            with span("outer"):
                with span("inner"):
                    pass
        (outer,) = collector.spans
        assert outer.children[0].seconds <= outer.seconds

    def test_total_sums_same_named_spans(self):
        collector = SpanCollector()
        with collector:
            for _ in range(3):
                with span("step"):
                    pass
        assert collector.total("step") == sum(
            s.seconds for s in collector.spans
        )
        assert collector.total("absent") == 0.0

    def test_collector_deactivates_on_exit(self):
        collector = SpanCollector()
        with collector:
            assert current_collector() is collector
        assert current_collector() is None
        assert span("after") is span("after-too")  # no-op again

    def test_collectors_nest_and_restore(self):
        outer = SpanCollector()
        inner = SpanCollector()
        with outer:
            with span("outer-span"):
                pass
            with inner:
                with span("inner-span"):
                    pass
            assert current_collector() is outer
        assert [s.name for s in outer.spans] == ["outer-span"]
        assert [s.name for s in inner.spans] == ["inner-span"]

    def test_spans_survive_exceptions(self):
        collector = SpanCollector()
        try:
            with collector:
                with span("boom"):
                    raise RuntimeError("inside span")
        except RuntimeError:
            pass
        assert [s.name for s in collector.spans] == ["boom"]
        assert current_collector() is None

    def test_collector_is_thread_local(self):
        seen = {}

        def worker():
            seen["collector"] = current_collector()
            seen["span"] = span("elsewhere")

        collector = SpanCollector()
        with collector:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["collector"] is None
        assert seen["span"] is span("noop")  # other thread got the no-op

    def test_as_dict_shape(self):
        collector = SpanCollector()
        with collector:
            with span("outer"):
                with span("inner"):
                    pass
        record = collector.spans[0].as_dict()
        assert record["name"] == "outer"
        assert isinstance(record["seconds"], float)
        assert record["children"][0]["name"] == "inner"
        assert "memory_peak_bytes" not in record


class TestFromDict:
    def test_round_trips_a_nested_tree(self):
        from repro.obs.spans import Span

        collector = SpanCollector()
        with collector:
            with span("outer"):
                with span("inner"):
                    pass
        original = collector.spans[0]
        rebuilt = Span.from_dict(original.as_dict())
        assert rebuilt.as_dict() == original.as_dict()
        assert rebuilt.children[0].name == "inner"
        assert rebuilt.started == 0.0  # absolute clock is not serialized

    def test_round_trips_memory_peaks(self):
        from repro.obs.spans import Span

        record = {
            "name": "mine",
            "seconds": 0.5,
            "memory_peak_bytes": 4096,
            "children": [{"name": "chunk[0]", "seconds": 0.25}],
        }
        rebuilt = Span.from_dict(record)
        assert rebuilt.memory_peak_bytes == 4096
        assert rebuilt.as_dict() == record
