"""Unit tests for telemetry packaging, trace files and validation."""

import io
import json
import logging

import pytest

from repro.obs.counters import MiningStats
from repro.obs.report import (
    RUN_SCHEMA,
    MiningTelemetry,
    TraceWriter,
    profile_call,
    read_trace,
    validate_run_record,
)
from repro.obs.spans import SpanCollector, span


def _sample_telemetry() -> MiningTelemetry:
    collector = SpanCollector()
    with collector:
        with span("first_scan"):
            pass
        with span("mine"):
            with span("conditional"):
                pass
    return MiningTelemetry(
        engine="rp-growth",
        params={"per": 2, "min_ps": 3, "min_rec": 2},
        stats=MiningStats(patterns_found=8, erec_evaluations=24),
        spans=collector.spans,
        patterns_found=8,
        seconds=0.25,
    )


class TestRunRecord:
    def test_record_validates(self):
        record = _sample_telemetry().as_run_record()
        validate_run_record(record)  # must not raise
        assert record["schema"] == RUN_SCHEMA
        assert record["counters"]["patterns_found"] == 8

    def test_record_is_json_serialisable(self):
        text = json.dumps(_sample_telemetry().as_run_record())
        validate_run_record(json.loads(text))

    @pytest.mark.parametrize("missing", [
        "engine", "params", "patterns_found", "seconds", "counters", "spans",
    ])
    def test_missing_key_rejected(self, missing):
        record = _sample_telemetry().as_run_record()
        del record[missing]
        with pytest.raises(ValueError, match=missing):
            validate_run_record(record)

    def test_wrong_schema_rejected(self):
        record = _sample_telemetry().as_run_record()
        record["schema"] = "bogus/v0"
        with pytest.raises(ValueError, match="schema"):
            validate_run_record(record)

    def test_missing_counter_rejected(self):
        record = _sample_telemetry().as_run_record()
        del record["counters"]["erec_evaluations"]
        with pytest.raises(ValueError, match="erec_evaluations"):
            validate_run_record(record)

    def test_phase_seconds_aggregates_by_name(self):
        telemetry = _sample_telemetry()
        phases = telemetry.phase_seconds()
        assert set(phases) == {"first_scan", "mine", "conditional"}


class TestTraceRoundTrip:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        telemetry = _sample_telemetry()
        with TraceWriter(str(path)) as writer:
            writer.write_run(telemetry)
        records = read_trace(str(path))
        kinds = [record["kind"] for record in records]
        assert kinds == ["span", "span", "span", "run"]
        assert records[2]["path"] == "mine.conditional"
        validate_run_record(records[-1])
        assert records[-1]["patterns_found"] == 8

    def test_writer_accepts_open_handle(self):
        handle = io.StringIO()
        with TraceWriter(handle) as writer:
            writer.write_record({"kind": "note"})
        assert json.loads(handle.getvalue()) == {"kind": "note"}

    def test_every_line_is_complete_json(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceWriter(str(path)) as writer:
            writer.write_run(_sample_telemetry())
        for line in path.read_text().splitlines():
            json.loads(line)  # must not raise


class TestSummaryAndLogging:
    def test_summary_table_mentions_phases_and_counters(self):
        table = _sample_telemetry().summary_table()
        assert "first_scan" in table
        assert "  conditional" in table  # indented child
        assert "patterns_found" in table
        assert "total" in table

    def test_log_sink_emits_run_and_phase_records(self, caplog):
        telemetry = _sample_telemetry()
        with caplog.at_level(logging.INFO, logger="repro.obs"):
            telemetry.log()
        messages = [record.getMessage() for record in caplog.records]
        assert any("engine=rp-growth" in m for m in messages)
        assert any(m.startswith("phase mine") for m in messages)


class TestProfileCall:
    def test_wraps_any_callable(self):
        def work():
            with span("inner"):
                pass
            return [1, 2, 3]

        result, telemetry = profile_call(
            work, engine="baseline/frequent", params={"min_sup": 2}
        )
        assert result == [1, 2, 3]
        assert telemetry.patterns_found == 3
        (run,) = telemetry.spans
        assert run.name == "run"
        assert [c.name for c in run.children] == ["inner"]
        validate_run_record(telemetry.as_run_record())
