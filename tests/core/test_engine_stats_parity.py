"""Cross-engine counter parity and telemetry-transparency checks.

Every engine populates the shared :class:`repro.obs.counters.MiningStats`
protocol, so the ablation benches can compare any pair of engines.  On
the paper's running example (Table 2) the counters must agree:

* every engine reports the same ``patterns_found``;
* the pruning engines compute the exact recurrence of exactly
  the same candidate set (``Erec`` is anti-monotone, so the candidate
  lattice is engine-order independent), hence equal
  ``recurrence_evaluations`` and ``candidate_patterns``;
* collecting telemetry must never change the mined patterns.
"""

import pytest

from repro.core.miner import ENGINES, mine_recurring_patterns
from repro.core.options import ObservabilityOptions
from repro.datasets import paper_running_example

PRUNING_ENGINES = (
    "rp-growth", "rp-eclat", "rp-eclat-np", "rp-eclat-vec"
)


@pytest.fixture(scope="module")
def per_engine_runs():
    database = paper_running_example()
    runs = {}
    for engine in ENGINES:
        found, telemetry = mine_recurring_patterns(
            database, per=2, min_ps=3, min_rec=2, engine=engine,
            observability=ObservabilityOptions(collect_stats=True),
        )
        runs[engine] = (found, telemetry)
    return runs


def _keys(patterns):
    return sorted(frozenset(p.items) for p in patterns)


class TestCounterParity:
    def test_all_engines_expose_counters(self, per_engine_runs):
        for engine, (_, telemetry) in per_engine_runs.items():
            assert telemetry.stats is not None, engine
            assert telemetry.stats.patterns_found == 8, engine

    def test_patterns_found_parity(self, per_engine_runs):
        counts = {
            engine: telemetry.stats.patterns_found
            for engine, (_, telemetry) in per_engine_runs.items()
        }
        assert len(set(counts.values())) == 1, counts

    def test_recurrence_evaluations_parity_across_pruning_engines(
        self, per_engine_runs
    ):
        evaluations = {
            engine: per_engine_runs[engine][1].stats.recurrence_evaluations
            for engine in PRUNING_ENGINES
        }
        assert len(set(evaluations.values())) == 1, evaluations
        candidates = {
            engine: per_engine_runs[engine][1].stats.candidate_patterns
            for engine in PRUNING_ENGINES
        }
        assert len(set(candidates.values())) == 1, candidates

    def test_pruning_engines_agree_on_first_scan(self, per_engine_runs):
        for engine in PRUNING_ENGINES:
            stats = per_engine_runs[engine][1].stats
            assert stats.candidate_items == 6, engine
            assert stats.pruned_items == 1, engine  # item g

    def test_naive_evaluates_every_occurring_itemset(self, per_engine_runs):
        stats = per_engine_runs["naive"][1].stats
        assert stats.erec_evaluations == 0  # no Erec bound at all
        assert stats.recurrence_evaluations > max(
            per_engine_runs[e][1].stats.recurrence_evaluations
            for e in PRUNING_ENGINES
        )

    def test_structure_counters_match_engine_family(self, per_engine_runs):
        assert per_engine_runs["rp-growth"][1].stats.initial_tree_nodes > 0
        assert per_engine_runs["rp-growth"][1].stats.tid_list_entries == 0
        for engine in ("rp-eclat", "rp-eclat-np", "rp-eclat-vec"):
            stats = per_engine_runs[engine][1].stats
            assert stats.initial_tree_nodes == 0, engine
            assert stats.tid_list_entries > 0, engine


class TestTelemetryTransparency:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_collect_stats_returns_identical_patterns(
        self, engine, per_engine_runs
    ):
        database = paper_running_example()
        plain = mine_recurring_patterns(
            database, per=2, min_ps=3, min_rec=2, engine=engine
        )
        observed, _ = per_engine_runs[engine]
        assert _keys(plain) == _keys(observed)
        for pattern in plain:
            twin = next(p for p in observed if p.items == pattern.items)
            assert twin.support == pattern.support
            assert twin.recurrence == pattern.recurrence
            assert twin.intervals == pattern.intervals

    @pytest.mark.parametrize("engine", ENGINES)
    def test_spans_cover_the_engine_phases(self, engine, per_engine_runs):
        telemetry = per_engine_runs[engine][1]
        names = {s.name for root in telemetry.spans for _, s in root.walk()}
        assert "transform" in names
        assert "mine" in names
        if engine == "rp-growth":
            assert {"first_scan", "tree_build"} <= names
