"""Unit tests for the exhaustive reference miner."""

import pytest

from repro.core.naive import mine_recurring_patterns_naive
from repro.datasets import paper_table2_patterns
from repro.exceptions import SearchSpaceError
from repro.timeseries.database import TransactionalDatabase


class TestCorrectness:
    def test_paper_table2(self, running_example):
        found = mine_recurring_patterns_naive(
            running_example, per=2, min_ps=3, min_rec=2
        )
        got = {
            "".join(sorted(p.items)): (
                p.support,
                p.recurrence,
                [(iv.start, iv.end, iv.periodic_support) for iv in p.intervals],
            )
            for p in found
        }
        assert got == paper_table2_patterns()

    def test_empty_database(self):
        found = mine_recurring_patterns_naive(
            TransactionalDatabase(), per=1, min_ps=1, min_rec=1
        )
        assert len(found) == 0

    def test_only_occurring_itemsets_considered(self):
        # a and b never co-occur, so {a, b} must not crash anything and
        # must not be reported even at the loosest thresholds.
        db = TransactionalDatabase([(1, "a"), (2, "b"), (3, "a"), (4, "b")])
        found = mine_recurring_patterns_naive(db, per=5, min_ps=1, min_rec=1)
        assert "ab" not in found
        assert {"".join(p.items) for p in found} == {"a", "b"}


class TestGuardrails:
    def test_refuses_large_item_universe(self):
        db = TransactionalDatabase(
            [(ts, [f"item{ts}"]) for ts in range(1, 30)]
        )
        with pytest.raises(SearchSpaceError):
            mine_recurring_patterns_naive(db, per=1, min_ps=1, min_rec=1)

    def test_max_items_override(self):
        db = TransactionalDatabase(
            [(ts, [f"item{ts}"]) for ts in range(1, 20)]
        )
        found = mine_recurring_patterns_naive(
            db, per=1, min_ps=1, min_rec=1, max_items=25
        )
        assert len(found) == 19
