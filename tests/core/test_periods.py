"""Unit tests for threshold suggestion."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.intervals import inter_arrival_times
from repro.core.periods import significant_periods, suggest_per
from repro.exceptions import EmptyDatabaseError, ParameterError
from repro.timeseries.database import TransactionalDatabase
from tests.conftest import small_databases


class TestSuggestPer:
    def test_running_example(self, running_example):
        suggestion = suggest_per(running_example, quantile=0.75)
        assert suggestion.per == 2
        assert suggestion.gap_count == 39
        assert suggestion.median_gap == 2
        assert suggestion.max_gap == 5

    def test_quantile_one_is_max_gap(self, running_example):
        suggestion = suggest_per(running_example, quantile=1.0)
        assert suggestion.per == suggestion.max_gap == 5

    def test_mining_at_suggested_per_finds_patterns(self, running_example):
        from repro import mine_recurring_patterns

        suggestion = suggest_per(running_example, quantile=0.75)
        found = mine_recurring_patterns(
            running_example, per=suggestion.per, min_ps=3, min_rec=2
        )
        assert len(found) == 8  # exactly the paper's setting

    def test_rejects_bad_quantile(self, running_example):
        with pytest.raises(ParameterError):
            suggest_per(running_example, quantile=0)
        with pytest.raises(ParameterError):
            suggest_per(running_example, quantile=1.5)

    def test_empty_database(self):
        with pytest.raises(EmptyDatabaseError):
            suggest_per(TransactionalDatabase())

    def test_all_singleton_items(self):
        db = TransactionalDatabase([(1, "a"), (2, "b")])
        with pytest.raises(EmptyDatabaseError):
            suggest_per(db)

    def test_str(self, running_example):
        text = str(suggest_per(running_example))
        assert text.startswith("per=")

    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        db=small_databases(),
        quantile=st.floats(0.05, 1.0),
    )
    def test_suggestion_is_an_observed_gap(self, db, quantile):
        gaps = set()
        for timestamps in db.item_timestamps().values():
            gaps.update(inter_arrival_times(timestamps))
        if not gaps:
            with pytest.raises(EmptyDatabaseError):
                suggest_per(db, quantile=quantile)
            return
        suggestion = suggest_per(db, quantile=quantile)
        assert suggestion.per in gaps
        assert suggestion.per <= suggestion.max_gap


class TestSignificantPeriods:
    def test_detects_heartbeat(self):
        db = TransactionalDatabase([(ts, ["beat"]) for ts in range(0, 90, 3)])
        periods = significant_periods(db)
        assert [p.period for p in periods["beat"]] == [3]

    def test_items_filter(self, running_example):
        periods = significant_periods(running_example, items=["a"])
        assert set(periods) <= {"a"}

    def test_absent_item_omitted(self, running_example):
        periods = significant_periods(running_example, items=["zz"])
        assert periods == {}

    def test_top_caps_results(self):
        # Mixture of two strong rhythms.
        timestamps = sorted(set(range(0, 300, 5)) | set(range(1, 300, 7)))
        db = TransactionalDatabase([(ts, ["x"]) for ts in timestamps])
        capped = significant_periods(db, top=1)
        if "x" in capped:
            assert len(capped["x"]) == 1

    def test_rejects_bad_top(self, running_example):
        with pytest.raises(ParameterError):
            significant_periods(running_example, top=0)
