"""Unit tests for the periodic-interval mathematics (Definitions 4-8)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.intervals import (
    estimated_recurrence,
    inter_arrival_times,
    interesting_intervals,
    periodic_intervals,
    periodic_supports,
    recurrence,
)
from repro.exceptions import ParameterError
from tests.conftest import point_sequences

TS_AB = [1, 3, 4, 7, 11, 12, 14]  # TS^ab from the running example


class TestInterArrivalTimes:
    def test_paper_example4(self):
        assert inter_arrival_times(TS_AB) == (2, 1, 3, 4, 1, 2)

    def test_empty(self):
        assert inter_arrival_times([]) == ()

    def test_single(self):
        assert inter_arrival_times([5]) == ()

    def test_floats(self):
        assert inter_arrival_times([0.5, 2.0]) == (1.5,)


class TestPeriodicIntervals:
    def test_paper_example5(self):
        assert periodic_intervals(TS_AB, per=2) == [
            (1, 4, 3), (7, 7, 1), (11, 14, 3),
        ]

    def test_empty_sequence(self):
        assert periodic_intervals([], per=2) == []

    def test_single_occurrence_is_one_run(self):
        assert periodic_intervals([9], per=2) == [(9, 9, 1)]

    def test_all_gaps_within_period_one_run(self):
        assert periodic_intervals([1, 2, 3, 4], per=1) == [(1, 4, 4)]

    def test_all_gaps_outside_period_all_singletons(self):
        assert periodic_intervals([1, 5, 9], per=2) == [
            (1, 1, 1), (5, 5, 1), (9, 9, 1),
        ]

    def test_gap_exactly_per_continues_run(self):
        assert periodic_intervals([1, 3], per=2) == [(1, 3, 2)]

    def test_float_period(self):
        assert periodic_intervals([0.0, 1.4, 3.0], per=1.5) == [
            (0.0, 1.4, 2), (3.0, 3.0, 1),
        ]

    def test_rejects_non_positive_period(self):
        with pytest.raises(ParameterError):
            periodic_intervals(TS_AB, per=0)

    def test_rejects_non_increasing_timestamps(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            periodic_intervals([1, 1, 2], per=2)

    def test_rejects_decreasing_timestamps(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            periodic_intervals([3, 1], per=2)

    def test_periodic_supports(self):
        assert periodic_supports(TS_AB, per=2) == [3, 1, 3]


class TestInterestingIntervals:
    def test_paper_example7(self):
        assert interesting_intervals(TS_AB, per=2, min_ps=3) == [
            (1, 4, 3), (11, 14, 3),
        ]

    def test_min_ps_one_keeps_everything(self):
        assert len(interesting_intervals(TS_AB, per=2, min_ps=1)) == 3

    def test_high_min_ps_keeps_nothing(self):
        assert interesting_intervals(TS_AB, per=2, min_ps=4) == []

    def test_rejects_bad_min_ps(self):
        with pytest.raises(ParameterError):
            interesting_intervals(TS_AB, per=2, min_ps=0)


class TestRecurrence:
    def test_paper_example8(self):
        assert recurrence(TS_AB, per=2, min_ps=3) == 2

    def test_pattern_c_from_example10(self):
        # TS^c = {2,4,5,7,9,10,12}: one long run => Rec = 1.
        ts_c = [2, 4, 5, 7, 9, 10, 12]
        assert recurrence(ts_c, per=2, min_ps=3) == 1

    def test_empty(self):
        assert recurrence([], per=2, min_ps=1) == 0


class TestEstimatedRecurrence:
    def test_paper_example11(self):
        # TS^g = {1,5,6,7,12,14}; runs {1}, {5,6,7}, {12,14}.
        assert estimated_recurrence([1, 5, 6, 7, 12, 14], per=2, min_ps=3) == 1

    def test_long_run_counts_multiple(self):
        # One run of 6 with min_ps=3 could split into 2 interesting runs.
        assert estimated_recurrence([1, 2, 3, 4, 5, 6], per=1, min_ps=3) == 2

    def test_empty(self):
        assert estimated_recurrence([], per=1, min_ps=1) == 0


class TestIntervalInvariants:
    """Property-based invariants of the run decomposition."""

    @given(ts=point_sequences(), per=st.integers(1, 10))
    def test_runs_partition_the_sequence(self, ts, per):
        runs = periodic_intervals(ts, per)
        assert sum(ps for _, _, ps in runs) == len(ts)

    @given(ts=point_sequences(), per=st.integers(1, 10))
    def test_runs_are_maximal_and_ordered(self, ts, per):
        runs = periodic_intervals(ts, per)
        for (_, prev_end, _), (next_start, _, _) in zip(runs, runs[1:]):
            assert next_start - prev_end > per  # maximality between runs

    @given(ts=point_sequences(), per=st.integers(1, 10))
    def test_run_boundaries_are_occurrences(self, ts, per):
        occurrences = set(ts)
        for start, end, _ in periodic_intervals(ts, per):
            assert start in occurrences
            assert end in occurrences
            assert start <= end

    @given(
        ts=point_sequences(),
        per=st.integers(1, 10),
        min_ps=st.integers(1, 5),
    )
    def test_erec_upper_bounds_recurrence(self, ts, per, min_ps):
        # Property 1 of the paper.
        assert estimated_recurrence(ts, per, min_ps) >= recurrence(
            ts, per, min_ps
        )

    @given(
        ts=point_sequences(max_size=20),
        per=st.integers(1, 10),
        min_ps=st.integers(1, 5),
        drop=st.data(),
    )
    def test_erec_is_anti_monotone_under_subsetting(
        self, ts, per, min_ps, drop
    ):
        # Property 2: removing occurrences can only lower Erec.
        if not ts:
            return
        subset = sorted(
            drop.draw(st.sets(st.sampled_from(ts), max_size=len(ts)))
        )
        assert estimated_recurrence(subset, per, min_ps) <= (
            estimated_recurrence(ts, per, min_ps)
        )

    @given(
        ts=point_sequences(),
        per=st.integers(1, 10),
        min_ps=st.integers(1, 5),
    )
    def test_larger_period_never_decreases_erec(self, ts, per, min_ps):
        assert estimated_recurrence(ts, per + 1, min_ps) >= (
            estimated_recurrence(ts, per, min_ps)
        )
