"""Equivalence tests for the numpy-accelerated primitives and engine."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.accel import (
    FastRPEclat,
    estimated_recurrence_np,
    interesting_intervals_np,
    recurrence_np,
)
from repro.core.intervals import (
    estimated_recurrence,
    interesting_intervals,
    recurrence,
)
from repro.core.rp_growth import RPGrowth
from repro.exceptions import ParameterError
from tests.conftest import mining_parameters, point_sequences, small_databases

RELAXED = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestVectorisedPrimitives:
    def test_paper_example11(self):
        ts = np.array([1, 5, 6, 7, 12, 14])
        assert estimated_recurrence_np(ts, 2, 3) == 1

    def test_empty_array(self):
        empty = np.array([])
        assert estimated_recurrence_np(empty, 2, 3) == 0
        assert recurrence_np(empty, 2, 3) == 0
        assert interesting_intervals_np(empty, 2, 3) == []

    def test_rejects_bad_parameters(self):
        with pytest.raises(ParameterError):
            estimated_recurrence_np(np.array([1]), 0, 1)
        with pytest.raises(ParameterError):
            recurrence_np(np.array([1]), 1, 0)

    def test_interval_values_keep_integer_type(self):
        runs = interesting_intervals_np(np.array([1, 2, 3]), 1, 2)
        assert runs == [(1, 3, 3)]
        assert isinstance(runs[0][0], int)

    def test_float_timestamps(self):
        ts = np.array([0.5, 1.0, 9.5, 10.0])
        assert interesting_intervals_np(ts, 0.5, 2) == [
            (0.5, 1.0, 2), (9.5, 10.0, 2),
        ]

    @RELAXED
    @given(
        ts=point_sequences(),
        per=st.integers(1, 10),
        min_ps=st.integers(1, 5),
    )
    def test_matches_pure_python(self, ts, per, min_ps):
        array = np.asarray(ts)
        assert estimated_recurrence_np(array, per, min_ps) == (
            estimated_recurrence(ts, per, min_ps)
        )
        assert recurrence_np(array, per, min_ps) == recurrence(
            ts, per, min_ps
        )
        assert interesting_intervals_np(array, per, min_ps) == (
            interesting_intervals(ts, per, min_ps)
        )


class TestFastEngine:
    def test_paper_table2(self, running_example):
        fast = FastRPEclat(2, 3, 2).mine(running_example)
        reference = RPGrowth(2, 3, 2).mine(running_example)
        assert fast == reference

    def test_stats_recorded(self, running_example):
        miner = FastRPEclat(2, 3, 2)
        miner.mine(running_example)
        assert miner.last_stats.patterns_found == 8
        assert miner.last_stats.pruned_items == 1

    def test_engine_selectable_from_facade(self, running_example):
        from repro.core.miner import mine_recurring_patterns

        assert len(
            mine_recurring_patterns(
                running_example, 2, 3, 2, engine="rp-eclat-np"
            )
        ) == 8

    @RELAXED
    @given(db=small_databases(), params=mining_parameters())
    def test_fast_engine_equals_rp_growth(self, db, params):
        per, min_ps, min_rec = params
        assert FastRPEclat(per, min_ps, min_rec).mine(db) == RPGrowth(
            per, min_ps, min_rec
        ).mine(db)
