"""The unified MiningRequest/DatasetRef object and its wire form."""

import pytest

from repro.core.options import ObservabilityOptions, ResilienceOptions
from repro.core.request import DatasetRef, MiningRequest, resolve_jobs
from repro.exceptions import ParameterError
from repro.parallel.faults import FaultPlan


# ----------------------------------------------------------------------
# DatasetRef
# ----------------------------------------------------------------------
class TestDatasetRef:
    def test_inline_loads_the_rows(self):
        ref = DatasetRef.inline([(1, ["a", "b"]), (2, ["a"])])
        database = ref.load()
        assert len(database) == 2
        assert ref.label == "inline[2 rows]"

    def test_from_database_round_trips(self, running_example):
        ref = DatasetRef.from_database(running_example)
        assert ref.load().digest() == running_example.digest()

    def test_file_ref(self, tmp_path, running_example):
        from repro.timeseries.io import save_transactional_database

        path = tmp_path / "db.tsv"
        save_transactional_database(running_example, str(path))
        ref = DatasetRef.file(str(path))
        assert ref.label == str(path)
        assert ref.load().digest() == running_example.digest()

    def test_workload_ref(self):
        ref = DatasetRef.named_workload("quest", scale=0.02, seed=7)
        assert ref.label == "quest-0.02"
        assert len(ref.load()) > 0

    def test_unknown_workload_raises_on_load(self):
        ref = DatasetRef.named_workload("bogus")
        with pytest.raises(ParameterError, match="unknown workload"):
            ref.load()

    def test_bad_kind_rejected(self):
        with pytest.raises(ParameterError, match="kind"):
            DatasetRef(kind="url", path="http://x")

    def test_inline_requires_rows(self):
        with pytest.raises(ParameterError, match="rows"):
            DatasetRef(kind="inline")

    def test_file_requires_path(self):
        with pytest.raises(ParameterError, match="path"):
            DatasetRef(kind="file")

    @pytest.mark.parametrize(
        "ref",
        [
            DatasetRef.inline([(1, ["a"]), (2, ["a", "b"])]),
            DatasetRef.file("/data/events.tsv"),
            DatasetRef.named_workload("quest", scale=0.1, seed=3),
        ],
    )
    def test_wire_round_trip(self, ref):
        assert DatasetRef.from_dict(ref.to_dict()) == ref

    def test_from_dict_rejects_non_object(self):
        with pytest.raises(ParameterError, match="object"):
            DatasetRef.from_dict(["inline"])


# ----------------------------------------------------------------------
# MiningRequest validation
# ----------------------------------------------------------------------
class TestMiningRequest:
    def test_defaults(self):
        request = MiningRequest(per=2, min_ps=3)
        assert request.min_rec == 1
        assert request.engine == "rp-growth"
        assert request.jobs == 1  # None normalises to 1
        assert not request.sharded

    def test_threshold_validation_is_eager(self):
        with pytest.raises(ParameterError):
            MiningRequest(per=-1, min_ps=3)
        with pytest.raises(ParameterError):
            MiningRequest(per=2, min_ps=0)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ParameterError):
            MiningRequest(per=2, min_ps=3, engine="bogus")

    def test_jobs_validation_matches_facade(self):
        with pytest.raises(ParameterError, match="positive int"):
            MiningRequest(per=2, min_ps=3, jobs=0)
        with pytest.raises(ParameterError, match="supports_jobs"):
            MiningRequest(per=2, min_ps=3, engine="naive", jobs=2)

    def test_resolve_jobs_is_the_shared_validator(self):
        assert resolve_jobs(None, "rp-growth") == 1
        assert resolve_jobs(3, "rp-growth") == 3
        with pytest.raises(ParameterError, match="supports_jobs"):
            resolve_jobs(2, "naive")

    def test_shards_and_max_events_exclusive(self):
        with pytest.raises(ParameterError, match="mutually exclusive"):
            MiningRequest(
                per=2, min_ps=3, shards=2, max_events_in_memory=100
            )

    def test_sharded_property(self):
        assert MiningRequest(per=2, min_ps=3, shards=2).sharded
        assert MiningRequest(
            per=2, min_ps=3, max_events_in_memory=10
        ).sharded

    def test_options_must_be_options_objects(self):
        with pytest.raises(ParameterError, match="ResilienceOptions"):
            MiningRequest(per=2, min_ps=3, resilience={"timeout": 1})
        with pytest.raises(ParameterError, match="ObservabilityOptions"):
            MiningRequest(per=2, min_ps=3, observability={"trace": "x"})

    def test_with_thresholds_revalidates(self):
        request = MiningRequest(per=2, min_ps=3)
        tightened = request.with_thresholds(min_rec=4)
        assert tightened.min_rec == 4
        assert tightened.per == 2
        with pytest.raises(ParameterError):
            request.with_thresholds(per=-5)


# ----------------------------------------------------------------------
# Cache identity
# ----------------------------------------------------------------------
class TestCacheKeys:
    def test_cache_key_is_the_full_content_address(self):
        request = MiningRequest(per=2, min_ps=3, min_rec=2)
        assert request.cache_key("d1") == ("d1", "rp-growth", 2, 3, 2)

    def test_column_key_drops_min_rec(self):
        loose = MiningRequest(per=2, min_ps=3, min_rec=1)
        tight = MiningRequest(per=2, min_ps=3, min_rec=5)
        assert loose.column_key("d1") == tight.column_key("d1")
        assert loose.cache_key("d1") != tight.cache_key("d1")

    def test_keys_separate_engines_and_datasets(self):
        a = MiningRequest(per=2, min_ps=3, engine="rp-growth")
        b = MiningRequest(per=2, min_ps=3, engine="rp-eclat")
        assert a.column_key("d1") != b.column_key("d1")
        assert a.column_key("d1") != a.column_key("d2")


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------
class TestWireFormat:
    def test_round_trip_preserves_everything_serialisable(self):
        request = MiningRequest(
            per=2.5,
            min_ps=0.02,
            min_rec=3,
            engine="rp-eclat",
            jobs=2,
            shards=4,
            resilience=ResilienceOptions(timeout=9.0, max_retries=1),
            observability=ObservabilityOptions(
                collect_stats=True, dataset="bench"
            ),
            source=DatasetRef.named_workload("quest"),
        )
        assert MiningRequest.from_dict(request.to_dict()) == request

    def test_wire_form_is_json_serialisable(self):
        import json

        request = MiningRequest(
            per=2, min_ps=3, source=DatasetRef.inline([(1, ["a"])])
        )
        restored = MiningRequest.from_dict(
            json.loads(json.dumps(request.to_dict()))
        )
        assert restored.source.load().digest() == \
            request.source.load().digest()

    def test_unknown_fields_rejected(self):
        with pytest.raises(ParameterError, match="unknown field"):
            MiningRequest.from_dict({"per": 2, "min_ps": 3, "nope": 1})
        with pytest.raises(ParameterError, match="unknown field"):
            MiningRequest.from_dict(
                {"per": 2, "min_ps": 3, "resilience": {"fault_plan": {}}}
            )
        with pytest.raises(ParameterError, match="unknown field"):
            MiningRequest.from_dict(
                {"per": 2, "min_ps": 3, "observability": {"trace": "x"}}
            )

    def test_required_fields_enforced(self):
        with pytest.raises(ParameterError, match="'per'"):
            MiningRequest.from_dict({"min_ps": 3})
        with pytest.raises(ParameterError, match="'min_ps'"):
            MiningRequest.from_dict({"per": 2})

    def test_fault_plan_refuses_to_travel(self):
        request = MiningRequest(
            per=2,
            min_ps=3,
            resilience=ResilienceOptions(
                fault_plan=FaultPlan.single("poison", chunk=0)
            ),
        )
        with pytest.raises(ParameterError, match="fault_plan"):
            request.to_dict()

    def test_sinks_refuse_to_travel(self):
        request = MiningRequest(
            per=2,
            min_ps=3,
            observability=ObservabilityOptions(trace="/tmp/t.jsonl"),
        )
        with pytest.raises(ParameterError, match="trace"):
            request.to_dict()
