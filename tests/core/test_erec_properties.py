"""Property tests for the ``Erec`` pruning bound (Section 4.1).

The soundness of every pruning engine rests on two lemma-level facts:

* **anti-monotonicity of the bound** — for itemsets ``X ⊂ Y``,
  ``Erec(X) >= Erec(Y)``.  ``TS^Y ⊆ TS^X`` (a superset occurs in fewer
  transactions), and removing points from a point sequence only splits
  or shortens its periodic runs, and
  ``floor(ps1/m) + floor(ps2/m) <= floor((ps1+ps2+...)/m)`` for any
  split of a run, so the sum of per-run floors cannot grow;
* **the bound bounds** — ``recurrence(X) <= Erec(X)``, because every
  interesting run of length ``ps >= min_ps`` contributes
  ``floor(ps/min_ps) >= 1`` to the estimate.

Recurrence itself is *not* anti-monotone (the paper's Example 10) —
that is exactly why the engines prune on ``Erec`` instead — so these
properties are the whole story of why pruning is lossless.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import estimated_recurrence, recurrence
from tests.conftest import mining_parameters, point_sequences, small_databases


@given(
    db=small_databases(),
    params=mining_parameters(),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=150, deadline=None)
def test_erec_anti_monotone_over_itemsets(db, params, seed):
    """X ⊂ Y implies Erec(X) >= Erec(Y), for itemsets drawn from the
    database's own alphabet."""
    per, min_ps, _ = params
    items = sorted({item for tx in db for item in tx.items})
    if len(items) < 2:
        return
    rng = random.Random(seed)
    superset = rng.sample(items, rng.randint(2, len(items)))
    subset = rng.sample(superset, rng.randint(1, len(superset) - 1))
    erec_sub = estimated_recurrence(db.timestamps_of(subset), per, min_ps)
    erec_super = estimated_recurrence(db.timestamps_of(superset), per, min_ps)
    assert erec_sub >= erec_super, (subset, superset)


@given(
    timestamps=point_sequences(),
    per=st.integers(min_value=1, max_value=8),
    min_ps=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=200, deadline=None)
def test_erec_monotone_over_point_subsequences(timestamps, per, min_ps, seed):
    """Removing points never increases Erec — the point-sequence form
    of the same lemma (TS^Y is always a subsequence of TS^X)."""
    rng = random.Random(seed)
    subsequence = [ts for ts in timestamps if rng.random() < 0.6]
    assert estimated_recurrence(subsequence, per, min_ps) <= (
        estimated_recurrence(timestamps, per, min_ps)
    )


@given(
    timestamps=point_sequences(),
    per=st.integers(min_value=1, max_value=8),
    min_ps=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=200, deadline=None)
def test_recurrence_never_exceeds_erec(timestamps, per, min_ps):
    """Rec(X) <= Erec(X): the bound is actually an upper bound."""
    assert recurrence(timestamps, per, min_ps) <= (
        estimated_recurrence(timestamps, per, min_ps)
    )


@given(db=small_databases(), params=mining_parameters())
@settings(max_examples=100, deadline=None)
def test_recurrence_never_exceeds_erec_on_database_sequences(db, params):
    """The same inequality on every single-item point sequence an
    actual mine would evaluate."""
    per, min_ps, _ = params
    for item, timestamps in db.item_timestamps().items():
        assert recurrence(timestamps, per, min_ps) <= (
            estimated_recurrence(timestamps, per, min_ps)
        ), item
