"""Property-based cross-engine and model-invariant tests.

The three engines — RP-growth (tree), RP-eclat (vertical) and the
exhaustive reference — implement the same model through very different
machinery; agreement on random inputs is the strongest correctness
evidence the suite has.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.intervals import recurrence
from repro.core.naive import mine_recurring_patterns_naive
from repro.core.rp_eclat import RPEclat
from repro.core.rp_growth import RPGrowth
from tests.conftest import mining_parameters, small_databases

RELAXED = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestCrossEngineEquivalence:
    @RELAXED
    @given(db=small_databases(), params=mining_parameters())
    def test_rp_growth_equals_naive(self, db, params):
        per, min_ps, min_rec = params
        growth = RPGrowth(per, min_ps, min_rec).mine(db)
        naive = mine_recurring_patterns_naive(db, per, min_ps, min_rec)
        assert growth == naive

    @RELAXED
    @given(db=small_databases(), params=mining_parameters())
    def test_rp_eclat_equals_naive(self, db, params):
        per, min_ps, min_rec = params
        eclat = RPEclat(per, min_ps, min_rec).mine(db)
        naive = mine_recurring_patterns_naive(db, per, min_ps, min_rec)
        assert eclat == naive

    @RELAXED
    @given(db=small_databases(), params=mining_parameters())
    def test_support_pruning_equals_erec_pruning(self, db, params):
        per, min_ps, min_rec = params
        strong = RPEclat(per, min_ps, min_rec, pruning="erec").mine(db)
        weak = RPEclat(per, min_ps, min_rec, pruning="support").mine(db)
        assert strong == weak


class TestOutputInvariants:
    @RELAXED
    @given(db=small_databases(), params=mining_parameters())
    def test_reported_metadata_is_self_consistent(self, db, params):
        per, min_ps, min_rec = params
        for pattern in RPGrowth(per, min_ps, min_rec).mine(db):
            timestamps = db.timestamps_of(pattern.items)
            assert pattern.support == len(timestamps)
            assert pattern.recurrence >= min_rec
            assert pattern.recurrence == recurrence(timestamps, per, min_ps)
            for interval in pattern.intervals:
                assert interval.periodic_support >= min_ps
                assert interval.start <= interval.end
            # Intervals are disjoint, ordered, and separated by > per.
            for left, right in zip(pattern.intervals, pattern.intervals[1:]):
                assert right.start - left.end > per

    @RELAXED
    @given(db=small_databases(), params=mining_parameters())
    def test_interval_endpoints_are_occurrences(self, db, params):
        per, min_ps, min_rec = params
        for pattern in RPGrowth(per, min_ps, min_rec).mine(db):
            occurrences = set(db.timestamps_of(pattern.items))
            for interval in pattern.intervals:
                assert interval.start in occurrences
                assert interval.end in occurrences


class TestThresholdMonotonicity:
    @RELAXED
    @given(db=small_databases(), params=mining_parameters())
    def test_raising_min_rec_shrinks_results(self, db, params):
        per, min_ps, min_rec = params
        loose = RPGrowth(per, min_ps, min_rec).mine(db)
        tight = RPGrowth(per, min_ps, min_rec + 1).mine(db)
        assert tight.itemsets() <= loose.itemsets()

    @RELAXED
    @given(db=small_databases(), params=mining_parameters())
    def test_raising_min_ps_at_min_rec_one_shrinks_results(self, db, params):
        per, min_ps, _ = params
        loose = RPGrowth(per, min_ps, 1).mine(db)
        tight = RPGrowth(per, min_ps + 1, 1).mine(db)
        assert tight.itemsets() <= loose.itemsets()

    @RELAXED
    @given(db=small_databases(), params=mining_parameters())
    def test_raising_per_at_min_rec_one_grows_results(self, db, params):
        # Observation from Section 5.2: at minRec = 1 a larger period
        # can only turn aperiodic gaps periodic.
        per, min_ps, _ = params
        small = RPGrowth(per, min_ps, 1).mine(db)
        large = RPGrowth(per + 1, min_ps, 1).mine(db)
        assert small.itemsets() <= large.itemsets()


class TestOrderInvariance:
    @RELAXED
    @given(db=small_databases(), params=mining_parameters())
    def test_mining_output_identical_under_any_item_order(self, db, params):
        per, min_ps, min_rec = params
        reference = RPGrowth(per, min_ps, min_rec).mine(db)
        for order in ("support-asc", "lexicographic"):
            assert RPGrowth(
                per, min_ps, min_rec, item_order=order
            ).mine(db) == reference


class TestMaxLengthProperty:
    @RELAXED
    @given(db=small_databases(), params=mining_parameters())
    def test_capped_mining_equals_filtered_full_mining(self, db, params):
        per, min_ps, min_rec = params
        full = RPGrowth(per, min_ps, min_rec).mine(db)
        for cap in (1, 2):
            capped = RPGrowth(
                per, min_ps, min_rec, max_length=cap
            ).mine(db)
            assert capped.itemsets() == {
                p.items for p in full if p.length <= cap
            }
