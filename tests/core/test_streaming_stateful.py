"""Stateful property test for the streaming monitor.

A hypothesis rule-based state machine drives a
:class:`~repro.core.streaming.StreamingRecurrenceMonitor` with an
arbitrary interleaving of transactions and queries, maintaining a naive
shadow model (the full transaction log, recomputed from scratch via the
pure interval functions).  Any divergence between the O(1)-per-event
incremental state and the recomputation is a bug in the streaming
bookkeeping.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.core.intervals import (
    estimated_recurrence,
    interesting_intervals,
    recurrence,
)
from repro.core.streaming import StreamingRecurrenceMonitor

ITEMS = "abcd"


class StreamingShadowModel(RuleBasedStateMachine):
    """Drive the monitor and a recompute-from-scratch shadow in lockstep."""

    @initialize(
        per=st.integers(1, 5),
        min_ps=st.integers(1, 4),
        min_rec=st.integers(1, 3),
    )
    def setup(self, per, min_ps, min_rec):
        self.per = per
        self.min_ps = min_ps
        self.min_rec = min_rec
        self.monitor = StreamingRecurrenceMonitor(per, min_ps, min_rec)
        self.monitor.watch_pattern(["a", "b"], label="a&b")
        self.clock = 0
        self.log = {}  # item -> [timestamps]

    @rule(
        gap=st.integers(1, 12),
        itemset=st.sets(st.sampled_from(ITEMS), min_size=1, max_size=4),
    )
    def feed(self, gap, itemset):
        self.clock += gap
        self.monitor.observe(self.clock, itemset)
        for item in itemset:
            self.log.setdefault(item, []).append(self.clock)
        if {"a", "b"} <= itemset:
            self.log.setdefault("a&b", []).append(self.clock)

    @invariant()
    def incremental_state_matches_recomputation(self):
        if not hasattr(self, "log"):
            return
        for item, timestamps in self.log.items():
            assert self.monitor.support(item) == len(timestamps), item
            assert self.monitor.erec(item) == estimated_recurrence(
                timestamps, self.per, self.min_ps
            ), item
            assert self.monitor.recurrence(
                item, include_open_run=True
            ) == recurrence(timestamps, self.per, self.min_ps), item
            assert [
                (iv.start, iv.end, iv.periodic_support)
                for iv in self.monitor.intervals(item, include_open_run=True)
            ] == interesting_intervals(
                timestamps, self.per, self.min_ps
            ), item

    @invariant()
    def unseen_items_stay_zero(self):
        if not hasattr(self, "log"):
            return
        assert self.monitor.support("never-seen") == 0


StreamingShadowModel.TestCase.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
TestStreamingShadowModel = StreamingShadowModel.TestCase
