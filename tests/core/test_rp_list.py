"""Unit tests for RP-list construction (Algorithm 1, Figure 4)."""

import pytest

from repro.core.model import MiningParameters
from repro.core.rp_list import RPListEntry, build_rp_list
from repro.timeseries.database import TransactionalDatabase

PARAMS = MiningParameters(per=2, min_ps=3, min_rec=2)


def rp_list_for(db):
    return build_rp_list(db, PARAMS.resolve(len(db)))


class TestStreamingEntry:
    def test_first_observation(self):
        entry = RPListEntry("a")
        entry.observe(1, per=2, min_ps=3)
        assert (entry.support, entry.erec, entry.current_ps) == (1, 0, 1)
        assert entry.last_ts == 1

    def test_run_continues_within_period(self):
        entry = RPListEntry("a")
        for ts in (1, 2, 3):
            entry.observe(ts, per=2, min_ps=3)
        assert (entry.support, entry.current_ps) == (3, 3)

    def test_run_break_banks_erec(self):
        entry = RPListEntry("a")
        for ts in (1, 2, 3, 10):
            entry.observe(ts, per=2, min_ps=3)
        assert entry.erec == 1  # floor(3/3) banked at the break
        assert entry.current_ps == 1

    def test_finalize_banks_trailing_run(self):
        entry = RPListEntry("a")
        for ts in (1, 2, 3):
            entry.observe(ts, per=2, min_ps=3)
        entry.finalize(min_ps=3)
        assert entry.erec == 1


class TestPaperFigure4:
    """The worked RP-list values of Figure 4(d)-(f)."""

    def test_final_supports(self, running_example):
        entries = rp_list_for(running_example).entries
        supports = {item: entry.support for item, entry in entries.items()}
        assert supports == {
            "a": 8, "b": 7, "c": 7, "d": 6, "e": 6, "f": 6, "g": 6,
        }

    def test_final_erec_values(self, running_example):
        # Figure 4(e): erec after the final pass.
        entries = rp_list_for(running_example).entries
        erecs = {item: entry.erec for item, entry in entries.items()}
        assert erecs == {
            "a": 2, "b": 2, "c": 2, "d": 2, "e": 2, "f": 2, "g": 1,
        }

    def test_g_is_pruned(self, running_example):
        rp_list = rp_list_for(running_example)
        assert "g" not in rp_list
        assert "g" in rp_list.entries  # still inspectable pre-pruning

    def test_candidates_sorted_by_support(self, running_example):
        # Figure 4(f): a(8), b(7), c(7), d(6), e(6), f(6).
        assert rp_list_for(running_example).candidates == (
            "a", "b", "c", "d", "e", "f",
        )

    def test_ranks_follow_candidate_order(self, running_example):
        rp_list = rp_list_for(running_example)
        assert rp_list.rank("a") == 0
        assert rp_list.rank("f") == 5


class TestProjection:
    def test_sort_transaction_filters_and_orders(self, running_example):
        rp_list = rp_list_for(running_example)
        assert rp_list.sort_transaction(frozenset("gba")) == ["a", "b"]

    def test_sort_transaction_all_pruned(self, running_example):
        rp_list = rp_list_for(running_example)
        assert rp_list.sort_transaction(frozenset("g")) == []

    def test_len(self, running_example):
        assert len(rp_list_for(running_example)) == 6


class TestEdgeCases:
    def test_empty_database(self):
        db = TransactionalDatabase()
        rp_list = build_rp_list(db, PARAMS.resolve(1))
        assert len(rp_list) == 0

    def test_single_transaction(self):
        db = TransactionalDatabase([(1, "ab")])
        rp_list = build_rp_list(
            db, MiningParameters(per=1, min_ps=1, min_rec=1).resolve(1)
        )
        assert set(rp_list.candidates) == {"a", "b"}

    def test_erec_matches_functional_definition(self, running_example):
        # The streaming computation must agree with the pure function.
        from repro.core.intervals import estimated_recurrence

        entries = rp_list_for(running_example).entries
        for item, entry in entries.items():
            ts = running_example.item_timestamps()[item]
            assert entry.erec == estimated_recurrence(ts, 2, 3), item
