"""The engine registry: specs, views, capability-driven behaviour."""

import pytest

from repro.core.engines import (
    ENGINES,
    PARALLEL_ENGINES,
    EngineSpec,
    EngineView,
    engine_names,
    get_engine,
    register_engine,
    unregister_engine,
)
from repro.core.miner import mine_recurring_patterns
from repro.datasets import paper_running_example
from repro.exceptions import ParameterError


class TestRegistry:
    def test_builtin_engines_in_order(self):
        assert tuple(ENGINES) == (
            "rp-growth", "rp-eclat", "rp-eclat-np", "rp-eclat-vec", "naive"
        )
        assert tuple(PARALLEL_ENGINES) == (
            "rp-growth", "rp-eclat", "rp-eclat-np", "rp-eclat-vec"
        )

    def test_get_engine_returns_spec(self):
        spec = get_engine("rp-growth")
        assert isinstance(spec, EngineSpec)
        assert spec.supports_jobs
        assert spec.family == "growth"
        assert not spec.exhaustive

    def test_naive_capabilities(self):
        spec = get_engine("naive")
        assert spec.exhaustive
        assert not spec.supports_jobs

    def test_unknown_engine_message(self):
        with pytest.raises(ParameterError, match="unknown engine 'bogus'"):
            get_engine("bogus")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ParameterError, match="already registered"):
            register_engine("rp-growth", lambda *a, **k: None)

    def test_register_and_unregister_roundtrip(self):
        spec = register_engine(
            "test-dummy", lambda *a, **k: None, description="test only"
        )
        try:
            assert "test-dummy" in ENGINES
            assert get_engine("test-dummy") is spec
            # Not parallel-capable by default.
            assert "test-dummy" not in PARALLEL_ENGINES
        finally:
            unregister_engine("test-dummy")
        assert "test-dummy" not in ENGINES

    def test_spec_validation(self):
        with pytest.raises(ParameterError, match="name"):
            EngineSpec(name="", factory=lambda: None)
        with pytest.raises(ParameterError, match="callable"):
            EngineSpec(name="x", factory="not-callable")
        with pytest.raises(ParameterError, match="family"):
            EngineSpec(name="x", factory=lambda: None, family="magic")


class TestEngineView:
    def test_behaves_like_a_tuple(self):
        assert len(ENGINES) == 5
        assert ENGINES[0] == "rp-growth"
        assert "naive" in ENGINES
        assert ENGINES == (
            "rp-growth", "rp-eclat", "rp-eclat-np", "rp-eclat-vec", "naive"
        )
        assert list(ENGINES) == list(engine_names())

    def test_concatenates_like_a_tuple(self):
        combined = PARALLEL_ENGINES + ("naive",)
        assert isinstance(combined, tuple)
        assert combined == tuple(ENGINES)
        assert ("x",) + PARALLEL_ENGINES == ("x",) + tuple(PARALLEL_ENGINES)

    def test_view_is_live(self):
        view = EngineView()
        before = len(view)
        register_engine("test-live", lambda *a, **k: None)
        try:
            assert len(view) == before + 1
            assert "test-live" in ENGINES
        finally:
            unregister_engine("test-live")
        assert len(view) == before


class _ReversingEngine:
    """A toy engine: delegates to rp-growth (capability demo)."""

    def __init__(self, per, min_ps, min_rec):
        from repro.core.rp_growth import RPGrowth

        self._inner = RPGrowth(per, min_ps, min_rec)
        self.last_stats = None

    def mine(self, database):
        result = self._inner.mine(database)
        self.last_stats = self._inner.last_stats
        return result


class TestCapabilityDrivenDispatch:
    def test_naive_jobs_rejection_is_capability_driven(self):
        with pytest.raises(
            ParameterError, match="'naive' does not support jobs > 1"
        ):
            mine_recurring_patterns(
                paper_running_example(), per=2, min_ps=3, min_rec=2,
                engine="naive", jobs=2,
            )

    def test_registered_engine_mines_through_facade(self):
        register_engine(
            "test-delegate",
            lambda per, min_ps, min_rec, **_: _ReversingEngine(
                per, min_ps, min_rec
            ),
        )
        try:
            found = mine_recurring_patterns(
                paper_running_example(), per=2, min_ps=3, min_rec=2,
                engine="test-delegate",
            )
            assert len(found) == 8
            # No supports_jobs flag -> parallel runs are refused.
            with pytest.raises(ParameterError, match="supports_jobs"):
                mine_recurring_patterns(
                    paper_running_example(), per=2, min_ps=3, min_rec=2,
                    engine="test-delegate", jobs=2,
                )
        finally:
            unregister_engine("test-delegate")
