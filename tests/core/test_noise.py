"""Unit and property tests for the noise-tolerant extension."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.intervals import periodic_intervals
from repro.core.noise import (
    FaultTolerantInterval,
    NoiseTolerantMiner,
    fault_tolerant_intervals,
    fault_tolerant_recurrence,
    mine_noise_tolerant_patterns,
)
from repro.core.rp_growth import RPGrowth
from repro.exceptions import ParameterError
from repro.timeseries.database import TransactionalDatabase
from tests.conftest import mining_parameters, point_sequences, small_databases

RELAXED = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestFaultTolerantIntervals:
    def test_missing_beat_bridged(self):
        ts = [1, 2, 3, 5, 6, 7]
        runs = fault_tolerant_intervals(ts, per=1, fault_per=2, max_faults=1)
        assert runs == [FaultTolerantInterval(1, 7, 6, 1)]

    def test_zero_faults_is_strict_model(self):
        ts = [1, 2, 3, 5, 6, 7]
        strict = fault_tolerant_intervals(ts, per=1, fault_per=2, max_faults=0)
        assert [(r.start, r.end, r.periodic_support) for r in strict] == (
            periodic_intervals(ts, per=1)
        )

    def test_budget_is_per_interval(self):
        # Two faults with budget 1: the second fault closes the interval.
        ts = [1, 2, 4, 6, 7]
        runs = fault_tolerant_intervals(ts, per=1, fault_per=2, max_faults=1)
        assert [(r.start, r.end, r.faults) for r in runs] == [
            (1, 4, 1), (6, 7, 0),
        ]

    def test_budget_two_bridges_both(self):
        ts = [1, 2, 4, 6, 7]
        runs = fault_tolerant_intervals(ts, per=1, fault_per=2, max_faults=2)
        assert runs == [FaultTolerantInterval(1, 7, 5, 2)]

    def test_gap_beyond_fault_per_always_breaks(self):
        ts = [1, 2, 10, 11]
        runs = fault_tolerant_intervals(ts, per=1, fault_per=3, max_faults=5)
        assert len(runs) == 2

    def test_empty_and_single(self):
        assert fault_tolerant_intervals([], 1, 2, 1) == []
        assert fault_tolerant_intervals([5], 1, 2, 1) == [
            FaultTolerantInterval(5, 5, 1, 0)
        ]

    def test_rejects_fault_per_below_per(self):
        with pytest.raises(ParameterError):
            fault_tolerant_intervals([1, 2], per=3, fault_per=2, max_faults=1)

    def test_rejects_non_increasing(self):
        with pytest.raises(ValueError):
            fault_tolerant_intervals([2, 2], per=1, fault_per=2, max_faults=1)

    def test_recurrence_counts_interesting_only(self):
        ts = [1, 2, 3, 10, 11, 12, 20]
        assert fault_tolerant_recurrence(
            ts, per=1, fault_per=2, max_faults=0, min_ps=3
        ) == 2

    def test_str_marks_faults(self):
        assert str(FaultTolerantInterval(1, 7, 6, 1)) == "[1, 7]:6~1"
        assert str(FaultTolerantInterval(1, 3, 3, 0)) == "[1, 3]:3"


class TestMiner:
    def test_bridges_dropout(self):
        db = TransactionalDatabase(
            [(ts, "ab") for ts in [1, 2, 3, 5, 6, 7]]
        )
        strict = RPGrowth(per=1, min_ps=4, min_rec=1).mine(db)
        tolerant = mine_noise_tolerant_patterns(
            db, per=1, min_ps=4, min_rec=1, max_faults=1
        )
        assert len(strict) == 0
        assert tolerant.pattern("ab").support == 6

    def test_default_fault_per_is_twice_per(self):
        miner = NoiseTolerantMiner(per=5, min_ps=2, min_rec=1)
        assert miner.fault_per == 10

    def test_rejects_bad_fault_per(self):
        with pytest.raises(ParameterError):
            NoiseTolerantMiner(per=5, min_ps=2, min_rec=1, fault_per=3)

    def test_empty_database(self):
        assert len(
            NoiseTolerantMiner(1, 1, 1).mine(TransactionalDatabase())
        ) == 0

    def test_fractional_min_ps(self, running_example):
        fractional = mine_noise_tolerant_patterns(
            running_example, per=2, min_ps=0.25, min_rec=2, max_faults=0
        )
        absolute = mine_noise_tolerant_patterns(
            running_example, per=2, min_ps=3, min_rec=2, max_faults=0
        )
        assert fractional == absolute


class TestProperties:
    @RELAXED
    @given(db=small_databases(), params=mining_parameters())
    def test_zero_faults_equals_strict_miner(self, db, params):
        per, min_ps, min_rec = params
        strict = RPGrowth(per, min_ps, min_rec).mine(db)
        tolerant = mine_noise_tolerant_patterns(
            db, per, min_ps, min_rec, fault_per=per, max_faults=0
        )
        assert strict == tolerant

    @RELAXED
    @given(db=small_databases(), params=mining_parameters())
    def test_more_faults_never_lose_patterns_at_min_rec_one(self, db, params):
        # Monotonicity in the fault budget holds at minRec = 1: a gap
        # <= per never closes an interval, so every strict run sits
        # inside one fault-tolerant interval of at least its ps.  At
        # minRec > 1 it can fail — extra credits may MERGE two
        # interesting intervals into one, dropping the recurrence —
        # the same merging phenomenon the paper reports for larger
        # per values (Section 5.2).
        per, min_ps, _ = params
        fewer = mine_noise_tolerant_patterns(
            db, per, min_ps, 1, max_faults=0
        )
        more = mine_noise_tolerant_patterns(
            db, per, min_ps, 1, max_faults=2
        )
        assert fewer.itemsets() <= more.itemsets()

    def test_faults_can_merge_intervals_and_lower_recurrence(self):
        # The concrete counterexample for minRec > 1.
        ts = [1, 2, 3, 5, 6, 7]
        assert fault_tolerant_recurrence(
            ts, per=1, fault_per=2, max_faults=0, min_ps=3
        ) == 2
        assert fault_tolerant_recurrence(
            ts, per=1, fault_per=2, max_faults=1, min_ps=3
        ) == 1

    @RELAXED
    @given(
        ts=point_sequences(),
        per=st.integers(1, 6),
        extra=st.integers(0, 6),
        max_faults=st.integers(0, 3),
    )
    def test_decomposition_partitions_sequence(
        self, ts, per, extra, max_faults
    ):
        runs = fault_tolerant_intervals(ts, per, per + extra, max_faults)
        assert sum(r.periodic_support for r in runs) == len(ts)
        for left, right in zip(runs, runs[1:]):
            assert right.start > left.end

    @RELAXED
    @given(
        ts=point_sequences(),
        per=st.integers(1, 6),
        extra=st.integers(0, 6),
        max_faults=st.integers(0, 3),
        min_ps=st.integers(1, 4),
    )
    def test_relaxed_bound_is_sound(self, ts, per, extra, max_faults, min_ps):
        # The miner's candidate bound must dominate the true recurrence.
        from repro.core.intervals import estimated_recurrence

        fault_per = per + extra
        bound = estimated_recurrence(ts, fault_per, min_ps)
        actual = fault_tolerant_recurrence(
            ts, per, fault_per, max_faults, min_ps
        )
        assert bound >= actual

    @RELAXED
    @given(db=small_databases(max_items=4), params=mining_parameters())
    def test_miner_matches_brute_force(self, db, params):
        from itertools import combinations

        per, min_ps, min_rec = params
        fault_per, max_faults = per + 2, 1
        mined = mine_noise_tolerant_patterns(
            db, per, min_ps, min_rec,
            fault_per=fault_per, max_faults=max_faults,
        )
        occurring = set()
        for _, items in db:
            for size in range(1, len(items) + 1):
                occurring.update(
                    frozenset(c) for c in combinations(sorted(items), size)
                )
        expected = {
            itemset
            for itemset in occurring
            if fault_tolerant_recurrence(
                db.timestamps_of(itemset), per, fault_per, max_faults, min_ps
            ) >= min_rec
        }
        assert mined.itemsets() == expected
