"""Argument validation of the public mining façade.

``mine_recurring_patterns`` now validates the full threshold triple
*eagerly* — before the transform span runs and before any parallel
worker spawns — by constructing ``MiningParameters`` up front.  These
tests pin the rejection behaviour and the exact shared messages from
``repro._validation`` for every class of bad argument.
"""

import math

import pytest

from repro.core.miner import mine_recurring_patterns
from repro.core.model import MiningParameters
from repro.datasets import paper_running_example
from repro.exceptions import ParameterError


@pytest.fixture(scope="module")
def database():
    return paper_running_example()


# ----------------------------------------------------------------------
# engine and jobs
# ----------------------------------------------------------------------
def test_unknown_engine_rejected(database):
    with pytest.raises(ParameterError, match="unknown engine 'bogus'"):
        mine_recurring_patterns(database, 2, 3, engine="bogus")


@pytest.mark.parametrize("jobs", [0, -1, 1.5, True, "2"])
def test_non_positive_or_non_int_jobs_rejected(database, jobs):
    with pytest.raises(ParameterError, match="jobs must be a positive int"):
        mine_recurring_patterns(database, 2, 3, jobs=jobs)


def test_naive_engine_rejects_parallelism(database):
    with pytest.raises(
        ParameterError, match="'naive' does not support jobs > 1"
    ):
        mine_recurring_patterns(database, 2, 3, engine="naive", jobs=2)


def test_jobs_none_and_one_are_serial(database):
    serial = mine_recurring_patterns(database, 2, 3, min_rec=2)
    assert mine_recurring_patterns(database, 2, 3, min_rec=2, jobs=1) == serial
    assert (
        mine_recurring_patterns(database, 2, 3, min_rec=2, jobs=None)
        == serial
    )


# ----------------------------------------------------------------------
# per
# ----------------------------------------------------------------------
@pytest.mark.parametrize("per", [0, -1, -0.5])
def test_non_positive_per_rejected(database, per):
    with pytest.raises(ParameterError, match="per must be > 0"):
        mine_recurring_patterns(database, per, 3)


@pytest.mark.parametrize("per", [float("nan"), float("inf")])
def test_non_finite_per_rejected(database, per):
    with pytest.raises(ParameterError, match="per must be finite"):
        mine_recurring_patterns(database, per, 3)


@pytest.mark.parametrize("per", ["2", None, True])
def test_non_numeric_per_rejected(database, per):
    with pytest.raises(ParameterError, match="per must be a number"):
        mine_recurring_patterns(database, per, 3)


# ----------------------------------------------------------------------
# min_ps (count-or-fraction)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("min_ps", [0, -2])
def test_non_positive_count_min_ps_rejected(database, min_ps):
    with pytest.raises(ParameterError, match="min_ps must be >= 1"):
        mine_recurring_patterns(database, 2, min_ps)


@pytest.mark.parametrize("min_ps", [0.0, 1.5, -0.3])
def test_out_of_range_fractional_min_ps_rejected(database, min_ps):
    with pytest.raises(
        ParameterError, match=r"fractional min_ps must be in \(0, 1\]"
    ):
        mine_recurring_patterns(database, 2, min_ps)


@pytest.mark.parametrize("min_ps", [float("nan"), float("inf")])
def test_non_finite_min_ps_rejected(database, min_ps):
    with pytest.raises(ParameterError, match="min_ps must be finite"):
        mine_recurring_patterns(database, 2, min_ps)


def test_bool_min_ps_rejected(database):
    with pytest.raises(
        ParameterError, match="min_ps must be a count or fraction"
    ):
        mine_recurring_patterns(database, 2, True)


@pytest.mark.parametrize("min_ps", ["3", None, [3]])
def test_non_numeric_min_ps_rejected(database, min_ps):
    with pytest.raises(
        ParameterError, match="min_ps must be an int or float"
    ):
        mine_recurring_patterns(database, 2, min_ps)


def test_fraction_of_one_is_accepted(database):
    # 1.0 is a legal fraction (the whole database), not an error.
    found = mine_recurring_patterns(database, 2, 1.0)
    assert len(found) == 0 or all(p.support >= len(database) for p in found)


# ----------------------------------------------------------------------
# min_rec
# ----------------------------------------------------------------------
@pytest.mark.parametrize("min_rec", [0, -1])
def test_non_positive_min_rec_rejected(database, min_rec):
    with pytest.raises(ParameterError, match="min_rec must be >= 1"):
        mine_recurring_patterns(database, 2, 3, min_rec=min_rec)


@pytest.mark.parametrize("min_rec", [1.5, True, "2", None])
def test_non_integer_min_rec_rejected(database, min_rec):
    with pytest.raises(ParameterError, match="min_rec must be an integer"):
        mine_recurring_patterns(database, 2, 3, min_rec=min_rec)


# ----------------------------------------------------------------------
# Eagerness: bad thresholds fail before any other work
# ----------------------------------------------------------------------
def test_threshold_validation_precedes_data_handling():
    # Invalid data AND an invalid threshold: the threshold wins, which
    # proves validation happens before the transform touches the data.
    with pytest.raises(ParameterError, match="per must be > 0"):
        mine_recurring_patterns(object(), 0, 3)
    # With valid thresholds the same bogus data reaches the transform.
    with pytest.raises(TypeError, match="EventSequence"):
        mine_recurring_patterns(object(), 2, 3)


def test_fractional_range_fails_at_construction_not_resolve(database):
    # Out-of-range floats used to slip through MiningParameters and
    # only explode at resolve() time, mid-mine.  Now construction and
    # the façade agree.
    with pytest.raises(ParameterError, match="fractional min_ps"):
        MiningParameters(per=2, min_ps=1.5, min_rec=1)
    with pytest.raises(ParameterError, match="fractional min_ps"):
        mine_recurring_patterns(database, 2, 1.5, jobs=2)


def test_mining_parameters_still_resolves_legal_fractions():
    params = MiningParameters(per=2, min_ps=0.3, min_rec=1)
    assert params.resolve(10).min_ps == math.ceil(0.3 * 10)
