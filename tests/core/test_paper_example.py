"""End-to-end reproduction of every worked number in the paper (Sec. 3-4).

Each test cites the example it checks; together they pin the whole
running example: Examples 1-11, Table 2 and Figures 4-6 are covered in
the per-module unit tests, and this module ties the remaining worked
statements to the public API.
"""

from repro import mine_recurring_patterns
from repro.core.intervals import (
    estimated_recurrence,
    inter_arrival_times,
    interesting_intervals,
    periodic_intervals,
    recurrence,
)
from repro.datasets import paper_running_example


class TestWorkedExamples:
    def setup_method(self):
        self.db = paper_running_example()

    def test_example1_point_sequences(self):
        index = self.db.item_timestamps()
        assert index["a"] == (1, 2, 3, 4, 7, 11, 12, 14)
        assert index["b"] == (1, 3, 4, 7, 11, 12, 14)
        assert self.db.timestamps_of("ab") == index["b"]

    def test_example2_no_transactions_at_8_and_13(self):
        timestamps = {ts for ts, _ in self.db}
        assert 8 not in timestamps
        assert 13 not in timestamps

    def test_example3_support(self):
        assert self.db.support("ab") == 7

    def test_example4_iats_and_periodicity(self):
        iats = inter_arrival_times(self.db.timestamps_of("ab"))
        assert iats == (2, 1, 3, 4, 1, 2)
        periodic = [iat for iat in iats if iat <= 2]
        assert len(periodic) == 4  # iat1, iat2, iat5, iat6

    def test_example5_periodic_intervals(self):
        assert periodic_intervals(self.db.timestamps_of("ab"), per=2) == [
            (1, 4, 3), (7, 7, 1), (11, 14, 3),
        ]

    def test_example6_periodic_supports(self):
        runs = periodic_intervals(self.db.timestamps_of("ab"), per=2)
        assert [ps for _, _, ps in runs] == [3, 1, 3]

    def test_example7_interesting_intervals(self):
        assert interesting_intervals(
            self.db.timestamps_of("ab"), per=2, min_ps=3
        ) == [(1, 4, 3), (11, 14, 3)]

    def test_example8_recurrence(self):
        assert recurrence(self.db.timestamps_of("ab"), per=2, min_ps=3) == 2

    def test_example9_pattern_expression(self):
        found = mine_recurring_patterns(self.db, per=2, min_ps=3, min_rec=2)
        assert str(found.pattern("ab")) == (
            "ab [support=7, recurrence=2, {[1, 4]:3, [11, 14]:3}]"
        )

    def test_example10_anti_monotonicity_violation(self):
        ts_c = self.db.timestamps_of("c")
        ts_cd = self.db.timestamps_of("cd")
        assert recurrence(ts_c, per=2, min_ps=3) == 1
        assert recurrence(ts_cd, per=2, min_ps=3) == 2

    def test_example11_erec_of_g(self):
        assert estimated_recurrence(
            self.db.timestamps_of("g"), per=2, min_ps=3
        ) == 1

    def test_table2_counts(self):
        found = mine_recurring_patterns(self.db, per=2, min_ps=3, min_rec=2)
        assert len(found) == 8
        assert found.max_length() == 2
