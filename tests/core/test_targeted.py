"""Unit and property tests for anchored (targeted) mining."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.miner import mine_recurring_patterns
from repro.core.targeted import mine_patterns_containing
from repro.timeseries.database import TransactionalDatabase
from tests.conftest import mining_parameters, small_databases

RELAXED = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestAnchoredMining:
    def test_running_example_anchor_d(self, running_example):
        found = mine_patterns_containing(
            running_example, "d", per=2, min_ps=3, min_rec=2
        )
        assert sorted("".join(sorted(p.items)) for p in found) == ["cd", "d"]

    def test_anchor_need_not_be_recurring(self, running_example):
        # c is not recurring but cd is: anchoring at c must find cd.
        found = mine_patterns_containing(
            running_example, "c", per=2, min_ps=3, min_rec=2
        )
        assert "cd" in found
        assert "c" not in found

    def test_non_candidate_anchor_yields_nothing(self, running_example):
        # g fails the Erec bound: nothing above it can recur.
        found = mine_patterns_containing(
            running_example, "g", per=2, min_ps=3, min_rec=2
        )
        assert len(found) == 0

    def test_multi_item_anchor(self, running_example):
        found = mine_patterns_containing(
            running_example, "ab", per=2, min_ps=3, min_rec=2
        )
        assert sorted("".join(sorted(p.items)) for p in found) == ["ab"]

    def test_absent_anchor(self, running_example):
        found = mine_patterns_containing(
            running_example, ["nope"], per=2, min_ps=1, min_rec=1
        )
        assert len(found) == 0

    def test_empty_anchor_rejected(self, running_example):
        with pytest.raises(ValueError):
            mine_patterns_containing(
                running_example, [], per=2, min_ps=3
            )

    def test_empty_database(self):
        found = mine_patterns_containing(
            TransactionalDatabase(), "a", per=1, min_ps=1
        )
        assert len(found) == 0

    def test_metadata_matches_global_mining(self, running_example):
        anchored = mine_patterns_containing(
            running_example, "d", per=2, min_ps=3, min_rec=2
        )
        full = mine_recurring_patterns(running_example, 2, 3, 2)
        assert anchored.pattern("cd") == full.pattern("cd")


class TestEquivalenceWithFilter:
    @RELAXED
    @given(
        db=small_databases(),
        params=mining_parameters(),
        anchor=st.sampled_from("abc"),
    )
    def test_anchored_equals_filtered_global(self, db, params, anchor):
        per, min_ps, min_rec = params
        anchored = mine_patterns_containing(
            db, anchor, per, min_ps, min_rec
        )
        full = mine_recurring_patterns(db, per, min_ps, min_rec)
        expected = {
            p.items for p in full if anchor in p.items
        }
        assert anchored.itemsets() == expected
