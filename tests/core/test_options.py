"""Options-object façade: objects, removed-keyword errors, conflicts."""

import warnings

import pytest

from repro import (
    ObservabilityOptions,
    ResilienceOptions,
    mine_recurring_patterns,
)
from repro.core.options import (
    UNSET,
    resolve_observability,
    resolve_resilience,
)
from repro.datasets import paper_running_example
from repro.exceptions import ParameterError


class TestResilienceOptions:
    def test_defaults(self):
        options = ResilienceOptions()
        assert options.timeout is None
        assert options.max_retries == 2
        assert options.fallback == "serial"
        assert options.fault_plan is None

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ResilienceOptions().timeout = 5.0

    @pytest.mark.parametrize("timeout", [0, -1, "soon", True])
    def test_bad_timeout(self, timeout):
        with pytest.raises(ParameterError, match="timeout"):
            ResilienceOptions(timeout=timeout)

    @pytest.mark.parametrize("retries", [-1, 1.5, "two", True])
    def test_bad_max_retries(self, retries):
        with pytest.raises(ParameterError, match="max_retries"):
            ResilienceOptions(max_retries=retries)

    def test_bad_fallback(self):
        with pytest.raises(ParameterError, match="fallback"):
            ResilienceOptions(fallback="ignore")


class TestObservabilityOptions:
    def test_defaults_disabled(self):
        options = ObservabilityOptions()
        assert not options.enabled
        assert options.dataset is None

    @pytest.mark.parametrize(
        "kwargs",
        [dict(collect_stats=True), dict(trace="trace.jsonl")],
    )
    def test_enabled_by_stats_or_trace(self, kwargs):
        assert ObservabilityOptions(**kwargs).enabled

    def test_track_memory_alone_is_not_enabled(self):
        assert not ObservabilityOptions(track_memory=True).enabled


class TestResolveShims:
    def test_no_inputs_yield_defaults(self):
        assert resolve_resilience(None) == ResilienceOptions()
        assert resolve_observability(None) == ObservabilityOptions()

    def test_object_passes_through_unchanged(self):
        options = ResilienceOptions(timeout=9.0)
        assert resolve_resilience(options) is options

    def test_flat_keyword_raises_naming_replacement(self):
        with pytest.raises(
            ParameterError,
            match=r"'timeout'.*removed.*ResilienceOptions|removed.*'timeout'",
        ):
            resolve_resilience(None, timeout=9.0)

    def test_flat_keyword_error_points_at_mining_request(self):
        with pytest.raises(ParameterError, match="MiningRequest"):
            resolve_observability(None, collect_stats=True)

    def test_unset_flat_keyword_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            options = resolve_resilience(None, timeout=UNSET)
        assert options == ResilienceOptions()

    def test_flat_plus_object_conflict(self):
        with pytest.raises(ParameterError, match="not both"):
            resolve_resilience(
                ResilienceOptions(), timeout=9.0
            )


class TestFacadeIntegration:
    def test_options_objects_accepted_without_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            found, telemetry = mine_recurring_patterns(
                paper_running_example(), per=2, min_ps=3, min_rec=2,
                resilience=ResilienceOptions(max_retries=1),
                observability=ObservabilityOptions(collect_stats=True),
            )
        assert len(found) == 8
        assert telemetry.stats.patterns_found == 8

    def test_flat_kwargs_raise_parameter_error(self):
        with pytest.raises(ParameterError, match="collect_stats"):
            mine_recurring_patterns(
                paper_running_example(), per=2, min_ps=3, min_rec=2,
                collect_stats=True,
            )
        with pytest.raises(ParameterError, match="timeout"):
            mine_recurring_patterns(
                paper_running_example(), per=2, min_ps=3, min_rec=2,
                timeout=5.0,
            )

    def test_flat_and_object_mix_raises(self):
        with pytest.raises(ParameterError, match="not both"):
            mine_recurring_patterns(
                paper_running_example(), per=2, min_ps=3, min_rec=2,
                observability=ObservabilityOptions(collect_stats=True),
                collect_stats=True,
            )
        with pytest.raises(ParameterError, match="not both"):
            mine_recurring_patterns(
                paper_running_example(), per=2, min_ps=3, min_rec=2,
                resilience=ResilienceOptions(),
                timeout=5.0,
            )

    def test_track_memory_without_telemetry_warns(self):
        """Regression pin: this used to silently do nothing."""
        with pytest.warns(
            RuntimeWarning, match="track_memory=True has no effect"
        ):
            found = mine_recurring_patterns(
                paper_running_example(), per=2, min_ps=3, min_rec=2,
                observability=ObservabilityOptions(track_memory=True),
            )
        # The warning does not change the return contract.
        assert len(found) == 8

    def test_track_memory_with_stats_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            found, telemetry = mine_recurring_patterns(
                paper_running_example(), per=2, min_ps=3, min_rec=2,
                observability=ObservabilityOptions(
                    collect_stats=True, track_memory=True
                ),
            )
        assert telemetry.memory_peak_bytes is not None
