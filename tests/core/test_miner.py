"""Unit tests for the public mining façade."""

import pytest

from repro.core.miner import ENGINES, mine_recurring_patterns
from repro.exceptions import ParameterError
from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.events import EventSequence


class TestInputHandling:
    def test_accepts_database(self, running_example):
        found = mine_recurring_patterns(
            running_example, per=2, min_ps=3, min_rec=2
        )
        assert len(found) == 8

    def test_accepts_event_sequence(self, running_example_events):
        found = mine_recurring_patterns(
            running_example_events, per=2, min_ps=3, min_rec=2
        )
        assert len(found) == 8

    def test_event_sequence_and_database_agree(
        self, running_example, running_example_events
    ):
        assert mine_recurring_patterns(
            running_example_events, per=2, min_ps=3, min_rec=2
        ) == mine_recurring_patterns(
            running_example, per=2, min_ps=3, min_rec=2
        )

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            mine_recurring_patterns([(1, "a")], per=1, min_ps=1)

    def test_min_rec_defaults_to_one(self, running_example):
        by_default = mine_recurring_patterns(running_example, per=2, min_ps=3)
        explicit = mine_recurring_patterns(
            running_example, per=2, min_ps=3, min_rec=1
        )
        assert by_default == explicit


class TestEngineSelection:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_all_engines_agree(self, running_example, engine):
        found = mine_recurring_patterns(
            running_example, per=2, min_ps=3, min_rec=2, engine=engine
        )
        assert len(found) == 8

    def test_unknown_engine(self, running_example):
        with pytest.raises(ParameterError, match="unknown engine"):
            mine_recurring_patterns(
                running_example, per=2, min_ps=3, engine="quantum"
            )

    def test_empty_input(self):
        for engine in ENGINES:
            found = mine_recurring_patterns(
                TransactionalDatabase(), per=1, min_ps=1, engine=engine
            )
            assert len(found) == 0
