"""Unit and property tests for closed/maximal/top-k condensations."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.condensed import (
    closed_patterns,
    maximal_patterns,
    top_k_patterns,
)
from repro.core.miner import mine_recurring_patterns
from repro.core.rp_growth import RPGrowth
from repro.exceptions import ParameterError
from tests.conftest import mining_parameters, small_databases

RELAXED = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.fixture
def table2(running_example):
    return mine_recurring_patterns(running_example, per=2, min_ps=3, min_rec=2)


class TestClosed:
    def test_running_example(self, table2):
        closed = closed_patterns(table2)
        assert {"".join(sorted(p.items)) for p in closed} == {
            "a", "ab", "cd", "ef",
        }

    def test_metadata_preserved(self, table2):
        closed = closed_patterns(table2)
        assert closed.pattern("ab") == table2.pattern("ab")

    def test_empty_input(self, table2):
        from repro.core.model import RecurringPatternSet

        assert len(closed_patterns(RecurringPatternSet())) == 0


class TestMaximal:
    def test_running_example(self, table2):
        maximal = maximal_patterns(table2)
        assert {"".join(sorted(p.items)) for p in maximal} == {
            "ab", "cd", "ef",
        }

    def test_maximal_subset_of_closed(self, table2):
        assert maximal_patterns(table2).itemsets() <= closed_patterns(
            table2
        ).itemsets()


class TestTopK:
    def test_by_support(self, table2):
        top = top_k_patterns(table2, 1, key="support")
        assert top[0].items == frozenset("a")

    def test_k_larger_than_set(self, table2):
        assert len(top_k_patterns(table2, 100)) == 8

    def test_rejects_bad_k(self, table2):
        with pytest.raises(ParameterError):
            top_k_patterns(table2, 0)

    def test_rejects_bad_key(self, table2):
        with pytest.raises(ValueError):
            top_k_patterns(table2, 1, key="colour")


class TestProperties:
    @RELAXED
    @given(db=small_databases(), params=mining_parameters())
    def test_closed_is_lossless_for_itemsets(self, db, params):
        # Every mined pattern has a closed superset with equal support.
        per, min_ps, min_rec = params
        found = RPGrowth(per, min_ps, min_rec).mine(db)
        closed = closed_patterns(found)
        for pattern in found:
            assert any(
                pattern.items <= other.items
                and pattern.support == other.support
                for other in closed
            ), pattern

    @RELAXED
    @given(db=small_databases(), params=mining_parameters())
    def test_closed_metadata_recoverable(self, db, params):
        # The closure with the same support has the SAME intervals.
        per, min_ps, min_rec = params
        found = RPGrowth(per, min_ps, min_rec).mine(db)
        closed = closed_patterns(found)
        for pattern in found:
            closure = next(
                other
                for other in closed
                if pattern.items <= other.items
                and pattern.support == other.support
            )
            assert closure.intervals == pattern.intervals

    @RELAXED
    @given(db=small_databases(), params=mining_parameters())
    def test_maximal_have_no_recurring_superset(self, db, params):
        per, min_ps, min_rec = params
        found = RPGrowth(per, min_ps, min_rec).mine(db)
        itemsets = found.itemsets()
        for pattern in maximal_patterns(found):
            assert not any(
                pattern.items < other for other in itemsets
            )

    @RELAXED
    @given(db=small_databases(), params=mining_parameters())
    def test_every_pattern_below_some_maximal(self, db, params):
        per, min_ps, min_rec = params
        found = RPGrowth(per, min_ps, min_rec).mine(db)
        maximal = maximal_patterns(found)
        for pattern in found:
            assert any(
                pattern.items <= other.items for other in maximal
            )
