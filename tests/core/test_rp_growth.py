"""Unit tests for the RP-growth miner (Algorithms 4-5)."""

import pytest

from repro.core.rp_growth import RPGrowth
from repro.datasets import paper_table2_patterns
from repro.exceptions import ParameterError
from repro.timeseries.database import TransactionalDatabase


def as_dict(patterns):
    return {
        "".join(sorted(map(str, p.items))): (
            p.support,
            p.recurrence,
            [(iv.start, iv.end, iv.periodic_support) for iv in p.intervals],
        )
        for p in patterns
    }


class TestPaperTable2:
    def test_full_reproduction(self, running_example):
        found = RPGrowth(per=2, min_ps=3, min_rec=2).mine(running_example)
        assert as_dict(found) == paper_table2_patterns()

    def test_example10_c_absent_cd_present(self, running_example):
        # Recurring patterns are not anti-monotone.
        found = RPGrowth(per=2, min_ps=3, min_rec=2).mine(running_example)
        assert "c" not in found
        assert "cd" in found

    def test_ef_discovered_via_f_suffix(self, running_example):
        # The worked mining of Figure 6.
        found = RPGrowth(per=2, min_ps=3, min_rec=2).mine(running_example)
        ef = found.pattern("ef")
        assert ef.support == 6
        assert [(iv.start, iv.end) for iv in ef.intervals] == [
            (3, 6), (10, 12),
        ]


class TestParameterEffects:
    def test_min_rec_one_adds_long_run_patterns(self, running_example):
        found = RPGrowth(per=2, min_ps=3, min_rec=1).mine(running_example)
        # c has one interval [2,12] with ps 7 -> recurring at minRec=1.
        assert found.pattern("c").recurrence == 1
        assert len(found) > 8

    def test_higher_min_rec_empties_result(self, running_example):
        assert len(
            RPGrowth(per=2, min_ps=3, min_rec=3).mine(running_example)
        ) == 0

    def test_min_ps_one(self, running_example):
        found = RPGrowth(per=2, min_ps=1, min_rec=2).mine(running_example)
        # Every item has >= 2 runs except c (one long run).
        assert "g" in found

    def test_fractional_min_ps(self, running_example):
        # 0.25 of 12 transactions = 3.
        fractional = RPGrowth(per=2, min_ps=0.25, min_rec=2).mine(
            running_example
        )
        absolute = RPGrowth(per=2, min_ps=3, min_rec=2).mine(running_example)
        assert fractional == absolute

    def test_large_per_single_interval_each(self, running_example):
        found = RPGrowth(per=100, min_ps=1, min_rec=1).mine(running_example)
        for pattern in found:
            assert pattern.recurrence == 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ParameterError):
            RPGrowth(per=-1, min_ps=3, min_rec=2)
        with pytest.raises(ParameterError):
            RPGrowth(per=2, min_ps=3, min_rec=0)


class TestEdgeCases:
    def test_empty_database(self):
        found = RPGrowth(per=2, min_ps=3, min_rec=2).mine(
            TransactionalDatabase()
        )
        assert len(found) == 0

    def test_single_transaction(self):
        db = TransactionalDatabase([(1, "ab")])
        found = RPGrowth(per=1, min_ps=1, min_rec=1).mine(db)
        assert as_dict(found) == {
            "a": (1, 1, [(1, 1, 1)]),
            "ab": (1, 1, [(1, 1, 1)]),
            "b": (1, 1, [(1, 1, 1)]),
        }

    def test_no_candidates(self):
        db = TransactionalDatabase([(1, "a"), (100, "a")])
        found = RPGrowth(per=2, min_ps=2, min_rec=2).mine(db)
        assert len(found) == 0

    def test_all_transactions_identical_items(self):
        db = TransactionalDatabase([(ts, "xy") for ts in range(1, 7)])
        found = RPGrowth(per=1, min_ps=3, min_rec=1).mine(db)
        assert as_dict(found) == {
            "x": (6, 1, [(1, 6, 6)]),
            "xy": (6, 1, [(1, 6, 6)]),
            "y": (6, 1, [(1, 6, 6)]),
        }

    def test_float_timestamps(self):
        db = TransactionalDatabase(
            [(0.5, "a"), (1.0, "a"), (1.5, "a"), (9.0, "a"),
             (9.5, "a"), (10.0, "a")]
        )
        found = RPGrowth(per=0.5, min_ps=3, min_rec=2).mine(db)
        pattern = found.pattern("a")
        assert [(iv.start, iv.end) for iv in pattern.intervals] == [
            (0.5, 1.5), (9.0, 10.0),
        ]


class TestStats:
    def test_stats_populated(self, running_example):
        miner = RPGrowth(per=2, min_ps=3, min_rec=2)
        miner.mine(running_example)
        stats = miner.last_stats
        assert stats.candidate_items == 6
        assert stats.pruned_items == 1  # g
        assert stats.initial_tree_nodes == 16
        assert stats.patterns_found == 8
        assert stats.erec_evaluations >= stats.candidate_patterns
        assert stats.candidate_patterns >= stats.patterns_found

    def test_stats_reset_between_runs(self, running_example):
        miner = RPGrowth(per=2, min_ps=3, min_rec=2)
        miner.mine(running_example)
        first = miner.last_stats
        miner.mine(running_example)
        assert miner.last_stats is not first
        assert miner.last_stats.patterns_found == first.patterns_found


class TestMaxLength:
    def test_caps_pattern_length(self, running_example):
        found = RPGrowth(per=2, min_ps=3, min_rec=2, max_length=1).mine(
            running_example
        )
        assert found.max_length() == 1
        assert {"".join(p.items) for p in found} == {"a", "b", "d", "e", "f"}

    def test_capped_results_are_prefix_of_full(self, running_example):
        full = RPGrowth(per=2, min_ps=3, min_rec=2).mine(running_example)
        capped = RPGrowth(per=2, min_ps=3, min_rec=2, max_length=1).mine(
            running_example
        )
        expected = {p.items for p in full if p.length <= 1}
        assert capped.itemsets() == expected

    def test_engines_agree_under_cap(self, running_example):
        from repro.core.rp_eclat import RPEclat

        growth = RPGrowth(2, 3, 2, max_length=1).mine(running_example)
        eclat = RPEclat(2, 3, 2, max_length=1).mine(running_example)
        assert growth == eclat

    def test_rejects_bad_max_length(self):
        with pytest.raises(ValueError):
            RPGrowth(2, 3, 2, max_length=0)
