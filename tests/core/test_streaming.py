"""Unit and property tests for the streaming recurrence monitor."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.intervals import (
    estimated_recurrence,
    interesting_intervals,
    recurrence,
)
from repro.core.rp_list import build_rp_list
from repro.core.model import MiningParameters
from repro.core.streaming import StreamingRecurrenceMonitor
from tests.conftest import mining_parameters, small_databases

RELAXED = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestObserve:
    def test_rejects_decreasing_timestamps(self):
        monitor = StreamingRecurrenceMonitor(per=1, min_ps=1)
        monitor.observe(5, "a")
        with pytest.raises(ValueError):
            monitor.observe(4, "b")

    def test_repeated_timestamp_merges_like_batch(self):
        # Same-timestamp rows merge into one set-valued transaction,
        # exactly as the batch TransactionalDatabase constructor does.
        monitor = StreamingRecurrenceMonitor(per=1, min_ps=1)
        monitor.observe(5, "a")
        monitor.observe(5, "ab")
        assert monitor.support("a") == 1
        assert monitor.support("b") == 1

    def test_unseen_item_defaults(self):
        monitor = StreamingRecurrenceMonitor(per=1, min_ps=1)
        assert monitor.recurrence("ghost") == 0
        assert monitor.support("ghost") == 0
        assert monitor.erec("ghost") == 0
        assert monitor.intervals("ghost") == ()

    def test_interval_closes_on_break(self):
        closed = []
        monitor = StreamingRecurrenceMonitor(
            per=2, min_ps=3, on_interval=lambda item, iv: closed.append((item, iv))
        )
        for ts in (1, 3, 4):
            monitor.observe(ts, "a")
        assert closed == []  # run still open
        monitor.observe(10, "a")
        assert len(closed) == 1
        item, interval = closed[0]
        assert item == "a"
        assert (interval.start, interval.end, interval.periodic_support) == (
            1, 4, 3,
        )

    def test_open_run_counted_optionally(self):
        monitor = StreamingRecurrenceMonitor(per=2, min_ps=3, min_rec=1)
        for ts in (1, 2, 3):
            monitor.observe(ts, "a")
        assert monitor.recurrence("a") == 0
        assert monitor.recurrence("a", include_open_run=True) == 1
        assert monitor.is_recurring("a")


class TestWatchPattern:
    def test_composite_counts_joint_occurrences(self, running_example):
        monitor = StreamingRecurrenceMonitor(per=2, min_ps=3, min_rec=2)
        monitor.watch_pattern("ab", label="A+B")
        monitor.observe_database(running_example)
        assert monitor.support("A+B") == 7
        assert monitor.is_recurring("A+B")
        # The second interval is still an open run at end-of-stream.
        assert [
            (iv.start, iv.end, iv.periodic_support)
            for iv in monitor.intervals("A+B", include_open_run=True)
        ] == [(1, 4, 3), (11, 14, 3)]

    def test_empty_pattern_rejected(self):
        monitor = StreamingRecurrenceMonitor(per=1, min_ps=1)
        with pytest.raises(ValueError):
            monitor.watch_pattern([], label="X")


class TestMatchesBatch:
    def test_erec_matches_rp_list(self, running_example):
        params = MiningParameters(per=2, min_ps=3, min_rec=2).resolve(
            len(running_example)
        )
        rp_list = build_rp_list(running_example, params)
        monitor = StreamingRecurrenceMonitor(per=2, min_ps=3, min_rec=2)
        monitor.observe_database(running_example)
        for item, entry in rp_list.entries.items():
            assert monitor.erec(item) == entry.erec, item
            assert monitor.support(item) == entry.support, item

    @RELAXED
    @given(db=small_databases(), params=mining_parameters())
    def test_streaming_equals_batch_on_random_streams(self, db, params):
        per, min_ps, min_rec = params
        monitor = StreamingRecurrenceMonitor(per, min_ps, min_rec)
        monitor.observe_database(db)
        for item, ts in db.item_timestamps().items():
            assert monitor.erec(item) == estimated_recurrence(ts, per, min_ps)
            assert monitor.recurrence(
                item, include_open_run=True
            ) == recurrence(ts, per, min_ps)
            assert [
                (iv.start, iv.end, iv.periodic_support)
                for iv in monitor.intervals(item, include_open_run=True)
            ] == interesting_intervals(ts, per, min_ps)

    @RELAXED
    @given(db=small_databases(), params=mining_parameters())
    def test_incremental_split_feed_equals_single_feed(self, db, params):
        # Feeding the database in two halves must equal one pass: the
        # incremental-maintenance property.
        per, min_ps, min_rec = params
        whole = StreamingRecurrenceMonitor(per, min_ps, min_rec)
        whole.observe_database(db)
        split = StreamingRecurrenceMonitor(per, min_ps, min_rec)
        half = len(db) // 2
        for ts, items in db.transactions[:half]:
            split.observe(ts, items)
        for ts, items in db.transactions[half:]:
            split.observe(ts, items)
        for item in db.items():
            assert split.erec(item) == whole.erec(item)
            assert split.intervals(
                item, include_open_run=True
            ) == whole.intervals(item, include_open_run=True)

    def test_recurring_items_listing(self, running_example):
        monitor = StreamingRecurrenceMonitor(per=2, min_ps=3, min_rec=2)
        monitor.observe_database(running_example)
        assert monitor.recurring_items() == ["a", "b", "d", "e", "f"]
