"""Unit tests for the model dataclasses and parameter handling."""

import pytest

from repro.core.model import (
    MiningParameters,
    PeriodicInterval,
    RecurringPattern,
    RecurringPatternSet,
)
from repro.exceptions import ParameterError


def make_pattern(items="ab", support=7, intervals=((1, 4, 3), (11, 14, 3))):
    return RecurringPattern(
        items=frozenset(items),
        support=support,
        intervals=tuple(
            PeriodicInterval(start, end, ps) for start, end, ps in intervals
        ),
    )


class TestPeriodicInterval:
    def test_fields(self):
        interval = PeriodicInterval(1, 4, 3)
        assert (interval.start, interval.end, interval.periodic_support) == (
            1, 4, 3,
        )
        assert interval.duration == 3

    def test_point_interval(self):
        assert PeriodicInterval(7, 7, 1).duration == 0

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            PeriodicInterval(4, 1, 3)

    def test_rejects_bad_support(self):
        with pytest.raises(ParameterError):
            PeriodicInterval(1, 4, 0)

    def test_str(self):
        assert str(PeriodicInterval(1, 4, 3)) == "[1, 4]:3"

    def test_ordering(self):
        assert PeriodicInterval(1, 4, 3) < PeriodicInterval(2, 3, 1)


class TestRecurringPattern:
    def test_recurrence_is_interval_count(self):
        assert make_pattern().recurrence == 2

    def test_length(self):
        assert make_pattern("abc").length == 3

    def test_rejects_empty_items(self):
        with pytest.raises(ValueError):
            make_pattern("")

    def test_rejects_bad_support(self):
        with pytest.raises(ParameterError):
            make_pattern(support=0)

    def test_str_matches_paper_expression(self):
        # Example 9's expression.
        assert str(make_pattern()) == (
            "ab [support=7, recurrence=2, {[1, 4]:3, [11, 14]:3}]"
        )

    def test_items_coerced_to_frozenset(self):
        pattern = RecurringPattern(
            items=["a", "b", "a"],
            support=3,
            intervals=(PeriodicInterval(1, 2, 2),),
        )
        assert pattern.items == frozenset("ab")


class TestRecurringPatternSet:
    def test_sorted_by_length_then_items(self):
        patterns = RecurringPatternSet(
            [make_pattern("cd"), make_pattern("b"), make_pattern("a")]
        )
        assert [p.sorted_items() for p in patterns] == [
            ("a",), ("b",), ("c", "d"),
        ]

    def test_lookup(self):
        patterns = RecurringPatternSet([make_pattern("ab")])
        assert patterns.pattern("ba").support == 7
        assert "ab" in patterns
        assert "zz" not in patterns

    def test_lookup_missing_raises(self):
        with pytest.raises(KeyError):
            RecurringPatternSet().pattern("ab")

    def test_get_default(self):
        assert RecurringPatternSet().get("ab") is None

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            RecurringPatternSet([make_pattern("ab"), make_pattern("ba")])

    def test_max_length(self):
        patterns = RecurringPatternSet([make_pattern("a"), make_pattern("bc")])
        assert patterns.max_length() == 2
        assert RecurringPatternSet().max_length() == 0

    def test_filter(self):
        patterns = RecurringPatternSet(
            [make_pattern("a", support=3, intervals=((1, 2, 2),)),
             make_pattern("bc", support=9)]
        )
        assert len(patterns.filter(min_support=5)) == 1
        assert len(patterns.filter(min_length=2)) == 1
        assert len(patterns.filter(min_recurrence=2)) == 1

    def test_top(self):
        patterns = RecurringPatternSet(
            [make_pattern("a", support=3, intervals=((1, 2, 2),)),
             make_pattern("bc", support=9)]
        )
        assert patterns.top(1)[0].support == 9
        with pytest.raises(ValueError):
            patterns.top(1, key="banana")

    def test_as_rows(self):
        rows = RecurringPatternSet([make_pattern()]).as_rows()
        assert rows == [("ab", 7, 2, "[1, 4]:3, [11, 14]:3")]


class TestMiningParameters:
    def test_valid(self):
        params = MiningParameters(per=2, min_ps=3, min_rec=2)
        resolved = params.resolve(100)
        assert (resolved.per, resolved.min_ps, resolved.min_rec) == (2, 3, 2)

    def test_fractional_min_ps(self):
        resolved = MiningParameters(per=2, min_ps=0.1, min_rec=1).resolve(42)
        assert resolved.min_ps == 5  # ceil(4.2)

    def test_fractional_min_ps_floor_of_one(self):
        resolved = MiningParameters(per=2, min_ps=0.001, min_rec=1).resolve(10)
        assert resolved.min_ps == 1

    def test_rejects_bad_per(self):
        with pytest.raises(ParameterError):
            MiningParameters(per=0, min_ps=1, min_rec=1)

    def test_rejects_bad_min_rec(self):
        with pytest.raises(ParameterError):
            MiningParameters(per=1, min_ps=1, min_rec=0)

    def test_rejects_bad_min_ps(self):
        with pytest.raises(ParameterError):
            MiningParameters(per=1, min_ps=0, min_rec=1)
        with pytest.raises(ParameterError):
            MiningParameters(per=1, min_ps=1.5, min_rec=1).resolve(10)

    def test_pattern_from_timestamps(self):
        resolved = MiningParameters(per=2, min_ps=3, min_rec=2).resolve(12)
        pattern = resolved.pattern_from_timestamps(
            "ab", [1, 3, 4, 7, 11, 12, 14]
        )
        assert pattern is not None
        assert pattern.support == 7
        assert pattern.recurrence == 2

    def test_pattern_from_timestamps_not_recurring(self):
        resolved = MiningParameters(per=2, min_ps=3, min_rec=2).resolve(12)
        assert resolved.pattern_from_timestamps("c", [2, 4, 5, 7, 9, 10, 12]) is None
