"""The columnar kernel primitives pinned to their pure-python twins.

The batched ``rp-eclat-vec`` engine is only trustworthy because every
one of its primitives is byte-identical to a slow, obviously-correct
counterpart: ``segmented_interval_stats`` to the per-sequence interval
functions of :mod:`repro.core.intervals`, ``intersect_arrays`` (both
the bitmap and the sort-merge path) to
:func:`repro.core.rp_eclat.intersect_sorted`, and the whole engine to
``rp-growth`` / ``rp-eclat`` on random databases.  ``as_timestamp_array``
must refuse — not silently corrupt — timestamps the int64/float64
column cannot represent exactly.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.accel import (
    INT64_SAFE_BOUND,
    as_timestamp_array,
    intersect_arrays,
    segmented_interval_stats,
)
from repro.core.intervals import (
    estimated_recurrence,
    interesting_intervals,
    recurrence,
)
from repro.core.rp_eclat import RPEclat, intersect_sorted
from repro.core.rp_eclat_vec import RPEclatVec
from repro.core.rp_growth import RPGrowth
from repro.exceptions import ParameterError
from tests.conftest import mining_parameters, point_sequences, small_databases

RELAXED = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# segmented_interval_stats vs the per-sequence interval functions
# ----------------------------------------------------------------------
class TestSegmentedIntervalStats:
    def test_paper_example5_segments(self):
        ts = np.array([1, 3, 4, 7, 11, 12, 14, 1, 5, 6, 7, 12, 14])
        erec, rec, seg, first, last = segmented_interval_stats(
            ts, np.array([0, 7]), per=2, min_ps=3
        )
        assert erec.tolist() == [2, 1]
        assert rec.tolist() == [2, 1]
        assert seg.tolist() == [0, 0, 1]
        # Runs report inclusive offsets into the concatenated array.
        assert ts[first].tolist() == [1, 11, 5]
        assert ts[last].tolist() == [4, 14, 7]

    def test_empty_input(self):
        empty = np.zeros(0, dtype=np.int64)
        erec, rec, seg, first, last = segmented_interval_stats(
            empty, empty, per=1, min_ps=1
        )
        for array in (erec, rec, seg, first, last):
            assert array.size == 0

    def test_single_event_segments(self):
        erec, rec, seg, first, last = segmented_interval_stats(
            np.array([5, 9]), np.array([0, 1]), per=2, min_ps=1
        )
        assert erec.tolist() == [1, 1]
        assert rec.tolist() == [1, 1]
        assert first.tolist() == [0, 1]
        assert last.tolist() == [0, 1]

    def test_empty_segments_via_duplicate_offsets(self):
        # Segment 1 is empty (starts[1] == starts[2]); it must report
        # zeros and not steal segment 2's runs.
        erec, rec, seg, _, _ = segmented_interval_stats(
            np.array([1, 2, 10, 11]), np.array([0, 2, 2]), per=1, min_ps=2
        )
        assert erec.tolist() == [1, 0, 1]
        assert rec.tolist() == [1, 0, 1]
        assert seg.tolist() == [0, 2]

    def test_all_duplicate_timestamps_across_segments(self):
        # Identical single-point segments: every one is its own run.
        ts = np.array([7, 7, 7])
        erec, rec, seg, first, last = segmented_interval_stats(
            ts, np.array([0, 1, 2]), per=3, min_ps=1
        )
        assert erec.tolist() == [1, 1, 1]
        assert rec.tolist() == [1, 1, 1]
        assert seg.tolist() == [0, 1, 2]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ParameterError):
            segmented_interval_stats(
                np.array([1]), np.array([0]), per=0, min_ps=1
            )
        with pytest.raises(ParameterError):
            segmented_interval_stats(
                np.array([1]), np.array([0]), per=1, min_ps=0
            )

    @RELAXED
    @given(
        sequences=st.lists(point_sequences(max_size=15), max_size=5),
        per=st.integers(1, 10),
        min_ps=st.integers(1, 5),
    )
    def test_matches_per_sequence_python(self, sequences, per, min_ps):
        """One batched call == the pure-python loop over segments."""
        sequences = [s for s in sequences if s]
        if not sequences:
            return
        ts = np.concatenate([np.asarray(s) for s in sequences])
        sizes = [len(s) for s in sequences]
        starts = np.array([0] + list(np.cumsum(sizes))[:-1], dtype=np.int64)
        erec, rec, seg, first, last = segmented_interval_stats(
            ts, starts, per, min_ps
        )
        assert erec.tolist() == [
            estimated_recurrence(s, per, min_ps) for s in sequences
        ]
        assert rec.tolist() == [
            recurrence(s, per, min_ps) for s in sequences
        ]
        runs = [
            (int(s), (int(ts[f]), int(ts[l])))
            for s, f, l in zip(seg, first, last)
        ]
        expected = [
            (i, (run[0], run[1]))
            for i, s in enumerate(sequences)
            for run in interesting_intervals(s, per, min_ps)
        ]
        assert runs == expected


# ----------------------------------------------------------------------
# intersect_arrays vs intersect_sorted
# ----------------------------------------------------------------------
class TestIntersectArrays:
    @RELAXED
    @given(
        left=point_sequences(max_size=25),
        right=point_sequences(max_size=25),
    )
    def test_sort_merge_path_matches_python(self, left, right):
        result = intersect_arrays(np.asarray(left), np.asarray(right))
        assert result.tolist() == intersect_sorted(left, right)

    @RELAXED
    @given(
        left=point_sequences(max_size=25),
        right=point_sequences(max_size=25),
    )
    def test_bitmap_path_matches_python(self, left, right):
        # universe=201 covers the strategy's 0..200 value range; any
        # non-trivial operands cross the density threshold (201 >> 3).
        result = intersect_arrays(
            np.asarray(left, dtype=np.int64),
            np.asarray(right, dtype=np.int64),
            universe=201,
        )
        assert result.tolist() == intersect_sorted(left, right)

    def test_bitmap_needs_integer_operands(self):
        # Float operands must fall back to sort-merge, never index.
        result = intersect_arrays(
            np.array([0.5, 2.5]), np.array([2.5, 3.5]), universe=4
        )
        assert result.tolist() == [2.5]


# ----------------------------------------------------------------------
# as_timestamp_array dtype selection and overflow guards
# ----------------------------------------------------------------------
class TestAsTimestampArray:
    def test_integer_column(self):
        array = as_timestamp_array([3, 1, 2])
        assert array.dtype == np.int64
        assert array.tolist() == [3, 1, 2]

    def test_float_column(self):
        array = as_timestamp_array([1, 2.5])
        assert array.dtype == np.float64

    def test_empty(self):
        assert as_timestamp_array([]).size == 0

    @pytest.mark.parametrize(
        "bad",
        [
            [INT64_SAFE_BOUND],           # diff could wrap int64
            [-INT64_SAFE_BOUND],
            [2 ** 70],                     # beyond int64 entirely
            [-(2 ** 70), 0],
            [2 ** 54 + 1, 0.5],            # int > 2**53 mixed with floats
        ],
        ids=["2^62", "-2^62", "2^70", "-2^70", "mixed-2^54"],
    )
    def test_unsafe_timestamps_raise(self, bad):
        with pytest.raises(ParameterError):
            as_timestamp_array(bad)

    def test_safe_boundaries_accepted(self):
        assert as_timestamp_array([INT64_SAFE_BOUND - 1]).dtype == np.int64
        # Large *float* inputs are stored unchanged — only integers
        # silently folded into a float column are refused.
        assert as_timestamp_array([2.0 ** 60]).dtype == np.float64

    def test_non_numeric_rejected(self):
        with pytest.raises(ParameterError):
            as_timestamp_array(["a", "b"])


# ----------------------------------------------------------------------
# The whole engine vs the reference engines
# ----------------------------------------------------------------------
class TestVecEngineEquivalence:
    @RELAXED
    @given(db=small_databases(), params=mining_parameters())
    def test_vec_equals_rp_growth_and_rp_eclat(self, db, params):
        per, min_ps, min_rec = params
        reference = RPGrowth(per, min_ps, min_rec).mine(db)
        eclat = RPEclat(per, min_ps, min_rec)
        vec = RPEclatVec(per, min_ps, min_rec)
        assert list(vec.mine(db)) == list(reference) == list(eclat.mine(db))
        # The Erec lattice is order-independent, so the vec engine
        # visits exactly rp-eclat's candidate set.
        for counter in (
            "patterns_found",
            "candidate_patterns",
            "recurrence_evaluations",
            "candidate_items",
            "pruned_items",
        ):
            assert getattr(vec.last_stats, counter) == getattr(
                eclat.last_stats, counter
            ), counter

    @RELAXED
    @given(
        db=small_databases(),
        params=mining_parameters(),
        max_length=st.integers(1, 3),
    )
    def test_max_length_matches_rp_eclat(self, db, params, max_length):
        per, min_ps, min_rec = params
        reference = RPEclat(
            per, min_ps, min_rec, max_length=max_length
        ).mine(db)
        vec = RPEclatVec(per, min_ps, min_rec, max_length=max_length)
        assert list(vec.mine(db)) == list(reference)

    def test_empty_database(self):
        from repro.timeseries.database import TransactionalDatabase

        found = RPEclatVec(1, 1, 1).mine(TransactionalDatabase([]))
        assert list(found) == []
