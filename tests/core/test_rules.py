"""Unit tests for recurring association rules and the recommender."""

import pytest

from repro.core.miner import mine_recurring_patterns
from repro.core.model import PeriodicInterval
from repro.core.rules import (
    RecurringRule,
    SeasonalRecommender,
    derive_rules,
)
from repro.exceptions import ParameterError
from repro.timeseries.database import TransactionalDatabase


@pytest.fixture
def table2(running_example):
    return mine_recurring_patterns(running_example, per=2, min_ps=3, min_rec=2)


@pytest.fixture
def rules(table2, running_example):
    return derive_rules(table2, running_example, min_confidence=0.5)


class TestRuleObject:
    def test_rejects_overlapping_sides(self):
        with pytest.raises(ValueError):
            RecurringRule(
                antecedent=frozenset("a"),
                consequent=frozenset("a"),
                support=1,
                confidence=1.0,
                interval_confidence=1.0,
                intervals=(PeriodicInterval(1, 2, 2),),
            )

    def test_rejects_empty_side(self):
        with pytest.raises(ValueError):
            RecurringRule(
                antecedent=frozenset(),
                consequent=frozenset("a"),
                support=1,
                confidence=1.0,
                interval_confidence=1.0,
                intervals=(),
            )

    def test_active_at(self):
        rule = RecurringRule(
            antecedent=frozenset("a"),
            consequent=frozenset("b"),
            support=3,
            confidence=1.0,
            interval_confidence=1.0,
            intervals=(PeriodicInterval(10, 20, 5),),
        )
        assert rule.active_at(15)
        assert not rule.active_at(25)
        assert rule.active_at(25, slack=5)


class TestDeriveRules:
    def test_confidences_are_correct(self, rules, running_example):
        by_sides = {
            (tuple(sorted(r.antecedent)), tuple(sorted(r.consequent))): r
            for r in rules
        }
        b_implies_a = by_sides[(("b",), ("a",))]
        assert b_implies_a.confidence == pytest.approx(1.0)
        a_implies_b = by_sides[(("a",), ("b",))]
        assert a_implies_b.confidence == pytest.approx(7 / 8)

    def test_rules_inherit_pattern_intervals(self, rules, table2):
        for rule in rules:
            assert rule.intervals == table2.pattern(rule.items()).intervals

    def test_min_confidence_filters(self, table2, running_example):
        strict = derive_rules(table2, running_example, min_confidence=0.99)
        assert all(r.confidence >= 0.99 for r in strict)
        loose = derive_rules(table2, running_example, min_confidence=0.5)
        assert len(strict) < len(loose)

    def test_interval_confidence_hand_computed(self, rules):
        # a => b: inside ab's intervals [1,4] and [11,14] the antecedent
        # a occurs at {1,2,3,4,11,12,14} (7 times) and the joint ab at
        # {1,3,4,11,12,14} (6 times): 6/7.
        by_sides = {
            (tuple(sorted(r.antecedent)), tuple(sorted(r.consequent))): r
            for r in rules
        }
        rule = by_sides[(("a",), ("b",))]
        assert rule.interval_confidence == pytest.approx(6 / 7)
        for other in rules:
            assert 0.0 <= other.interval_confidence <= 1.0 + 1e-9

    def test_sorted_by_seasonal_strength(self, rules):
        keys = [
            (-r.interval_confidence, -r.confidence, -r.support)
            for r in rules
        ]
        assert keys == sorted(keys)

    def test_rejects_bad_parameters(self, table2, running_example):
        with pytest.raises(ParameterError):
            derive_rules(table2, running_example, min_confidence=0)
        with pytest.raises(ParameterError):
            derive_rules(
                table2, running_example, max_consequent_size=0
            )

    def test_multi_item_consequents(self, running_example):
        # Force a 3-pattern by loosening thresholds.
        found = mine_recurring_patterns(
            running_example, per=3, min_ps=2, min_rec=1
        )
        rules = derive_rules(
            found, running_example, min_confidence=0.1,
            max_consequent_size=2,
        )
        assert any(len(r.consequent) == 2 for r in rules)


class TestSeasonalRecommender:
    def test_in_season_recommendation(self, rules):
        recommender = SeasonalRecommender(rules)
        assert recommender.recommend(basket=["a"], ts=2) == ["b"]
        assert recommender.recommend(basket=["c"], ts=9) == ["d"]

    def test_out_of_season_suppressed(self, rules):
        recommender = SeasonalRecommender(rules)
        assert recommender.recommend(basket=["a"], ts=8) == []

    def test_out_of_season_allowed_when_asked(self, rules):
        recommender = SeasonalRecommender(rules)
        assert recommender.recommend(
            basket=["a"], ts=8, in_season_only=False
        ) == ["b"]

    def test_slack_extends_seasons(self, rules):
        recommender = SeasonalRecommender(rules, slack=4)
        assert recommender.recommend(basket=["a"], ts=8) == ["b"]

    def test_basket_items_not_recommended(self, rules):
        recommender = SeasonalRecommender(rules)
        assert recommender.recommend(basket=["a", "b"], ts=2) == []

    def test_limit(self, running_example):
        found = mine_recurring_patterns(
            running_example, per=3, min_ps=2, min_rec=1
        )
        rules = derive_rules(found, running_example, min_confidence=0.1)
        recommender = SeasonalRecommender(rules)
        everything = recommender.recommend(basket=["a", "b"], ts=3, limit=10)
        top_one = recommender.recommend(basket=["a", "b"], ts=3, limit=1)
        assert len(everything) > 1
        assert top_one == everything[:1]
