"""Unit tests for RP-tree construction (Algorithms 2-3, Figure 5)."""

import pytest

from repro.core.model import MiningParameters
from repro.core.rp_tree import RPTree, build_rp_tree
from repro.timeseries.database import TransactionalDatabase

PARAMS = MiningParameters(per=2, min_ps=3, min_rec=2)


@pytest.fixture
def paper_tree(running_example):
    tree, rp_list = build_rp_tree(
        running_example, PARAMS.resolve(len(running_example))
    )
    return tree


# The tail-carrying root-to-tail paths of Figure 5(b).
FIGURE_5B_PATHS = [
    (("a", "b"), (1, 14)),
    (("a", "b", "c"), (7,)),
    (("a", "b", "c", "d"), (4,)),
    (("a", "b", "c", "d", "e", "f"), (12,)),
    (("a", "b", "e", "f"), (3, 11)),
    (("a", "c", "d"), (2,)),
    (("c", "d"), (9,)),
    (("c", "d", "e", "f"), (5, 10)),
    (("e", "f"), (6,)),
]


class TestPaperFigure5:
    def test_paths_match_figure(self, paper_tree):
        assert paper_tree.paths() == sorted(FIGURE_5B_PATHS)

    def test_node_count(self, paper_tree):
        assert paper_tree.node_count() == 16

    def test_after_first_transaction(self, running_example):
        # Figure 5(a): only the branch a-b with tail ts-list [1].
        first_only = TransactionalDatabase([running_example[0]])
        params = PARAMS.resolve(len(running_example))
        full_list = build_rp_tree(
            running_example, params
        )[1]
        tree = RPTree(
            {item: rank for rank, item in enumerate(full_list.candidates)}
        )
        tree.insert(full_list.sort_transaction(first_only[0].items), (1,))
        assert tree.paths() == [(("a", "b"), (1,))]

    def test_pruned_item_never_appears(self, paper_tree):
        assert "g" not in paper_tree.nodes_by_item


class TestTreeOperations:
    def test_insert_empty_path_is_noop(self):
        tree = RPTree({"a": 0})
        tree.insert([], (1,))
        assert tree.node_count() == 0

    def test_header_bottom_up_order(self, paper_tree):
        assert paper_tree.header_bottom_up() == ["f", "e", "d", "c", "b", "a"]

    def test_pattern_timestamps_single_item(self, paper_tree, running_example):
        # TS^f from the full tree = the item's point sequence.
        assert paper_tree.pattern_timestamps("f") == list(
            running_example.item_timestamps()["f"]
        )

    def test_prefix_paths_of_f(self, paper_tree):
        base = {
            (tuple(path), tuple(sorted(ts)))
            for path, ts in paper_tree.prefix_paths("f")
        }
        # Figure 6(a): the prefix sub-paths of item f.
        assert base == {
            (("a", "b", "c", "d", "e"), (12,)),
            (("a", "b", "e"), (3, 11)),
            (("c", "d", "e"), (5, 10)),
            (("e",), (6,)),
        }

    def test_remove_item_pushes_ts_lists_up(self, paper_tree):
        paper_tree.remove_item("f")
        assert "f" not in paper_tree.nodes_by_item
        # e inherits f's ts-lists (Figure 6(c)): TS^e is now complete.
        assert paper_tree.pattern_timestamps("e") == [3, 5, 6, 10, 11, 12]

    def test_remove_non_leaf_raises(self, paper_tree):
        with pytest.raises(RuntimeError):
            paper_tree.remove_item("a")

    def test_remove_absent_item_is_noop(self, paper_tree):
        paper_tree.remove_item("zz")
        assert paper_tree.node_count() == 16

    def test_path_items_tail_to_root(self, paper_tree):
        node = paper_tree.nodes_by_item["d"][0]
        path = node.path_items()
        assert path[-1] == "a"  # root end last


class TestLemma2Bound:
    def test_node_count_bounded_by_projection_sizes(self, running_example):
        params = PARAMS.resolve(len(running_example))
        tree, rp_list = build_rp_tree(running_example, params)
        bound = sum(
            len(rp_list.sort_transaction(itemset))
            for _, itemset in running_example
        )
        assert tree.node_count() <= bound


class TestConstructionEdgeCases:
    def test_empty_database(self):
        db = TransactionalDatabase()
        tree, rp_list = build_rp_tree(db, PARAMS.resolve(1))
        assert tree.node_count() == 0

    def test_transaction_of_only_pruned_items(self):
        # Only item x recurs; y appears once and is pruned.
        db = TransactionalDatabase(
            [(1, "xy"), (2, "x"), (3, "x"), (10, "x"), (11, "x"), (12, "x")]
        )
        params = MiningParameters(per=1, min_ps=3, min_rec=2).resolve(len(db))
        tree, rp_list = build_rp_tree(db, params)
        assert rp_list.candidates == ("x",)
        assert tree.node_count() == 1


class TestItemOrderStrategies:
    def test_unknown_order_rejected(self, running_example):
        params = PARAMS.resolve(len(running_example))
        with pytest.raises(ValueError, match="item_order"):
            build_rp_tree(running_example, params, item_order="random")

    def test_orders_change_tree_shape_not_content(self, running_example):
        params = PARAMS.resolve(len(running_example))
        trees = {
            order: build_rp_tree(running_example, params, item_order=order)[0]
            for order in ("support-desc", "support-asc", "lexicographic")
        }
        # Same transactions represented (same total ts entries) ...
        entries = {t.ts_entry_count() for t in trees.values()}
        assert len(entries) == 1
        # ... but support-descending is at least as compact here.
        assert trees["support-desc"].node_count() <= (
            trees["support-asc"].node_count()
        )

    def test_mining_output_is_order_invariant(self, running_example):
        from repro.core.rp_growth import RPGrowth

        reference = RPGrowth(2, 3, 2).mine(running_example)
        for order in ("support-asc", "lexicographic"):
            assert RPGrowth(2, 3, 2, item_order=order).mine(
                running_example
            ) == reference
