"""Unit tests for the vertical (Eclat-style) recurring-pattern engine."""

import pytest

from repro.core.rp_eclat import RPEclat, intersect_sorted
from repro.core.rp_growth import RPGrowth
from repro.datasets import paper_table2_patterns
from repro.timeseries.database import TransactionalDatabase


class TestIntersectSorted:
    def test_basic(self):
        assert intersect_sorted([1, 3, 5, 7], [3, 4, 7, 9]) == [3, 7]

    def test_disjoint(self):
        assert intersect_sorted([1, 2], [3, 4]) == []

    def test_empty_sides(self):
        assert intersect_sorted([], [1]) == []
        assert intersect_sorted([1], []) == []

    def test_identical(self):
        assert intersect_sorted([1, 2, 3], [1, 2, 3]) == [1, 2, 3]

    def test_floats(self):
        assert intersect_sorted([0.5, 1.5], [1.5, 2.5]) == [1.5]


class TestMining:
    def test_paper_table2(self, running_example):
        found = RPEclat(per=2, min_ps=3, min_rec=2).mine(running_example)
        got = {
            "".join(sorted(p.items)): (
                p.support,
                p.recurrence,
                [(iv.start, iv.end, iv.periodic_support) for iv in p.intervals],
            )
            for p in found
        }
        assert got == paper_table2_patterns()

    def test_matches_rp_growth_on_other_thresholds(self, running_example):
        for per, min_ps, min_rec in [(1, 2, 1), (3, 2, 2), (2, 1, 3), (5, 4, 1)]:
            growth = RPGrowth(per, min_ps, min_rec).mine(running_example)
            eclat = RPEclat(per, min_ps, min_rec).mine(running_example)
            assert growth == eclat, (per, min_ps, min_rec)

    def test_empty_database(self):
        assert len(RPEclat(2, 3, 2).mine(TransactionalDatabase())) == 0

    def test_rejects_unknown_pruning(self):
        with pytest.raises(ValueError):
            RPEclat(2, 3, 2, pruning="magic")


class TestPruningStrategies:
    def test_support_pruning_gives_same_answer(self, running_example):
        # The weak bound is sound: results must be identical, only the
        # explored search space differs.
        erec = RPEclat(2, 3, 2, pruning="erec").mine(running_example)
        weak = RPEclat(2, 3, 2, pruning="support").mine(running_example)
        assert erec == weak

    def test_erec_pruning_explores_no_more_candidates(self, running_example):
        strong = RPEclat(2, 3, 2, pruning="erec")
        strong.mine(running_example)
        weak = RPEclat(2, 3, 2, pruning="support")
        weak.mine(running_example)
        assert (
            strong.last_stats.candidate_patterns
            <= weak.last_stats.candidate_patterns
        )

    def test_stats_recorded(self, running_example):
        miner = RPEclat(2, 3, 2)
        miner.mine(running_example)
        assert miner.last_stats.patterns_found == 8
        assert miner.last_stats.pruned_items == 1  # g
