"""Unit tests for the evaluation workloads."""

import pytest

from repro.bench.workloads import (
    clickstream_workload,
    quest_workload,
    twitter_workload,
)
from repro.exceptions import ParameterError


class TestCaching:
    def test_same_call_returns_cached_object(self):
        assert quest_workload(0.01) is quest_workload(0.01)

    def test_different_scale_different_database(self):
        assert quest_workload(0.01) is not quest_workload(0.02)


class TestQuest:
    def test_scale_controls_size(self):
        small = quest_workload(0.01)
        large = quest_workload(0.02)
        assert len(large) > len(small)

    def test_rejects_bad_scale(self):
        with pytest.raises(ParameterError):
            quest_workload(0)


class TestShop14:
    def test_small_scale_keeps_promotions(self):
        db = clickstream_workload(0.1)
        assert "c120" in db.items()
        assert "c121" in db.items()

    def test_category_count(self):
        db = clickstream_workload(0.1)
        assert len(db.items()) <= 138


class TestTwitter:
    def test_small_scale_keeps_all_bursts(self):
        db = twitter_workload(0.1)
        for tag in ("yyc", "uttarakhand", "nuclear", "hibaku",
                    "pakvotes", "oklahoma"):
            assert tag in db.items(), tag

    def test_burst_pattern_survives_rescaling(self):
        from repro import mine_recurring_patterns

        db = twitter_workload(0.1)
        found = mine_recurring_patterns(
            db, per=360, min_ps=30, min_rec=1, engine="rp-eclat"
        )
        assert found.get(["nuclear", "hibaku"]) is not None
