"""Unit tests for the ASCII reporting helpers."""

import pytest

from repro.bench.reporting import format_series, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["x", "longer"], [[1, 2], [300, 4]])
        lines = text.splitlines()
        assert lines[0] == "  x | longer"
        assert lines[1] == "----+-------"
        assert lines[2] == "  1 |      2"
        assert lines[3] == "300 |      4"

    def test_title(self):
        text = format_table(["a"], [[1]], title="hello")
        assert text.splitlines()[0] == "hello"

    def test_floats_formatted(self):
        text = format_table(["t"], [[0.123456]])
        assert "0.123" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert len(text.splitlines()) == 2

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestFormatSeries:
    def test_layout(self):
        text = format_series("x", [1, 2], {"s1": [10, 20], "s2": [3, 4]})
        lines = text.splitlines()
        assert lines[0] == "x | s1 | s2"
        assert lines[-1] == "2 | 20 |  4"

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_series("x", [1, 2], {"s": [1]})

    def test_deterministic(self):
        args = ("x", [1], {"a": [1], "b": [2]})
        assert format_series(*args) == format_series(*args)
