"""Unit tests for the experiment harness."""

import pytest

from repro.bench.harness import (
    compare_models,
    sweep_pattern_counts,
    sweep_runtime,
)
from repro.datasets import paper_running_example


class TestCountSweep:
    def test_grid_is_complete(self, running_example):
        result = sweep_pattern_counts(
            running_example, "toy", pers=[1, 2], min_ps_values=[1, 3],
            min_recs=[1, 2],
        )
        assert len(result.cells) == 8

    def test_paper_cell(self, running_example):
        result = sweep_pattern_counts(
            running_example, "toy", pers=[2], min_ps_values=[3], min_recs=[2],
        )
        assert result.value(2, 3, 2) == 8

    def test_fractional_thresholds(self, running_example):
        result = sweep_pattern_counts(
            running_example, "toy", pers=[2], min_ps_values=[0.25],
            min_recs=[2],
        )
        assert result.value(2, 0.25, 2) == 8  # 0.25 * 12 -> 3

    def test_as_table_renders_every_cell(self, running_example):
        result = sweep_pattern_counts(
            running_example, "toy", pers=[1, 2], min_ps_values=[3],
            min_recs=[1, 2],
        )
        table = result.as_table()
        assert "rec=1,per=1" in table
        assert "rec=2,per=2" in table

    def test_as_figure(self, running_example):
        result = sweep_pattern_counts(
            running_example, "toy", pers=[2], min_ps_values=[1, 3],
            min_recs=[2],
        )
        figure = result.as_figure(min_rec=2)
        assert "per=2" in figure
        assert "minRec=2" in figure

    def test_engines_give_same_grid(self, running_example):
        growth = sweep_pattern_counts(
            running_example, "toy", [2], [3], [2], engine="rp-growth"
        )
        eclat = sweep_pattern_counts(
            running_example, "toy", [2], [3], [2], engine="rp-eclat"
        )
        assert growth.cells == eclat.cells


class TestRuntimeSweep:
    def test_measures_positive_times(self, running_example):
        result = sweep_runtime(
            running_example, "toy", pers=[2], min_ps_values=[3], min_recs=[2],
        )
        assert result.value(2, 3, 2) > 0

    def test_repeats_take_best(self, running_example):
        result = sweep_runtime(
            running_example, "toy", pers=[2], min_ps_values=[3],
            min_recs=[2], repeats=3,
        )
        assert result.metric == "seconds"


class TestComparison:
    def test_running_example(self, running_example):
        result = compare_models(
            running_example, "toy", per=2, min_sup=4, min_ps=3, min_rec=1
        )
        assert set(result.counts) == {
            "periodic-frequent", "recurring", "p-pattern",
        }
        # Strict complete cycling finds the fewest patterns here too.
        assert result.counts["periodic-frequent"] <= result.counts["recurring"]

    def test_as_table(self, running_example):
        result = compare_models(
            running_example, "toy", per=2, min_sup=4, min_ps=3
        )
        table = result.as_table()
        for model in ("periodic-frequent", "recurring", "p-pattern"):
            assert model in table
