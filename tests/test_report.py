"""Unit tests for the markdown report module."""

import io

import pytest

from repro import RPGrowth, mine_recurring_patterns
from repro.report import render_mining_report, write_mining_report
from repro.timeseries.database import TransactionalDatabase


@pytest.fixture
def report(running_example):
    miner = RPGrowth(2, 3, 2)
    found = miner.mine(running_example)
    return render_mining_report(
        running_example, found, 2, 3, 2, stats=miner.last_stats
    )


class TestRender:
    def test_sections_present(self, report):
        for heading in (
            "# Recurring-pattern mining report",
            "## Input",
            "## Parameters",
            "## Mining statistics",
            "## Patterns",
            "### Timeline",
            "### Co-seasonal groups",
        ):
            assert heading in report

    def test_pattern_rows(self, report):
        assert "| a b | 7 | 2 |" in report
        assert "[1, 4]:3, [11, 14]:3" in report

    def test_stats_rows(self, report):
        assert "| items pruned by Erec | 1 |" in report
        assert "| patterns found | 8 |" in report

    def test_max_patterns_truncates(self, running_example):
        found = mine_recurring_patterns(running_example, 2, 3, 2)
        text = render_mining_report(
            running_example, found, 2, 3, 2, max_patterns=2
        )
        assert "showing the first 2" in text

    def test_empty_database(self):
        from repro.core.model import RecurringPatternSet

        text = render_mining_report(
            TransactionalDatabase(), RecurringPatternSet(), 1, 1, 1
        )
        assert "(empty database)" in text
        assert "0 recurring patterns" in text

    def test_deterministic(self, running_example):
        found = mine_recurring_patterns(running_example, 2, 3, 2)
        first = render_mining_report(running_example, found, 2, 3, 2)
        second = render_mining_report(running_example, found, 2, 3, 2)
        assert first == second


class TestWrite:
    def test_to_path(self, tmp_path, running_example):
        found = mine_recurring_patterns(running_example, 2, 3, 2)
        path = tmp_path / "report.md"
        write_mining_report(path, running_example, found, 2, 3, 2)
        assert "## Patterns" in path.read_text()

    def test_to_handle(self, running_example):
        found = mine_recurring_patterns(running_example, 2, 3, 2)
        buffer = io.StringIO()
        write_mining_report(buffer, running_example, found, 2, 3, 2)
        assert "## Patterns" in buffer.getvalue()


class TestCliIntegration:
    def test_mine_report_flag(self, tmp_path, running_example):
        from repro.cli import main
        from repro.timeseries.io import save_transactional_database

        data = tmp_path / "db.tsv"
        save_transactional_database(running_example, data)
        report_path = tmp_path / "run.md"
        code = main([
            "mine", "--input", str(data),
            "--per", "2", "--min-ps", "3", "--min-rec", "2",
            "--report", str(report_path),
        ])
        assert code == 0
        assert "8 recurring patterns" in report_path.read_text()
