"""Randomized cross-engine differential testing.

The naive exhaustive miner is the oracle (it evaluates Definition 9
directly, itemset by itemset, with no pruning to get wrong); every
pruning engine — and the parallel layer — must agree with it on any
database.  This suite drives ~50 seeded random databases through all
of them per run: the shared generator in :mod:`repro.qa.differential`
varies the item alphabet, density, gap distribution (dense with
duplicate timestamps, uniform, bursty), and sprinkles empty itemsets,
so the cases cover the merge/prune edge paths that hand-written
fixtures miss.

The generation, comparison and minimization machinery lives in
``repro.qa.differential`` (promoted from this file so the metamorphic
checker and the ``repro qa`` gate reuse it); this test is now just the
pytest driver.  On disagreement it prints the seed, a greedily
minimized reproducer (rows + parameters) and both pattern sets, so a
failure is a one-paste bug report rather than a flake.
"""

import random

import pytest

from repro.qa.differential import (
    BASE_SEED,
    check_case,
    random_params,
    random_rows,
)
from repro.parallel import PARALLEL_ENGINES
from repro.timeseries.database import TransactionalDatabase

pytestmark = pytest.mark.slow

#: Differential cases per run; each case checks the oracle against all
#: three pruning engines (serial), and every 7th case additionally
#: re-checks the engines under jobs=2.
N_CASES = 50


@pytest.mark.parametrize("case", range(N_CASES))
def test_engines_agree_with_naive_oracle(case):
    seed = BASE_SEED + case
    rng = random.Random(seed)
    rows = random_rows(rng)
    params = random_params(rng)
    if len(TransactionalDatabase(rows)) == 0:
        pytest.skip("drew an empty database")
    jobs_values = (1, 2) if case % 7 == 0 else (1,)
    checks, failures = check_case(
        seed, rows, params,
        engines=PARALLEL_ENGINES, jobs_values=jobs_values,
    )
    assert checks >= len(PARALLEL_ENGINES)
    if failures:
        pytest.fail("\n\n".join(f.describe() for f in failures))
