"""Randomized cross-engine differential testing.

The naive exhaustive miner is the oracle (it evaluates Definition 9
directly, itemset by itemset, with no pruning to get wrong); every
pruning engine — and the parallel layer — must agree with it on any
database.  This suite drives ~50 seeded random databases through all
of them per run: a seeded generator varies the item alphabet, density,
gap distribution (dense with duplicate timestamps, uniform, bursty),
and sprinkles empty itemsets, so the cases cover the merge/prune edge
paths that hand-written fixtures miss.

On disagreement the test prints the seed, a greedily minimized
reproducer (rows + parameters) and both pattern sets, so a failure
is a one-paste bug report rather than a flake.
"""

import random

import pytest

from repro.core.miner import mine_recurring_patterns
from repro.core.naive import mine_recurring_patterns_naive
from repro.parallel import PARALLEL_ENGINES
from repro.timeseries.database import TransactionalDatabase

pytestmark = pytest.mark.slow

#: Differential cases per run; each case checks the oracle against all
#: three pruning engines (serial), and every 7th case additionally
#: re-checks one engine under jobs=2.
N_CASES = 50

#: Base seed; case ``i`` uses ``BASE_SEED + i``, so any failure names
#: a single integer that reproduces it forever.
BASE_SEED = 20150323

ALPHABET = "abcdefg"


# ----------------------------------------------------------------------
# Seeded generation
# ----------------------------------------------------------------------
def _random_rows(rng: random.Random):
    """Raw (timestamp, itemset-string) rows, deliberately messy.

    ``dense`` gaps produce duplicate timestamps (the database merges
    them into one transaction) and zero-density draws produce empty
    itemsets (the database drops them) — both documented constructor
    behaviours the engines must agree on.
    """
    n_items = rng.randint(2, len(ALPHABET))
    alphabet = ALPHABET[:n_items]
    n_rows = rng.randint(0, 40)
    gap_style = rng.choice(("dense", "uniform", "bursty"))
    density = rng.uniform(0.2, 0.9)
    rows = []
    timestamp = 0
    for _ in range(n_rows):
        if gap_style == "dense":
            timestamp += rng.randint(0, 2)
        elif gap_style == "uniform":
            timestamp += rng.randint(1, 6)
        else:
            timestamp += 1 if rng.random() < 0.7 else rng.randint(5, 15)
        itemset = "".join(
            item for item in alphabet if rng.random() < density
        )
        rows.append((timestamp, itemset))
    return rows


def _random_params(rng: random.Random):
    per = rng.randint(1, 6)
    if rng.random() < 0.25:  # fractional minPS takes the resolve path
        min_ps = round(rng.uniform(0.05, 0.5), 3)
    else:
        min_ps = rng.randint(1, 4)
    min_rec = rng.randint(1, 3)
    return per, min_ps, min_rec


# ----------------------------------------------------------------------
# Comparison and failure reporting
# ----------------------------------------------------------------------
def _canonical(patterns):
    """An order-independent, metadata-complete view of a pattern set."""
    return sorted(
        (
            tuple(sorted(str(item) for item in pattern.items)),
            pattern.support,
            pattern.recurrence,
            tuple(pattern.intervals),
        )
        for pattern in patterns
    )


def _mine_engine(rows, params, engine, jobs):
    database = TransactionalDatabase(rows)
    per, min_ps, min_rec = params
    return _canonical(
        mine_recurring_patterns(
            database, per, min_ps, min_rec, engine=engine, jobs=jobs
        )
    )


def _disagrees(rows, params, engine, jobs):
    database = TransactionalDatabase(rows)
    if len(database) == 0:
        return False
    per, min_ps, min_rec = params
    oracle = _canonical(
        mine_recurring_patterns_naive(database, per, min_ps, min_rec)
    )
    return _mine_engine(rows, params, engine, jobs) != oracle


def _minimize(rows, params, engine, jobs):
    """Greedy one-row-at-a-time shrink that preserves the disagreement."""
    rows = list(rows)
    shrinking = True
    while shrinking:
        shrinking = False
        for index in range(len(rows)):
            trial = rows[:index] + rows[index + 1:]
            if _disagrees(trial, params, engine, jobs):
                rows = trial
                shrinking = True
                break
    return rows


def _fail(seed, rows, params, engine, jobs, oracle, got):
    minimal = _minimize(rows, params, engine, jobs)
    per, min_ps, min_rec = params
    reproducer = (
        f"rows = {minimal!r}\n"
        f"db = TransactionalDatabase(rows)\n"
        f"mine_recurring_patterns(db, per={per!r}, min_ps={min_ps!r}, "
        f"min_rec={min_rec!r}, engine={engine!r}, jobs={jobs!r})"
    )
    pytest.fail(
        f"engine {engine!r} (jobs={jobs}) disagrees with the naive "
        f"oracle.\nseed: {seed}\nminimized reproducer:\n{reproducer}\n"
        f"oracle: {oracle!r}\ngot:    {got!r}"
    )


# ----------------------------------------------------------------------
# The differential sweep
# ----------------------------------------------------------------------
@pytest.mark.parametrize("case", range(N_CASES))
def test_engines_agree_with_naive_oracle(case):
    seed = BASE_SEED + case
    rng = random.Random(seed)
    rows = _random_rows(rng)
    params = _random_params(rng)
    database = TransactionalDatabase(rows)
    if len(database) == 0:
        pytest.skip("drew an empty database")
    per, min_ps, min_rec = params
    oracle = _canonical(
        mine_recurring_patterns_naive(database, per, min_ps, min_rec)
    )
    for engine in PARALLEL_ENGINES:
        got = _mine_engine(rows, params, engine, jobs=1)
        if got != oracle:
            _fail(seed, rows, params, engine, 1, oracle, got)
    if case % 7 == 0:
        engine = PARALLEL_ENGINES[case % len(PARALLEL_ENGINES)]
        got = _mine_engine(rows, params, engine, jobs=2)
        if got != oracle:
            _fail(seed, rows, params, engine, 2, oracle, got)
