"""QA suites: randomized cross-engine differential testing."""
