"""Unit tests for the promoted differential-testing API.

``repro.qa.differential`` is library code now (the relations checker
and the qa gate build on it), so its pieces — the canonical view, the
minimizer, the sweep driver — get direct coverage here, independent of
the slow randomized sweep in ``test_differential_random.py``.
"""

import random

import pytest

from repro.core.miner import mine_recurring_patterns
from repro.datasets import paper_running_example
from repro.qa.differential import (
    BASE_SEED,
    CaseParams,
    DifferentialFailure,
    canonical,
    check_case,
    disagrees_with_oracle,
    format_reproducer,
    mine_canonical,
    minimize_case,
    oracle_canonical,
    random_params,
    random_rows,
    run_differential,
)

RUNNING_EXAMPLE_ROWS = tuple(
    (ts, tuple(sorted(items, key=repr)))
    for ts, items in paper_running_example()
)
PARAMS = CaseParams(per=2, min_ps=3, min_rec=2)


# ----------------------------------------------------------------------
# Canonical views
# ----------------------------------------------------------------------
def test_canonical_is_order_independent():
    patterns = mine_recurring_patterns(paper_running_example(), 2, 3, 2)
    forward = canonical(patterns)
    backward = canonical(reversed(list(patterns)))
    assert forward == backward
    # Every entry is (items, support, recurrence, intervals).
    items, support, recurrence, intervals = forward[0]
    assert isinstance(items, tuple) and all(isinstance(i, str) for i in items)
    assert support >= 1 and recurrence == len(intervals)


def test_mine_canonical_matches_oracle_on_running_example():
    for engine in ("rp-growth", "rp-eclat", "rp-eclat-np", "rp-eclat-vec"):
        assert mine_canonical(RUNNING_EXAMPLE_ROWS, PARAMS, engine) == \
            oracle_canonical(RUNNING_EXAMPLE_ROWS, PARAMS)


def test_disagrees_with_oracle_false_on_agreement_and_empty():
    assert not disagrees_with_oracle(RUNNING_EXAMPLE_ROWS, PARAMS, "rp-growth")
    assert not disagrees_with_oracle([], PARAMS, "rp-growth")
    assert not disagrees_with_oracle([(1, ""), (2, "")], PARAMS, "rp-growth")


# ----------------------------------------------------------------------
# Generation determinism
# ----------------------------------------------------------------------
def test_generation_is_seed_deterministic():
    a = random.Random(BASE_SEED)
    b = random.Random(BASE_SEED)
    assert random_rows(a) == random_rows(b)
    assert random_params(random.Random(7)) == random_params(random.Random(7))


# ----------------------------------------------------------------------
# The minimizer
# ----------------------------------------------------------------------
def test_minimize_case_shrinks_to_one_minimal_core():
    rows = [(ts, "a") for ts in range(10)] + [(50, "bc"), (60, "d")]
    # The property: at least 4 rows carrying item "a" survive.
    predicate = lambda trial: sum("a" in items for _, items in trial) >= 4
    minimal = minimize_case(rows, predicate)
    assert predicate(minimal)
    assert len(minimal) == 4
    # 1-minimality: removing any single remaining row breaks the property.
    for index in range(len(minimal)):
        assert not predicate(minimal[:index] + minimal[index + 1:])


def test_minimize_case_returns_input_when_predicate_fails():
    rows = [(1, "a"), (2, "b")]
    assert minimize_case(rows, lambda trial: False) == rows


def test_minimize_case_does_not_mutate_input():
    rows = [(1, "a"), (2, "a"), (3, "a")]
    before = list(rows)
    minimize_case(rows, lambda trial: len(trial) >= 1)
    assert rows == before


def test_format_reproducer_is_paste_ready():
    text = format_reproducer([(1, "ab")], PARAMS, "rp-eclat", 2)
    assert "TransactionalDatabase" in text
    assert "mine_recurring_patterns" in text
    assert "engine='rp-eclat'" in text and "jobs=2" in text


# ----------------------------------------------------------------------
# check_case and the sweep driver
# ----------------------------------------------------------------------
def test_check_case_clean_on_running_example():
    checks, failures = check_case(
        seed=0, rows=RUNNING_EXAMPLE_ROWS, params=PARAMS,
        jobs_values=(1, 2),
    )
    assert failures == []
    assert checks == 8  # four pruning engines x two jobs levels


def test_check_case_skips_empty_database():
    checks, failures = check_case(seed=0, rows=[(3, "")], params=PARAMS)
    assert (checks, failures) == (0, [])


def test_run_differential_small_sweep_passes():
    result = run_differential(n_cases=5, base_seed=BASE_SEED)
    assert result.passed
    assert result.cases == 5
    assert result.checks >= 3 * (5 - result.skipped_empty)


def test_run_differential_deadline_stops_cleanly():
    result = run_differential(n_cases=50, deadline=0.0)
    assert result.cases == 0 and result.passed


def test_failure_report_names_seed_and_reproducer():
    failure = DifferentialFailure(
        seed=123, engine="rp-eclat", jobs=1, params=PARAMS,
        rows=((1, ("a",)),), minimized_rows=((1, ("a",)),),
        oracle=(), got=((("a",), 1, 1, ()),),
    )
    text = failure.describe()
    assert "seed: 123" in text
    assert "minimized reproducer" in text
    assert "TransactionalDatabase" in text
    record = failure.as_dict()
    assert record["seed"] == 123
    assert record["params"] == {"per": 2, "min_ps": 3, "min_rec": 2}
    assert record["minimized_rows"] == [[1, ("a",)]]
