"""Tests for the budgeted ``repro qa`` conformance gate.

Covers :func:`repro.qa.run_qa` (report structure, budget handling,
suite skipping, the ``repro-qa/v1`` record contract) and the CLI
subcommand end to end through :func:`repro.cli.main`.
"""

import json

import pytest

from repro.cli import main
from repro.obs.report import QA_SCHEMA, validate_qa_record
from repro.qa import QAConfig, QAReport, run_qa
from repro.qa.golden import golden_path, update_goldens


def _fast_config(**overrides):
    """A gate configuration that finishes in well under a second."""
    settings = dict(
        budget=30.0,
        jobs_values=(1,),
        relation_cases=0,
        differential_cases=3,
    )
    settings.update(overrides)
    return QAConfig(**settings)


# ----------------------------------------------------------------------
# run_qa
# ----------------------------------------------------------------------
def test_run_qa_passes_and_produces_a_valid_record():
    report = run_qa(_fast_config())
    assert report.passed
    assert report.matrix_complete()
    assert report.seconds > 0
    record = report.as_record()
    validate_qa_record(record)  # must not raise
    assert record["schema"] == QA_SCHEMA
    assert record["passed"] is True
    assert record["relations"]["matrix_complete"] is True
    assert record["relations"]["violations"] == []
    assert record["differential"]["cases"] == 3
    assert all(
        check["status"] == "pass" for check in record["golden"]["checks"]
    )
    # Round-trips through JSON (the TraceWriter contract).
    assert json.loads(json.dumps(record)) == record


def test_run_qa_skips_requested_suites():
    report = run_qa(
        _fast_config(skip=("golden", "differential"))
    )
    assert report.passed
    assert report.skipped == ("golden", "differential")
    assert report.golden.checks == []
    assert report.differential.cases == 0
    record = report.as_record()
    validate_qa_record(record)
    assert record["skipped"] == ["golden", "differential"]


def test_run_qa_skipping_relations_voids_matrix_completeness():
    report = run_qa(_fast_config(skip=("relations",)))
    assert not report.matrix_complete()
    assert report.passed  # skipping is not failing


def test_qa_config_rejects_unknown_section():
    with pytest.raises(ValueError, match="unknown qa section"):
        QAConfig(skip=("bogus",))


def test_exhausted_budget_still_completes_the_relation_matrix():
    report = run_qa(_fast_config(budget=0.0))
    assert report.matrix_complete()
    assert report.differential.cases == 0  # no time left for the sweep


def test_summary_table_names_verdict_and_suites():
    report = run_qa(_fast_config(skip=("differential",)))
    table = report.summary_table()
    assert "qa gate PASS" in table
    for suite in ("relations", "golden", "differential"):
        assert suite in table
    assert "skip" in table


def test_failure_reports_collect_golden_diffs(tmp_path):
    update_goldens(str(tmp_path), names=["running-example"])
    path = golden_path(str(tmp_path), "running-example")
    document = json.loads(open(path, encoding="utf-8").read())
    document["patterns"][0]["support"] += 3
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
    report = run_qa(
        _fast_config(
            golden_dir=str(tmp_path), skip=("relations", "differential")
        )
    )
    assert not report.passed
    assert "FAIL" in report.summary_table()
    reports = report.failure_reports()
    assert reports and any("~ changed:" in text for text in reports)
    validate_qa_record(report.as_record())


# ----------------------------------------------------------------------
# The repro-qa/v1 record contract
# ----------------------------------------------------------------------
def test_validate_qa_record_rejects_wrong_schema():
    record = run_qa(_fast_config(skip=("differential",))).as_record()
    record["schema"] = "bogus"
    with pytest.raises(ValueError, match="bogus"):
        validate_qa_record(record)


def test_validate_qa_record_rejects_missing_sections():
    record = run_qa(_fast_config(skip=("differential",))).as_record()
    del record["relations"]
    with pytest.raises(ValueError):
        validate_qa_record(record)


# ----------------------------------------------------------------------
# The CLI subcommand
# ----------------------------------------------------------------------
def test_cli_qa_passes_and_writes_report(tmp_path, capsys):
    report_path = tmp_path / "qa.json"
    exit_code = main([
        "qa",
        "--budget", "30",
        "--relation-cases", "0",
        "--differential-cases", "2",
        "--report", str(report_path),
    ])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "qa gate PASS" in captured.out
    assert "qa report written" in captured.err
    record = json.loads(report_path.read_text())
    validate_qa_record(record)
    assert record["passed"] is True
    assert record["budget_seconds"] == 30.0


def test_cli_qa_dash_disables_report(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    exit_code = main([
        "qa", "--relation-cases", "0", "--differential-cases", "1",
        "--skip", "golden", "--report", "-",
    ])
    assert exit_code == 0
    assert list(tmp_path.iterdir()) == []  # nothing written anywhere


def test_cli_qa_update_golden_writes_snapshots(tmp_path, capsys):
    golden_dir = tmp_path / "golden"
    exit_code = main([
        "qa",
        "--skip", "relations", "--skip", "differential",
        "--golden-dir", str(golden_dir),
        "--update-golden",
        "--report", "-",
    ])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert sorted(p.name for p in golden_dir.iterdir()) == [
        "clickstream-micro.json",
        "planted.json",
        "quest-micro.json",
        "running-example.json",
    ]
    assert captured.err.count("golden snapshot written") == 4


def test_cli_qa_red_gate_exits_nonzero(tmp_path, capsys):
    update_goldens(str(tmp_path), names=["running-example"])
    path = golden_path(str(tmp_path), "running-example")
    document = json.loads(open(path, encoding="utf-8").read())
    del document["patterns"][0]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
    exit_code = main([
        "qa",
        "--skip", "relations", "--skip", "differential",
        "--golden-dir", str(tmp_path),
        "--report", "-",
    ])
    captured = capsys.readouterr()
    assert exit_code == 1
    assert "qa gate FAIL" in captured.out
    assert "+ unexpected:" in captured.out


def test_cli_qa_rejects_unknown_skip(capsys):
    with pytest.raises(SystemExit):
        main(["qa", "--skip", "everything"])


def test_qa_report_default_construction_is_empty_pass():
    report = QAReport(config=QAConfig())
    assert report.passed  # vacuous: nothing ran, nothing failed
    assert report.golden.checks == []
