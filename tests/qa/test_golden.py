"""Tests for the golden (snapshot) corpus.

The committed snapshots under ``tests/qa/golden/`` are the defence
against lockstep semantic drift — a bug in shared interval code moves
every engine (and the naive oracle) identically, so only a frozen
reference catches it.  ``pytest tests/qa --update-golden`` refreshes
the snapshots after an intentional model change.
"""

import json
import os

import pytest

from repro.exceptions import DataFormatError
from repro.qa.golden import (
    GOLDEN_CASES,
    GOLDEN_SCHEMA,
    check_goldens,
    default_golden_dir,
    get_golden_case,
    golden_diff,
    golden_path,
    read_golden,
    run_goldens,
    update_goldens,
    write_golden,
)


# ----------------------------------------------------------------------
# The committed corpus
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "case", GOLDEN_CASES, ids=lambda case: case.name
)
def test_committed_snapshot_matches(case, request):
    if request.config.getoption("--update-golden"):
        path = write_golden(case, default_golden_dir())
        pytest.skip(f"snapshot refreshed: {path}")
    checks = check_goldens(case, default_golden_dir())
    assert checks, "every golden case must check at least one engine"
    bad = [c for c in checks if c.status != "pass"]
    assert not bad, "\n\n".join(
        f"golden {c.name!r} {c.status} under {c.engine!r}:\n{c.detail}"
        for c in bad
    )


def test_default_golden_dir_points_at_the_committed_corpus():
    directory = default_golden_dir()
    assert os.path.isdir(directory)
    for case in GOLDEN_CASES:
        assert os.path.exists(golden_path(directory, case.name))


def test_running_example_snapshot_document_shape():
    document, patterns = read_golden("running-example", default_golden_dir())
    assert document["schema"] == GOLDEN_SCHEMA
    assert document["params"] == {"per": 2, "min_ps": 3, "min_rec": 2}
    # Table 2 of the paper: 8 recurring patterns, "ab" with support 7.
    assert len(patterns) == 8
    by_items = {items: entry for items, *entry in patterns}
    assert by_items[("a", "b")][0] == 7


def test_get_golden_case_rejects_unknown():
    with pytest.raises(KeyError, match="no-such-case"):
        get_golden_case("no-such-case")


# ----------------------------------------------------------------------
# Update tooling and failure modes (all against a temp directory)
# ----------------------------------------------------------------------
def test_update_goldens_writes_checkable_snapshots(tmp_path):
    paths = update_goldens(str(tmp_path), names=["running-example"])
    assert paths == [str(tmp_path / "running-example.json")]
    result = run_goldens(str(tmp_path), names=["running-example"])
    assert result.passed
    assert all(c.status == "pass" for c in result.checks)


def test_missing_snapshot_reports_skip_not_pass(tmp_path):
    checks = check_goldens(get_golden_case("running-example"), str(tmp_path))
    assert {c.status for c in checks} == {"skip"}
    assert all("--update-golden" in c.detail for c in checks)
    # A skip keeps the suite green but is visibly not a pass.
    result = run_goldens(str(tmp_path), names=["running-example"])
    assert result.passed and not result.failures


def test_tampered_snapshot_fails_with_diff_report(tmp_path):
    update_goldens(str(tmp_path), names=["running-example"])
    path = golden_path(str(tmp_path), "running-example")
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    document["patterns"][0]["support"] += 1
    removed = document["patterns"].pop()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
    checks = check_goldens(get_golden_case("running-example"), str(tmp_path))
    assert all(c.status == "fail" for c in checks)
    detail = checks[0].detail
    assert "~ changed:" in detail  # tampered support
    assert "+ unexpected:" in detail  # pattern missing from the snapshot
    assert "".join(removed["items"]) in detail.replace(" ", "")


def test_stale_params_snapshot_is_an_error_not_a_silent_pass(tmp_path):
    update_goldens(str(tmp_path), names=["running-example"])
    path = golden_path(str(tmp_path), "running-example")
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    document["params"]["per"] = 99
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
    with pytest.raises(DataFormatError, match="refresh the golden corpus"):
        read_golden("running-example", str(tmp_path))
    checks = check_goldens(get_golden_case("running-example"), str(tmp_path))
    assert {c.status for c in checks} == {"error"}


def test_bad_schema_rejected(tmp_path):
    path = golden_path(str(tmp_path), "running-example")
    os.makedirs(str(tmp_path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"schema": "bogus/v9"}, handle)
    with pytest.raises(DataFormatError, match="bogus/v9"):
        read_golden("running-example", str(tmp_path))


# ----------------------------------------------------------------------
# The diff renderer
# ----------------------------------------------------------------------
def test_golden_diff_classifies_all_three_kinds():
    base = (("a",), 5, 1, ())
    changed = (("a",), 6, 1, ())
    only_expected = (("b",), 3, 1, ())
    only_actual = (("c",), 2, 1, ())
    report = golden_diff([base, only_expected], [changed, only_actual])
    assert "- missing:" in report and "b [" in report
    assert "+ unexpected:" in report and "c [" in report
    assert "~ changed:" in report
    assert golden_diff([base], [base]) == ""
