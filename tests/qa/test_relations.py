"""Tests for the metamorphic-relation registry and checker.

The fast lane checks every registered relation on the running example
across the full engine × jobs matrix (the same cells the ``repro qa``
gate exercises) and verifies the failure path: a deliberately broken
relation must produce a *minimized* reproducer naming its seed.
"""

import pytest

from repro.core.miner import ENGINES
from repro.qa.differential import CaseParams
from repro.qa.relations import (
    RELATIONS,
    MetamorphicRelation,
    RelationCase,
    check_relation,
    default_case_corpus,
    engine_matrix,
    get_relation,
    run_relations,
    running_example_case,
)
from repro.timeseries.database import TransactionalDatabase

MATRIX = engine_matrix()


def _normalized(rows):
    """TDB content as comparable (timestamp, sorted-items) pairs."""
    return [
        (ts, tuple(sorted(items, key=repr)))
        for ts, items in TransactionalDatabase(rows)
    ]


# ----------------------------------------------------------------------
# Registry shape
# ----------------------------------------------------------------------
def test_registry_holds_the_eight_relations():
    assert [r.name for r in RELATIONS] == [
        "time-shift",
        "item-relabel",
        "time-scale",
        "concat-disjoint",
        "event-duplication",
        "stream-batch",
        "stream-checkpoint-resume",
        "shard-merge",
    ]
    for relation in RELATIONS:
        assert relation.description and relation.paper_basis


def test_get_relation_round_trips_and_rejects_unknown():
    assert get_relation("time-shift") is RELATIONS[0]
    with pytest.raises(KeyError, match="no-such-relation"):
        get_relation("no-such-relation")


def test_engine_matrix_covers_all_engines_naive_serial_only():
    assert set(MATRIX) == {
        ("rp-growth", 1), ("rp-growth", 2),
        ("rp-eclat", 1), ("rp-eclat", 2),
        ("rp-eclat-np", 1), ("rp-eclat-np", 2),
        ("rp-eclat-vec", 1), ("rp-eclat-vec", 2),
        ("naive", 1),
    }
    assert engine_matrix(ENGINES, jobs_values=(1,)) == [
        (engine, 1) for engine in ENGINES
    ]


# ----------------------------------------------------------------------
# Relations hold on the running example, full matrix
# ----------------------------------------------------------------------
@pytest.mark.parametrize("relation", RELATIONS, ids=lambda r: r.name)
@pytest.mark.parametrize("engine,jobs", MATRIX, ids=lambda v: str(v))
def test_relation_holds_on_running_example(relation, engine, jobs):
    case = running_example_case()
    assert check_relation(relation, case, engine, jobs) is None


def test_relations_hold_on_random_corpus_serial():
    result = run_relations(
        cases=default_case_corpus(n_random=2), jobs_values=(1,)
    )
    assert result.passed, "\n\n".join(
        v.describe() for v in result.violations
    )
    assert result.cases_checked == len(RELATIONS) * len(ENGINES) * 3


# ----------------------------------------------------------------------
# The transforms themselves
# ----------------------------------------------------------------------
def test_event_duplication_transform_is_a_tdb_no_op():
    case = running_example_case()
    transformed, params = get_relation("event-duplication").transform(
        case.rows, case.params
    )
    assert params == case.params
    assert len(transformed) > len(case.rows)
    assert _normalized(transformed) == _normalized(case.rows)


def test_concat_transform_doubles_the_database_disjointly():
    case = running_example_case()
    transformed, _ = get_relation("concat-disjoint").transform(
        case.rows, case.params
    )
    base = TransactionalDatabase(case.rows)
    doubled = TransactionalDatabase(transformed)
    assert len(doubled) == 2 * len(base)
    # The seam gap must exceed per so no periodic run crosses it.
    base_end = max(ts for ts, _ in base)
    first_copy_ts = min(
        ts for ts, _ in doubled if ts > base_end
    )
    assert first_copy_ts - base_end > case.params.per


# ----------------------------------------------------------------------
# Corpus construction
# ----------------------------------------------------------------------
def test_default_case_corpus_is_deterministic_and_non_empty():
    first = default_case_corpus(n_random=3)
    second = default_case_corpus(n_random=3)
    assert first == second
    assert first[0].label == "running-example"
    assert len(first) == 4
    for case in first:
        assert len(TransactionalDatabase(case.rows)) > 0
        # Thresholds are pre-resolved: concat-disjoint needs absolute
        # counts, so no fractional min_ps may survive corpus build.
        assert isinstance(case.params.min_ps, int)


# ----------------------------------------------------------------------
# The failure path: a broken relation yields a minimized reproducer
# ----------------------------------------------------------------------
def test_broken_relation_reports_minimized_reproducer_with_seed():
    shift = get_relation("time-shift")
    # Deliberately wrong prediction: claims a global time shift leaves
    # the intervals untouched.  Every engine must refute it.
    broken = MetamorphicRelation(
        name="bogus-shift-invariance",
        description="time shift wrongly predicted to be a full no-op",
        paper_basis="none - this relation is intentionally false",
        transform=shift.transform,
        expected=lambda mine, rows, params: mine(rows, params),
    )
    case = RelationCase(
        "seeded-running-example", 77,
        running_example_case().rows, CaseParams(2, 3, 2),
    )
    violation = check_relation(broken, case, "rp-growth", jobs=1)
    assert violation is not None
    assert violation.relation == "bogus-shift-invariance"
    # Minimization shrank the base case but kept the violation alive.
    assert 0 < len(violation.minimized_rows) < len(case.rows)
    assert violation.expected != violation.got
    report = violation.describe()
    assert "seed: 77" in report
    assert "minimized base case" in report
    assert "TransactionalDatabase" in report  # paste-ready reproducer
    record = violation.as_dict()
    assert record["seed"] == 77
    assert record["minimized_rows"] == [
        list(row) for row in violation.minimized_rows
    ]


def test_run_relations_collects_violations_of_a_broken_relation():
    broken = MetamorphicRelation(
        name="bogus-scale-invariance",
        description="timestamp scaling wrongly predicted to be a no-op",
        paper_basis="none - this relation is intentionally false",
        transform=get_relation("time-scale").transform,
        expected=lambda mine, rows, params: mine(rows, params),
    )
    result = run_relations(
        cases=[running_example_case()],
        relations=[broken],
        engines=("rp-growth", "rp-eclat"),
        jobs_values=(1,),
        minimize=False,
    )
    assert not result.passed
    assert len(result.violations) == 2
    assert {c.violations for c in result.checks} == {1}


def test_run_relations_deadline_still_covers_every_cell():
    # An already-expired deadline must trim extra cases, not the matrix.
    result = run_relations(
        cases=default_case_corpus(n_random=2),
        jobs_values=(1,),
        deadline=0.0,
    )
    assert result.passed
    assert all(check.cases == 1 for check in result.checks)
    assert len(result.checks) == len(RELATIONS) * len(ENGINES)
