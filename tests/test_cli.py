"""End-to-end tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.datasets import paper_running_example
from repro.timeseries.io import save_transactional_database


@pytest.fixture
def example_file(tmp_path):
    path = tmp_path / "example.tsv"
    save_transactional_database(paper_running_example(), path)
    return str(path)


class TestMine:
    def test_reproduces_table2(self, example_file, capsys):
        code = main([
            "mine", "--input", example_file,
            "--per", "2", "--min-ps", "3", "--min-rec", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "8 recurring patterns" in out
        assert "a b" in out
        assert "[1, 4]:3" in out

    def test_engine_flag(self, example_file, capsys):
        code = main([
            "mine", "--input", example_file,
            "--per", "2", "--min-ps", "3", "--min-rec", "2",
            "--engine", "rp-eclat",
        ])
        assert code == 0
        assert "8 recurring patterns" in capsys.readouterr().out

    def test_top_flag_limits_rows(self, example_file, capsys):
        code = main([
            "mine", "--input", example_file,
            "--per", "2", "--min-ps", "3", "--min-rec", "2", "--top", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        # header + rule + title + 2 rows
        assert len(out.strip().splitlines()) == 5

    def test_fractional_min_ps(self, example_file, capsys):
        code = main([
            "mine", "--input", example_file,
            "--per", "2", "--min-ps", "0.25", "--min-rec", "2",
        ])
        assert code == 0
        assert "8 recurring patterns" in capsys.readouterr().out

    def test_events_format(self, tmp_path, capsys):
        from repro.datasets import paper_running_example_events
        from repro.timeseries.io import save_event_sequence

        path = tmp_path / "events.tsv"
        save_event_sequence(paper_running_example_events(), path)
        code = main([
            "mine", "--input", str(path), "--format", "events",
            "--per", "2", "--min-ps", "3", "--min-rec", "2",
        ])
        assert code == 0
        assert "8 recurring patterns" in capsys.readouterr().out

    def test_missing_file_reports_error(self, capsys):
        code = main([
            "mine", "--input", "/nonexistent/file",
            "--per", "2", "--min-ps", "3",
        ])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_parameters_report_error(self, example_file, capsys):
        code = main([
            "mine", "--input", example_file,
            "--per", "-4", "--min-ps", "3",
        ])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestGenerateAndStats:
    def test_generate_then_stats(self, tmp_path, capsys):
        out_path = str(tmp_path / "quest.tsv")
        assert main([
            "generate", "--dataset", "quest",
            "--scale", "0.005", "--output", out_path,
        ]) == 0
        assert "wrote" in capsys.readouterr().out
        assert main(["stats", "--input", out_path]) == 0
        out = capsys.readouterr().out
        assert "transactions" in out
        assert "distinct items" in out

    def test_generate_clickstream(self, tmp_path, capsys):
        out_path = str(tmp_path / "shop.tsv")
        assert main([
            "generate", "--dataset", "clickstream",
            "--scale", "0.05", "--output", out_path,
        ]) == 0

    def test_generate_to_unwritable_path(self, capsys):
        code = main([
            "generate", "--dataset", "quest",
            "--scale", "0.005", "--output", "/nonexistent/dir/x.tsv",
        ])
        assert code == 1


class TestBenchAndCompare:
    def test_bench_prints_grid(self, capsys):
        code = main([
            "bench", "--dataset", "quest", "--scale", "0.005",
            "--pers", "10", "50",
            "--min-ps", "0.01",
            "--min-recs", "1", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "quest: count" in out
        assert "rec=1,per=10" in out

    def test_bench_runtime_flag(self, capsys):
        code = main([
            "bench", "--dataset", "quest", "--scale", "0.005",
            "--pers", "10",
            "--min-ps", "0.01",
            "--min-recs", "1",
            "--runtime",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "quest: seconds" in out

    def test_compare(self, capsys):
        code = main([
            "compare", "--dataset", "quest", "--scale", "0.005",
            "--per", "50", "--min-sup", "0.01", "--min-ps", "0.01",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "model comparison" in out
        assert "p-pattern" in out


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_engine_rejected_by_parser(self, example_file):
        with pytest.raises(SystemExit):
            main([
                "mine", "--input", example_file,
                "--per", "2", "--min-ps", "3", "--engine", "bogus",
            ])


class TestMineExtensions:
    def test_noise_tolerant_flag(self, tmp_path, capsys):
        from repro.timeseries.database import TransactionalDatabase

        db = TransactionalDatabase([(ts, "a") for ts in [1, 2, 3, 5, 6, 7]])
        path = tmp_path / "noisy.tsv"
        save_transactional_database(db, path)
        base = ["mine", "--input", str(path), "--per", "1", "--min-ps", "4"]
        assert main(base) == 0
        assert "0 recurring patterns" in capsys.readouterr().out
        assert main(base + ["--max-faults", "1"]) == 0
        assert "1 recurring patterns" in capsys.readouterr().out

    def test_closed_flag(self, example_file, capsys):
        code = main([
            "mine", "--input", example_file,
            "--per", "2", "--min-ps", "3", "--min-rec", "2", "--closed",
        ])
        assert code == 0
        assert "4 recurring patterns" in capsys.readouterr().out

    def test_maximal_flag(self, example_file, capsys):
        code = main([
            "mine", "--input", example_file,
            "--per", "2", "--min-ps", "3", "--min-rec", "2", "--maximal",
        ])
        assert code == 0
        assert "3 recurring patterns" in capsys.readouterr().out

    def test_closed_and_maximal_conflict(self, example_file):
        with pytest.raises(SystemExit):
            main([
                "mine", "--input", example_file,
                "--per", "2", "--min-ps", "3", "--closed", "--maximal",
            ])

    def test_timeline_flag(self, example_file, capsys):
        code = main([
            "mine", "--input", example_file,
            "--per", "2", "--min-ps", "3", "--min-rec", "2", "--timeline",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "█" in out


class TestRulesCommand:
    def test_rules_listing(self, example_file, capsys):
        code = main([
            "rules", "--input", example_file,
            "--per", "2", "--min-ps", "3", "--min-rec", "2",
            "--min-confidence", "0.8",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "recurring association rules" in out
        assert "b => a" in out


class TestBaselineCommand:
    @pytest.mark.parametrize(
        "model,needle",
        [
            ("frequent", "frequent patterns"),
            ("periodic-frequent", "periodic-frequent patterns"),
            ("p-pattern", "p-pattern patterns"),
            ("partial-periodic", "partial-periodic patterns"),
            ("async-periodic", "async-periodic patterns"),
        ],
    )
    def test_each_model_runs(self, example_file, capsys, model, needle):
        code = main([
            "baseline", "--input", example_file, "--model", model,
            "--per", "2", "--min-sup", "4",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert needle in out

    def test_unknown_model_rejected(self, example_file):
        with pytest.raises(SystemExit):
            main([
                "baseline", "--input", example_file, "--model", "bogus",
                "--min-sup", "2",
            ])


class TestSavePatterns:
    def test_save_and_reload(self, example_file, tmp_path, capsys):
        from repro.patterns_io import load_patterns

        out = tmp_path / "patterns.tsv"
        code = main([
            "mine", "--input", example_file,
            "--per", "2", "--min-ps", "3", "--min-rec", "2",
            "--save-patterns", str(out),
        ])
        assert code == 0
        reloaded = load_patterns(out)
        assert len(reloaded) == 8
        assert reloaded.pattern("ab").support == 7
