"""ParallelMiner wrapper: validation, delegation, merged telemetry."""

import pytest

from repro.core.miner import mine_recurring_patterns
from repro.core.options import ObservabilityOptions
from repro.core.rp_growth import RPGrowth
from repro.datasets import paper_running_example
from repro.exceptions import ParameterError
from repro.obs.report import MiningTelemetry, validate_run_record
from repro.obs.spans import SpanCollector, span
from repro.parallel import PARALLEL_ENGINES, ParallelMiner, default_jobs
from repro.timeseries.database import TransactionalDatabase


class TestValidation:
    def test_rejects_unknown_engine(self):
        with pytest.raises(ParameterError, match="not parallel-capable"):
            ParallelMiner(per=2, min_ps=3, min_rec=2, engine="naive")

    @pytest.mark.parametrize("jobs", [0, -1, 2.0, True])
    def test_rejects_bad_jobs(self, jobs):
        with pytest.raises(ParameterError, match="jobs"):
            ParallelMiner(per=2, min_ps=3, min_rec=2, jobs=jobs)

    def test_rejects_bad_chunks_per_job(self):
        with pytest.raises(ParameterError, match="chunks_per_job"):
            ParallelMiner(per=2, min_ps=3, min_rec=2, jobs=2,
                          chunks_per_job=0)

    def test_default_jobs_is_positive(self):
        assert default_jobs() >= 1

    def test_facade_rejects_naive_with_jobs(self):
        with pytest.raises(ParameterError, match="naive"):
            mine_recurring_patterns(
                paper_running_example(), per=2, min_ps=3, min_rec=2,
                engine="naive", jobs=2,
            )

    @pytest.mark.parametrize("jobs", [0, -3, True])
    def test_facade_rejects_bad_jobs(self, jobs):
        with pytest.raises(ParameterError, match="jobs"):
            mine_recurring_patterns(
                paper_running_example(), per=2, min_ps=3, min_rec=2,
                jobs=jobs,
            )


class TestDelegation:
    def test_jobs_one_matches_serial_engine_exactly(self):
        database = paper_running_example()
        serial = RPGrowth(per=2, min_ps=3, min_rec=2)
        expected = serial.mine(database)
        miner = ParallelMiner(per=2, min_ps=3, min_rec=2, jobs=1)
        assert miner.mine(database) == expected
        assert miner.last_stats is not None
        assert (
            miner.last_stats.as_dict() == serial.last_stats.as_dict()
        )

    @pytest.mark.parametrize("engine", PARALLEL_ENGINES)
    def test_empty_database_short_circuits(self, engine):
        miner = ParallelMiner(
            per=2, min_ps=3, min_rec=1, engine=engine, jobs=2
        )
        assert len(miner.mine(TransactionalDatabase([]))) == 0

    def test_explicit_mp_context_is_honoured(self):
        import multiprocessing

        context = multiprocessing.get_context("fork")
        miner = ParallelMiner(
            per=2, min_ps=3, min_rec=2, jobs=2, mp_context=context
        )
        assert len(miner.mine(paper_running_example())) == 8

    def test_start_method_name_is_accepted(self):
        miner = ParallelMiner(
            per=2, min_ps=3, min_rec=2, jobs=2, mp_context="fork"
        )
        assert len(miner.mine(paper_running_example())) == 8


class TestMergedTelemetry:
    def _mine_with_spans(self, engine):
        miner = ParallelMiner(
            per=2, min_ps=3, min_rec=2, engine=engine, jobs=2
        )
        collector = SpanCollector()
        with collector, span("run"):
            found = miner.mine(paper_running_example())
        return found, collector.roots[0]

    @pytest.mark.parametrize("engine", PARALLEL_ENGINES)
    def test_worker_spans_fold_under_the_mine_span(self, engine):
        found, run = self._mine_with_spans(engine)
        assert len(found) == 8
        phases = {child.name: child for child in run.children}
        assert "mine" in phases
        chunk_spans = [
            child for child in phases["mine"].children
            if child.name.startswith("chunk[")
        ]
        assert chunk_spans, "worker spans were not grafted back"
        assert all(child.seconds >= 0 for child in chunk_spans)

    def test_trace_record_validates_with_jobs(self):
        _, telemetry = mine_recurring_patterns(
            paper_running_example(), per=2, min_ps=3, min_rec=2,
            jobs=2, observability=ObservabilityOptions(collect_stats=True),
        )
        assert isinstance(telemetry, MiningTelemetry)
        record = telemetry.as_run_record()
        validate_run_record(record)
        assert record["params"]["jobs"] == 2
        assert record["patterns_found"] == 8

    def test_serial_trace_record_has_no_jobs_key(self):
        _, telemetry = mine_recurring_patterns(
            paper_running_example(), per=2, min_ps=3, min_rec=2,
            observability=ObservabilityOptions(collect_stats=True),
        )
        assert "jobs" not in telemetry.as_run_record()["params"]
