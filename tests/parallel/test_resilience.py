"""Fault-injection matrix for the parallel resilience layer.

Every test injects a deterministic :class:`FaultPlan` into a
``jobs>=2`` mine and asserts the two halves of the resilience
contract:

* **equivalence** — the recovered pattern set (and the merged mining
  counters) are identical to the ``jobs=1`` serial run, for every
  fault kind and every engine in ``PARALLEL_ENGINES``;
* **accounting** — ``chunks_retried`` / ``chunks_fallback`` and the
  ``FaultEvent`` log match the injected plan.

Chunk-count control: the single-item database mines to exactly one
vertical chunk, so vertical-engine faults are perfectly attributable
and the counter assertions are exact.  The two-item database gives
RP-growth two conditional-base chunks; faults that keep the pool
healthy (``poison``, ``slow``) and the deadline path (``hang``) are
still exact, but a ``crash`` breaks the whole pool and may charge the
innocent in-flight chunk too (started-but-not-done attribution), so
those assertions are a tight range rather than an equality.
"""

import pytest

from repro.core.miner import mine_recurring_patterns
from repro.core.options import ObservabilityOptions, ResilienceOptions
from repro.datasets import paper_running_example
from repro.exceptions import ChunkFailedError, ParameterError
from repro.obs.report import validate_run_record
from repro.parallel import (
    FAULT_KINDS,
    PARALLEL_ENGINES,
    FaultPlan,
    FaultSpec,
    ParallelMiner,
    RetryPolicy,
)
from repro.timeseries.database import TransactionalDatabase

pytestmark = pytest.mark.slow

PARAMS = {"per": 2, "min_ps": 3, "min_rec": 2}

#: Three periodic runs; run 3 is separated so the paper's interval
#: logic yields two interesting intervals (recurrence 2).
TS = (1, 2, 3, 5, 6, 7, 11, 12, 13)


def _single_chunk_db(engine: str) -> TransactionalDatabase:
    """One vertical chunk ('a' only) / two growth chunks ('ab')."""
    items = "ab" if engine == "rp-growth" else "a"
    return TransactionalDatabase([(ts, items) for ts in TS])


def _mine(engine, database, **kwargs):
    miner = ParallelMiner(engine=engine, **PARAMS, **kwargs)
    return miner, miner.mine(database)


def _mining_counters(stats) -> dict:
    """The engine counters, minus the resilience bookkeeping."""
    counters = stats.as_dict()
    counters.pop("chunks_retried")
    counters.pop("chunks_fallback")
    return counters


def _assert_identical(serial, recovered):
    assert list(recovered) == list(serial)
    for expected, got in zip(serial, recovered):
        assert got.items == expected.items
        assert got.support == expected.support
        assert got.recurrence == expected.recurrence
        assert got.intervals == expected.intervals


# ----------------------------------------------------------------------
# The matrix: every fault kind x every engine
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", PARALLEL_ENGINES)
@pytest.mark.parametrize("kind", FAULT_KINDS)
def test_fault_matrix_recovers_serial_result(engine, kind):
    database = _single_chunk_db(engine)
    serial_miner, serial = _mine(engine, database, jobs=1)
    plan = FaultPlan.single(
        kind, chunk=0, seconds=5.0 if kind == "hang" else 0.2
    )
    kwargs = {"jobs": 2, "retry_backoff": 0.0, "fault_plan": plan}
    if kind == "hang":
        kwargs["timeout"] = 1.0
    miner, recovered = _mine(engine, database, **kwargs)

    _assert_identical(serial, recovered)
    assert _mining_counters(miner.last_stats) == _mining_counters(
        serial_miner.last_stats
    )
    assert miner.last_stats.chunks_fallback == 0
    if kind == "slow":
        # A straggler is not a failure: no retries, empty fault log.
        assert miner.last_stats.chunks_retried == 0
        assert miner.last_faults == []
    elif kind == "crash" and engine == "rp-growth":
        # Pool-wide breakage: the in-flight sibling chunk may be
        # charged too (see module docstring).
        assert 1 <= miner.last_stats.chunks_retried <= 2
        assert all(event.action == "retry" for event in miner.last_faults)
    else:
        assert miner.last_stats.chunks_retried == 1
        assert [event.action for event in miner.last_faults] == ["retry"]
        assert miner.last_faults[0].chunk == 0


@pytest.mark.parametrize("engine", PARALLEL_ENGINES)
def test_multi_chunk_crash_still_matches_serial(engine):
    """Crash on the paper database (several chunks, both engines)."""
    database = paper_running_example()
    serial_miner, serial = _mine(engine, database, jobs=1)
    miner, recovered = _mine(
        engine, database, jobs=2, retry_backoff=0.0,
        fault_plan=FaultPlan.single("crash", chunk=0),
    )
    _assert_identical(serial, recovered)
    assert _mining_counters(miner.last_stats) == _mining_counters(
        serial_miner.last_stats
    )
    assert miner.last_stats.chunks_retried >= 1
    assert miner.last_stats.chunks_fallback == 0


# ----------------------------------------------------------------------
# Retry exhaustion: serial fallback
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", PARALLEL_ENGINES)
def test_persistent_poison_falls_back_to_serial(engine):
    """execution=None poisons every execution: retries exhaust, the
    chunk is re-mined in-process, and the result is still exact."""
    database = _single_chunk_db(engine)
    serial_miner, serial = _mine(engine, database, jobs=1)
    miner, recovered = _mine(
        engine, database, jobs=2, retry_backoff=0.0, max_retries=1,
        fault_plan=FaultPlan.single("poison", chunk=0, execution=None),
    )
    _assert_identical(serial, recovered)
    assert _mining_counters(miner.last_stats) == _mining_counters(
        serial_miner.last_stats
    )
    assert miner.last_stats.chunks_retried == 1
    assert miner.last_stats.chunks_fallback == 1
    assert [event.action for event in miner.last_faults] == [
        "retry", "fallback-serial",
    ]


@pytest.mark.parametrize(
    "engine", ("rp-eclat", "rp-eclat-np", "rp-eclat-vec")
)
def test_persistent_crash_falls_back_to_serial(engine):
    """The fallback path must also survive a fault that kills every
    pool — the in-process re-mine runs unguarded, so the injected
    crash cannot reach the parent."""
    database = _single_chunk_db(engine)
    _, serial = _mine(engine, database, jobs=1)
    miner, recovered = _mine(
        engine, database, jobs=2, retry_backoff=0.0, max_retries=1,
        fault_plan=FaultPlan.single("crash", chunk=0, execution=None),
    )
    _assert_identical(serial, recovered)
    assert miner.last_stats.chunks_retried == 1
    assert miner.last_stats.chunks_fallback == 1


# ----------------------------------------------------------------------
# fallback="raise": the silent-abort regression
# ----------------------------------------------------------------------
def test_raise_mode_names_prefixes_and_keeps_partial_vertical():
    """Regression: a dead chunk used to surface as a bare
    BrokenProcessPool with no prefix attribution and no partial
    result.  ChunkFailedError must carry both."""
    database = _single_chunk_db("rp-eclat")
    miner = ParallelMiner(
        engine="rp-eclat", **PARAMS, jobs=2, retry_backoff=0.0,
        max_retries=0, fallback="raise",
        fault_plan=FaultPlan.single("poison", chunk=0, execution=None),
    )
    with pytest.raises(ChunkFailedError) as excinfo:
        miner.mine(database)
    error = excinfo.value
    assert error.failed_prefixes == ("a",)
    assert "a" in str(error)
    assert error.partial is not None and list(error.partial) == []
    assert [event.action for event in error.events] == ["raise"]


def test_raise_mode_keeps_partial_growth():
    """RP-growth: the serial header sweep's 1-patterns survive into
    the partial result even when a conditional chunk dies."""
    database = _single_chunk_db("rp-growth")
    miner = ParallelMiner(
        engine="rp-growth", **PARAMS, jobs=2, retry_backoff=0.0,
        max_retries=0, fallback="raise",
        fault_plan=FaultPlan.single("poison", chunk=0, execution=None),
    )
    with pytest.raises(ChunkFailedError) as excinfo:
        miner.mine(database)
    error = excinfo.value
    # Chunk 0 is the largest conditional base: suffix item 'b'.
    assert error.failed_prefixes == ("b",)
    partial_items = {frozenset(p.items) for p in error.partial}
    assert {frozenset("a"), frozenset("b")} <= partial_items


# ----------------------------------------------------------------------
# Telemetry: spans and the faults trace section
# ----------------------------------------------------------------------
def test_retry_spans_graft_under_mine():
    database = _single_chunk_db("rp-eclat")
    _, telemetry = mine_recurring_patterns(
        database, engine="rp-eclat", **PARAMS, jobs=2,
        resilience=ResilienceOptions(
            fault_plan=FaultPlan.single("poison", chunk=0)
        ),
        observability=ObservabilityOptions(collect_stats=True),
    )
    mine_spans = [
        item
        for root in telemetry.spans
        for _, item in root.walk()
        if item.name == "mine"
    ]
    assert mine_spans, "no mine span collected"
    child_names = [child.name for child in mine_spans[0].children]
    assert "retry" in child_names
    assert any(name.startswith("chunk[") for name in child_names)


def test_run_record_carries_faults_section():
    database = _single_chunk_db("rp-eclat")
    _, telemetry = mine_recurring_patterns(
        database, engine="rp-eclat", **PARAMS, jobs=2,
        resilience=ResilienceOptions(
            fault_plan=FaultPlan.single("poison", chunk=0)
        ),
        observability=ObservabilityOptions(collect_stats=True),
    )
    record = telemetry.as_run_record()
    validate_run_record(record)
    faults = record["faults"]
    assert faults["chunks_retried"] == 1
    assert faults["chunks_fallback"] == 0
    assert faults["events"] == [
        {
            "chunk": 0,
            "execution": 1,
            "reason": "poisoned result (str)",
            "action": "retry",
        }
    ]
    assert record["counters"]["chunks_retried"] == 1


def test_clean_run_has_no_faults_section():
    database = _single_chunk_db("rp-eclat")
    _, telemetry = mine_recurring_patterns(
        database, engine="rp-eclat", **PARAMS, jobs=2,
        observability=ObservabilityOptions(collect_stats=True),
    )
    record = telemetry.as_run_record()
    validate_run_record(record)
    assert "faults" not in record
    assert record["counters"]["chunks_retried"] == 0
    assert record["counters"]["chunks_fallback"] == 0


# ----------------------------------------------------------------------
# Parameter validation (no pools involved)
# ----------------------------------------------------------------------
def test_fault_spec_rejects_unknown_kind():
    with pytest.raises(ParameterError):
        FaultSpec(0, "meteor")


def test_fault_spec_rejects_bad_execution():
    with pytest.raises(ParameterError):
        FaultSpec(0, "crash", execution=0)


def test_retry_policy_rejects_bad_values():
    with pytest.raises(ParameterError):
        RetryPolicy(timeout=0.0)
    with pytest.raises(ParameterError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ParameterError):
        RetryPolicy(backoff=-0.1)


def test_miner_rejects_bad_fallback():
    with pytest.raises(ParameterError):
        ParallelMiner(**PARAMS, fallback="shrug")


def test_fault_plan_lookup():
    plan = FaultPlan.of(
        FaultSpec(1, "crash", execution=2),
        FaultSpec(2, "poison", execution=None),
    )
    assert plan.find(1, 1) is None
    assert plan.find(1, 2).kind == "crash"
    assert plan.find(2, 1).kind == "poison"
    assert plan.find(2, 9).kind == "poison"
    assert plan.find(0, 1) is None
