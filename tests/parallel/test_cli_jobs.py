"""The ``--jobs`` / ``--chunk-timeout`` / ``--max-retries`` flags
across CLI subcommands."""

import pytest

from repro.cli import main
from repro.datasets import paper_running_example
from repro.timeseries.io import save_transactional_database

BASE = ["--per", "2", "--min-ps", "3", "--min-rec", "2"]


@pytest.fixture
def example_file(tmp_path):
    path = tmp_path / "example.tsv"
    save_transactional_database(paper_running_example(), path)
    return str(path)


class TestMineJobs:
    def test_parallel_mine_prints_the_same_table(
        self, example_file, capsys
    ):
        assert main(["mine", "--input", example_file, *BASE]) == 0
        serial_out = capsys.readouterr().out
        assert main([
            "mine", "--input", example_file, *BASE, "--jobs", "2",
        ]) == 0
        assert capsys.readouterr().out == serial_out

    def test_jobs_with_engine_flag(self, example_file, capsys):
        code = main([
            "mine", "--input", example_file, *BASE,
            "--engine", "rp-eclat", "--jobs", "2",
        ])
        assert code == 0
        assert "8 recurring patterns" in capsys.readouterr().out

    def test_naive_engine_rejects_jobs(self, example_file, capsys):
        code = main([
            "mine", "--input", example_file, *BASE,
            "--engine", "naive", "--jobs", "2",
        ])
        assert code != 0
        assert "naive" in capsys.readouterr().err

    def test_noise_tolerant_path_warns_and_stays_serial(
        self, example_file, capsys
    ):
        code = main([
            "mine", "--input", example_file, *BASE,
            "--max-faults", "1", "--jobs", "2",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "--jobs ignored" in captured.err


class TestResilienceFlags:
    def test_mine_accepts_chunk_timeout_and_max_retries(
        self, example_file, capsys
    ):
        code = main([
            "mine", "--input", example_file, *BASE, "--jobs", "2",
            "--chunk-timeout", "30", "--max-retries", "1",
        ])
        assert code == 0
        assert "8 recurring patterns" in capsys.readouterr().out

    def test_resilience_flags_are_serial_noops(self, example_file, capsys):
        """With --jobs 1 the flags parse but change nothing."""
        assert main(["mine", "--input", example_file, *BASE]) == 0
        serial_out = capsys.readouterr().out
        code = main([
            "mine", "--input", example_file, *BASE,
            "--chunk-timeout", "5", "--max-retries", "0",
        ])
        assert code == 0
        assert capsys.readouterr().out == serial_out

    def test_bench_accepts_resilience_flags(self, capsys):
        code = main([
            "bench", "--dataset", "quest", "--scale", "0.005",
            "--pers", "50", "--min-ps", "0.01", "--min-recs", "1",
            "--jobs", "2", "--chunk-timeout", "60", "--max-retries", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "quest: count" in out


class TestBaselineJobs:
    def test_baseline_warns_jobs_ignored(self, example_file, capsys):
        code = main([
            "baseline", "--input", example_file,
            "--model", "periodic-frequent",
            "--per", "2", "--min-sup", "3", "--jobs", "2",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "--jobs ignored" in captured.err


class TestBenchJobs:
    def test_bench_accepts_jobs(self, capsys):
        code = main([
            "bench", "--dataset", "quest", "--scale", "0.005",
            "--pers", "50", "--min-ps", "0.01", "--min-recs", "1",
            "--jobs", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "quest: count" in out
