"""Unit tests for the partition planner and the RP-growth task sweep."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import MiningParameters
from repro.core.rp_growth import RPGrowth
from repro.core.rp_list import build_rp_list
from repro.core.rp_tree import build_rp_tree
from repro.datasets import paper_running_example
from repro.obs.counters import MiningStats
from repro.parallel import (
    collect_growth_tasks,
    growth_task_size,
    plan_chunks,
)


class TestPlanChunks:
    def test_empty_sizes_yield_no_chunks(self):
        assert plan_chunks([], max_chunks=4) == []

    def test_rejects_non_positive_max_chunks(self):
        with pytest.raises(ValueError):
            plan_chunks([1, 2], max_chunks=0)

    def test_single_chunk_keeps_everything_together(self):
        chunks = plan_chunks([3, 1, 2], max_chunks=1)
        assert len(chunks) == 1
        assert sorted(chunks[0]) == [0, 1, 2]

    def test_known_lpt_plan(self):
        # Sizes [1, 8, 2, 4] into 2 bins: 8 alone, the rest together.
        assert plan_chunks([1, 8, 2, 4], max_chunks=2) == [[1], [3, 2, 0]]

    def test_chunks_ordered_largest_first(self):
        sizes = [5, 1, 9, 2, 7, 3]
        chunks = plan_chunks(sizes, max_chunks=3)
        totals = [sum(sizes[i] for i in chunk) for chunk in chunks]
        assert totals == sorted(totals, reverse=True)

    @settings(max_examples=50, deadline=None)
    @given(
        sizes=st.lists(st.integers(min_value=0, max_value=100), max_size=40),
        max_chunks=st.integers(min_value=1, max_value=12),
    )
    def test_plan_is_a_partition(self, sizes, max_chunks):
        chunks = plan_chunks(sizes, max_chunks)
        assert len(chunks) <= max_chunks
        flat = sorted(index for chunk in chunks for index in chunk)
        assert flat == list(range(len(sizes)))
        assert all(chunk for chunk in chunks)

    @settings(max_examples=50, deadline=None)
    @given(
        sizes=st.lists(
            st.integers(min_value=0, max_value=100), max_size=40
        ),
        max_chunks=st.integers(min_value=1, max_value=12),
    )
    def test_plan_is_deterministic(self, sizes, max_chunks):
        assert plan_chunks(sizes, max_chunks) == plan_chunks(
            sizes, max_chunks
        )


class TestCollectGrowthTasks:
    def _tree(self):
        database = paper_running_example()
        params = MiningParameters(per=2, min_ps=3, min_rec=2).resolve(
            len(database)
        )
        rp_list = build_rp_list(database, params)
        tree, _ = build_rp_tree(database, params, rp_list)
        return tree, params

    def test_tasks_cover_the_header_candidates(self):
        tree, params = self._tree()
        items = list(tree.header_bottom_up())
        found, stats = [], MiningStats()
        tasks = collect_growth_tasks(tree, params, found, stats)
        # Every task's suffix item came from the header, once at most.
        suffixes = [item for item, _ in tasks]
        assert len(suffixes) == len(set(suffixes))
        assert set(suffixes) <= set(items)
        assert stats.erec_evaluations == len(items)

    def test_top_level_patterns_match_serial_singletons(self):
        tree, params = self._tree()
        found, stats = [], MiningStats()
        collect_growth_tasks(tree, params, found, stats)
        serial = RPGrowth(per=2, min_ps=3, min_rec=2).mine(
            paper_running_example()
        )
        singletons = {p.items for p in serial if len(p.items) == 1}
        assert {p.items for p in found} == singletons

    def test_payloads_are_snapshots_not_live_references(self):
        # collect_growth_tasks mutates the tree (Lemma 3 push-ups) after
        # serializing each base; a payload that aliased tree nodes would
        # change under later suffixes.  Freeze copies up front, compare
        # after the sweep completes.
        tree, params = self._tree()
        tasks = collect_growth_tasks(tree, params, [], MiningStats())
        frozen = [
            (item, [(list(path), list(ts)) for path, ts in base])
            for item, base in tasks
        ]
        assert tasks == frozen

    def test_max_length_one_yields_no_tasks(self):
        tree, params = self._tree()
        found, stats = [], MiningStats()
        tasks = collect_growth_tasks(
            tree, params, found, stats, max_length=1
        )
        assert tasks == []
        assert found  # singletons are still reported by the sweep

    def test_task_size_counts_base_timestamps(self):
        task = ("a", [(["b"], [1.0, 2.0]), (["c", "b"], [3.0])])
        assert growth_task_size(task) == 3
