"""Worker heartbeats: beat files, monitor wiring, stale detection.

The acceptance scenario for the observability layer: an injected
``hang`` fault must surface as a stale-heartbeat report on the live
monitor *before* the chunk deadline kills and retries the chunk — the
operator sees "worker N silent for Xs", then the recovery note, and
the final pattern set still matches the serial run.
"""

import io
import os

import pytest

from repro.bench.workloads import quest_workload
from repro.core.miner import mine_recurring_patterns
from repro.core.options import ObservabilityOptions, ResilienceOptions
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import (
    HEARTBEAT_GAUGE,
    MiningMonitor,
    ProgressReporter,
)
from repro.parallel import FaultPlan, FaultSpec
from repro.parallel.faults import (
    guarded_chunk,
    install_fault_plan,
    latest_beat,
    maybe_beat,
)


@pytest.fixture
def marker_dir(tmp_path):
    """Install a marker dir in-process, restore clean state after."""
    install_fault_plan(None, str(tmp_path))
    yield str(tmp_path)
    install_fault_plan(None, None)


class TestBeatFiles:
    def test_guarded_chunk_writes_initial_beat(self, marker_dir):
        guarded_chunk(lambda chunk, payload: payload, 3, "x", 1)
        beat = latest_beat(marker_dir, 3, 1)
        assert beat is not None
        mtime, pid = beat
        assert pid == os.getpid()

    def test_maybe_beat_inside_chunk_rate_limited(self, marker_dir):
        beats = []

        def chunk_fn(chunk, payload):
            beats.append(maybe_beat(min_interval=0.0))
            beats.append(maybe_beat(min_interval=3600.0))
            return payload

        guarded_chunk(chunk_fn, 0, "x", 1)
        assert beats == [True, False]

    def test_maybe_beat_outside_chunk_is_noop(self, marker_dir):
        assert maybe_beat(min_interval=0.0) is False
        assert latest_beat(marker_dir, 0, 1) is None

    def test_latest_beat_without_marker_dir(self):
        assert latest_beat(None, 0, 1) is None

    def test_executions_have_distinct_beat_files(self, marker_dir):
        guarded_chunk(lambda c, p: p, 0, "x", 1)
        assert latest_beat(marker_dir, 0, 1) is not None
        assert latest_beat(marker_dir, 0, 2) is None


@pytest.mark.slow
class TestHangSurfacesAsStaleHeartbeat:
    """ISSUE acceptance: stale report lands before the chunk deadline."""

    PARAMS = {"per": 50, "min_ps": 0.01, "min_rec": 1}

    def test_stale_report_precedes_retry(self):
        database = quest_workload(scale=0.005)
        serial = mine_recurring_patterns(database, **self.PARAMS)

        stream = io.StringIO()
        monitor = MiningMonitor(
            reporter=ProgressReporter(stream, min_interval=0.0),
            registry=MetricsRegistry(),
            stale_after=0.4,
        )
        plan = FaultPlan.of(
            FaultSpec(chunk=0, kind="hang", execution=1, seconds=3.0)
        )
        recovered = mine_recurring_patterns(
            database, **self.PARAMS, jobs=2,
            resilience=ResilienceOptions(timeout=2.0, fault_plan=plan),
            observability=ObservabilityOptions(monitor=monitor),
        )
        monitor.close()

        # The operator-visible ordering: silence noticed, then killed.
        out = stream.getvalue()
        assert "stale heartbeat: worker" in out
        assert "silent for" in out
        assert "chunk 0 retry" in out
        assert out.index("stale heartbeat") < out.index("chunk 0 retry")

        # Structured trail: one stale report for (chunk 0, execution 1),
        # the counter incremented, heartbeat-age gauges registered.
        assert [
            (r.chunk, r.execution) for r in monitor.stale_reports
        ] == [(0, 1)]
        assert monitor.stale_reports[0].age_seconds >= 0.4
        snapshot = monitor.registry.snapshot()
        stale = [
            entry for entry in snapshot["counters"]
            if entry["name"] == "repro_worker_stale_total"
        ]
        assert stale and stale[0]["value"] == 1.0
        assert any(
            entry["name"] == HEARTBEAT_GAUGE
            for entry in snapshot["gauges"]
        )

        # Recovery must not cost correctness.
        assert list(recovered) == list(serial)
