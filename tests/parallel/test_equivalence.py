"""Parallel/serial equivalence: the contract of ``jobs=N``.

For every parallel-capable engine, ``jobs=1`` and ``jobs=4`` must
produce *identical* :class:`RecurringPatternSet`\\ s — same itemsets,
supports, recurrences and interval boundaries — and the merged
per-worker counters must equal the serial run's counters exactly,
because the prefix partition is a partition of the serial work, not an
approximation of it.

Datasets: the paper's running example (known output, Table 2), a
planted workload (known ground truth) and noise-corrupted variants
(dropout and jitter — irregular ts-lists exercise the merge paths).
"""

import pytest

from repro.core.miner import mine_recurring_patterns
from repro.core.options import ObservabilityOptions
from repro.datasets import paper_running_example
from repro.datasets.noise import apply_dropout, apply_jitter
from repro.datasets.planted import generate_planted_workload
from repro.parallel import PARALLEL_ENGINES

JOBS = 4


def _datasets():
    """(name, database, mining params) triples for the matrix."""
    planted = generate_planted_workload(
        per=5, min_ps=4, min_rec=2, n_patterns=3, noise_items=8, seed=7
    )
    params = {"per": planted.per, "min_ps": planted.min_ps, "min_rec": 1}
    return [
        ("paper", paper_running_example(), {"per": 2, "min_ps": 3, "min_rec": 2}),
        ("planted", planted.database, params),
        ("dropout", apply_dropout(planted.database, 0.2, seed=1), params),
        ("jitter", apply_jitter(planted.database, 1.0, seed=1), params),
    ]


DATASETS = _datasets()


@pytest.mark.parametrize(
    "name,database,params", DATASETS, ids=[d[0] for d in DATASETS]
)
@pytest.mark.parametrize("engine", PARALLEL_ENGINES)
def test_parallel_equals_serial(engine, name, database, params):
    obs = ObservabilityOptions(collect_stats=True)
    serial, serial_telemetry = mine_recurring_patterns(
        database, engine=engine, observability=obs, **params
    )
    parallel, parallel_telemetry = mine_recurring_patterns(
        database, engine=engine, jobs=JOBS, observability=obs, **params
    )
    assert parallel == serial
    # Pattern sets compare metadata too, but be explicit about the
    # temporal description, the part a bad merge would corrupt first.
    for serial_pattern, parallel_pattern in zip(serial, parallel):
        assert serial_pattern.items == parallel_pattern.items
        assert serial_pattern.support == parallel_pattern.support
        assert serial_pattern.intervals == parallel_pattern.intervals
    assert (
        parallel_telemetry.stats.as_dict() == serial_telemetry.stats.as_dict()
    )


@pytest.mark.parametrize("engine", PARALLEL_ENGINES)
def test_planted_ground_truth_survives_parallelism(engine):
    """jobs=4 still recovers every planted pattern exactly."""
    workload = generate_planted_workload(per=4, min_ps=3, min_rec=2, seed=3)
    found = mine_recurring_patterns(
        workload.database,
        per=workload.per,
        min_ps=workload.min_ps,
        min_rec=workload.min_rec,
        engine=engine,
        jobs=JOBS,
    )
    for expected in workload.expected:
        mined = found.get(expected.items)
        assert mined is not None, expected
        assert mined.intervals == expected.intervals


@pytest.mark.parametrize("jobs", [2, 3, 4, 7])
def test_every_worker_count_agrees(jobs):
    """The partition must not depend on the worker count."""
    database = paper_running_example()
    serial = mine_recurring_patterns(database, per=2, min_ps=3, min_rec=2)
    parallel = mine_recurring_patterns(
        database, per=2, min_ps=3, min_rec=2, jobs=jobs
    )
    assert parallel == serial
