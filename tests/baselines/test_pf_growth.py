"""Unit tests for periodic-frequent pattern mining."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.pf_growth import (
    max_periodicity,
    mine_periodic_frequent_patterns,
)
from repro.exceptions import ParameterError
from repro.timeseries.database import TransactionalDatabase
from tests.conftest import small_databases


class TestMaxPeriodicity:
    def test_includes_boundaries(self):
        # Lead-in of 3 dominates the internal gaps.
        assert max_periodicity([4, 5, 6], db_start=1, db_end=6) == 3

    def test_lead_out(self):
        assert max_periodicity([1, 2], db_start=1, db_end=9) == 7

    def test_internal_gap(self):
        assert max_periodicity([1, 3, 4, 7, 11, 12, 14], 1, 14) == 4

    def test_empty_sequence_is_infinite(self):
        assert max_periodicity([], 1, 10) == float("inf")

    def test_single_point(self):
        assert max_periodicity([5], db_start=1, db_end=10) == 5


class TestMining:
    def test_running_example(self, running_example):
        found = mine_periodic_frequent_patterns(running_example, 6, 4)
        names = sorted("".join(sorted(p.items)) for p in found)
        assert names == ["a", "ab", "b", "c", "cd", "d", "e", "ef", "f"]

    def test_periodicity_values(self, running_example):
        found = mine_periodic_frequent_patterns(running_example, 6, 4)
        assert found.pattern("a").periodicity == 4
        assert found.pattern("c").periodicity == 2

    def test_tight_period_filters(self, running_example):
        found = mine_periodic_frequent_patterns(running_example, 6, 3)
        # Only c cycles with max gap <= 3 (lead-in 1, gaps <= 2,
        # lead-out 2); even d breaks with its 5 -> 9 gap.
        assert sorted("".join(sorted(p.items)) for p in found) == ["c"]

    def test_strict_model_finds_fewer_than_recurring(self, running_example):
        # The Table 8 observation: complete-cyclic patterns are rare.
        from repro import mine_recurring_patterns

        pf = mine_periodic_frequent_patterns(running_example, 3, 2)
        recurring = mine_recurring_patterns(
            running_example, per=2, min_ps=3, min_rec=1
        )
        assert len(pf) <= len(recurring)

    def test_empty_database(self):
        assert len(
            mine_periodic_frequent_patterns(TransactionalDatabase(), 1, 1)
        ) == 0

    def test_rejects_bad_max_per(self, running_example):
        with pytest.raises(ParameterError):
            mine_periodic_frequent_patterns(running_example, 1, 0)


class TestModelProperties:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        db=small_databases(),
        min_sup=st.integers(1, 5),
        max_per=st.integers(1, 10),
    )
    def test_definition_holds_for_every_result(self, db, min_sup, max_per):
        found = mine_periodic_frequent_patterns(db, min_sup, max_per)
        for pattern in found:
            timestamps = db.timestamps_of(pattern.items)
            assert len(timestamps) >= min_sup
            assert (
                max_periodicity(timestamps, db.start, db.end) <= max_per
            )

    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        db=small_databases(),
        min_sup=st.integers(1, 5),
        max_per=st.integers(1, 10),
    )
    def test_anti_monotone_closure(self, db, min_sup, max_per):
        found = mine_periodic_frequent_patterns(db, min_sup, max_per)
        itemsets = found.itemsets()
        for itemset in itemsets:
            if len(itemset) > 1:
                for item in itemset:
                    assert frozenset(itemset - {item}) in itemsets

    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(db=small_databases(), max_per=st.integers(1, 10))
    def test_pf_subset_of_recurring_at_equivalent_thresholds(
        self, db, max_per
    ):
        # A periodic-frequent pattern (minSup s, maxPer p) cycles through
        # the whole database, so it has a single periodic-interval
        # containing all its occurrences: it must be recurring at
        # (per=p, minPS=s, minRec=1).
        from repro import mine_recurring_patterns

        min_sup = 2
        pf = mine_periodic_frequent_patterns(db, min_sup, max_per)
        recurring = mine_recurring_patterns(
            db, per=max_per, min_ps=min_sup, min_rec=1
        )
        assert pf.itemsets() <= recurring.itemsets()
