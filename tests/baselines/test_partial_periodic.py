"""Tests for segment-based partial periodic patterns (Han et al.)."""

import pytest

from repro.baselines.partial_periodic import (
    PartialPeriodicPattern,
    database_to_symbolic_sequence,
    mine_partial_periodic_patterns,
)
from repro.timeseries.database import TransactionalDatabase


def slot_strings(patterns):
    return sorted(str(p) for p in patterns)


class TestPatternObject:
    def test_rejects_empty_slots(self):
        with pytest.raises(ValueError):
            PartialPeriodicPattern(2, frozenset(), 1)

    def test_rejects_offset_outside_period(self):
        with pytest.raises(ValueError):
            PartialPeriodicPattern(2, frozenset({(2, "a")}), 1)

    def test_str_rendering(self):
        pattern = PartialPeriodicPattern(
            3, frozenset({(0, "a"), (2, "b")}), 4
        )
        assert str(pattern) == "{a}*{b} [support=4]"

    def test_str_multiple_items_per_slot(self):
        pattern = PartialPeriodicPattern(
            2, frozenset({(0, "a"), (0, "b")}), 2
        )
        assert str(pattern) == "{ab}* [support=2]"


class TestMining:
    def test_alternating_sequence(self):
        seq = [frozenset("a"), frozenset("b")] * 4
        patterns = mine_partial_periodic_patterns(seq, period=2, min_sup=4)
        assert slot_strings(patterns) == [
            "*{b} [support=4]",
            "{a}* [support=4]",
            "{a}{b} [support=4]",
        ]

    def test_noise_lowers_support(self):
        seq = [frozenset("a"), frozenset("b")] * 4
        seq[2] = frozenset("x")  # one corrupted position
        patterns = mine_partial_periodic_patterns(seq, period=2, min_sup=3)
        by_str = {str(p) for p in patterns}
        assert "{a}* [support=3]" in by_str

    def test_trailing_partial_segment_ignored(self):
        seq = [frozenset("a")] * 5  # floor(5/2) = 2 segments
        patterns = mine_partial_periodic_patterns(seq, period=2, min_sup=2)
        assert all(p.support <= 2 for p in patterns)

    def test_fractional_min_sup(self):
        seq = [frozenset("a"), frozenset("b")] * 4
        absolute = mine_partial_periodic_patterns(seq, 2, 4)
        fractional = mine_partial_periodic_patterns(seq, 2, 1.0)
        assert slot_strings(absolute) == slot_strings(fractional)

    def test_max_length_caps_slots(self):
        seq = [frozenset("abc")] * 6
        patterns = mine_partial_periodic_patterns(
            seq, period=1, min_sup=6, max_length=2
        )
        assert max(p.length for p in patterns) == 2

    def test_empty_sequence(self):
        assert mine_partial_periodic_patterns([], 2, 1) == []

    def test_accepts_database_input(self, running_example):
        patterns = mine_partial_periodic_patterns(
            running_example, period=2, min_sup=0.5
        )
        assert patterns  # something period-2-ish exists in Table 1


class TestLossyTemporalView:
    """The paper's criticism: the symbolic view drops the timestamps."""

    def test_silent_gaps_disappear(self, running_example):
        sequence = database_to_symbolic_sequence(running_example)
        # Table 1 has 12 transactions over timestamps 1..14 with silent
        # gaps at 8 and 13; the symbolic sequence is just 12 positions.
        assert len(sequence) == 12

    def test_two_databases_with_different_gaps_look_identical(self):
        dense = TransactionalDatabase([(1, "a"), (2, "b"), (3, "a"), (4, "b")])
        sparse = TransactionalDatabase(
            [(1, "a"), (100, "b"), (200, "a"), (5000, "b")]
        )
        assert database_to_symbolic_sequence(
            dense
        ) == database_to_symbolic_sequence(sparse)
        # Hence the segment-based miner cannot tell them apart...
        assert mine_partial_periodic_patterns(
            dense, 2, 2
        ) == mine_partial_periodic_patterns(sparse, 2, 2)
        # ...whereas the recurring-pattern model trivially can.
        from repro import mine_recurring_patterns

        assert mine_recurring_patterns(
            dense, per=2, min_ps=2
        ) != mine_recurring_patterns(sparse, per=2, min_ps=2)
