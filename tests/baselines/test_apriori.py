"""Unit tests for Apriori, including equivalence with FP-growth."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.apriori import (
    generate_candidates,
    mine_frequent_patterns_apriori,
)
from repro.baselines.fp_growth import mine_frequent_patterns
from repro.timeseries.database import TransactionalDatabase
from tests.conftest import small_databases


class TestCandidateGeneration:
    def test_join_step(self):
        frequent = {frozenset("ab"), frozenset("ac"), frozenset("bc")}
        assert generate_candidates(frequent) == {frozenset("abc")}

    def test_prune_step_blocks_missing_subset(self):
        frequent = {frozenset("ab"), frozenset("ac")}  # bc missing
        assert generate_candidates(frequent) == set()

    def test_singletons_join_freely(self):
        frequent = {frozenset("a"), frozenset("b")}
        assert generate_candidates(frequent) == {frozenset("ab")}

    def test_empty_input(self):
        assert generate_candidates(set()) == set()


class TestMining:
    def test_running_example(self, running_example):
        found = mine_frequent_patterns_apriori(running_example, 6)
        assert found.pattern("cd").support == 6
        assert found.pattern("ab").support == 7

    def test_max_length(self, running_example):
        found = mine_frequent_patterns_apriori(running_example, 6, max_length=1)
        assert found.max_length() == 1

    def test_empty_database(self):
        assert len(
            mine_frequent_patterns_apriori(TransactionalDatabase(), 1)
        ) == 0


class TestEquivalenceWithFPGrowth:
    def test_running_example_all_thresholds(self, running_example):
        for min_sup in range(1, 13):
            apriori = mine_frequent_patterns_apriori(running_example, min_sup)
            fp = mine_frequent_patterns(running_example, min_sup)
            assert apriori.itemsets() == fp.itemsets(), min_sup
            for pattern in apriori:
                assert fp.pattern(pattern.items).support == pattern.support

    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(db=small_databases(), min_sup=st.integers(1, 6))
    def test_random_databases(self, db, min_sup):
        apriori = mine_frequent_patterns_apriori(db, min_sup)
        fp = mine_frequent_patterns(db, min_sup)
        assert apriori.itemsets() == fp.itemsets()
        for pattern in apriori:
            assert fp.pattern(pattern.items).support == pattern.support
