"""Unit tests for FP-growth."""

import pytest

from repro.baselines.fp_growth import mine_frequent_patterns
from repro.exceptions import ParameterError
from repro.timeseries.database import TransactionalDatabase


def itemset_strings(patterns):
    return sorted("".join(sorted(map(str, p.items))) for p in patterns)


class TestMining:
    def test_running_example_min_sup_7(self, running_example):
        found = mine_frequent_patterns(running_example, 7)
        assert itemset_strings(found) == ["a", "ab", "b", "c"]
        assert found.pattern("ab").support == 7

    def test_running_example_min_sup_6(self, running_example):
        found = mine_frequent_patterns(running_example, 6)
        assert "cd" in found
        assert "ef" in found
        assert found.pattern("g").support == 6

    def test_min_sup_one_finds_every_occurring_itemset(self):
        db = TransactionalDatabase([(1, "ab"), (2, "bc")])
        found = mine_frequent_patterns(db, 1)
        assert itemset_strings(found) == ["a", "ab", "b", "bc", "c"]

    def test_fractional_min_sup(self, running_example):
        # 0.5 of 12 -> 6.
        assert mine_frequent_patterns(
            running_example, 0.5
        ) == mine_frequent_patterns(running_example, 6)

    def test_max_length_caps_growth(self, running_example):
        found = mine_frequent_patterns(running_example, 6, max_length=1)
        assert found.max_length() == 1
        assert len(found) == 7  # all seven items have support >= 6

    def test_empty_database(self):
        assert len(mine_frequent_patterns(TransactionalDatabase(), 1)) == 0

    def test_threshold_above_everything(self, running_example):
        assert len(mine_frequent_patterns(running_example, 100)) == 0

    def test_rejects_bad_min_sup(self, running_example):
        with pytest.raises(ParameterError):
            mine_frequent_patterns(running_example, 0)
        with pytest.raises(ParameterError):
            mine_frequent_patterns(running_example, 1.5)


class TestSupportCorrectness:
    def test_supports_match_database_counts(self, running_example):
        for pattern in mine_frequent_patterns(running_example, 4):
            assert pattern.support == running_example.support(pattern.items)

    def test_apriori_closure(self, running_example):
        # Every subset of a frequent pattern is frequent (and present).
        found = mine_frequent_patterns(running_example, 5)
        itemsets = found.itemsets()
        for itemset in itemsets:
            for item in itemset:
                assert frozenset(itemset - {item}) in itemsets or len(itemset) == 1
