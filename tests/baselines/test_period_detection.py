"""Unit tests for chi-square period detection."""

import numpy as np
import pytest

from repro.baselines.period_detection import (
    DetectedPeriod,
    chi_square_statistic,
    detect_periods,
)
from repro.exceptions import ParameterError


class TestStatistic:
    def test_matches_hand_computation(self):
        # observed=8, trials=10, p=0.5 -> (8-5)^2 / (10*0.25) = 3.6
        assert chi_square_statistic(8, 10, 0.5) == pytest.approx(3.6)

    def test_degenerate_inputs_are_zero(self):
        assert chi_square_statistic(5, 0, 0.5) == 0.0
        assert chi_square_statistic(5, 10, 0.0) == 0.0
        assert chi_square_statistic(5, 10, 1.0) == 0.0

    def test_agrees_with_scipy_chisquare(self):
        # Cross-check against scipy's two-cell chi-square.
        from scipy.stats import chisquare

        observed, trials, probability = 30, 100, 0.2
        expected = trials * probability
        scipy_stat = chisquare(
            [observed, trials - observed],
            [expected, trials - expected],
        ).statistic
        assert chi_square_statistic(
            observed, trials, probability
        ) == pytest.approx(scipy_stat)


class TestDetection:
    def test_pure_periodic_sequence(self):
        detected = detect_periods(range(0, 100, 5))
        assert [d.period for d in detected] == [5]
        assert detected[0].count == 19

    def test_periodic_with_noise(self):
        rng = np.random.default_rng(1)
        base = list(range(0, 400, 7))
        noise = sorted(rng.choice(2000, size=15, replace=False) + 500)
        timestamps = sorted(set(base) | set(float(n) for n in noise))
        periods = [d.period for d in detect_periods(timestamps)]
        assert 7 in periods

    def test_poisson_noise_rarely_significant(self):
        rng = np.random.default_rng(7)
        timestamps = np.cumsum(rng.exponential(10.0, size=150))
        detected = detect_periods(timestamps.tolist(), delta=0.0)
        # Continuous random gaps are all distinct: no period can even
        # reach min_count.
        assert detected == []

    def test_tolerance_merges_nearby_gaps(self):
        # Gaps alternate 4 and 6; with delta=1 the candidate 5 does not
        # exist but 4 and 6 each count 10 occurrences; with delta=2 each
        # candidate sees all 20 gaps.
        timestamps = []
        ts = 0
        for index in range(20):
            timestamps.append(ts)
            ts += 4 if index % 2 == 0 else 6
        timestamps.append(ts)
        narrow = detect_periods(timestamps, delta=0.0)
        wide = detect_periods(timestamps, delta=2.0)
        assert max(d.count for d in wide) == 20
        assert all(d.count <= 10 for d in narrow)

    def test_short_sequences_have_no_periods(self):
        assert detect_periods([]) == []
        assert detect_periods([1]) == []
        assert detect_periods([1, 5]) == []

    def test_min_count_filter(self):
        detected = detect_periods([0, 5, 10], min_count=3)
        assert detected == []

    def test_rejects_non_increasing(self):
        with pytest.raises(ValueError):
            detect_periods([1, 1, 1])

    def test_rejects_bad_delta(self):
        with pytest.raises(ParameterError):
            detect_periods([1, 2, 3], delta=-1)

    def test_results_sorted_by_statistic(self):
        timestamps = sorted(
            set(range(0, 200, 5)) | set(range(1, 100, 20))
        )
        detected = detect_periods(timestamps)
        statistics = [d.statistic for d in detected]
        assert statistics == sorted(statistics, reverse=True)
