"""Tests for the tree-based PF-growth++ implementation."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.pf_growth import mine_periodic_frequent_patterns
from repro.baselines.pf_tree import mine_periodic_frequent_patterns_tree
from repro.exceptions import ParameterError
from repro.timeseries.database import TransactionalDatabase
from tests.conftest import small_databases


class TestMining:
    def test_running_example(self, running_example):
        found = mine_periodic_frequent_patterns_tree(running_example, 6, 4)
        assert sorted("".join(sorted(p.items)) for p in found) == [
            "a", "ab", "b", "c", "cd", "d", "e", "ef", "f",
        ]

    def test_metadata_matches_vertical_engine(self, running_example):
        tree = mine_periodic_frequent_patterns_tree(running_example, 6, 4)
        vertical = mine_periodic_frequent_patterns(running_example, 6, 4)
        assert tree == vertical

    def test_empty_database(self):
        assert len(
            mine_periodic_frequent_patterns_tree(TransactionalDatabase(), 1, 1)
        ) == 0

    def test_no_candidates(self, running_example):
        assert len(
            mine_periodic_frequent_patterns_tree(running_example, 100, 1)
        ) == 0

    def test_rejects_bad_max_per(self, running_example):
        with pytest.raises(ParameterError):
            mine_periodic_frequent_patterns_tree(running_example, 1, 0)

    def test_fractional_min_sup(self, running_example):
        assert mine_periodic_frequent_patterns_tree(
            running_example, 0.5, 4
        ) == mine_periodic_frequent_patterns_tree(running_example, 6, 4)


class TestCrossEngine:
    @settings(
        max_examples=50,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        db=small_databases(),
        min_sup=st.integers(1, 5),
        max_per=st.integers(1, 10),
    )
    def test_tree_equals_vertical_on_random_databases(
        self, db, min_sup, max_per
    ):
        tree = mine_periodic_frequent_patterns_tree(db, min_sup, max_per)
        vertical = mine_periodic_frequent_patterns(db, min_sup, max_per)
        assert tree == vertical
