"""Unit tests for p-pattern mining (Ma & Hellerstein)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.ppattern import mine_p_patterns, periodic_appearances
from repro.exceptions import ParameterError
from repro.timeseries.database import TransactionalDatabase
from tests.conftest import small_databases


class TestPeriodicAppearances:
    def test_threshold_semantics(self):
        assert periodic_appearances([1, 3, 4, 7, 11, 12, 14], per=2) == 4

    def test_tolerance_semantics(self):
        assert periodic_appearances(
            [1, 3, 4, 7, 11, 12, 14], per=3, window=1
        ) == 4  # gaps 2, 3, 4, 2 qualify

    def test_empty_and_single(self):
        assert periodic_appearances([], per=1) == 0
        assert periodic_appearances([5], per=1) == 0

    def test_rejects_bad_period(self):
        with pytest.raises(ParameterError):
            periodic_appearances([1, 2], per=0)


class TestThresholdMode:
    def test_running_example(self, running_example):
        found = mine_p_patterns(running_example, per=2, min_sup=4)
        assert found.pattern("ab").periodic_support == 4
        assert found.pattern("ab").support == 7

    def test_lower_min_sup_floods_results(self, running_example):
        # The rare-item dilemma of Section 2: low minSup explodes.
        strict = mine_p_patterns(running_example, per=2, min_sup=5)
        loose = mine_p_patterns(running_example, per=2, min_sup=2)
        assert len(loose) > len(strict)

    def test_p_patterns_ignore_where_periodicity_happens(self, running_example):
        # c has ONE long periodic stretch; p-patterns cannot tell it
        # apart from the genuinely recurring cd (the paper's core
        # criticism): both pass at minSup=4.
        found = mine_p_patterns(running_example, per=2, min_sup=4)
        assert "c" in found
        assert "cd" in found

    def test_empty_database(self):
        assert len(mine_p_patterns(TransactionalDatabase(), 1, 1)) == 0

    def test_rejects_unknown_mode(self, running_example):
        with pytest.raises(ParameterError):
            mine_p_patterns(running_example, 2, 2, mode="fuzzy")


class TestToleranceMode:
    def test_exact_period_matching(self):
        # Items at a strict period of 3; window 0 around per=3.
        db = TransactionalDatabase(
            [(ts, "a") for ts in range(0, 30, 3)]
        )
        found = mine_p_patterns(db, per=3, min_sup=5, window=0, mode="tolerance")
        assert found.pattern("a").periodic_support == 9

    def test_window_admits_jitter(self):
        db = TransactionalDatabase(
            [(0, "a"), (3, "a"), (7, "a"), (10, "a"), (14, "a")]
        )
        strict = mine_p_patterns(db, per=3, min_sup=4, window=0, mode="tolerance")
        jittered = mine_p_patterns(db, per=3, min_sup=4, window=1, mode="tolerance")
        assert "a" not in strict
        assert "a" in jittered

    def test_tolerance_pairs(self, running_example):
        found = mine_p_patterns(
            running_example, per=2, min_sup=4, window=1, mode="tolerance"
        )
        assert "ab" in found


class TestAssociationFirst:
    def test_equivalent_to_periodic_first(self, running_example):
        for min_sup in (2, 4, 6):
            periodic_first = mine_p_patterns(
                running_example, per=2, min_sup=min_sup
            )
            association_first = mine_p_patterns(
                running_example, per=2, min_sup=min_sup,
                algorithm="association-first",
            )
            assert periodic_first == association_first, min_sup

    def test_tolerance_mode_supported(self, running_example):
        periodic_first = mine_p_patterns(
            running_example, per=2, min_sup=3, window=1, mode="tolerance"
        )
        association_first = mine_p_patterns(
            running_example, per=2, min_sup=3, window=1, mode="tolerance",
            algorithm="association-first",
        )
        assert periodic_first == association_first

    def test_rejects_unknown_algorithm(self, running_example):
        with pytest.raises(ParameterError):
            mine_p_patterns(running_example, 2, 2, algorithm="magic")

    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        db=small_databases(),
        per=st.integers(1, 8),
        min_sup=st.integers(1, 5),
    )
    def test_algorithms_agree_on_random_databases(self, db, per, min_sup):
        assert mine_p_patterns(db, per, min_sup) == mine_p_patterns(
            db, per, min_sup, algorithm="association-first"
        )


class TestModelProperties:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        db=small_databases(),
        per=st.integers(1, 8),
        min_sup=st.integers(1, 5),
    )
    def test_definition_holds_threshold_mode(self, db, per, min_sup):
        for pattern in mine_p_patterns(db, per, min_sup):
            timestamps = db.timestamps_of(pattern.items)
            assert periodic_appearances(timestamps, per) >= min_sup
            assert pattern.periodic_support == periodic_appearances(
                timestamps, per
            )

    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        db=small_databases(),
        per=st.integers(1, 8),
        min_sup=st.integers(1, 4),
        window=st.integers(0, 3),
    )
    def test_tolerance_mode_is_exhaustive(self, db, per, min_sup, window):
        # Brute-force over occurring itemsets must agree.
        from itertools import combinations

        found = mine_p_patterns(
            db, per, min_sup, window=window, mode="tolerance"
        )
        occurring = set()
        for _, items in db:
            for size in range(1, len(items) + 1):
                occurring.update(
                    frozenset(c) for c in combinations(sorted(items), size)
                )
        expected = {
            itemset
            for itemset in occurring
            if periodic_appearances(
                db.timestamps_of(itemset), per, window
            ) >= min_sup
        }
        assert found.itemsets() == expected
