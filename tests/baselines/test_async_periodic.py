"""Tests for asynchronous periodic patterns (Yang et al.)."""

import pytest

from repro.baselines.async_periodic import (
    AsyncPeriodicPattern,
    Segment,
    longest_valid_subsequence,
    mine_async_periodic_patterns,
)
from repro.exceptions import ParameterError
from repro.timeseries.database import TransactionalDatabase


class TestLongestValidSubsequence:
    def test_single_perfect_run(self):
        reps, segments = longest_valid_subsequence([0, 3, 6, 9], 3, 2, 0)
        assert reps == 4
        assert segments == (Segment(0, 9, 4),)

    def test_two_segments_chained_within_disturbance(self):
        reps, segments = longest_valid_subsequence(
            [0, 3, 6, 13, 16, 19], 3, 2, 10
        )
        assert reps == 6
        assert len(segments) == 2

    def test_disturbance_bound_blocks_chaining(self):
        reps, segments = longest_valid_subsequence(
            [0, 3, 6, 13, 16, 19], 3, 2, 2
        )
        assert reps == 3  # best single segment
        assert len(segments) == 1

    def test_phase_shift_across_disturbance_allowed(self):
        # Second segment starts at 8: phase shifted by 2 relative to
        # continuing the first run (asynchronous!).
        reps, segments = longest_valid_subsequence(
            [0, 3, 8, 11, 14], 3, 2, 4
        )
        assert reps == 5
        assert [s.start for s in segments] == [0, 8]

    def test_min_rep_filters_short_runs(self):
        reps, _ = longest_valid_subsequence([0, 3, 10], 3, 2, 100)
        assert reps == 2  # the lone position 10 is not a valid segment

    def test_no_valid_segment(self):
        assert longest_valid_subsequence([0, 5, 11], 3, 2, 1) == (0, ())

    def test_empty_positions(self):
        assert longest_valid_subsequence([], 3, 1, 1) == (0, ())

    def test_chains_prefer_total_repetitions(self):
        # One long segment beats two short chained ones.
        positions = [0, 3, 6, 9, 12, 15, 18, 100, 103, 110, 113]
        reps, segments = longest_valid_subsequence(positions, 3, 2, 5)
        assert reps == 7
        assert segments[0].start == 0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ParameterError):
            longest_valid_subsequence([0], 0, 1, 1)
        with pytest.raises(ParameterError):
            longest_valid_subsequence([0], 1, 0, 1)
        with pytest.raises(ParameterError):
            longest_valid_subsequence([0], 1, 1, -1)


class TestMining:
    def test_single_items_and_pairs(self):
        seq = [frozenset("ab"), frozenset("c")] * 5
        patterns = mine_async_periodic_patterns(seq, 2, 3, 0)
        names = {"".join(p.sorted_items()) for p in patterns}
        assert names == {"a", "b", "c", "ab"}

    def test_superset_positions_are_subset(self):
        seq = [frozenset("ab"), frozenset("a"), frozenset("ab")] * 4
        patterns = mine_async_periodic_patterns(seq, 1, 2, 2)
        by_items = {"".join(p.sorted_items()): p for p in patterns}
        assert by_items["a"].repetitions >= by_items["ab"].repetitions

    def test_accepts_database_input(self, running_example):
        patterns = mine_async_periodic_patterns(
            running_example, period=2, min_rep=2, max_dis=3
        )
        assert any(p.length >= 2 for p in patterns)

    def test_max_length_caps_itemsets(self):
        seq = [frozenset("abc")] * 6
        patterns = mine_async_periodic_patterns(
            seq, 1, 2, 0, max_length=2
        )
        assert max(p.length for p in patterns) == 2

    def test_str(self):
        pattern = AsyncPeriodicPattern(
            frozenset("ab"), 2, 5, (Segment(0, 8, 5),)
        )
        assert str(pattern) == "ab [period=2, reps=5, {[0..8]x5}]"


class TestPositionBlindness:
    def test_positions_not_timestamps(self):
        # The same criticism as for segment-based patterns: silent time
        # is invisible, so a daily and a yearly alternation at the same
        # POSITIONS are indistinguishable.
        dense = TransactionalDatabase([(i, "a") for i in range(8)])
        sparse = TransactionalDatabase([(i * 1000, "a") for i in range(8)])
        assert mine_async_periodic_patterns(
            dense, 1, 4, 0
        ) == mine_async_periodic_patterns(sparse, 1, 4, 0)
