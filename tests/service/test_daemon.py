"""End-to-end tests of the mining service daemon.

Each test boots a real :class:`~repro.service.MiningService` on an
ephemeral port (a dedicated thread runs the asyncio loop) and drives it
with the blocking :class:`~repro.service.ServiceClient` — exactly the
path ``repro-mine submit/status/fetch`` takes.
"""

import asyncio
import contextlib
import io
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import mine_recurring_patterns
from repro.core.request import DatasetRef, MiningRequest
from repro.obs.report import iter_trace, validate_run_record
from repro.patterns_io import load_patterns, save_patterns
from repro.service import MiningService, ServiceClient, ServiceError


@contextlib.contextmanager
def running_service(**kwargs):
    """A live service on an ephemeral port, stopped (drained) on exit."""
    service = MiningService(port=0, **kwargs)
    ready = threading.Event()
    state = {}

    def run():
        async def main():
            state["loop"] = asyncio.get_running_loop()
            state["stop"] = asyncio.Event()
            await service.start()
            ready.set()
            await state["stop"].wait()
            await service.stop()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(10), "service failed to start"
    try:
        yield service
    finally:
        state["loop"].call_soon_threadsafe(state["stop"].set)
        thread.join(30)


def _tsv(patterns) -> str:
    buffer = io.StringIO()
    save_patterns(patterns, buffer)
    return buffer.getvalue()


@pytest.fixture
def example_ref(running_example):
    return DatasetRef.from_database(running_example)


# ----------------------------------------------------------------------
# The happy path
# ----------------------------------------------------------------------
def test_submit_poll_fetch_round_trip(running_example, example_ref):
    with running_service() as service:
        client = ServiceClient(port=service.port)
        job_id = client.submit(
            MiningRequest(per=2, min_ps=3, min_rec=2, source=example_ref)
        )
        assert job_id == "job-000001"
        status = client.wait(job_id, timeout=60)
        assert status["status"] == "done"
        assert status["cache"] == "miss"
        assert status["seconds"] > 0
        result = client.result(job_id)
        served = load_patterns(io.StringIO(result["patterns_tsv"]))
        direct = mine_recurring_patterns(
            running_example, per=2, min_ps=3, min_rec=2
        )
        assert served == direct
        assert result["patterns_found"] == len(direct) == 8


def test_cache_miss_then_hit_then_derived(running_example, example_ref):
    with running_service() as service:
        client = ServiceClient(port=service.port)
        loose = MiningRequest(per=2, min_ps=3, min_rec=1, source=example_ref)
        first = client.submit(loose)
        client.wait(first, timeout=60)
        second = client.submit(loose)
        client.wait(second, timeout=60)
        tight = MiningRequest(per=2, min_ps=3, min_rec=2, source=example_ref)
        third = client.submit(tight)
        client.wait(third, timeout=60)

        assert client.result(first)["cache"] == "miss"
        assert client.result(second)["cache"] == "hit"
        result = client.result(third)
        assert result["cache"] == "derived"
        # The derived answer is byte-identical to a fresh mine.
        fresh = mine_recurring_patterns(
            running_example, per=2, min_ps=3, min_rec=2
        )
        assert result["patterns_tsv"] == _tsv(fresh)
        # And the hit returned the exact bytes of the first answer.
        assert (
            client.result(second)["patterns_tsv"]
            == client.result(first)["patterns_tsv"]
        )

        metrics = client.metrics()
        assert "repro_service_jobs_submitted_total 3" in metrics
        assert "repro_service_cache_miss_total 1" in metrics
        assert "repro_service_cache_hit_total 1" in metrics
        assert "repro_service_cache_derived_total 1" in metrics
        assert (
            'repro_service_jobs_served_total{result="done"} 3' in metrics
        )


def test_workload_source_needs_no_files(running_example):
    del running_example
    with running_service() as service:
        client = ServiceClient(port=service.port)
        job_id = client.submit(
            MiningRequest(
                per=2,
                min_ps=2,
                source=DatasetRef.named_workload(
                    "quest", scale=0.01, seed=1
                ),
            )
        )
        status = client.wait(job_id, timeout=120)
        assert status["status"] == "done", status


# ----------------------------------------------------------------------
# Concurrency
# ----------------------------------------------------------------------
def test_concurrent_submissions_all_complete(running_example, example_ref):
    with running_service(workers=2) as service:
        client = ServiceClient(port=service.port)
        # Prime the column so the concurrent wave is served from cache.
        primer = client.submit(
            MiningRequest(per=2, min_ps=3, min_rec=1, source=example_ref)
        )
        assert client.wait(primer, timeout=60)["status"] == "done"

        def one(min_rec: int) -> str:
            job_id = client.submit(
                MiningRequest(
                    per=2, min_ps=3, min_rec=min_rec, source=example_ref
                )
            )
            status = client.wait(job_id, timeout=60)
            assert status["status"] == "done", status
            return client.result(job_id)["patterns_tsv"]

        min_recs = [1, 2, 3, 1, 2, 3, 4, 1]
        with ThreadPoolExecutor(max_workers=8) as pool:
            served = list(pool.map(one, min_recs))
        for min_rec, tsv in zip(min_recs, served):
            fresh = mine_recurring_patterns(
                running_example, per=2, min_ps=3, min_rec=min_rec
            )
            assert tsv == _tsv(fresh), f"min_rec={min_rec} diverged"
        # Every one of the 8 was answered from the primed cell.
        stats = service.cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] + stats["derived"] == len(min_recs)


# ----------------------------------------------------------------------
# Eviction, failures, protocol errors
# ----------------------------------------------------------------------
def test_eviction_surfaces_in_metrics(example_ref):
    with running_service(cache_size=1) as service:
        client = ServiceClient(port=service.port)
        for per in (1, 2):
            job_id = client.submit(
                MiningRequest(per=per, min_ps=3, source=example_ref)
            )
            assert client.wait(job_id, timeout=60)["status"] == "done"
        assert service.cache.stats()["evictions"] == 1
        assert (
            "repro_service_cache_evictions_total 1" in client.metrics()
        )


def test_failed_job_surfaces_its_error(tmp_path):
    with running_service() as service:
        client = ServiceClient(port=service.port)
        job_id = client.submit(
            MiningRequest(
                per=2,
                min_ps=3,
                source=DatasetRef.file(str(tmp_path / "missing.tsv")),
            )
        )
        status = client.wait(job_id, timeout=60)
        assert status["status"] == "failed"
        assert "missing.tsv" in status["error"]
        with pytest.raises(ServiceError) as excinfo:
            client.result(job_id)
        assert excinfo.value.status == 409
        assert (
            'repro_service_jobs_served_total{result="failed"} 1'
            in client.metrics()
        )


def test_protocol_errors(example_ref):
    with running_service() as service:
        client = ServiceClient(port=service.port)
        # Unknown job: 404 from both routes.
        for path in ("/jobs/nope", "/jobs/nope/result"):
            status, _ = client._request("GET", path)
            assert status == 404
        # Invalid request bodies: 400 with the validation message.
        with pytest.raises(ServiceError) as excinfo:
            client._json("POST", "/jobs", {"per": 2})
        assert excinfo.value.status == 400
        assert "min_ps" in str(excinfo.value)
        with pytest.raises(ServiceError) as excinfo:
            client._json("POST", "/jobs", {"per": 2, "min_ps": 3, "x": 1})
        assert excinfo.value.status == 400
        # A request without a source cannot be served.
        with pytest.raises(ServiceError, match="source"):
            client.submit(MiningRequest(per=2, min_ps=3))
        # Wrong methods.
        assert client._request("GET", "/jobs")[0] == 405
        # Health endpoint.
        health = client._json("GET", "/healthz")
        assert health["status"] == "ok"
        del example_ref


def test_unreachable_service_raises_service_error():
    client = ServiceClient(port=1)  # nothing listens there
    with pytest.raises(ServiceError, match="repro-mine serve"):
        client.status("job-000001")


# ----------------------------------------------------------------------
# Telemetry
# ----------------------------------------------------------------------
def test_every_served_job_emits_a_valid_run_record(
    tmp_path, example_ref
):
    trace_path = tmp_path / "service.jsonl"
    with running_service(trace=str(trace_path)) as service:
        client = ServiceClient(port=service.port)
        loose = MiningRequest(per=2, min_ps=3, min_rec=1, source=example_ref)
        for request in (loose, loose, loose.with_thresholds(min_rec=2)):
            job_id = client.submit(request)
            assert client.wait(job_id, timeout=60)["status"] == "done"
    records = [r for r in iter_trace(str(trace_path)) if r.get("kind") == "run"]
    assert [r["cache"] for r in records] == ["miss", "hit", "derived"]
    digests = set()
    for record in records:
        validate_run_record(record)
        digests.add(record["dataset_digest"])
    assert len(digests) == 1  # all three served the same content
    assert records[2]["params"]["min_rec"] == 2
    assert records[2]["cache_base_min_rec"] == 1


# ----------------------------------------------------------------------
# The thin CLI client against a live daemon
# ----------------------------------------------------------------------
def test_cli_submit_status_fetch(
    tmp_path, running_example, capsys
):
    from repro.cli import main
    from repro.timeseries.io import save_transactional_database

    data = tmp_path / "example.tsv"
    save_transactional_database(running_example, str(data))
    with running_service() as service:
        port = ["--port", str(service.port)]
        assert main(
            ["submit", *port, "--input", str(data),
             "--per", "2", "--min-ps", "3", "--min-rec", "2",
             "--wait", "--timeout", "60"]
        ) == 0
        out = capsys.readouterr().out
        assert "8 recurring patterns" in out
        assert "cache: miss" in out

        assert main(["status", *port, "--job", "job-000001"]) == 0
        assert "job-000001: done" in capsys.readouterr().out

        saved = tmp_path / "patterns.tsv"
        assert main(
            ["fetch", *port, "--job", "job-000001",
             "--save-patterns", str(saved)]
        ) == 0
        capsys.readouterr()
        reloaded = load_patterns(str(saved))
        assert reloaded == mine_recurring_patterns(
            running_example, per=2, min_ps=3, min_rec=2
        )

        # Unknown job id is a clean CLI error, not a traceback.
        assert main(["status", *port, "--job", "nope"]) == 1
        assert "error:" in capsys.readouterr().err
