"""The service result cache: derivation byte-identity, LRU, stats.

The cache's headline guarantee is the same theorem the sweep engine
pins (``tests/sweep/test_derivation_property.py``): serving a tighter
``min_rec`` by filtering a cached looser cell of the same ``(dataset,
engine, per, minPS)`` column is byte-identical — same canonical view,
same saved TSV — to mining that cell from scratch.  Here it is checked
at the service boundary, across every registered engine, on seeded
random databases.
"""

import io
import random

import pytest

from repro import mine_recurring_patterns
from repro.core.engines import ENGINES
from repro.core.request import MiningRequest
from repro.exceptions import ParameterError
from repro.patterns_io import save_patterns
from repro.qa.differential import (
    BASE_SEED,
    canonical,
    random_params,
    random_rows,
)
from repro.service import ResultCache
from repro.timeseries.database import TransactionalDatabase

N_CASES = 6


def _tsv(patterns) -> str:
    buffer = io.StringIO()
    save_patterns(patterns, buffer)
    return buffer.getvalue()


def _mine(database, request):
    return mine_recurring_patterns(
        database,
        per=request.per,
        min_ps=request.min_ps,
        min_rec=request.min_rec,
        engine=request.engine,
    )


# ----------------------------------------------------------------------
# The derivation property, per engine
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", list(ENGINES))
@pytest.mark.parametrize("case", range(N_CASES))
def test_derived_answer_is_byte_identical_to_fresh_mine(engine, case):
    rng = random.Random(BASE_SEED + case)
    database = TransactionalDatabase(random_rows(rng))
    if len(database) == 0:
        pytest.skip("empty database: nothing to mine")
    digest = database.digest()
    per, min_ps, min_rec = random_params(rng)

    cache = ResultCache()
    loose = MiningRequest(
        per=per, min_ps=min_ps, min_rec=min_rec, engine=engine
    )
    cache.put(loose, digest, _mine(database, loose), {"schema": "x"})

    for delta in (0, 1, 3):
        tight = loose.with_thresholds(min_rec=min_rec + delta)
        outcome = cache.get(tight, digest)
        assert outcome is not None, "same column must always answer"
        assert outcome.how == ("hit" if delta == 0 else "derived")
        fresh = _mine(database, tight)
        assert canonical(outcome.patterns) == canonical(fresh)
        assert _tsv(outcome.patterns) == _tsv(fresh), (
            f"seed {BASE_SEED + case} engine {engine}: derived TSV "
            f"differs at min_rec={min_rec + delta}"
        )


def test_derivation_prefers_the_tightest_cached_base(running_example):
    digest = running_example.digest()
    cache = ResultCache()
    for min_rec in (1, 2):
        request = MiningRequest(per=2, min_ps=3, min_rec=min_rec)
        cache.put(
            request, digest, _mine(running_example, request), {}
        )
    outcome = cache.get(
        MiningRequest(per=2, min_ps=3, min_rec=3), digest
    )
    assert outcome.how == "derived"
    assert outcome.base_min_rec == 2  # not the looser min_rec=1 cell


def test_looser_requests_never_served_from_tighter_cells(running_example):
    digest = running_example.digest()
    cache = ResultCache()
    tight = MiningRequest(per=2, min_ps=3, min_rec=2)
    cache.put(tight, digest, _mine(running_example, tight), {})
    assert cache.get(
        MiningRequest(per=2, min_ps=3, min_rec=1), digest
    ) is None


def test_no_cross_contamination(running_example):
    digest = running_example.digest()
    cache = ResultCache()
    request = MiningRequest(per=2, min_ps=3, min_rec=1)
    cache.put(request, digest, _mine(running_example, request), {})
    # Different digest, engine, per or min_ps: all misses.
    assert cache.get(request, "other-digest") is None
    for other in (
        MiningRequest(per=2, min_ps=3, min_rec=2, engine="rp-eclat"),
        MiningRequest(per=3, min_ps=3, min_rec=2),
        MiningRequest(per=2, min_ps=4, min_rec=2),
    ):
        assert cache.get(other, digest) is None


# ----------------------------------------------------------------------
# LRU eviction
# ----------------------------------------------------------------------
def test_lru_eviction_drops_the_oldest_entry(running_example):
    digest = running_example.digest()
    cache = ResultCache(max_entries=2)
    requests = [
        MiningRequest(per=per, min_ps=3, min_rec=1) for per in (1, 2, 3)
    ]
    patterns = _mine(running_example, requests[1])
    for request in requests:
        cache.put(request, digest, patterns, {})
    assert len(cache) == 2
    assert cache.stats()["evictions"] == 1
    assert cache.get(requests[0], digest) is None  # evicted
    assert cache.get(requests[1], digest).how == "hit"
    assert cache.get(requests[2], digest).how == "hit"


def test_a_hit_refreshes_recency(running_example):
    digest = running_example.digest()
    cache = ResultCache(max_entries=2)
    a = MiningRequest(per=1, min_ps=3)
    b = MiningRequest(per=2, min_ps=3)
    c = MiningRequest(per=3, min_ps=3)
    patterns = _mine(running_example, b)
    cache.put(a, digest, patterns, {})
    cache.put(b, digest, patterns, {})
    cache.get(a, digest)  # a becomes most recent
    cache.put(c, digest, patterns, {})  # evicts b, not a
    assert cache.get(a, digest) is not None
    assert cache.get(b, digest) is None


def test_stats_counts_every_outcome(running_example):
    digest = running_example.digest()
    cache = ResultCache()
    request = MiningRequest(per=2, min_ps=3, min_rec=1)
    assert cache.get(request, digest) is None
    cache.put(request, digest, _mine(running_example, request), {})
    cache.get(request, digest)
    cache.get(request.with_thresholds(min_rec=2), digest)
    assert cache.stats() == {
        "entries": 1, "hits": 1, "derived": 1, "misses": 1, "evictions": 0,
    }


def test_capacity_validated():
    with pytest.raises(ParameterError, match="max_entries"):
        ResultCache(max_entries=0)
