"""Unit tests for shared validation helpers and the exception hierarchy."""

import pytest

from repro._validation import (
    check_count,
    check_non_negative,
    check_positive,
    resolve_count_threshold,
)
from repro.exceptions import (
    DataFormatError,
    EmptyDatabaseError,
    ParameterError,
    ReproError,
    SearchSpaceError,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(3, "x") == 3
        assert check_positive(0.5, "x") == 0.5

    @pytest.mark.parametrize("bad", [0, -1, -0.5])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ParameterError, match="x must be > 0"):
            check_positive(bad, "x")

    @pytest.mark.parametrize("bad", [True, "3", None, float("nan"), float("inf")])
    def test_rejects_non_numbers(self, bad):
        with pytest.raises(ParameterError):
            check_positive(bad, "x")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ParameterError):
            check_non_negative(-1, "x")


class TestCheckCount:
    def test_accepts_counts(self):
        assert check_count(1, "x") == 1

    def test_minimum(self):
        assert check_count(0, "x", minimum=0) == 0
        with pytest.raises(ParameterError):
            check_count(0, "x", minimum=1)

    @pytest.mark.parametrize("bad", [1.0, True, "1"])
    def test_rejects_non_int(self, bad):
        with pytest.raises(ParameterError):
            check_count(bad, "x")


class TestResolveCountThreshold:
    def test_int_passthrough(self):
        assert resolve_count_threshold(5, "x", 100) == 5

    def test_fraction_uses_ceil(self):
        assert resolve_count_threshold(0.001, "x", 1500) == 2

    def test_fraction_of_one_is_total(self):
        assert resolve_count_threshold(1.0, "x", 40) == 40

    def test_fraction_never_below_one(self):
        assert resolve_count_threshold(0.0001, "x", 10) == 1

    @pytest.mark.parametrize("bad", [0, -1, 1.5, 0.0, -0.5, float("nan"), "x", True])
    def test_rejects_bad_values(self, bad):
        with pytest.raises(ParameterError):
            resolve_count_threshold(bad, "x", 100)


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (ParameterError, DataFormatError, EmptyDatabaseError,
                    SearchSpaceError):
            assert issubclass(exc, ReproError)

    def test_value_error_compatibility(self):
        # Callers catching plain ValueError still see parameter/data errors.
        for exc in (ParameterError, DataFormatError, EmptyDatabaseError):
            assert issubclass(exc, ValueError)

    def test_search_space_is_runtime_error(self):
        assert issubclass(SearchSpaceError, RuntimeError)
