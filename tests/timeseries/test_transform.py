"""Unit tests for time-series <-> database transformations."""

import pytest

from repro.exceptions import ParameterError
from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.events import EventSequence
from repro.timeseries.transform import (
    database_to_events,
    discretize_timestamps,
    events_to_database,
    map_items,
    merge_sequences,
)


class TestGrouping:
    def test_events_to_database_groups_by_timestamp(self):
        seq = EventSequence([("a", 1), ("b", 1), ("c", 2)])
        db = events_to_database(seq)
        assert len(db) == 2
        assert db[0].items == frozenset("ab")

    def test_round_trip(self, running_example):
        assert events_to_database(
            database_to_events(running_example)
        ) == running_example

    def test_empty_sequence(self):
        assert len(events_to_database(EventSequence())) == 0


class TestDiscretization:
    def test_left_labels(self):
        seq = EventSequence([("a", 0.2), ("b", 0.9), ("a", 1.4)])
        out = discretize_timestamps(seq, bucket=1.0)
        assert [e.ts for e in out] == [0.0, 0.0, 1.0]

    def test_index_labels(self):
        seq = EventSequence([("a", 0.2), ("b", 2.9)])
        out = discretize_timestamps(seq, bucket=1.0, label="index")
        assert [e.ts for e in out] == [0, 2]

    def test_origin_shifts_boundaries(self):
        seq = EventSequence([("a", 10.0)])
        out = discretize_timestamps(seq, bucket=4.0, origin=2.0)
        assert out[0].ts == 10.0  # bucket [10, 14) starts at 2 + 2*4

    def test_negative_timestamps(self):
        seq = EventSequence([("a", -0.5)])
        out = discretize_timestamps(seq, bucket=1.0)
        assert out[0].ts == -1.0

    def test_rejects_bad_bucket(self):
        with pytest.raises(ParameterError):
            discretize_timestamps(EventSequence(), bucket=0)

    def test_rejects_bad_label(self):
        with pytest.raises(ValueError):
            discretize_timestamps(EventSequence(), bucket=1.0, label="right")

    def test_discretize_then_group(self):
        # End-to-end: sub-minute events collapse into minute transactions.
        seq = EventSequence(
            [("a", 60.1), ("b", 60.7), ("a", 125.0), ("c", 125.9)]
        )
        db = events_to_database(
            discretize_timestamps(seq, bucket=60.0)
        )
        assert len(db) == 2
        assert db[0] == (60.0, frozenset("ab"))
        assert db[1] == (120.0, frozenset("ac"))


class TestHelpers:
    def test_map_items(self):
        seq = EventSequence([("A", 1), ("B", 2)])
        lowered = map_items(seq, str.lower)
        assert [e.item for e in lowered] == ["a", "b"]

    def test_merge_sequences(self):
        left = EventSequence([("a", 1), ("a", 5)])
        right = EventSequence([("b", 3)])
        merged = merge_sequences([left, right])
        assert [(e.item, e.ts) for e in merged] == [
            ("a", 1), ("b", 3), ("a", 5),
        ]

    def test_merge_empty(self):
        assert len(merge_sequences([])) == 0
