"""Unit tests for minute-calendar helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ParameterError
from repro.timeseries.calendar import (
    MINUTES_PER_DAY,
    MINUTES_PER_HOUR,
    MINUTES_PER_WEEK,
    day_and_time,
    day_of,
    format_minutes,
    hour_of_day,
    minute_of_day,
    minutes,
)


class TestCompose:
    def test_constants(self):
        assert MINUTES_PER_HOUR == 60
        assert MINUTES_PER_DAY == 1440
        assert MINUTES_PER_WEEK == 10080

    def test_minutes(self):
        assert minutes(days=1) == 1440
        assert minutes(hours=6) == 360
        assert minutes(days=2, hours=3, mins=4) == 3064

    def test_fractional(self):
        assert minutes(hours=0.5) == 30

    def test_rejects_negative(self):
        with pytest.raises(ParameterError):
            minutes(days=-1)


class TestDecompose:
    def test_day_boundaries(self):
        assert day_of(0) == 0
        assert day_of(1439) == 0
        assert day_of(1440) == 1

    def test_minute_and_hour_of_day(self):
        ts = minutes(days=2, hours=13, mins=45)
        assert minute_of_day(ts) == 13 * 60 + 45
        assert hour_of_day(ts) == 13

    def test_day_and_time(self):
        assert day_and_time(minutes(days=5, hours=23, mins=59)) == (5, 23, 59)

    def test_format(self):
        assert format_minutes(0) == "d0 00:00"
        assert format_minutes(minutes(days=51, hours=1, mins=8)) == "d51 01:08"

    @given(
        days=st.integers(0, 400),
        hours=st.integers(0, 23),
        mins=st.integers(0, 59),
    )
    def test_compose_decompose_round_trip(self, days, hours, mins):
        ts = minutes(days=days, hours=hours, mins=mins)
        assert day_and_time(ts) == (days, hours, mins)
