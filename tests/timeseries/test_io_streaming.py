"""Streaming/mmap/chunked readers vs. the eager loader, on real files.

``tests/timeseries/corpus/`` holds checked-in transaction files — the
paper's running example (annotated with comments and blank lines), a
planted workload, float/negative timestamps, duplicate timestamps and
a deliberately unsorted file.  Every reader variant must agree with
the eager loader byte for byte on each of them, and the streaming
error contract (lazy, line-numbered ``DataFormatError``) must match
the eager one.
"""

from __future__ import annotations

import io
import pathlib

import pytest

from repro.exceptions import DataFormatError
from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.io import (
    iter_database_chunks,
    load_transactional_database,
    load_transactional_database_streaming,
    save_transactional_database,
    stream_transaction_rows,
)

CORPUS = pathlib.Path(__file__).parent / "corpus"
CORPUS_FILES = sorted(CORPUS.glob("*.tsv"))
SORTED_FILES = [p for p in CORPUS_FILES if p.name != "unsorted.tsv"]


def _content_equal(left: TransactionalDatabase,
                   right: TransactionalDatabase) -> bool:
    return list(left) == list(right) and [
        type(ts) for ts, _ in left
    ] == [type(ts) for ts, _ in right]


def test_corpus_is_present_and_nontrivial():
    assert len(CORPUS_FILES) >= 5
    assert all(path.stat().st_size > 0 for path in CORPUS_FILES)


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=lambda p: p.name
)
def test_streaming_loader_matches_eager_on_corpus(path):
    eager = load_transactional_database(path)
    streamed = load_transactional_database_streaming(path)
    mapped = load_transactional_database_streaming(path, use_mmap=True)
    assert _content_equal(streamed, eager)
    assert _content_equal(mapped, eager)


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=lambda p: p.name
)
def test_streaming_works_on_open_handles(path):
    with open(path, encoding="utf-8") as handle:
        streamed = load_transactional_database_streaming(handle)
    assert _content_equal(streamed, load_transactional_database(path))


@pytest.mark.parametrize("path", SORTED_FILES, ids=lambda p: p.name)
@pytest.mark.parametrize("use_mmap", (False, True))
@pytest.mark.parametrize("max_transactions", (1, 3, 1000))
def test_chunks_concatenate_to_eager_database(
    path, use_mmap, max_transactions
):
    eager = load_transactional_database(path)
    chunks = list(
        iter_database_chunks(path, max_transactions, use_mmap=use_mmap)
    )
    rebuilt = [(ts, items) for chunk in chunks for ts, items in chunk]
    assert rebuilt == list(eager)
    assert all(1 <= len(chunk) <= max_transactions for chunk in chunks)
    expected_count = -(-len(eager) // max_transactions) if len(eager) else 0
    assert len(chunks) == expected_count


def test_chunking_never_splits_duplicate_timestamps():
    path = CORPUS / "duplicate_ts.tsv"
    # max_transactions=1: each chunk is exactly one merged transaction.
    chunks = list(iter_database_chunks(path, 1))
    eager = load_transactional_database(path)
    assert [list(chunk) for chunk in chunks] == [
        [transaction] for transaction in eager
    ]


def test_chunker_rejects_unsorted_files():
    path = CORPUS / "unsorted.tsv"
    # The eager loader sorts silently; the chunker must refuse, naming
    # the first offending line (line 3: ts=1 after ts=5... line 2 has
    # the comment header shifting numbers — assert via the message).
    iterator = iter_database_chunks(path, 10)
    with pytest.raises(DataFormatError, match="non-decreasing"):
        list(iterator)


def test_chunker_validates_max_transactions():
    path = CORPUS / "running_example.tsv"
    for bad in (0, -1, True, 2.5):
        with pytest.raises(DataFormatError):
            list(iter_database_chunks(path, bad))


def test_stream_errors_are_lazy_and_line_numbered():
    source = io.StringIO(
        "# header comment\n"
        "1\ta b\n"
        "\n"
        "2\tc\n"
        "not-a-row\n"
        "3\td\n"
    )
    rows = stream_transaction_rows(source)
    assert next(rows) == (1, ["a", "b"])
    assert next(rows) == (2, ["c"])
    # The malformed line only raises when the iterator reaches it, and
    # the reported number counts comments and blanks like the eager
    # loader does.
    with pytest.raises(DataFormatError, match="line 5"):
        next(rows)


def test_streaming_error_line_numbers_match_eager(tmp_path):
    path = tmp_path / "broken.tsv"
    path.write_text("# c\n\n1\ta\nbroken-line\n", encoding="utf-8")
    with pytest.raises(DataFormatError) as eager_error:
        load_transactional_database(path)
    with pytest.raises(DataFormatError) as stream_error:
        list(stream_transaction_rows(path))
    with pytest.raises(DataFormatError) as mmap_error:
        list(stream_transaction_rows(path, use_mmap=True))
    assert "line 4" in str(eager_error.value)
    assert str(stream_error.value) == str(eager_error.value)
    assert str(mmap_error.value) == str(eager_error.value)


def test_mmap_handles_blank_lines_comments_and_crlf(tmp_path):
    path = tmp_path / "crlf.tsv"
    path.write_bytes(b"# comment\r\n\r\n1\ta b\r\n2\tc\r\n")
    expected = [(1, ["a", "b"]), (2, ["c"])]
    assert list(stream_transaction_rows(path, use_mmap=True)) == expected
    assert list(stream_transaction_rows(path)) == expected


def test_mmap_empty_file(tmp_path):
    path = tmp_path / "empty.tsv"
    path.write_text("", encoding="utf-8")
    assert list(stream_transaction_rows(path, use_mmap=True)) == []
    assert len(load_transactional_database_streaming(path, use_mmap=True)) == 0


def test_round_trip_through_save(tmp_path):
    for source in SORTED_FILES:
        database = load_transactional_database(source)
        target = tmp_path / source.name
        save_transactional_database(database, target)
        assert _content_equal(
            load_transactional_database_streaming(target, use_mmap=True),
            database,
        )
        chunks = list(iter_database_chunks(target, 2))
        assert [
            (ts, items) for chunk in chunks for ts, items in chunk
        ] == list(database)
