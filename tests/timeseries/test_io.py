"""Unit tests for the plain-text I/O formats."""

import io

import pytest

from repro.exceptions import DataFormatError
from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.events import EventSequence
from repro.timeseries.io import (
    load_event_sequence,
    load_spmf_transactions,
    load_transactional_database,
    save_event_sequence,
    save_spmf_transactions,
    save_transactional_database,
)


class TestEventFormat:
    def test_round_trip_via_path(self, tmp_path):
        seq = EventSequence([("a", 1), ("b", 2), ("a", 2)])
        path = tmp_path / "events.tsv"
        save_event_sequence(seq, path)
        assert load_event_sequence(path) == seq

    def test_round_trip_via_handle(self):
        seq = EventSequence([("x", 5), ("y", 7)])
        buffer = io.StringIO()
        save_event_sequence(seq, buffer)
        buffer.seek(0)
        assert load_event_sequence(buffer) == seq

    def test_blank_lines_and_comments_skipped(self):
        text = "# header\n1\ta\n\n2\tb\n"
        assert len(load_event_sequence(io.StringIO(text))) == 2

    def test_float_timestamps_survive(self):
        seq = EventSequence([("a", 1.5)])
        buffer = io.StringIO()
        save_event_sequence(seq, buffer)
        buffer.seek(0)
        assert load_event_sequence(buffer)[0].ts == 1.5

    def test_malformed_line_reports_line_number(self):
        with pytest.raises(DataFormatError, match="line 2"):
            load_event_sequence(io.StringIO("1\ta\nbroken line\n"))

    def test_bad_timestamp_reports_line_number(self):
        with pytest.raises(DataFormatError, match="line 1"):
            load_event_sequence(io.StringIO("one\ta\n"))


class TestTransactionFormat:
    def test_round_trip_via_path(self, tmp_path, running_example):
        path = tmp_path / "db.tsv"
        save_transactional_database(running_example, path)
        assert load_transactional_database(path) == running_example

    def test_round_trip_via_handle(self):
        db = TransactionalDatabase([(1, ["x", "y"]), (3, ["z"])])
        buffer = io.StringIO()
        save_transactional_database(db, buffer)
        buffer.seek(0)
        assert load_transactional_database(buffer) == db

    def test_items_with_multiple_spaces(self):
        db = load_transactional_database(io.StringIO("1\ta  b   c\n"))
        assert db[0].items == frozenset("abc")

    def test_missing_items_column(self):
        with pytest.raises(DataFormatError, match="line 1"):
            load_transactional_database(io.StringIO("1\n"))

    def test_empty_items_column(self):
        with pytest.raises(DataFormatError, match="line 1"):
            load_transactional_database(io.StringIO("1\t \n"))

    def test_handle_left_open_after_write(self):
        buffer = io.StringIO()
        save_transactional_database(TransactionalDatabase([(1, "a")]), buffer)
        assert not buffer.closed

    def test_integer_timestamps_written_without_decimal(self):
        buffer = io.StringIO()
        save_transactional_database(
            TransactionalDatabase([(3.0, "a")]), buffer
        )
        assert buffer.getvalue().startswith("3\t")


class TestSpmfFormat:
    def test_load_assigns_sequential_timestamps(self):
        db = load_spmf_transactions(io.StringIO("1 2 3\n2 4\n"))
        assert [ts for ts, _ in db] == [1, 2]
        assert db[0].items == frozenset({"1", "2", "3"})

    def test_start_ts(self):
        db = load_spmf_transactions(io.StringIO("a\nb\n"), start_ts=10)
        assert [ts for ts, _ in db] == [10, 11]

    def test_metadata_and_comment_lines_skipped(self):
        text = "@CONVERTED_FROM_TEXT\n% comment\na b\n"
        db = load_spmf_transactions(io.StringIO(text))
        assert len(db) == 1

    def test_sequence_markers_rejected(self):
        with pytest.raises(DataFormatError, match="sequence"):
            load_spmf_transactions(io.StringIO("1 -1 2 -1 -2\n"))

    def test_round_trip_loses_timestamps_only(self, running_example):
        buffer = io.StringIO()
        save_spmf_transactions(running_example, buffer)
        buffer.seek(0)
        reloaded = load_spmf_transactions(buffer)
        assert len(reloaded) == len(running_example)
        assert [items for _, items in reloaded] == [
            items for _, items in running_example
        ]
        # Timestamps became 1..12: the silent gaps at 8 and 13 are gone.
        assert [ts for ts, _ in reloaded] == list(range(1, 13))


class TestSeparatorSafety:
    """Items that would corrupt the line formats are rejected loudly."""

    def test_event_format_rejects_tab_in_item(self):
        seq = EventSequence([("bad\titem", 1)])
        with pytest.raises(DataFormatError, match="separator"):
            save_event_sequence(seq, io.StringIO())

    def test_event_format_allows_spaces(self):
        # The event format is tab-separated, so spaces are fine.
        seq = EventSequence([("two words", 1)])
        buffer = io.StringIO()
        save_event_sequence(seq, buffer)
        buffer.seek(0)
        assert load_event_sequence(buffer) == seq

    def test_transaction_format_rejects_space_in_item(self):
        db = TransactionalDatabase([(1, ["two words"])])
        with pytest.raises(DataFormatError, match="separator"):
            save_transactional_database(db, io.StringIO())

    def test_spmf_format_rejects_space_in_item(self):
        db = TransactionalDatabase([(1, ["two words"])])
        with pytest.raises(DataFormatError, match="separator"):
            save_spmf_transactions(db, io.StringIO())

    def test_newline_rejected_everywhere(self):
        db = TransactionalDatabase([(1, ["sneaky\nitem"])])
        with pytest.raises(DataFormatError):
            save_transactional_database(db, io.StringIO())
