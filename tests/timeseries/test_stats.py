"""Unit tests for database statistics."""

import pytest

from repro.exceptions import EmptyDatabaseError, ParameterError
from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.stats import (
    describe_database,
    item_frequency_series,
)


class TestDescribe:
    def test_running_example(self, running_example):
        stats = describe_database(running_example)
        assert stats.transaction_count == 12
        assert stats.item_count == 7
        assert stats.start == 1
        assert stats.end == 14
        assert stats.max_transaction_length == 7  # ts=12: abcdefg
        assert stats.max_gap == 2  # 7->9 and 12->14

    def test_mean_values(self):
        db = TransactionalDatabase([(1, "ab"), (3, "abcd")])
        stats = describe_database(db)
        assert stats.mean_transaction_length == 3.0
        assert stats.mean_gap == 2.0

    def test_single_transaction_has_zero_gaps(self):
        stats = describe_database(TransactionalDatabase([(5, "a")]))
        assert stats.mean_gap == 0.0
        assert stats.max_gap == 0.0

    def test_empty_database_raises(self):
        with pytest.raises(EmptyDatabaseError):
            describe_database(TransactionalDatabase())

    def test_as_rows_keys(self, running_example):
        rows = dict(describe_database(running_example).as_rows())
        assert rows["transactions"] == "12"
        assert rows["distinct items"] == "7"


class TestFrequencySeries:
    def test_bucketing(self):
        db = TransactionalDatabase(
            [(0, "a"), (1, "a"), (5, "a"), (6, "b")]
        )
        series = item_frequency_series(db, ["a", "b"], bucket=5)
        assert series["a"] == {0: 2, 5: 1}
        assert series["b"] == {5: 1}

    def test_only_requested_items(self, running_example):
        series = item_frequency_series(running_example, ["a"], bucket=7)
        assert set(series) == {"a"}
        # a occurs at 1,2,3,4,7 in [1,8) and 11,12,14 in [8,15).
        assert series["a"] == {1: 5, 8: 3}

    def test_empty_database(self):
        series = item_frequency_series(TransactionalDatabase(), ["a"], 10)
        assert series == {"a": {}}

    def test_absent_item_has_empty_series(self, running_example):
        series = item_frequency_series(running_example, ["zz"], bucket=5)
        assert series["zz"] == {}

    def test_rejects_bad_bucket(self, running_example):
        with pytest.raises(ParameterError):
            item_frequency_series(running_example, ["a"], bucket=0)
