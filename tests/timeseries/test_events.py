"""Unit tests for events and event sequences (Definitions 1-2)."""

import pytest

from repro.exceptions import DataFormatError
from repro.timeseries.events import Event, EventSequence


class TestConstruction:
    def test_empty_sequence(self):
        seq = EventSequence()
        assert len(seq) == 0
        assert list(seq) == []

    def test_events_are_sorted_by_timestamp(self):
        seq = EventSequence([("b", 5), ("a", 1), ("c", 3)])
        assert [e.ts for e in seq] == [1, 3, 5]
        assert [e.item for e in seq] == ["a", "c", "b"]

    def test_simultaneous_events_keep_input_order(self):
        seq = EventSequence([("x", 2), ("y", 2), ("z", 2)])
        assert [e.item for e in seq] == ["x", "y", "z"]

    def test_accepts_event_namedtuples(self):
        seq = EventSequence([Event("a", 1), Event("b", 2)])
        assert len(seq) == 2

    def test_float_timestamps(self):
        seq = EventSequence([("a", 1.5), ("b", 0.25)])
        assert seq.start == 0.25
        assert seq.end == 1.5

    def test_rejects_non_pair(self):
        with pytest.raises(DataFormatError):
            EventSequence([("a", 1, 2)])

    def test_rejects_non_numeric_timestamp(self):
        with pytest.raises(DataFormatError):
            EventSequence([("a", "one")])

    def test_rejects_boolean_timestamp(self):
        with pytest.raises(DataFormatError):
            EventSequence([("a", True)])

    def test_rejects_nan_timestamp(self):
        with pytest.raises(DataFormatError):
            EventSequence([("a", float("nan"))])

    def test_rejects_infinite_timestamp(self):
        with pytest.raises(DataFormatError):
            EventSequence([("a", float("inf"))])


class TestAccessors:
    def test_start_end(self):
        seq = EventSequence([("a", 3), ("b", 9)])
        assert (seq.start, seq.end) == (3, 9)

    def test_start_of_empty_raises(self):
        with pytest.raises(ValueError):
            EventSequence().start

    def test_end_of_empty_raises(self):
        with pytest.raises(ValueError):
            EventSequence().end

    def test_indexing(self):
        seq = EventSequence([("a", 1), ("b", 2)])
        assert seq[0] == Event("a", 1)
        assert seq[-1] == Event("b", 2)

    def test_items_in_first_occurrence_order(self):
        seq = EventSequence([("b", 1), ("a", 2), ("b", 3)])
        assert seq.items() == ("b", "a")

    def test_equality_and_hash(self):
        left = EventSequence([("a", 1), ("b", 2)])
        right = EventSequence([("b", 2), ("a", 1)])
        assert left == right
        assert hash(left) == hash(right)

    def test_inequality_with_other_type(self):
        assert EventSequence() != 42

    def test_repr_mentions_span(self):
        seq = EventSequence([("a", 1), ("b", 9)])
        assert "span=[1, 9]" in repr(seq)


class TestPointSequences:
    def test_point_sequence_paper_example(self, running_example_events):
        # Example 1 of the paper.
        assert running_example_events.point_sequence("a") == (
            1, 2, 3, 4, 7, 11, 12, 14,
        )
        assert running_example_events.point_sequence("b") == (
            1, 3, 4, 7, 11, 12, 14,
        )

    def test_point_sequence_of_absent_item(self):
        assert EventSequence([("a", 1)]).point_sequence("z") == ()

    def test_duplicate_events_collapse(self):
        seq = EventSequence([("a", 1), ("a", 1), ("a", 2)])
        assert seq.point_sequence("a") == (1, 2)

    def test_point_sequences_all_items(self):
        seq = EventSequence([("a", 1), ("b", 1), ("a", 3)])
        assert seq.point_sequences() == {"a": (1, 3), "b": (1,)}

    def test_from_point_sequences_round_trip(self):
        points = {"a": (1, 3, 5), "b": (2, 3)}
        seq = EventSequence.from_point_sequences(points)
        assert seq.point_sequences() == {"a": (1, 3, 5), "b": (2, 3)}


class TestDerivedSequences:
    def test_restrict_items(self):
        seq = EventSequence([("a", 1), ("b", 2), ("c", 3)])
        restricted = seq.restrict_items({"a", "c"})
        assert [e.item for e in restricted] == ["a", "c"]

    def test_window_inclusive(self):
        seq = EventSequence([("a", 1), ("b", 2), ("c", 3), ("d", 4)])
        windowed = seq.window(2, 3)
        assert [e.item for e in windowed] == ["b", "c"]

    def test_window_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            EventSequence([("a", 1)]).window(3, 2)
