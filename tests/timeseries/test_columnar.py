"""The columnar view: CSR round-trip, caching, dtypes, overflow guards."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.datasets import paper_running_example
from repro.exceptions import ParameterError
from repro.timeseries import ColumnarTDB, TransactionalDatabase
from tests.conftest import small_databases

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestConstruction:
    def test_running_example_layout(self):
        column = paper_running_example().columnar()
        assert column.timestamps.dtype == np.int64
        assert column.timestamps.tolist() == sorted(
            column.timestamps.tolist()
        )
        assert column.items == tuple(sorted(column.items, key=repr))
        assert column.indptr[0] == 0
        assert column.indptr[-1] == column.indices.size
        assert column.n_transactions == len(paper_running_example())

    def test_rows_round_trip_item_timestamps(self):
        db = paper_running_example()
        column = db.columnar()
        index = db.item_timestamps()
        for position, item in enumerate(column.items):
            row = column.item_rows(position)
            # Strictly increasing ids that gather back the exact
            # point sequence of the item.
            assert (np.diff(row) > 0).all() or row.size <= 1
            assert column.timestamps[row].tolist() == list(index[item])

    @RELAXED
    @given(db=small_databases())
    def test_round_trip_on_random_databases(self, db):
        column = db.columnar()
        index = db.item_timestamps()
        assert set(column.items) == set(index)
        for position, item in enumerate(column.items):
            recovered = column.timestamps[column.item_rows(position)]
            assert recovered.tolist() == list(index[item])

    def test_empty_database(self):
        column = TransactionalDatabase([]).columnar()
        assert column.n_transactions == 0
        assert column.items == ()
        assert column.indices.size == 0
        assert column.indptr.tolist() == [0]


class TestCachingAndDtypes:
    def test_view_is_cached_on_the_database(self):
        db = paper_running_example()
        assert db.columnar() is db.columnar()

    def test_index_dtype_is_compact(self):
        # Any database this test suite can build fits int32 ids.
        column = paper_running_example().columnar()
        assert column.indices.dtype == np.int32

    def test_float_timestamps_select_float64(self):
        db = TransactionalDatabase([(0.5, "a"), (1.5, "ab")])
        column = db.columnar()
        assert column.timestamps.dtype == np.float64

    def test_unsafe_timestamps_raise_parameter_error(self):
        db = TransactionalDatabase([(2 ** 62, "a")])
        with pytest.raises(ParameterError, match="2\\*\\*62"):
            db.columnar()
