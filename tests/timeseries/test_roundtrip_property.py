"""Round-trip properties of the series/database/file pipeline.

Exercised over planted workloads at several seeds and shapes: the
series ↔ database transformation is lossless (Section 3 of the paper),
the text formats write byte-identically after a load, and — the part
the qa subsystem cares about — the mined pattern set is unchanged by
any number of round trips.
"""

import pytest

from repro.core.miner import mine_recurring_patterns
from repro.datasets import generate_planted_workload
from repro.patterns_io import load_patterns, save_patterns
from repro.qa.differential import canonical
from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.io import (
    load_event_sequence,
    load_transactional_database,
    save_event_sequence,
    save_transactional_database,
)

WORKLOADS = [
    dict(seed=0),
    dict(seed=7),
    dict(seed=42),
    dict(seed=3, n_patterns=2, pattern_size=3),
    dict(seed=11, noise_rate=0.0),
]


@pytest.fixture(params=WORKLOADS, ids=lambda kw: f"planted{sorted(kw.items())}")
def workload(request):
    return generate_planted_workload(**request.param)


def _mine(workload, database):
    return canonical(
        mine_recurring_patterns(
            database, workload.per, workload.min_ps, workload.min_rec
        )
    )


def test_series_database_round_trip_is_lossless(workload):
    database = workload.database
    events = database.to_events()
    rebuilt = TransactionalDatabase.from_events(events)
    assert rebuilt == database
    # And a second lap through the event form changes nothing more.
    assert rebuilt.to_events() == events


def test_database_file_round_trip_is_byte_identical(workload, tmp_path):
    first = tmp_path / "first.tsv"
    second = tmp_path / "second.tsv"
    save_transactional_database(workload.database, first)
    loaded = load_transactional_database(first)
    assert loaded == workload.database
    save_transactional_database(loaded, second)
    assert first.read_bytes() == second.read_bytes()


def test_event_file_round_trip_is_byte_identical(workload, tmp_path):
    first = tmp_path / "first.tsv"
    second = tmp_path / "second.tsv"
    events = workload.database.to_events()
    save_event_sequence(events, first)
    loaded = load_event_sequence(first)
    assert TransactionalDatabase.from_events(loaded) == workload.database
    save_event_sequence(loaded, second)
    assert first.read_bytes() == second.read_bytes()


def test_mined_patterns_survive_every_round_trip(workload, tmp_path):
    baseline = _mine(workload, workload.database)
    assert baseline, "planted workloads must contain recurring patterns"

    via_events = TransactionalDatabase.from_events(
        workload.database.to_events()
    )
    assert _mine(workload, via_events) == baseline

    path = tmp_path / "db.tsv"
    save_transactional_database(workload.database, path)
    assert _mine(workload, load_transactional_database(path)) == baseline


def test_pattern_set_file_round_trip(workload, tmp_path):
    found = mine_recurring_patterns(
        workload.database, workload.per, workload.min_ps, workload.min_rec
    )
    first = tmp_path / "patterns-1.tsv"
    second = tmp_path / "patterns-2.tsv"
    save_patterns(found, first)
    loaded = load_patterns(first)
    assert loaded == found
    save_patterns(loaded, second)
    assert first.read_bytes() == second.read_bytes()
