"""Unit tests for the transactional database (Section 3)."""

import pytest

from repro.exceptions import DataFormatError, EmptyDatabaseError
from repro.timeseries.database import Transaction, TransactionalDatabase
from repro.timeseries.events import EventSequence


class TestConstruction:
    def test_empty(self):
        db = TransactionalDatabase()
        assert len(db) == 0
        assert db.items() == frozenset()

    def test_orders_by_timestamp(self):
        db = TransactionalDatabase([(5, "a"), (1, "b"), (3, "c")])
        assert [ts for ts, _ in db] == [1, 3, 5]

    def test_merges_duplicate_timestamps(self):
        db = TransactionalDatabase([(1, "ab"), (1, "bc")])
        assert len(db) == 1
        assert db[0].items == frozenset("abc")

    def test_drops_empty_itemsets(self):
        db = TransactionalDatabase([(1, "a"), (2, ""), (3, [])])
        assert len(db) == 1

    def test_rejects_bad_timestamp(self):
        with pytest.raises(DataFormatError):
            TransactionalDatabase([("x", "a")])

    def test_rejects_nan_timestamp(self):
        with pytest.raises(DataFormatError):
            TransactionalDatabase([(float("nan"), "a")])

    def test_rejects_malformed_row(self):
        with pytest.raises(DataFormatError):
            TransactionalDatabase([(1, "a", "extra")])

    def test_paper_table1_shape(self, running_example):
        # Table 1: 12 transactions, 7 items, timestamps 8/13 missing.
        assert len(running_example) == 12
        assert running_example.items() == frozenset("abcdefg")
        assert [ts for ts, _ in running_example] == [
            1, 2, 3, 4, 5, 6, 7, 9, 10, 11, 12, 14,
        ]


class TestAccessors:
    def test_start_end_span(self):
        db = TransactionalDatabase([(2, "a"), (9, "b")])
        assert (db.start, db.end, db.span) == (2, 9, 7)

    def test_empty_start_raises(self):
        with pytest.raises(EmptyDatabaseError):
            TransactionalDatabase().start

    def test_transactions_are_named_tuples(self):
        db = TransactionalDatabase([(1, "a")])
        assert isinstance(db[0], Transaction)
        assert db[0].ts == 1

    def test_equality(self):
        left = TransactionalDatabase([(1, "ab")])
        right = TransactionalDatabase([(1, "ba")])
        assert left == right

    def test_repr(self):
        assert "empty" in repr(TransactionalDatabase())
        assert "2 transactions" in repr(
            TransactionalDatabase([(1, "a"), (2, "b")])
        )


class TestPointSequences:
    def test_item_timestamps(self, running_example):
        index = running_example.item_timestamps()
        assert index["a"] == (1, 2, 3, 4, 7, 11, 12, 14)
        assert index["g"] == (1, 5, 6, 7, 12, 14)

    def test_timestamps_of_pattern(self, running_example):
        # Example 2 of the paper: TS^ab.
        assert running_example.timestamps_of("ab") == (1, 3, 4, 7, 11, 12, 14)

    def test_timestamps_of_absent_item(self, running_example):
        assert running_example.timestamps_of("az") == ()

    def test_timestamps_of_empty_pattern_raises(self, running_example):
        with pytest.raises(ValueError):
            running_example.timestamps_of("")

    def test_support(self, running_example):
        # Example 3 of the paper: Sup(ab) = 7.
        assert running_example.support("ab") == 7
        assert running_example.support("a") == 8

    def test_support_of_disjoint_pattern(self, running_example):
        assert running_example.support(["a", "nonexistent"]) == 0


class TestDerivedDatabases:
    def test_restrict_items(self, running_example):
        restricted = running_example.restrict_items("ab")
        assert restricted.items() == frozenset("ab")
        # Transactions without a or b disappear (ts 5, 6, 9, 10).
        assert len(restricted) == 8

    def test_window(self, running_example):
        windowed = running_example.window(5, 10)
        assert [ts for ts, _ in windowed] == [5, 6, 7, 9, 10]

    def test_window_rejects_inverted_bounds(self, running_example):
        with pytest.raises(ValueError):
            running_example.window(10, 5)


class TestConversions:
    def test_from_events_matches_paper(self, running_example_events, running_example):
        assert TransactionalDatabase.from_events(running_example_events) == (
            running_example
        )

    def test_round_trip_via_events(self, running_example):
        events = running_example.to_events()
        assert TransactionalDatabase.from_events(events) == running_example

    def test_to_events_deterministic_order(self):
        db = TransactionalDatabase([(1, "ba")])
        events = db.to_events()
        assert [e.item for e in events] == ["a", "b"]

    def test_point_sequence_preserved(self, running_example_events):
        # The key losslessness claim of Section 3: TS^X in the database
        # equals the point sequence in the raw series.
        db = TransactionalDatabase.from_events(running_example_events)
        for item in "abcdefg":
            assert db.item_timestamps()[item] == (
                running_example_events.point_sequence(item)
            )
