"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random
from typing import List, Tuple

import pytest
from hypothesis import strategies as st

from repro.datasets import (
    generate_planted_workload,
    paper_running_example,
    paper_running_example_events,
)
from repro.timeseries.database import TransactionalDatabase


def pytest_addoption(parser):
    """``--update-golden``: rewrite the qa golden snapshots.

    Declared here (the root conftest) so the option exists no matter
    which test subdirectory is run; only ``tests/qa/test_golden.py``
    consumes it.  See docs/testing.md for the refresh workflow.
    """
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the qa golden snapshots instead of checking them",
    )


@pytest.fixture
def running_example() -> TransactionalDatabase:
    """The paper's Table 1 database."""
    return paper_running_example()


@pytest.fixture
def running_example_events():
    """The paper's Figure 1 event sequence."""
    return paper_running_example_events()


@pytest.fixture
def planted_workload():
    """A planted-pattern workload with known ground truth."""
    return generate_planted_workload(seed=42)


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------
ITEM_ALPHABET = "abcdef"


@st.composite
def small_databases(
    draw,
    max_items: int = 6,
    max_transactions: int = 30,
    max_timestamp: int = 60,
) -> TransactionalDatabase:
    """Random small transactional databases for cross-engine checks.

    Timestamps are distinct integers; each transaction is a non-empty
    random subset of a small item alphabet.
    """
    n_items = draw(st.integers(min_value=1, max_value=max_items))
    alphabet = ITEM_ALPHABET[:n_items]
    n_transactions = draw(st.integers(min_value=0, max_value=max_transactions))
    timestamps = draw(
        st.lists(
            st.integers(min_value=0, max_value=max_timestamp),
            min_size=n_transactions,
            max_size=n_transactions,
            unique=True,
        )
    )
    rows: List[Tuple[int, str]] = []
    for ts in timestamps:
        itemset = draw(
            st.sets(
                st.sampled_from(alphabet),
                min_size=1,
                max_size=n_items,
            )
        )
        rows.append((ts, "".join(itemset)))
    return TransactionalDatabase(rows)


@st.composite
def mining_parameters(draw) -> Tuple[int, int, int]:
    """Random (per, min_ps, min_rec) triples in a useful small range."""
    per = draw(st.integers(min_value=1, max_value=8))
    min_ps = draw(st.integers(min_value=1, max_value=5))
    min_rec = draw(st.integers(min_value=1, max_value=4))
    return per, min_ps, min_rec


@st.composite
def point_sequences(draw, max_size: int = 40) -> List[int]:
    """Strictly increasing integer timestamp lists."""
    return sorted(
        draw(
            st.sets(
                st.integers(min_value=0, max_value=200),
                min_size=0,
                max_size=max_size,
            )
        )
    )
