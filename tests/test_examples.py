"""Smoke tests for the example scripts.

The examples are real programs, not snippets — some generate
multi-month synthetic streams and take minutes.  They are therefore
opt-in: set ``REPRO_RUN_EXAMPLES=1`` to execute every script end to
end (each asserts its own headline result internally, so completing
without an exception IS the test).  A cheap structural check always
runs: every example must parse, have a module docstring and define a
``main`` guarded by ``__main__``.
"""

import ast
import os
import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

RUN_FULL = os.environ.get("REPRO_RUN_EXAMPLES") == "1"


def _example_ids():
    return [path.stem for path in EXAMPLES]


class TestStructure:
    def test_expected_examples_present(self):
        names = {path.stem for path in EXAMPLES}
        assert {
            "quickstart",
            "retail_seasonality",
            "twitter_bursts",
            "network_monitoring",
            "streaming_monitor",
            "seasonal_recommender",
            "stock_rallies",
        } <= names

    @pytest.mark.parametrize("path", EXAMPLES, ids=_example_ids())
    def test_parses_with_docstring_and_main(self, path):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        assert ast.get_docstring(tree), f"{path.name} has no docstring"
        names = {
            node.name
            for node in tree.body
            if isinstance(node, ast.FunctionDef)
        }
        assert "main" in names, f"{path.name} defines no main()"
        has_guard = any(
            isinstance(node, ast.If)
            and isinstance(node.test, ast.Compare)
            and getattr(node.test.left, "id", None) == "__name__"
            for node in tree.body
        )
        assert has_guard, f"{path.name} lacks the __main__ guard"


class TestQuickstartAlwaysRuns:
    def test_quickstart(self, capsys):
        # The quickstart is fast enough for the regular suite.
        runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
        out = capsys.readouterr().out
        assert "paper Table 2" in out
        assert "'cd' recurring?  True" in out


@pytest.mark.skipif(
    not RUN_FULL, reason="full example runs are opt-in: REPRO_RUN_EXAMPLES=1"
)
class TestFullRuns:
    @pytest.mark.parametrize("path", EXAMPLES, ids=_example_ids())
    def test_example_completes(self, path, capsys):
        runpy.run_path(str(path), run_name="__main__")
        assert capsys.readouterr().out.strip()
