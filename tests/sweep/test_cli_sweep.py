"""End-to-end tests for the ``repro-mine sweep`` subcommand."""

import pytest

from repro.cli import main
from repro.datasets import paper_running_example
from repro.obs import read_trace, validate_sweep_record
from repro.timeseries.io import save_transactional_database


@pytest.fixture
def example_file(tmp_path):
    path = tmp_path / "example.tsv"
    save_transactional_database(paper_running_example(), path)
    return str(path)


class TestSweepCommand:
    def test_sweep_prints_grid_and_reuse(self, example_file, capsys):
        code = main([
            "sweep", "--input", example_file,
            "--pers", "1", "2", "--min-ps", "3", "--min-recs", "1", "2",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "sweep (rp-growth)" in captured.out
        assert "derived" in captured.out
        assert "mined" in captured.out
        assert "derived by the min_rec theorem" in captured.err

    def test_sweep_writes_valid_trace(self, example_file, tmp_path, capsys):
        trace = str(tmp_path / "sweep.jsonl")
        code = main([
            "sweep", "--input", example_file,
            "--pers", "2", "--min-ps", "3", "--min-recs", "1", "2",
            "--trace-out", trace,
        ])
        assert code == 0
        records = [
            r for r in read_trace(trace)
            if r.get("schema") == "repro-sweep/v1"
        ]
        assert len(records) == 1
        validate_sweep_record(records[0])
        assert records[0]["counters"]["cells_derived"] == 1

    def test_sweep_no_derive_mines_everything(self, example_file, capsys):
        code = main([
            "sweep", "--input", example_file,
            "--pers", "2", "--min-ps", "3", "--min-recs", "1", "2",
            "--no-derive",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "2 mined, 0 derived" in captured.err

    def test_sweep_profile_prints_phases(self, example_file, capsys):
        code = main([
            "sweep", "--input", example_file,
            "--pers", "2", "--min-ps", "3", "--min-recs", "1",
            "--profile",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "phase totals" in captured.err
        assert "transform" in captured.err

    def test_sweep_generated_dataset(self, capsys):
        code = main([
            "sweep", "--dataset", "quest", "--scale", "0.01",
            "--pers", "360", "--min-ps", "0.01", "--min-recs", "1",
        ])
        assert code == 0
        assert "quest: sweep" in capsys.readouterr().out

    def test_input_and_dataset_are_exclusive(self, example_file, capsys):
        code = main([
            "sweep", "--input", example_file, "--dataset", "quest",
            "--pers", "2", "--min-ps", "3",
        ])
        assert code == 2
        assert "exactly one" in capsys.readouterr().err

    def test_neither_input_nor_dataset(self, capsys):
        code = main(["sweep", "--pers", "2", "--min-ps", "3"])
        assert code == 2

    def test_duplicate_axis_reports_error(self, example_file, capsys):
        code = main([
            "sweep", "--input", example_file,
            "--pers", "2", "2", "--min-ps", "3",
        ])
        assert code == 1
        assert "duplicates" in capsys.readouterr().err
