"""Tests for the shared-scan threshold-sweep engine."""
