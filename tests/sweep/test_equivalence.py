"""Sweep/façade equivalence across the full engine × jobs matrix.

The sweep engine's whole contract is "same answers, less work": for
every grid cell, its pattern set must be byte-identical (canonical
view, which covers items, support, recurrence and every interval) to
what an independent ``mine_recurring_patterns`` call produces — for
every registered engine, serial and parallel, with and without the
min_rec derivation layer.
"""

import pytest

from repro.core.miner import mine_recurring_patterns
from repro.datasets import paper_running_example
from repro.qa.differential import canonical
from repro.qa.relations import engine_matrix
from repro.sweep import SweepPlan, run_sweep

PERS = (1, 2)
MIN_PS_VALUES = (1, 3)
MIN_RECS = (1, 2)

MATRIX = engine_matrix(jobs_values=(1, 2))


@pytest.mark.parametrize(
    "engine,jobs", MATRIX, ids=[f"{e}-jobs{j}" for e, j in MATRIX]
)
def test_sweep_matches_facade_everywhere(engine, jobs):
    database = paper_running_example()
    plan = SweepPlan(
        pers=PERS,
        min_ps_values=MIN_PS_VALUES,
        min_recs=MIN_RECS,
        engine=engine,
        jobs=jobs,
    )
    result = run_sweep(database, plan)
    assert result.cells_total == plan.cell_count
    # The derivation layer must actually engage on a min_rec-varying
    # grid — otherwise this test silently stops covering it.
    assert result.cells_derived > 0
    assert result.cells_mined + result.cells_derived == plan.cell_count
    for per, min_ps, min_rec in plan.cells():
        independent = mine_recurring_patterns(
            database, per, min_ps, min_rec, engine=engine, jobs=jobs
        )
        assert canonical(result.pattern_set(per, min_ps, min_rec)) == (
            canonical(independent)
        ), (engine, jobs, per, min_ps, min_rec)


@pytest.mark.parametrize("engine", sorted({e for e, _ in MATRIX}))
def test_no_derive_sweep_is_also_identical(engine):
    database = paper_running_example()
    plan = SweepPlan(
        pers=(2,),
        min_ps_values=(3,),
        min_recs=(1, 2),
        engine=engine,
        derive_min_rec=False,
    )
    result = run_sweep(database, plan)
    assert result.cells_derived == 0
    assert result.cells_mined == plan.cell_count
    for per, min_ps, min_rec in plan.cells():
        independent = mine_recurring_patterns(
            database, per, min_ps, min_rec, engine=engine
        )
        assert canonical(result.pattern_set(per, min_ps, min_rec)) == (
            canonical(independent)
        )


def test_derived_and_mined_cells_agree_with_each_other():
    """The same grid with and without derivation is cell-for-cell equal."""
    database = paper_running_example()
    axes = dict(pers=(1, 2), min_ps_values=(2, 3), min_recs=(1, 2, 3))
    derived = run_sweep(database, SweepPlan(**axes))
    mined = run_sweep(database, SweepPlan(derive_min_rec=False, **axes))
    for key in derived.plan.cells():
        assert canonical(derived.patterns[key]) == canonical(
            mined.patterns[key]
        ), key


def test_reuse_counters_add_up():
    database = paper_running_example()
    plan = SweepPlan(
        pers=(1, 2), min_ps_values=(2, 3), min_recs=(1, 2, 3)
    )
    result = run_sweep(database, plan)
    # One mine per (per, min_ps) column, the rest derived.
    assert result.cells_mined == len(plan.pers) * len(plan.min_ps_values)
    assert result.cells_derived == plan.cell_count - result.cells_mined
    assert result.scans_shared == result.cells_mined - 1
    # Every derived cell names a base cell at the loosest min_rec of
    # its own column.
    loosest = min(plan.min_recs)
    for key, base in result.derived_from.items():
        if base is None:
            continue
        assert base == (key[0], key[1], loosest)


def test_event_sequence_input_is_transformed_once():
    """run_sweep accepts raw events and still matches the façade."""
    from repro.datasets import paper_running_example_events

    events = paper_running_example_events()
    result = run_sweep(
        events, SweepPlan(pers=(2,), min_ps_values=(3,), min_recs=(2,))
    )
    assert result.transform_seconds > 0
    independent = mine_recurring_patterns(
        paper_running_example_events(), per=2, min_ps=3, min_rec=2
    )
    assert canonical(result.pattern_set(2, 3, 2)) == canonical(independent)
