"""SweepPlan validation and repro-sweep/v1 telemetry round-trips."""

import json

import pytest

from repro.exceptions import ParameterError
from repro.obs import read_trace, validate_sweep_record
from repro.core.options import ObservabilityOptions, ResilienceOptions
from repro.datasets import paper_running_example
from repro.sweep import SweepPlan, run_sweep


class TestPlanValidation:
    def test_grid_order_is_deterministic(self):
        plan = SweepPlan(
            pers=(2, 1), min_ps_values=(3,), min_recs=(2, 1)
        )
        assert plan.cells() == [
            (2, 3, 2), (2, 3, 1), (1, 3, 2), (1, 3, 1)
        ]
        assert plan.cell_count == 4

    @pytest.mark.parametrize(
        "axes",
        [
            dict(pers=(), min_ps_values=(3,), min_recs=(1,)),
            dict(pers=(2,), min_ps_values=(), min_recs=(1,)),
            dict(pers=(2,), min_ps_values=(3,), min_recs=()),
        ],
    )
    def test_empty_axis_rejected(self, axes):
        with pytest.raises(ParameterError, match="must not be empty"):
            SweepPlan(**axes)

    def test_duplicate_axis_rejected(self):
        with pytest.raises(ParameterError, match="contains duplicates"):
            SweepPlan(pers=(2, 2), min_ps_values=(3,), min_recs=(1,))

    def test_bad_cell_thresholds_fail_eagerly(self):
        with pytest.raises(ParameterError):
            SweepPlan(pers=(2,), min_ps_values=(3,), min_recs=(0,))

    def test_unknown_engine_rejected(self):
        with pytest.raises(ParameterError, match="unknown engine 'bogus'"):
            SweepPlan(
                pers=(2,), min_ps_values=(3,), min_recs=(1,),
                engine="bogus",
            )

    def test_naive_rejects_parallel_jobs(self):
        with pytest.raises(
            ParameterError, match="'naive' does not support jobs > 1"
        ):
            SweepPlan(
                pers=(2,), min_ps_values=(3,), min_recs=(1,),
                engine="naive", jobs=2,
            )

    def test_bad_jobs_and_repeats_rejected(self):
        with pytest.raises(ParameterError, match="jobs must be"):
            SweepPlan(
                pers=(2,), min_ps_values=(3,), min_recs=(1,), jobs=0
            )
        with pytest.raises(ParameterError, match="repeats must be"):
            SweepPlan(
                pers=(2,), min_ps_values=(3,), min_recs=(1,), repeats=0
            )

    def test_resilience_must_be_options_object(self):
        with pytest.raises(ParameterError, match="ResilienceOptions"):
            SweepPlan(
                pers=(2,), min_ps_values=(3,), min_recs=(1,),
                resilience={"timeout": 1.0},
            )

    def test_plan_accepts_resilience_options(self):
        plan = SweepPlan(
            pers=(2,), min_ps_values=(3,), min_recs=(1,),
            resilience=ResilienceOptions(timeout=5.0, max_retries=1),
        )
        assert plan.resilience.timeout == 5.0


class TestSweepRecord:
    def test_record_round_trips_through_trace_writer(self, tmp_path):
        trace = tmp_path / "sweep.jsonl"
        result = run_sweep(
            paper_running_example(),
            SweepPlan(pers=(1, 2), min_ps_values=(3,), min_recs=(1, 2)),
            dataset="toy",
            observability=ObservabilityOptions(trace=str(trace)),
        )
        records = read_trace(str(trace))
        sweep_records = [
            r for r in records if r.get("schema") == "repro-sweep/v1"
        ]
        assert len(sweep_records) == 1
        record = sweep_records[0]
        validate_sweep_record(record)
        assert record == result.as_record()
        assert record["dataset"] == "toy"
        assert record["counters"]["cells_total"] == 4
        assert record["counters"]["cells_derived"] == 2
        # JSON round-trip exactly (the file is line-oriented JSON).
        assert json.loads(json.dumps(record)) == record

    def test_derived_cells_carry_their_base(self):
        result = run_sweep(
            paper_running_example(),
            SweepPlan(pers=(2,), min_ps_values=(3,), min_recs=(1, 2)),
        )
        record = result.as_record()
        derived = [c for c in record["cells"] if c["derived"]]
        assert len(derived) == 1
        assert derived[0]["derived_from"] == {
            "per": 2, "min_ps": 3, "min_rec": 1,
        }
        assert derived[0]["params"]["min_rec"] == 2

    def test_validator_rejects_tampered_records(self):
        result = run_sweep(
            paper_running_example(),
            SweepPlan(pers=(2,), min_ps_values=(3,), min_recs=(1,)),
        )
        record = result.as_record()
        validate_sweep_record(record)
        broken = dict(record, schema="bogus")
        with pytest.raises(ValueError, match="repro-sweep/v1"):
            validate_sweep_record(broken)
        short = dict(record, cells=[])
        with pytest.raises(ValueError, match="cells"):
            validate_sweep_record(short)

    def test_summary_line_reports_reuse(self):
        result = run_sweep(
            paper_running_example(),
            SweepPlan(pers=(2,), min_ps_values=(3,), min_recs=(1, 2)),
        )
        line = result.summary_line()
        assert "1 mined" in line and "1 derived" in line

    def test_repeats_keep_one_result_per_cell(self):
        result = run_sweep(
            paper_running_example(),
            SweepPlan(
                pers=(2,), min_ps_values=(3,), min_recs=(2,),
                derive_min_rec=False, repeats=3,
            ),
        )
        assert result.cells_total == 1
        assert result.seconds_by_cell[(2, 3, 2)] > 0
