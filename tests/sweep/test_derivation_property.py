"""Property test of the min_rec derivation theorem against the oracle.

The theorem (Definition 9; restated in :mod:`repro.sweep.engine`): for
fixed ``(per, minPS)`` the recurring patterns at a tighter ``minRec′``
are exactly the loosest-``minRec`` result filtered by
``Rec(X) ≥ minRec′``, with identical metadata.  The sweep engine bets
its correctness on this, so it is checked here the strongest way we
can: on seeded random databases, every derived cell is compared —
canonical view, metadata included — against the naive exhaustive miner
evaluating Definition 9 from scratch at that exact ``minRec``.
"""

import random

import pytest

from repro.core.naive import mine_recurring_patterns_naive
from repro.qa.differential import (
    BASE_SEED,
    canonical,
    random_params,
    random_rows,
)
from repro.sweep import SweepPlan, run_sweep
from repro.timeseries.database import TransactionalDatabase

N_CASES = 25


@pytest.mark.parametrize("case", range(N_CASES))
def test_derived_cells_match_naive_oracle(case):
    rng = random.Random(BASE_SEED + case)
    rows = random_rows(rng)
    database = TransactionalDatabase(rows)
    if len(database) == 0:
        pytest.skip("empty database: nothing to mine")
    per, min_ps, min_rec = random_params(rng)
    # A min_rec ladder starting at the drawn value: the first rung is
    # mined, every later rung is derived from it.
    min_recs = (min_rec, min_rec + 1, min_rec + 3)
    result = run_sweep(
        database,
        SweepPlan(pers=(per,), min_ps_values=(min_ps,), min_recs=min_recs),
    )
    assert result.cells_mined == 1
    assert result.cells_derived == len(min_recs) - 1
    for rung in min_recs:
        oracle = canonical(
            mine_recurring_patterns_naive(database, per, min_ps, rung)
        )
        got = canonical(result.pattern_set(per, min_ps, rung))
        assert got == oracle, (
            f"seed {BASE_SEED + case}: derivation disagrees with the "
            f"oracle at per={per} min_ps={min_ps} min_rec={rung}"
        )


def test_filter_is_the_whole_theorem():
    """Filtering the loose cell IS the tight cell — stated directly."""
    rng = random.Random(BASE_SEED)
    database = TransactionalDatabase(random_rows(rng))
    result = run_sweep(
        database, SweepPlan(pers=(3,), min_ps_values=(2,), min_recs=(1, 2))
    )
    loose = result.pattern_set(3, 2, 1)
    tight = result.pattern_set(3, 2, 2)
    assert canonical(tight) == canonical(
        loose.filter(min_recurrence=2)
    )
    # And the filter never invents or mutates metadata.
    loose_by_items = {
        entry[0]: entry for entry in canonical(loose)
    }
    for entry in canonical(tight):
        assert loose_by_items[entry[0]] == entry
