"""Markdown reports of mining runs.

``repro-mine mine --report out.md`` (and the
:func:`write_mining_report` API) produce a self-contained, diffable
record of a mining run: the input's shape, the thresholds, engine
statistics, the discovered patterns with their temporal metadata, a
timeline rendering, and the co-seasonal grouping — the artefact an
analyst files next to the data.
"""

from __future__ import annotations

import io
from typing import IO, Optional, Union

from repro.analysis import co_seasonal_groups, seasonality_score
from repro.core.model import RecurringPatternSet
from repro.core.rp_growth import MiningStats
from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.stats import describe_database
from repro.viz import render_timeline

__all__ = ["render_mining_report", "write_mining_report"]


def render_mining_report(
    database: TransactionalDatabase,
    patterns: RecurringPatternSet,
    per: float,
    min_ps: Union[int, float],
    min_rec: int,
    engine: str = "rp-growth",
    stats: Optional[MiningStats] = None,
    max_patterns: int = 50,
    timeline_width: int = 60,
) -> str:
    """Render a mining run as a markdown document.

    Examples
    --------
    >>> from repro.datasets import paper_running_example
    >>> from repro import mine_recurring_patterns
    >>> db = paper_running_example()
    >>> found = mine_recurring_patterns(db, 2, 3, 2)
    >>> report = render_mining_report(db, found, 2, 3, 2)
    >>> "## Patterns" in report
    True
    """
    out = io.StringIO()
    write = out.write

    write("# Recurring-pattern mining report\n\n")
    write("## Input\n\n")
    if len(database):
        shape = describe_database(database)
        write("| statistic | value |\n|---|---|\n")
        for key, value in shape.as_rows():
            write(f"| {key} | {value} |\n")
    else:
        write("*(empty database)*\n")
    write("\n## Parameters\n\n")
    write(f"- `per` = {per:g}\n")
    write(f"- `minPS` = {min_ps}\n")
    write(f"- `minRec` = {min_rec}\n")
    write(f"- engine: `{engine}`\n")

    if stats is not None:
        write("\n## Mining statistics\n\n")
        write("| counter | value |\n|---|---|\n")
        write(f"| candidate items | {stats.candidate_items} |\n")
        write(f"| items pruned by Erec | {stats.pruned_items} |\n")
        write(f"| Erec evaluations | {stats.erec_evaluations} |\n")
        write(f"| candidate patterns expanded | {stats.candidate_patterns} |\n")
        write(f"| patterns found | {stats.patterns_found} |\n")

    write(f"\n## Patterns\n\n{len(patterns)} recurring patterns")
    shown = list(patterns)[:max_patterns]
    if len(shown) < len(patterns):
        write(f" (showing the first {len(shown)})")
    write(".\n\n")
    if shown:
        write(
            "| pattern | support | recurrence | seasonality "
            "| interesting periodic-intervals |\n|---|---|---|---|---|\n"
        )
        for pattern in shown:
            items = " ".join(str(i) for i in pattern.sorted_items())
            intervals = ", ".join(str(iv) for iv in pattern.intervals)
            score = seasonality_score(pattern, database)
            write(
                f"| {items} | {pattern.support} | {pattern.recurrence} "
                f"| {score:.2f} | {intervals} |\n"
            )

        if len(database):
            write("\n### Timeline\n\n```\n")
            write(
                render_timeline(
                    shown, database.start, database.end, width=timeline_width
                )
            )
            write("\n```\n")

        groups = co_seasonal_groups(shown, min_overlap=0.5)
        if any(len(group) > 1 for group in groups):
            write("\n### Co-seasonal groups\n\n")
            for group in groups:
                if len(group) > 1:
                    names = ", ".join(
                        " ".join(str(i) for i in p.sorted_items())
                        for p in group
                    )
                    write(f"- {names}\n")
    return out.getvalue()


def write_mining_report(
    target: Union[str, IO[str]],
    database: TransactionalDatabase,
    patterns: RecurringPatternSet,
    per: float,
    min_ps: Union[int, float],
    min_rec: int,
    engine: str = "rp-growth",
    stats: Optional[MiningStats] = None,
) -> None:
    """Write :func:`render_mining_report` output to a path or handle."""
    text = render_mining_report(
        database, patterns, per, min_ps, min_rec, engine=engine, stats=stats
    )
    if hasattr(target, "write"):
        target.write(text)  # type: ignore[union-attr]
    else:
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(text)
