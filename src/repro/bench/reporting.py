"""Fixed-width ASCII renderers for experiment tables and figure series.

The paper's evaluation artefacts are tables (5, 7, 8) and line plots
(Figures 7, 9).  These helpers print both shapes deterministically so
benchmark output can be diffed between runs and pasted into
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple, Union

__all__ = ["format_table", "format_series"]

Cell = Union[str, int, float]


def _render(cell: Cell) -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: str = "",
) -> str:
    """Render a fixed-width table with a header rule.

    Examples
    --------
    >>> print(format_table(["x", "y"], [[1, 2], [30, 4]]))
     x | y
    ---+--
     1 | 2
    30 | 4
    """
    rendered: List[List[str]] = [[_render(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        " | ".join(h.rjust(w) for h, w in zip(headers, widths))
    )
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(
            " | ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[Cell],
    series: Dict[str, Sequence[Cell]],
    title: str = "",
) -> str:
    """Render named series against shared x values (a textual Figure).

    Examples
    --------
    >>> print(format_series("minPS", [2, 5], {"per=360": [10, 3]}))
    minPS | per=360
    ------+--------
        2 |      10
        5 |       3
    """
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} points, "
                f"expected {len(x_values)}"
            )
    headers = [x_label, *series]
    rows = [
        [x, *(series[name][index] for name in series)]
        for index, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title)
