"""Experiment harness for reproducing the paper's evaluation section.

* :mod:`repro.bench.workloads` — the three evaluation databases
  (Quest/T10I4, Shop-14-like, Twitter-like) at configurable scale,
  cached per configuration;
* :mod:`repro.bench.harness` — parameter-grid sweeps producing the
  rows of Tables 5, 7 and 8 and the series of Figures 7 and 9;
* :mod:`repro.bench.reporting` — fixed-width ASCII tables and series
  renderers used by the benchmark scripts and the CLI.
"""

from repro.bench.harness import (
    ComparisonResult,
    GridResult,
    compare_models,
    sweep_pattern_counts,
    sweep_runtime,
)
from repro.bench.reporting import format_series, format_table
from repro.bench.workloads import (
    clickstream_workload,
    quest_workload,
    twitter_workload,
)

__all__ = [
    "GridResult",
    "ComparisonResult",
    "sweep_pattern_counts",
    "sweep_runtime",
    "compare_models",
    "format_table",
    "format_series",
    "quest_workload",
    "clickstream_workload",
    "twitter_workload",
]
