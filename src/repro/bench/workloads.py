"""The three evaluation workloads at configurable scale.

The paper's databases (Section 5.1):

=============  ===============  ======  =====================
database       transactions     items   nature
=============  ===============  ======  =====================
T10I4D100K     100 000          941     Quest synthetic
Shop-14        59 240 (41 d)    138     minute clickstream
Twitter        177 120 (123 d)  1 000   minute hashtag stream
=============  ===============  ======  =====================

``scale`` linearly shrinks the time dimension (transactions or days);
``scale=1.0`` is paper scale.  The benchmark defaults use a reduced
scale so a pure-Python sweep finishes in seconds; EXPERIMENTS.md records
which scale each recorded run used.  Databases are cached per
configuration, so a parameter sweep pays generation cost once.
"""

from __future__ import annotations

from functools import lru_cache

from repro._validation import check_positive
from repro.datasets.clickstream import ClickstreamConfig, generate_clickstream
from repro.datasets.quest import QuestConfig, generate_quest
from repro.datasets.twitter import TwitterConfig, generate_twitter
from repro.timeseries.database import TransactionalDatabase

__all__ = [
    "WORKLOADS",
    "quest_workload",
    "clickstream_workload",
    "twitter_workload",
]

#: Default scale for benchmarks: ~10% of the paper's sizes.
DEFAULT_SCALE = 0.1

PAPER_QUEST_TRANSACTIONS = 100_000
PAPER_SHOP14_DAYS = 41
PAPER_TWITTER_DAYS = 123


@lru_cache(maxsize=8)
def quest_workload(
    scale: float = DEFAULT_SCALE, seed: int = 0
) -> TransactionalDatabase:
    """The T10I4D100K stand-in at the given scale."""
    check_positive(scale, "scale")
    return generate_quest(
        QuestConfig(
            n_transactions=max(100, round(PAPER_QUEST_TRANSACTIONS * scale)),
            seed=seed,
        )
    )


@lru_cache(maxsize=8)
def clickstream_workload(
    scale: float = DEFAULT_SCALE, seed: int = 0
) -> TransactionalDatabase:
    """The Shop-14 stand-in at the given scale.

    Promotion windows are positioned proportionally by the generator
    config; at very small scales (< ~0.2) the built-in windows are
    clipped, so the config swaps in two short early windows to keep the
    seasonal structure present.
    """
    check_positive(scale, "scale")
    days = max(2, round(PAPER_SHOP14_DAYS * scale))
    if days >= 37:
        config = ClickstreamConfig(days=days, seed=seed)
    else:
        third = max(1, days // 3)
        second_start = min(days - 1, 2 * third)
        windows = ((0, third - 1), (second_start, days - 1))
        config = ClickstreamConfig(
            days=days,
            promo_windows=((120, windows), (125, windows)),
            seed=seed,
        )
    return generate_clickstream(config)


@lru_cache(maxsize=8)
def twitter_workload(
    scale: float = DEFAULT_SCALE, seed: int = 0
) -> TransactionalDatabase:
    """The Twitter stand-in at the given scale.

    Below paper scale the default burst windows are re-anchored
    proportionally so every Table 6 burst survives truncation.
    """
    check_positive(scale, "scale")
    days = max(4, round(PAPER_TWITTER_DAYS * scale))
    if days >= 75:
        config = TwitterConfig(days=days, seed=seed)
    else:
        factor = days / PAPER_TWITTER_DAYS
        bursts = tuple(
            type(burst)(
                tags=burst.tags,
                windows=tuple(
                    (
                        min(days - 2, max(0, round(first * factor))),
                        min(
                            days - 1,
                            max(0, round(first * factor))
                            + max(1, round((last - first) * factor)),
                        ),
                    )
                    for first, last in burst.windows
                ),
                mean_gap=burst.mean_gap,
            )
            for burst in TwitterConfig.bursts
        )
        config = TwitterConfig(
            days=days,
            bursts=bursts,
            # Trending episodes shrink with the stream so a scaled run
            # keeps the paper-scale recurrence structure.
            mean_episode_days=max(2.0, TwitterConfig.mean_episode_days * factor),
            mean_episodes_per_tag=TwitterConfig.mean_episodes_per_tag,
            seed=seed,
        )
    return generate_twitter(config)


#: Name -> factory registry: the CLI's --dataset choices and the
#: resolution table for ``DatasetRef(kind="workload")`` requests.
WORKLOADS = {
    "quest": quest_workload,
    "clickstream": clickstream_workload,
    "twitter": twitter_workload,
}
