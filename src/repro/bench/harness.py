"""Parameter-grid sweeps reproducing the paper's evaluation artefacts.

Three entry points, one per artefact family:

* :func:`sweep_pattern_counts` — the count grids of Table 5 and the
  series of Figure 7;
* :func:`sweep_runtime` — the runtime grids of Table 7 and the series
  of Figure 9;
* :func:`compare_models` — the model comparison of Table 8
  (periodic-frequent vs recurring vs p-patterns, counts and longest
  pattern).

Both sweeps run on the shared-scan sweep engine
(:func:`repro.sweep.run_sweep`): the transform and the vertical scan
are paid once per grid, and the count sweep additionally derives every
tighter-``minRec`` cell from its column's loosest cell (the
derivation theorem — see :mod:`repro.sweep.engine`).  The runtime
sweep keeps ``derive_min_rec=False`` so each reported cell is a real,
measured mine, comparable across the grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro._validation import Number
from repro.baselines.pf_growth import mine_periodic_frequent_patterns
from repro.baselines.ppattern import mine_p_patterns
from repro.bench.reporting import format_series, format_table
from repro.core.miner import mine_recurring_patterns
from repro.core.options import ObservabilityOptions, ResilienceOptions
from repro.obs.counters import MiningStats
from repro.sweep import SweepPlan, SweepResult, run_sweep
from repro.timeseries.database import TransactionalDatabase

__all__ = [
    "GridResult",
    "ComparisonResult",
    "sweep_pattern_counts",
    "sweep_runtime",
    "compare_models",
]

GridKey = Tuple[Number, Union[int, float], int]  # (per, min_ps, min_rec)


@dataclass
class GridResult:
    """One sweep over a (per, minPS, minRec) grid.

    ``cells`` maps each parameter combination to the measured value —
    a pattern count for :func:`sweep_pattern_counts`, seconds for
    :func:`sweep_runtime`.  Runtime sweeps additionally record, per
    cell, the per-phase breakdown (transform / first scan / tree build
    / mining spans) of the best run in ``phases``.
    """

    dataset: str
    metric: str
    pers: Tuple[Number, ...]
    min_ps_values: Tuple[Union[int, float], ...]
    min_recs: Tuple[int, ...]
    cells: Dict[GridKey, float] = field(default_factory=dict)
    phases: Dict[GridKey, Dict[str, float]] = field(default_factory=dict)
    stats: Dict[GridKey, "MiningStats"] = field(default_factory=dict)

    def value(
        self, per: Number, min_ps: Union[int, float], min_rec: int
    ) -> float:
        """The measured value of one grid cell."""
        return self.cells[(per, min_ps, min_rec)]

    def phase_breakdown(
        self, per: Number, min_ps: Union[int, float], min_rec: int
    ) -> Dict[str, float]:
        """Seconds per phase of one cell's best run (runtime sweeps)."""
        return dict(self.phases.get((per, min_ps, min_rec), {}))

    def as_table(self) -> str:
        """Render in the layout of Tables 5/7: one row per minPS, one
        column per (minRec, per) combination."""
        headers = ["minPS"] + [
            f"rec={min_rec},per={per:g}"
            for min_rec in self.min_recs
            for per in self.pers
        ]
        rows: List[List[object]] = []
        for min_ps in self.min_ps_values:
            row: List[object] = [_format_threshold(min_ps)]
            for min_rec in self.min_recs:
                for per in self.pers:
                    value = self.cells[(per, min_ps, min_rec)]
                    row.append(int(value) if self.metric == "count" else value)
            rows.append(row)
        return format_table(
            headers, rows, title=f"{self.dataset}: {self.metric}"
        )

    def as_figure(self, min_rec: int) -> str:
        """Render one Figure 7/9 panel: value vs minPS, a series per per."""
        series = {
            f"per={per:g}": [
                (
                    int(self.cells[(per, min_ps, min_rec)])
                    if self.metric == "count"
                    else self.cells[(per, min_ps, min_rec)]
                )
                for min_ps in self.min_ps_values
            ]
            for per in self.pers
        }
        return format_series(
            "minPS",
            [_format_threshold(v) for v in self.min_ps_values],
            series,
            title=f"{self.dataset}: {self.metric} (minRec={min_rec})",
        )


def sweep_pattern_counts(
    database: TransactionalDatabase,
    dataset: str,
    pers: Sequence[Number],
    min_ps_values: Sequence[Union[int, float]],
    min_recs: Sequence[int],
    engine: str = "rp-growth",
    jobs: int = 1,
    resilience: Optional[ResilienceOptions] = None,
    observability: Optional[ObservabilityOptions] = None,
) -> GridResult:
    """Count recurring patterns over the full parameter grid (Table 5).

    Runs on the shared-scan sweep engine: the transform and the
    vertical scan are computed once, and each ``(per, minPS)`` column
    is mined only at its loosest ``minRec`` — the tighter cells are
    derived by the recurrence filter (byte-identical by the derivation
    theorem, so the counts are exactly what per-cell mining reports).
    Each cell's engine counters are kept in ``result.stats`` so the
    ablation benches and ``repro-mine bench --trace-out`` can report
    pruning effectiveness without re-mining.  With ``jobs > 1`` every
    mined cell runs through the parallel layer under chunk supervision;
    ``resilience`` carries the per-chunk timeout/retry/fallback knobs.
    ``observability`` is forwarded to :func:`repro.sweep.run_sweep`
    verbatim — live progress/metrics on a long grid included.
    """
    sweep = run_sweep(
        database,
        SweepPlan(
            pers=tuple(pers),
            min_ps_values=tuple(min_ps_values),
            min_recs=tuple(min_recs),
            engine=engine,
            jobs=jobs,
            resilience=resilience or ResilienceOptions(),
        ),
        dataset=dataset,
        observability=observability,
    )
    return _as_grid(sweep, metric="count")


def sweep_runtime(
    database: TransactionalDatabase,
    dataset: str,
    pers: Sequence[Number],
    min_ps_values: Sequence[Union[int, float]],
    min_recs: Sequence[int],
    engine: str = "rp-growth",
    repeats: int = 1,
    jobs: int = 1,
    resilience: Optional[ResilienceOptions] = None,
    observability: Optional[ObservabilityOptions] = None,
) -> GridResult:
    """Measure mining wall-clock over the parameter grid (Table 7).

    The best of ``repeats`` runs is recorded, as is conventional for
    runtime tables.  Timing is span-based (:mod:`repro.obs.spans`), so
    every cell also carries the phase breakdown of its best run —
    see :meth:`GridResult.phase_breakdown`.  Because this sweep exists
    to *measure* mining, it keeps ``derive_min_rec=False``: every cell
    is genuinely mined (sharing only the threshold-independent
    transform/scan work), so its wall-clock is comparable across the
    grid instead of collapsing to a filter for derived cells.
    ``jobs > 1`` times the parallel layer instead of the serial engine
    (the wall-clock then includes pool start-up per cell).
    ``observability`` is forwarded to :func:`repro.sweep.run_sweep`
    verbatim; note a progress reporter writes to stderr, never into
    the timed mining spans.
    """
    sweep = run_sweep(
        database,
        SweepPlan(
            pers=tuple(pers),
            min_ps_values=tuple(min_ps_values),
            min_recs=tuple(min_recs),
            engine=engine,
            jobs=jobs,
            derive_min_rec=False,
            repeats=max(1, repeats),
            resilience=resilience or ResilienceOptions(),
        ),
        dataset=dataset,
        observability=observability,
    )
    return _as_grid(sweep, metric="seconds")


def _as_grid(sweep: SweepResult, metric: str) -> GridResult:
    """Project a :class:`SweepResult` onto the tabular GridResult."""
    plan = sweep.plan
    result = GridResult(
        dataset=sweep.dataset or "",
        metric=metric,
        pers=plan.pers,
        min_ps_values=plan.min_ps_values,
        min_recs=plan.min_recs,
    )
    for key in plan.cells():
        if metric == "count":
            result.cells[key] = float(len(sweep.patterns[key]))
        else:
            result.cells[key] = sweep.seconds_by_cell[key]
        result.phases[key] = sweep.phase_breakdown(*key)
        result.stats[key] = sweep.stats[key]
    return result


@dataclass
class ComparisonResult:
    """The Table 8 comparison on one dataset.

    For each model: number of patterns found ('I' in the paper) and the
    longest pattern length ('II').
    """

    dataset: str
    counts: Dict[str, int]
    max_lengths: Dict[str, int]

    MODELS = ("periodic-frequent", "recurring", "p-pattern")

    def as_table(self) -> str:
        """Render the comparison in the paper's Table 8 layout."""
        rows = [
            [model, self.counts[model], self.max_lengths[model]]
            for model in self.MODELS
        ]
        return format_table(
            ["model", "patterns (I)", "max length (II)"],
            rows,
            title=f"{self.dataset}: model comparison (Table 8)",
        )


def compare_models(
    database: TransactionalDatabase,
    dataset: str,
    per: Number,
    min_sup: Union[int, float],
    min_ps: Union[int, float],
    min_rec: int = 1,
) -> ComparisonResult:
    """Reproduce one Table 8 row group.

    Following Section 5.4: ``per`` is shared by all three models
    (maximum periodicity for periodic-frequent patterns, periodic gap
    threshold for recurring and p-patterns); ``min_sup`` parameterises
    the PF and p-pattern miners; ``min_ps``/``min_rec`` the recurring
    miner.
    """
    pf = mine_periodic_frequent_patterns(database, min_sup, per)
    recurring = mine_recurring_patterns(
        database, per, min_ps, min_rec, engine="rp-growth"
    )
    p_patterns = mine_p_patterns(database, per, min_sup)
    return ComparisonResult(
        dataset=dataset,
        counts={
            "periodic-frequent": len(pf),
            "recurring": len(recurring),
            "p-pattern": len(p_patterns),
        },
        max_lengths={
            "periodic-frequent": pf.max_length(),
            "recurring": recurring.max_length(),
            "p-pattern": p_patterns.max_length(),
        },
    )


def _format_threshold(value: Union[int, float]) -> str:
    if isinstance(value, float):
        return f"{value * 100:g}%"
    return str(value)
