"""Parameter-grid sweeps reproducing the paper's evaluation artefacts.

Three entry points, one per artefact family:

* :func:`sweep_pattern_counts` — the count grids of Table 5 and the
  series of Figure 7;
* :func:`sweep_runtime` — the runtime grids of Table 7 and the series
  of Figure 9 (wall-clock, includes the database scans exactly as the
  paper's runtime includes the transformation);
* :func:`compare_models` — the model comparison of Table 8
  (periodic-frequent vs recurring vs p-patterns, counts and longest
  pattern).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple, Union

from repro._validation import Number
from repro.baselines.pf_growth import mine_periodic_frequent_patterns
from repro.baselines.ppattern import mine_p_patterns
from repro.bench.reporting import format_series, format_table
from repro.core.miner import mine_recurring_patterns
from repro.timeseries.database import TransactionalDatabase

__all__ = [
    "GridResult",
    "ComparisonResult",
    "sweep_pattern_counts",
    "sweep_runtime",
    "compare_models",
]

GridKey = Tuple[Number, Union[int, float], int]  # (per, min_ps, min_rec)


@dataclass
class GridResult:
    """One sweep over a (per, minPS, minRec) grid.

    ``cells`` maps each parameter combination to the measured value —
    a pattern count for :func:`sweep_pattern_counts`, seconds for
    :func:`sweep_runtime`.
    """

    dataset: str
    metric: str
    pers: Tuple[Number, ...]
    min_ps_values: Tuple[Union[int, float], ...]
    min_recs: Tuple[int, ...]
    cells: Dict[GridKey, float] = field(default_factory=dict)

    def value(
        self, per: Number, min_ps: Union[int, float], min_rec: int
    ) -> float:
        """The measured value of one grid cell."""
        return self.cells[(per, min_ps, min_rec)]

    def as_table(self) -> str:
        """Render in the layout of Tables 5/7: one row per minPS, one
        column per (minRec, per) combination."""
        headers = ["minPS"] + [
            f"rec={min_rec},per={per:g}"
            for min_rec in self.min_recs
            for per in self.pers
        ]
        rows: List[List[object]] = []
        for min_ps in self.min_ps_values:
            row: List[object] = [_format_threshold(min_ps)]
            for min_rec in self.min_recs:
                for per in self.pers:
                    value = self.cells[(per, min_ps, min_rec)]
                    row.append(int(value) if self.metric == "count" else value)
            rows.append(row)
        return format_table(
            headers, rows, title=f"{self.dataset}: {self.metric}"
        )

    def as_figure(self, min_rec: int) -> str:
        """Render one Figure 7/9 panel: value vs minPS, a series per per."""
        series = {
            f"per={per:g}": [
                (
                    int(self.cells[(per, min_ps, min_rec)])
                    if self.metric == "count"
                    else self.cells[(per, min_ps, min_rec)]
                )
                for min_ps in self.min_ps_values
            ]
            for per in self.pers
        }
        return format_series(
            "minPS",
            [_format_threshold(v) for v in self.min_ps_values],
            series,
            title=f"{self.dataset}: {self.metric} (minRec={min_rec})",
        )


def sweep_pattern_counts(
    database: TransactionalDatabase,
    dataset: str,
    pers: Sequence[Number],
    min_ps_values: Sequence[Union[int, float]],
    min_recs: Sequence[int],
    engine: str = "rp-growth",
) -> GridResult:
    """Count recurring patterns over the full parameter grid (Table 5)."""
    result = GridResult(
        dataset=dataset,
        metric="count",
        pers=tuple(pers),
        min_ps_values=tuple(min_ps_values),
        min_recs=tuple(min_recs),
    )
    for per in pers:
        for min_ps in min_ps_values:
            for min_rec in min_recs:
                found = mine_recurring_patterns(
                    database, per, min_ps, min_rec, engine=engine
                )
                result.cells[(per, min_ps, min_rec)] = float(len(found))
    return result


def sweep_runtime(
    database: TransactionalDatabase,
    dataset: str,
    pers: Sequence[Number],
    min_ps_values: Sequence[Union[int, float]],
    min_recs: Sequence[int],
    engine: str = "rp-growth",
    repeats: int = 1,
) -> GridResult:
    """Measure mining wall-clock over the parameter grid (Table 7).

    The best of ``repeats`` runs is recorded, as is conventional for
    runtime tables.
    """
    result = GridResult(
        dataset=dataset,
        metric="seconds",
        pers=tuple(pers),
        min_ps_values=tuple(min_ps_values),
        min_recs=tuple(min_recs),
    )
    for per in pers:
        for min_ps in min_ps_values:
            for min_rec in min_recs:
                best = float("inf")
                for _ in range(max(1, repeats)):
                    started = time.perf_counter()
                    mine_recurring_patterns(
                        database, per, min_ps, min_rec, engine=engine
                    )
                    best = min(best, time.perf_counter() - started)
                result.cells[(per, min_ps, min_rec)] = best
    return result


@dataclass
class ComparisonResult:
    """The Table 8 comparison on one dataset.

    For each model: number of patterns found ('I' in the paper) and the
    longest pattern length ('II').
    """

    dataset: str
    counts: Dict[str, int]
    max_lengths: Dict[str, int]

    MODELS = ("periodic-frequent", "recurring", "p-pattern")

    def as_table(self) -> str:
        """Render the comparison in the paper's Table 8 layout."""
        rows = [
            [model, self.counts[model], self.max_lengths[model]]
            for model in self.MODELS
        ]
        return format_table(
            ["model", "patterns (I)", "max length (II)"],
            rows,
            title=f"{self.dataset}: model comparison (Table 8)",
        )


def compare_models(
    database: TransactionalDatabase,
    dataset: str,
    per: Number,
    min_sup: Union[int, float],
    min_ps: Union[int, float],
    min_rec: int = 1,
) -> ComparisonResult:
    """Reproduce one Table 8 row group.

    Following Section 5.4: ``per`` is shared by all three models
    (maximum periodicity for periodic-frequent patterns, periodic gap
    threshold for recurring and p-patterns); ``min_sup`` parameterises
    the PF and p-pattern miners; ``min_ps``/``min_rec`` the recurring
    miner.
    """
    pf = mine_periodic_frequent_patterns(database, min_sup, per)
    recurring = mine_recurring_patterns(
        database, per, min_ps, min_rec, engine="rp-growth"
    )
    p_patterns = mine_p_patterns(database, per, min_sup)
    return ComparisonResult(
        dataset=dataset,
        counts={
            "periodic-frequent": len(pf),
            "recurring": len(recurring),
            "p-pattern": len(p_patterns),
        },
        max_lengths={
            "periodic-frequent": pf.max_length(),
            "recurring": recurring.max_length(),
            "p-pattern": p_patterns.max_length(),
        },
    )


def _format_threshold(value: Union[int, float]) -> str:
    if isinstance(value, float):
        return f"{value * 100:g}%"
    return str(value)
