"""Lightweight nested span timing.

A *span* is a named wall-clock interval.  Spans nest (a span opened
while another is active becomes its child), are collected per thread by
a :class:`SpanCollector`, and cost almost nothing when no collector is
active: :func:`span` then returns a shared no-op context manager and
the only work done is one thread-local attribute lookup.

Usage::

    collector = SpanCollector()
    with collector:
        with span("first_scan"):
            ...
        with span("mine"):
            with span("conditional"):
                ...
    collector.total("mine")       # seconds
    list(collector.walk())        # (depth, Span) pairs, depth-first

Engines call :func:`span` unconditionally around their phases; callers
that want telemetry activate a collector (directly, or through
``mine_recurring_patterns(..., collect_stats=True)``).

With ``SpanCollector(track_memory=True)`` each span additionally
records the peak ``tracemalloc`` allocation observed while it was the
innermost open span (folded upward so a parent's peak covers its
children); see :mod:`repro.obs.memory`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.obs.memory import MemoryTracker

__all__ = ["Span", "SpanCollector", "span", "current_collector"]

_local = threading.local()


@dataclass
class Span:
    """One named, timed (and optionally memory-profiled) interval."""

    name: str
    started: float
    seconds: float = 0.0
    memory_peak_bytes: Optional[int] = None
    children: List["Span"] = field(default_factory=list)

    def walk(self, depth: int = 0) -> Iterator[Tuple[int, "Span"]]:
        """Yield ``(depth, span)`` for this span and its subtree."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready representation (used by the trace sink)."""
        record: Dict[str, object] = {
            "name": self.name,
            "seconds": self.seconds,
        }
        if self.memory_peak_bytes is not None:
            record["memory_peak_bytes"] = self.memory_peak_bytes
        if self.children:
            record["children"] = [child.as_dict() for child in self.children]
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "Span":
        """Rebuild a span subtree from :meth:`as_dict` output.

        The absolute ``started`` instant is not serialized (it is only
        meaningful within one process's ``perf_counter`` clock), so the
        rebuilt span carries ``started=0.0``.  Durations, names, peak
        memory and children round-trip exactly; this is how the
        parallel layer folds worker-process spans into the parent
        collector's tree.
        """
        return cls(
            name=str(record["name"]),
            started=0.0,
            seconds=float(record.get("seconds", 0.0)),  # type: ignore[arg-type]
            memory_peak_bytes=record.get("memory_peak_bytes"),  # type: ignore[arg-type]
            children=[
                cls.from_dict(child)
                for child in record.get("children", ())  # type: ignore[union-attr]
            ],
        )


class _NoopSpan:
    """Returned by :func:`span` when no collector is active."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NOOP = _NoopSpan()


class SpanCollector:
    """Per-thread span sink; active between ``__enter__``/``__exit__``.

    Collectors may nest: activating a second collector shadows the
    first until it exits.  Spans opened while this collector is active
    land in :attr:`roots` (or under the currently open span).

    Parameters
    ----------
    track_memory:
        Record per-span peak memory via ``tracemalloc``.  Accurate but
        *not* free — tracing slows allocation-heavy code noticeably —
        so it is off by default and intended for dedicated memory runs.
    """

    def __init__(self, track_memory: bool = False):
        self.track_memory = track_memory
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self._memory: Optional[MemoryTracker] = None
        self._previous: Optional["SpanCollector"] = None
        self.memory_peak_bytes: Optional[int] = None

    # -- activation ----------------------------------------------------
    def __enter__(self) -> "SpanCollector":
        self._previous = getattr(_local, "collector", None)
        _local.collector = self
        if self.track_memory:
            self._memory = MemoryTracker()
            self._memory.start()
        return self

    def __exit__(self, *exc: object) -> bool:
        _local.collector = self._previous
        self._previous = None
        if self._memory is not None:
            self._fold_peak(self._memory.peak())
            self._memory.stop()
            self._memory = None
        return False

    # -- span plumbing (used by the span() context managers) -----------
    def _open(self, name: str) -> Span:
        if self._memory is not None and self._stack:
            # Credit the parent with what it allocated before this
            # child, then start a fresh window for the child.
            parent = self._stack[-1]
            parent.memory_peak_bytes = max(
                parent.memory_peak_bytes or 0, self._memory.peak()
            )
        if self._memory is not None:
            self._memory.reset_peak()
        opened = Span(name=name, started=time.perf_counter())
        if self._stack:
            self._stack[-1].children.append(opened)
        else:
            self.roots.append(opened)
        self._stack.append(opened)
        return opened

    def _close(self, closing: Span) -> None:
        closing.seconds = time.perf_counter() - closing.started
        popped = self._stack.pop()
        assert popped is closing, "span close out of order"
        if self._memory is not None:
            closing.memory_peak_bytes = max(
                closing.memory_peak_bytes or 0, self._memory.peak()
            )
            self._fold_peak(closing.memory_peak_bytes)
            if self._stack:
                parent = self._stack[-1]
                parent.memory_peak_bytes = max(
                    parent.memory_peak_bytes or 0, closing.memory_peak_bytes
                )
            self._memory.reset_peak()

    def _fold_peak(self, peak: int) -> None:
        self.memory_peak_bytes = max(self.memory_peak_bytes or 0, peak)

    # -- queries -------------------------------------------------------
    @property
    def spans(self) -> Tuple[Span, ...]:
        """The completed top-level spans."""
        return tuple(self.roots)

    def walk(self) -> Iterator[Tuple[int, Span]]:
        """All collected spans, depth-first with their depth."""
        for root in self.roots:
            yield from root.walk()

    def total(self, name: str) -> float:
        """Summed seconds of every span called ``name`` (0.0 if none)."""
        return sum(s.seconds for _, s in self.walk() if s.name == name)


class _LiveSpan:
    __slots__ = ("_collector", "_name", "_span")

    def __init__(self, collector: SpanCollector, name: str):
        self._collector = collector
        self._name = name
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        self._span = self._collector._open(self._name)
        return self._span

    def __exit__(self, *exc: object) -> bool:
        assert self._span is not None
        self._collector._close(self._span)
        return False


def span(name: str):
    """Open a named span under the active collector, if any.

    Returns a context manager; when no collector is active it is a
    shared no-op object, making instrumentation effectively free in
    production paths.

    Examples
    --------
    >>> with span("idle"):            # no collector: no-op
    ...     pass
    >>> collector = SpanCollector()
    >>> with collector:
    ...     with span("work"):
    ...         pass
    >>> [s.name for s in collector.spans]
    ['work']
    """
    collector = getattr(_local, "collector", None)
    if collector is None:
        return _NOOP
    return _LiveSpan(collector, name)


def current_collector() -> Optional[SpanCollector]:
    """The collector active on this thread, or ``None``."""
    return getattr(_local, "collector", None)
