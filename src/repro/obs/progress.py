"""Live progress, ETA and worker-heartbeat reporting for long runs.

The paper's quest-scale grids (Tables 5/7) mine for minutes; until now
the only signs of life were the final telemetry record and — for a hung
worker — the resilience deadline firing.  This module is the live
view:

* :class:`ProgressTracker` — completed/total work units with optional
  per-unit weights (the LPT chunk weights from
  :func:`repro.parallel.partition.plan_chunks` make the ETA honest
  even when chunks are deliberately unequal);
* :class:`ProgressReporter` — rate-limited rendering to a stream:
  carriage-return updates on a TTY, plain appended lines otherwise
  (CI logs stay readable);
* :class:`MiningMonitor` — the façade/sweep/pool-facing surface: a
  *stack* of phases (a sweep's cell progress can wrap a parallel
  mine's chunk progress), worker heartbeat gauges fed by the
  supervisor from the marker-file channel, and stale-worker reports
  ("worker 12345 on chunk 3 silent for 40s") surfaced *before* the
  chunk deadline kills the pool — fault attribution while there is
  still time to care;
* :func:`monitor_from_options` — builds a monitor from
  :class:`~repro.core.options.ObservabilityOptions` (``progress``
  defaults to on only when stderr is a TTY).

Everything degrades gracefully: with no reporter, no registry and no
emitter each call is a cheap no-op *on the monitor*, and with no
monitor at all the mining paths skip the calls entirely.  A serial run
(``jobs=1``) still emits — it is reported as one single-unit phase and
its final stats are published — pinned by the regression tests in
``tests/obs/test_progress.py``.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass
from typing import IO, List, Optional, Sequence, Set, Tuple

from repro.exceptions import ParameterError
from repro.obs.counters import MiningStats
from repro.obs.metrics import (
    MetricsEmitter,
    MetricsRegistry,
    publish_mining_stats,
)

__all__ = [
    "MiningMonitor",
    "ProgressReporter",
    "ProgressTracker",
    "StaleWorkerReport",
    "monitor_from_options",
]

#: Gauge fed by the supervisor for every in-flight chunk.
HEARTBEAT_GAUGE = "repro_worker_heartbeat_age_seconds"


@dataclass(frozen=True)
class StaleWorkerReport:
    """One 'worker went silent' observation, kept for fault attribution.

    ``age_seconds`` is how long the worker's beat file had not been
    touched when the supervisor noticed; ``execution`` identifies which
    attempt of the chunk went quiet.
    """

    chunk: int
    pid: Optional[int]
    age_seconds: float
    execution: int
    at_unix: float

    def describe(self) -> str:
        """The operator-facing one-liner for this observation."""
        who = f"worker {self.pid}" if self.pid is not None else "worker"
        return (
            f"{who} on chunk {self.chunk} silent for "
            f"{self.age_seconds:.1f}s (execution {self.execution})"
        )


class ProgressTracker:
    """Completed vs total work, optionally weighted per unit.

    With ``weights`` (e.g. LPT chunk sizes) the fraction and ETA are
    weight-based: finishing the one huge chunk moves the bar further
    than finishing five tiny ones.  Without weights every unit counts
    equally (``units`` must then be given).
    """

    def __init__(
        self,
        label: str,
        *,
        weights: Optional[Sequence[float]] = None,
        units: Optional[int] = None,
        clock=time.monotonic,
    ) -> None:
        if weights is not None:
            self.weights: Optional[Tuple[float, ...]] = tuple(
                float(w) for w in weights
            )
            self.units = len(self.weights)
            total = sum(self.weights)
            # Degenerate all-zero weights: fall back to uniform units.
            self.total_weight = total if total > 0 else float(self.units)
            if total <= 0:
                self.weights = None
        else:
            if units is None:
                raise ParameterError(
                    f"tracker {label!r} needs weights or units"
                )
            self.weights = None
            self.units = int(units)
            self.total_weight = float(self.units)
        self.label = label
        self.done_units = 0
        self.done_weight = 0.0
        self._clock = clock
        self.started = clock()

    def advance(self, unit: Optional[int] = None) -> None:
        """Mark one unit done (by index when the tracker is weighted)."""
        self.done_units += 1
        if self.weights is not None and unit is not None \
                and 0 <= unit < len(self.weights):
            self.done_weight += self.weights[unit]
        elif self.units:
            self.done_weight += self.total_weight / self.units

    @property
    def fraction(self) -> float:
        if self.total_weight <= 0:
            return 1.0
        return min(1.0, self.done_weight / self.total_weight)

    def eta_seconds(self) -> Optional[float]:
        """Projected remaining seconds; ``None`` before any progress."""
        if self.done_weight <= 0 or self.total_weight <= 0:
            return None
        elapsed = self._clock() - self.started
        remaining = max(0.0, self.total_weight - self.done_weight)
        return elapsed * remaining / self.done_weight

    def line(self) -> str:
        """One status line: units, percentage, elapsed, ETA."""
        elapsed = self._clock() - self.started
        text = (
            f"{self.label}: {self.done_units}/{self.units} "
            f"({self.fraction * 100:.0f}%) elapsed {elapsed:.1f}s"
        )
        eta = self.eta_seconds()
        if eta is not None and self.done_weight < self.total_weight:
            text += f" eta {eta:.1f}s"
        return text


class ProgressReporter:
    """Rate-limited status rendering to a text stream.

    On a TTY the current line is redrawn in place (``\\r``); elsewhere
    each update is an ordinary appended line so CI logs stay useful.
    ``note`` always prints (permanent lines: stale workers, retries);
    ``update`` is rate-limited by ``min_interval``.
    """

    def __init__(
        self,
        stream: Optional[IO[str]] = None,
        *,
        min_interval: float = 0.1,
        clock=time.monotonic,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self._clock = clock
        self._last = None  # type: Optional[float]
        self._line_open = False
        self._last_width = 0
        try:
            self._tty = bool(self.stream.isatty())
        except (AttributeError, ValueError):
            self._tty = False

    def _write(self, text: str) -> None:
        try:
            self.stream.write(text)
            self.stream.flush()
        except (OSError, ValueError):  # stream closed under us
            pass

    def update(self, text: str, force: bool = False) -> None:
        """Redraw (TTY) or append (non-TTY) the live status line."""
        now = self._clock()
        if not force and self._last is not None \
                and now - self._last < self.min_interval:
            return
        self._last = now
        if self._tty:
            padding = " " * max(0, self._last_width - len(text))
            self._write("\r" + text + padding)
            self._last_width = len(text)
            self._line_open = True
        else:
            self._write(text + "\n")

    def note(self, text: str) -> None:
        """Print a permanent line (never rate-limited)."""
        if self._tty and self._line_open:
            self._write("\r" + " " * self._last_width + "\r")
            self._line_open = False
            self._last_width = 0
        self._write(text + "\n")

    def finish(self, text: Optional[str] = None) -> None:
        """Terminate the live line, optionally with a final message."""
        if text is not None:
            self.note(text)
        elif self._tty and self._line_open:
            self._write("\n")
            self._line_open = False

    def close(self) -> None:
        """Alias for :meth:`finish` (sink-protocol spelling)."""
        self.finish()


class MiningMonitor:
    """The live-observability surface every mining path reports into.

    A monitor owns up to three sinks, all optional:

    * a :class:`ProgressReporter` for human-facing status lines,
    * a :class:`MetricsRegistry` for counters/gauges/histograms,
    * a :class:`MetricsEmitter` for periodic ``repro-metrics/v1``
      snapshots.

    Phases form a stack — ``run_sweep`` opens a cell-level phase, and
    each mined cell's :class:`~repro.parallel.ParallelMiner` may open a
    chunk-level phase on top of it.  ``unit_done`` always advances the
    innermost phase.
    """

    def __init__(
        self,
        *,
        reporter: Optional[ProgressReporter] = None,
        registry: Optional[MetricsRegistry] = None,
        emitter: Optional[MetricsEmitter] = None,
        stale_after: float = 10.0,
        clock=time.monotonic,
    ) -> None:
        if stale_after <= 0:
            raise ParameterError(
                f"stale_after must be positive, got {stale_after!r}"
            )
        if emitter is not None and registry is None:
            registry = emitter.registry
        self.reporter = reporter
        self.registry = registry
        self.emitter = emitter
        self.stale_after = stale_after
        self._clock = clock
        self._phases: List[ProgressTracker] = []
        #: Every stale-worker observation of this monitor's lifetime,
        #: deduplicated per (chunk, execution).
        self.stale_reports: List[StaleWorkerReport] = []
        self._stale_seen: Set[Tuple[int, int]] = set()
        self._closed = False

    # -- phase / unit progress -----------------------------------------
    def phase_started(
        self,
        label: str,
        *,
        weights: Optional[Sequence[float]] = None,
        units: Optional[int] = None,
    ) -> ProgressTracker:
        """Push a new innermost phase with ``units`` or LPT ``weights``."""
        tracker = ProgressTracker(
            label, weights=weights, units=units, clock=self._clock
        )
        self._phases.append(tracker)
        if self.reporter is not None:
            self.reporter.update(tracker.line(), force=True)
        return tracker

    def unit_done(self, unit: Optional[int] = None) -> None:
        """Advance the innermost phase by one (weighted) unit."""
        if not self._phases:
            return
        tracker = self._phases[-1]
        tracker.advance(unit)
        if self.reporter is not None:
            self.reporter.update(
                tracker.line(), force=tracker.done_units >= tracker.units
            )
        if self.emitter is not None:
            self.emitter.maybe_emit()

    def phase_finished(self) -> None:
        """Pop the innermost phase."""
        if self._phases:
            self._phases.pop()

    # -- heartbeats ----------------------------------------------------
    def worker_beat(
        self, chunk: int, pid: Optional[int], age: float
    ) -> None:
        """Record one heartbeat-age observation for an in-flight chunk."""
        if self.registry is not None:
            self.registry.gauge(
                HEARTBEAT_GAUGE,
                {
                    "chunk": str(chunk),
                    "pid": str(pid) if pid is not None else "unknown",
                },
            ).set(age)

    def worker_stale(
        self,
        chunk: int,
        pid: Optional[int],
        age: float,
        execution: int = 1,
    ) -> Optional[StaleWorkerReport]:
        """Report a silent worker (once per chunk execution).

        Returns the new report, or ``None`` when this execution was
        already reported.
        """
        key = (chunk, execution)
        if key in self._stale_seen:
            return None
        self._stale_seen.add(key)
        report = StaleWorkerReport(
            chunk=chunk,
            pid=pid,
            age_seconds=age,
            execution=execution,
            at_unix=time.time(),
        )
        self.stale_reports.append(report)
        if self.registry is not None:
            self.registry.counter("repro_worker_stale_total").inc()
        if self.reporter is not None:
            self.reporter.note(f"stale heartbeat: {report.describe()}")
        return report

    def serial_beat(self) -> None:
        """Heartbeat of an in-process (serial) execution.

        Serial runs have no worker pool, but 'progress or metrics with
        jobs=1 must still emit': the current process reports itself
        under the same gauge, chunk label ``serial``.
        """
        if self.registry is not None:
            self.registry.gauge(
                HEARTBEAT_GAUGE,
                {"chunk": "serial", "pid": str(os.getpid())},
            ).set(0.0)

    # -- fault + run events --------------------------------------------
    def fault(self, action: str, chunk: int, reason: str) -> None:
        """Surface one supervised fault (retry / fallback / raise)."""
        if self.registry is not None:
            self.registry.counter(
                "repro_chunk_faults_total", {"action": action}
            ).inc()
        if self.reporter is not None:
            self.reporter.note(f"chunk {chunk} {action}: {reason}")

    def run_finished(
        self,
        *,
        engine: str,
        stats: Optional[MiningStats],
        seconds: float,
        patterns_found: int,
        note: Optional[str] = None,
    ) -> None:
        """Publish one completed run's totals and print the final line."""
        if self.registry is not None:
            if stats is not None:
                publish_mining_stats(self.registry, stats, engine=engine)
            self.registry.counter(
                "repro_runs_total", {"engine": engine}
            ).inc()
            self.registry.histogram(
                "repro_run_seconds", {"engine": engine}
            ).observe(seconds)
        if self.emitter is not None:
            self.emitter.emit()
        if self.reporter is not None:
            self.reporter.finish(
                note
                if note is not None
                else (
                    f"{engine}: {patterns_found} patterns "
                    f"in {seconds:.2f}s"
                )
            )

    def close(self) -> None:
        """Flush and release the sinks (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self.emitter is not None:
            self.emitter.close()
        if self.reporter is not None:
            self.reporter.close()


def monitor_from_options(
    options: Optional[object],
) -> Optional["MiningMonitor"]:
    """Build the monitor one run's options ask for, or ``None``.

    ``options.monitor`` (an injected :class:`MiningMonitor`) wins
    outright — the caller then owns its lifecycle.  Otherwise a monitor
    is assembled from ``progress`` (``None`` = auto: on only when
    stderr is a TTY) and ``metrics`` (a path/handle for periodic
    ``repro-metrics/v1`` snapshots).  Returns ``None`` when nothing is
    enabled, so the mining paths skip all monitor calls.
    """
    if options is None:
        return None
    injected = getattr(options, "monitor", None)
    if injected is not None:
        return injected
    progress = getattr(options, "progress", None)
    if progress is None:
        try:
            progress = bool(sys.stderr.isatty())
        except (AttributeError, ValueError):
            progress = False
    metrics = getattr(options, "metrics", None)
    if not progress and metrics is None:
        return None
    reporter = ProgressReporter() if progress else None
    emitter = None
    if metrics is not None:
        emitter = MetricsEmitter(
            MetricsRegistry(),
            metrics,
            interval=getattr(options, "metrics_interval", 1.0),
        )
    return MiningMonitor(
        reporter=reporter,
        emitter=emitter,
        stale_after=getattr(options, "stale_after", 10.0),
    )
