"""The shared mining-counter protocol.

Every engine — ``rp-growth``, ``rp-eclat``, ``rp-eclat-np``,
``rp-eclat-vec``, ``naive``
— and the streaming monitor populates one :class:`MiningStats`
instance per run, so the ablation benches and the run reports can
compare engines counter-for-counter.  The dataclass started life
inside ``repro.core.rp_growth``; it lives here now so that the
counters are defined once, next to the rest of the observability
layer, and the engines only *populate* them.

Counter glossary (see ``docs/observability.md`` for the mapping to the
paper's quantities):

``candidate_items``
    1-patterns surviving the first-scan ``Erec`` test (the RP-list's
    candidate set; Algorithm 1).
``pruned_items``
    Items removed by that first-scan test.
``initial_tree_nodes``
    Item nodes in the freshly built RP-tree — the quantity Lemma 2
    bounds.  Zero for vertical engines, which build no tree.
``erec_evaluations``
    How many point sequences had the ``Erec`` bound (Section 4.1)
    computed.
``candidate_patterns``
    How many passed (``Erec >= minRec``) and were expanded.
``recurrence_evaluations``
    Exact ``getRecurrence`` computations (one per candidate pattern).
``patterns_found``
    Recurring patterns reported.
``conditional_trees``
    Conditional RP-trees built (RP-growth only).
``tid_list_entries``
    Total timestamps materialised in intersected point sequences
    (vertical engines' analogue of tree size; 0 for RP-growth, whose
    ts-lists live in the tree and are counted by
    ``initial_tree_nodes``).
``chunks_retried``
    Parallel chunks re-submitted after an attributed failure (worker
    crash, deadline expiry, poisoned result).  Always 0 for serial
    runs and for fault-free parallel runs.
``chunks_fallback``
    Parallel chunks whose retries were exhausted and that were
    re-mined in-process by the serial engine (``fallback="serial"``).
    The two resilience counters are bookkeeping about the *run*, not
    the *mining*: they are excluded from cross-engine counter-parity
    comparisons.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Dict, Iterable, Optional

try:  # Protocol is typing-only; keep a soft fallback for exotic 3.9s.
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


__all__ = ["MiningStats", "StatsSource"]


@dataclass
class MiningStats:
    """Counters describing one mining run.

    All engines share this structure; counters an engine cannot
    meaningfully produce stay at their zero default (e.g.
    ``conditional_trees`` for the vertical engines).

    Examples
    --------
    >>> stats = MiningStats(patterns_found=8)
    >>> stats.as_dict()["patterns_found"]
    8
    """

    candidate_items: int = 0
    pruned_items: int = 0
    initial_tree_nodes: int = 0
    erec_evaluations: int = 0
    candidate_patterns: int = 0
    recurrence_evaluations: int = 0
    patterns_found: int = 0
    conditional_trees: int = 0
    tid_list_entries: int = 0
    chunks_retried: int = 0
    chunks_fallback: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view, in field order (for reports and JSON)."""
        return asdict(self)

    def merge(self, other: "MiningStats") -> "MiningStats":
        """Add ``other``'s counters into this instance, in place.

        Every counter is additive across disjoint sub-problems, so a
        parallel run merges its per-worker counter sets into one that
        equals the serial run's counters exactly (the prefix partition
        of :mod:`repro.parallel` is a partition of the serial work, not
        an approximation of it).  Returns ``self`` for chaining /
        ``functools.reduce``.

        Examples
        --------
        >>> merged = MiningStats(patterns_found=3)
        >>> merged.merge(MiningStats(patterns_found=5)).patterns_found
        8
        """
        for name in self.field_names():
            setattr(self, name, getattr(self, name) + getattr(other, name))
        return self

    @classmethod
    def merged(cls, parts: "Iterable[MiningStats]") -> "MiningStats":
        """A fresh instance holding the sum of ``parts``' counters."""
        total = cls()
        for part in parts:
            total.merge(part)
        return total

    @classmethod
    def field_names(cls) -> tuple:
        """The counter names, in declaration order."""
        return tuple(f.name for f in fields(cls))


@runtime_checkable
class StatsSource(Protocol):
    """Anything that leaves a :class:`MiningStats` after a run.

    All four engine classes satisfy this: they expose the most recent
    run's counters as ``last_stats`` (``None`` before the first run).
    """

    last_stats: Optional[MiningStats]
