"""Run telemetry and its sinks: summary table, logging, JSON-lines.

:class:`MiningTelemetry` bundles everything one mining run measured —
engine, parameters, the shared :class:`~repro.obs.counters.MiningStats`
counters, the span tree and (optionally) peak memory.  Three sinks
consume it:

* :meth:`MiningTelemetry.summary_table` — the human-readable phase
  table the CLI prints with ``--profile``;
* :meth:`MiningTelemetry.log` — one stdlib-``logging`` record per
  phase plus a run summary;
* :class:`TraceWriter` — a JSON-lines trace file: one ``span`` record
  per span (depth-first) and a final ``run`` record.

The ``run`` record is the repo's machine-readable benchmark currency:
``BENCH_*.json`` files embed exactly these records (schema
``repro-run/v1``, validated by :func:`validate_run_record`; see
``docs/observability.md`` for the field-by-field contract).
"""

from __future__ import annotations

import json
import logging
from dataclasses import dataclass, field
from typing import (
    IO,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.obs.counters import MiningStats
from repro.obs.spans import Span, SpanCollector, span

__all__ = [
    "QA_SCHEMA",
    "RUN_SCHEMA",
    "STREAM_SCHEMA",
    "SWEEP_SCHEMA",
    "MiningTelemetry",
    "TraceWriter",
    "iter_trace",
    "profile_call",
    "read_trace",
    "validate_qa_record",
    "validate_run_record",
    "validate_stream_record",
    "validate_sweep_record",
]

logger = logging.getLogger("repro.obs")

#: Schema tag carried by every run record.
RUN_SCHEMA = "repro-run/v1"

#: Schema tag carried by every ``repro qa`` gate report.
QA_SCHEMA = "repro-qa/v1"

#: Schema tag carried by every shared-scan sweep record.
SWEEP_SCHEMA = "repro-sweep/v1"

#: Schema tag carried by every streaming-checkpoint record.
STREAM_SCHEMA = "repro-stream/v1"

#: Keys a ``repro-stream/v1`` header record must carry, with types.
_STREAM_HEADER_REQUIRED: Tuple[Tuple[str, type], ...] = (
    ("schema", str),
    ("kind", str),
    ("shards", int),
    ("params", dict),
    ("streams", int),
    ("active", int),
    ("evicted", int),
    ("lru", list),
    ("watched", list),
)

#: Keys a ``repro-stream/v1`` per-stream record must carry, with types.
_STREAM_STATE_REQUIRED: Tuple[Tuple[str, type], ...] = (
    ("schema", str),
    ("kind", str),
    ("shard", int),
    ("state", dict),
)

#: Top-level keys every ``repro-qa/v1`` record must carry, with types.
_QA_REQUIRED: Tuple[Tuple[str, type], ...] = (
    ("schema", str),
    ("kind", str),
    ("passed", bool),
    ("seconds", float),
    ("budget_seconds", float),
    ("seed", int),
    ("skipped", list),
    ("relations", dict),
    ("golden", dict),
    ("differential", dict),
)

#: Keys every ``repro-run/v1`` record must carry, with their types.
_RUN_REQUIRED: Tuple[Tuple[str, type], ...] = (
    ("schema", str),
    ("kind", str),
    ("engine", str),
    ("params", dict),
    ("patterns_found", int),
    ("seconds", float),
    ("counters", dict),
    ("spans", list),
)


@dataclass
class MiningTelemetry:
    """Everything measured about one mining run."""

    engine: str
    params: Dict[str, object]
    stats: MiningStats
    spans: Tuple[Span, ...]
    patterns_found: int
    seconds: float
    memory_peak_bytes: Optional[int] = None
    dataset: Optional[str] = None
    extra: Dict[str, object] = field(default_factory=dict)

    # -- derived views -------------------------------------------------
    def phase_seconds(self) -> Dict[str, float]:
        """Summed seconds per span name, in first-seen order."""
        totals: Dict[str, float] = {}
        for root in self.spans:
            for _, item in root.walk():
                totals[item.name] = totals.get(item.name, 0.0) + item.seconds
        return totals

    def as_run_record(self) -> Dict[str, object]:
        """The ``repro-run/v1`` record (see docs/observability.md)."""
        record: Dict[str, object] = {
            "schema": RUN_SCHEMA,
            "kind": "run",
            "engine": self.engine,
            "params": dict(self.params),
            "patterns_found": self.patterns_found,
            "seconds": self.seconds,
            "counters": self.stats.as_dict(),
            "spans": [root.as_dict() for root in self.spans],
        }
        if self.memory_peak_bytes is not None:
            record["memory_peak_bytes"] = self.memory_peak_bytes
        if self.dataset is not None:
            record["dataset"] = self.dataset
        record.update(self.extra)
        return record

    # -- sinks ---------------------------------------------------------
    def summary_table(self) -> str:
        """Phase timings and counters as a fixed-width table."""
        from repro.bench.reporting import format_table  # avoid cycle

        rows: List[List[object]] = []
        for root in self.spans:
            for depth, item in root.walk():
                memory = (
                    _format_bytes(item.memory_peak_bytes)
                    if item.memory_peak_bytes is not None
                    else ""
                )
                rows.append(
                    ["  " * depth + item.name, f"{item.seconds:.6f}", memory]
                )
        rows.append(["total", f"{self.seconds:.6f}",
                     _format_bytes(self.memory_peak_bytes)
                     if self.memory_peak_bytes is not None else ""])
        phase_table = format_table(
            ["phase", "seconds", "peak mem"],
            rows,
            title=f"{self.engine}: {self.patterns_found} patterns",
        )
        counter_rows = [
            [name, value]
            for name, value in self.stats.as_dict().items()
        ]
        counter_table = format_table(["counter", "value"], counter_rows)
        return phase_table + "\n\n" + counter_table

    def log(
        self,
        target: Optional[logging.Logger] = None,
        level: int = logging.INFO,
    ) -> None:
        """Emit the telemetry through stdlib logging."""
        sink = target if target is not None else logger
        sink.log(
            level,
            "run engine=%s patterns=%d seconds=%.6f",
            self.engine,
            self.patterns_found,
            self.seconds,
        )
        for name, seconds in self.phase_seconds().items():
            sink.log(level, "phase %s seconds=%.6f", name, seconds)


def validate_run_record(record: Mapping[str, object]) -> None:
    """Raise ``ValueError`` unless ``record`` is a valid run record.

    Examples
    --------
    >>> validate_run_record({"schema": "bogus"})
    Traceback (most recent call last):
        ...
    ValueError: run record schema 'bogus' != 'repro-run/v1'
    """
    schema = record.get("schema")
    if schema != RUN_SCHEMA:
        raise ValueError(f"run record schema {schema!r} != {RUN_SCHEMA!r}")
    for key, expected in _RUN_REQUIRED:
        if key not in record:
            raise ValueError(f"run record missing required key {key!r}")
        value = record[key]
        if expected is float and isinstance(value, int):
            value = float(value)
        if not isinstance(value, expected):
            raise ValueError(
                f"run record key {key!r} must be {expected.__name__}, "
                f"got {type(value).__name__}"
            )
    if record["kind"] != "run":
        raise ValueError(f"run record kind {record['kind']!r} != 'run'")
    counters = record["counters"]
    for name in MiningStats.field_names():
        if name not in counters:  # type: ignore[operator]
            raise ValueError(f"run record counters missing {name!r}")
    if "faults" in record:
        faults = record["faults"]
        if not isinstance(faults, dict):
            raise ValueError(
                f"run record 'faults' must be dict, "
                f"got {type(faults).__name__}"
            )
        for key in ("chunks_retried", "chunks_fallback", "events"):
            if key not in faults:
                raise ValueError(f"run record faults missing {key!r}")
        if not isinstance(faults["events"], list):
            raise ValueError("run record faults 'events' must be a list")


#: Keys every ``repro-sweep/v1`` record must carry, with their types.
_SWEEP_REQUIRED: Tuple[Tuple[str, type], ...] = (
    ("schema", str),
    ("kind", str),
    ("engine", str),
    ("grid", dict),
    ("jobs", int),
    ("seconds", float),
    ("counters", dict),
    ("cells", list),
)

#: Reuse counters every sweep record's ``counters`` section must carry.
_SWEEP_COUNTERS = (
    "cells_total",
    "cells_mined",
    "cells_derived",
    "scans_shared",
)


def validate_sweep_record(record: Mapping[str, object]) -> None:
    """Raise ``ValueError`` unless ``record`` is a valid sweep record.

    The ``repro-sweep/v1`` schema is the machine-readable output of the
    shared-scan threshold-sweep engine (:mod:`repro.sweep`); it is
    written through the same :class:`TraceWriter` sink as
    ``repro-run/v1`` records and consumed the same way by
    ``BENCH_sweep.json``.  See ``docs/observability.md`` for the
    field-by-field contract.

    Examples
    --------
    >>> validate_sweep_record({"schema": "bogus"})
    Traceback (most recent call last):
        ...
    ValueError: sweep record schema 'bogus' != 'repro-sweep/v1'
    """
    schema = record.get("schema")
    if schema != SWEEP_SCHEMA:
        raise ValueError(
            f"sweep record schema {schema!r} != {SWEEP_SCHEMA!r}"
        )
    for key, expected in _SWEEP_REQUIRED:
        if key not in record:
            raise ValueError(f"sweep record missing required key {key!r}")
        value = record[key]
        if expected is float and isinstance(value, int) \
                and not isinstance(value, bool):
            value = float(value)
        if not isinstance(value, expected) or (
            expected is int and isinstance(value, bool)
        ):
            raise ValueError(
                f"sweep record key {key!r} must be {expected.__name__}, "
                f"got {type(value).__name__}"
            )
    if record["kind"] != "sweep":
        raise ValueError(
            f"sweep record kind {record['kind']!r} != 'sweep'"
        )
    grid = record["grid"]
    for axis in ("pers", "min_ps_values", "min_recs"):
        if axis not in grid:  # type: ignore[operator]
            raise ValueError(f"sweep record grid missing {axis!r}")
        if not isinstance(grid[axis], list):  # type: ignore[index]
            raise ValueError(f"sweep record grid {axis!r} must be a list")
    counters = record["counters"]
    for name in _SWEEP_COUNTERS:
        if name not in counters:  # type: ignore[operator]
            raise ValueError(f"sweep record counters missing {name!r}")
        value = counters[name]  # type: ignore[index]
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(
                f"sweep record counter {name!r} must be int, "
                f"got {type(value).__name__}"
            )
    cells = record["cells"]
    expected_cells = counters["cells_total"]  # type: ignore[index]
    if len(cells) != expected_cells:  # type: ignore[arg-type]
        raise ValueError(
            f"sweep record has {len(cells)} cells "  # type: ignore[arg-type]
            f"but counters.cells_total = {expected_cells}"
        )
    for cell in cells:  # type: ignore[union-attr]
        for key in (
            "params", "patterns_found", "seconds", "derived",
            "counters", "spans",
        ):
            if key not in cell:
                raise ValueError(f"sweep record cell missing {key!r}")
        if not isinstance(cell["derived"], bool):
            raise ValueError("sweep record cell 'derived' must be bool")
        params = cell["params"]
        for key in ("per", "min_ps", "min_rec"):
            if key not in params:
                raise ValueError(
                    f"sweep record cell params missing {key!r}"
                )
        if cell["derived"] and not cell.get("derived_from"):
            raise ValueError(
                "sweep record derived cell must name 'derived_from'"
            )
        if not isinstance(cell["spans"], list):
            raise ValueError("sweep record cell 'spans' must be a list")


def validate_qa_record(record: Mapping[str, object]) -> None:
    """Raise ``ValueError`` unless ``record`` is a valid qa record.

    The ``repro-qa/v1`` schema is the machine-readable output of the
    ``repro qa`` conformance gate (:mod:`repro.qa.gate`); CI consumes
    it the way benchmarks consume ``repro-run/v1`` records.  See
    ``docs/observability.md`` for the field-by-field contract.

    Examples
    --------
    >>> validate_qa_record({"schema": "bogus"})
    Traceback (most recent call last):
        ...
    ValueError: qa record schema 'bogus' != 'repro-qa/v1'
    """
    schema = record.get("schema")
    if schema != QA_SCHEMA:
        raise ValueError(f"qa record schema {schema!r} != {QA_SCHEMA!r}")
    for key, expected in _QA_REQUIRED:
        if key not in record:
            raise ValueError(f"qa record missing required key {key!r}")
        value = record[key]
        if expected is float and isinstance(value, int) \
                and not isinstance(value, bool):
            value = float(value)
        if expected is bool:
            if not isinstance(value, bool):
                raise ValueError(
                    f"qa record key {key!r} must be bool, "
                    f"got {type(value).__name__}"
                )
            continue
        if not isinstance(value, expected) or (
            expected is int and isinstance(value, bool)
        ):
            raise ValueError(
                f"qa record key {key!r} must be {expected.__name__}, "
                f"got {type(value).__name__}"
            )
    if record["kind"] != "qa":
        raise ValueError(f"qa record kind {record['kind']!r} != 'qa'")
    relations = record["relations"]
    for key in ("matrix_complete", "checks", "violations"):
        if key not in relations:  # type: ignore[operator]
            raise ValueError(f"qa record relations missing {key!r}")
    if not isinstance(relations["checks"], list):  # type: ignore[index]
        raise ValueError("qa record relations 'checks' must be a list")
    if not isinstance(relations["violations"], list):  # type: ignore[index]
        raise ValueError("qa record relations 'violations' must be a list")
    for check in relations["checks"]:  # type: ignore[index]
        for key in ("relation", "engine", "jobs", "cases", "violations"):
            if key not in check:
                raise ValueError(
                    f"qa record relation check missing {key!r}"
                )
    golden = record["golden"]
    if "checks" not in golden:  # type: ignore[operator]
        raise ValueError("qa record golden missing 'checks'")
    if not isinstance(golden["checks"], list):  # type: ignore[index]
        raise ValueError("qa record golden 'checks' must be a list")
    for check in golden["checks"]:  # type: ignore[index]
        for key in ("name", "engine", "status"):
            if key not in check:
                raise ValueError(f"qa record golden check missing {key!r}")
    differential = record["differential"]
    for key in ("cases", "checks", "failures"):
        if key not in differential:  # type: ignore[operator]
            raise ValueError(f"qa record differential missing {key!r}")
    if not isinstance(differential["failures"], list):  # type: ignore[index]
        raise ValueError("qa record differential 'failures' must be a list")


def validate_stream_record(record: Mapping[str, object]) -> None:
    """Raise ``ValueError`` unless ``record`` is a valid stream record.

    The ``repro-stream/v1`` schema is the checkpoint format of the
    sharded streaming registry (:mod:`repro.streaming`): one
    ``stream-checkpoint`` header line followed by one ``stream-state``
    line per stream, all written through the same :class:`TraceWriter`
    sink as ``repro-run/v1`` records.  See ``docs/streaming.md`` for
    the field-by-field contract.

    Examples
    --------
    >>> validate_stream_record({"schema": "bogus"})
    Traceback (most recent call last):
        ...
    ValueError: stream record schema 'bogus' != 'repro-stream/v1'
    """
    schema = record.get("schema")
    if schema != STREAM_SCHEMA:
        raise ValueError(
            f"stream record schema {schema!r} != {STREAM_SCHEMA!r}"
        )
    kind = record.get("kind")
    if kind == "stream-checkpoint":
        required = _STREAM_HEADER_REQUIRED
    elif kind == "stream-state":
        required = _STREAM_STATE_REQUIRED
    else:
        raise ValueError(
            f"stream record kind {kind!r} is not one of "
            f"'stream-checkpoint', 'stream-state'"
        )
    for key, expected in required:
        if key not in record:
            raise ValueError(f"stream record missing required key {key!r}")
        value = record[key]
        if not isinstance(value, expected) or (
            expected is int and isinstance(value, bool)
        ):
            raise ValueError(
                f"stream record key {key!r} must be {expected.__name__}, "
                f"got {type(value).__name__}"
            )
    if kind == "stream-checkpoint":
        if record["shards"] < 1:  # type: ignore[operator]
            raise ValueError("stream record 'shards' must be >= 1")
        for key in ("min_ps", "min_rec"):
            if key not in record["params"]:  # type: ignore[operator]
                raise ValueError(f"stream record params missing {key!r}")
    else:
        if "stream" not in record:
            raise ValueError("stream record missing required key 'stream'")
        state_kind = record["state"].get("kind")  # type: ignore[union-attr]
        if state_kind not in ("monitor", "calendar-monitor"):
            raise ValueError(
                f"stream record state kind {state_kind!r} is not one of "
                f"'monitor', 'calendar-monitor'"
            )


class TraceWriter:
    """JSON-lines trace sink.

    Each span becomes one ``{"kind": "span", ...}`` line (depth-first,
    with its dotted ``path``); each completed run contributes a final
    ``{"kind": "run", ...}`` record.  Every line is a complete JSON
    document, so a trace interrupted mid-run is still parseable.

    Examples
    --------
    >>> import io
    >>> handle = io.StringIO()
    >>> writer = TraceWriter(handle)
    >>> writer.write_record({"kind": "note", "text": "hi"})
    >>> handle.getvalue()
    '{"kind": "note", "text": "hi"}\\n'
    """

    def __init__(self, target: Union[str, IO[str]]):
        if hasattr(target, "write"):
            self._handle: IO[str] = target  # type: ignore[assignment]
            self._owns_handle = False
        else:
            self._handle = open(target, "w", encoding="utf-8")
            self._owns_handle = True

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False

    def close(self) -> None:
        """Close the underlying file if this writer opened it."""
        if self._owns_handle:
            self._handle.close()

    def write_record(self, record: Mapping[str, object]) -> None:
        """Write one record as a single JSON line (flushed)."""
        self._handle.write(json.dumps(record, sort_keys=False) + "\n")
        self._handle.flush()

    def write_spans(self, spans: Tuple[Span, ...]) -> None:
        """One line per span, depth-first, with the dotted path."""
        for root in spans:
            self._write_span_tree(root, prefix="")

    def _write_span_tree(self, item: Span, prefix: str) -> None:
        path = f"{prefix}.{item.name}" if prefix else item.name
        record: Dict[str, object] = {
            "kind": "span",
            "path": path,
            "name": item.name,
            "seconds": item.seconds,
        }
        if item.memory_peak_bytes is not None:
            record["memory_peak_bytes"] = item.memory_peak_bytes
        self.write_record(record)
        for child in item.children:
            self._write_span_tree(child, prefix=path)

    def write_run(self, telemetry: MiningTelemetry) -> None:
        """A full trace of one run: span lines then the run record."""
        self.write_spans(telemetry.spans)
        self.write_record(telemetry.as_run_record())


def iter_trace(
    source: Union[str, IO[str]]
) -> Iterator[Dict[str, object]]:
    """Stream a JSON-lines trace one record at a time.

    Blank lines are ignored; anything else must be valid JSON.  Memory
    use is O(longest line), never O(file) — a nightly sweep trace with
    thousands of snapshot records costs the same as a two-line one.
    Given a path the file is opened lazily and closed when the
    generator is exhausted or dropped; given a handle, the caller keeps
    ownership and the handle is read from its current position.
    """
    if hasattr(source, "read"):
        for line in source:  # type: ignore[union-attr]
            if line.strip():
                yield json.loads(line)
        return
    with open(source, "r", encoding="utf-8") as handle:
        for line in handle:
            if line.strip():
                yield json.loads(line)


def read_trace(source: Union[str, IO[str]]) -> List[Dict[str, object]]:
    """Parse a whole JSON-lines trace into a list of records.

    Convenience eager form of :func:`iter_trace`; prefer the iterator
    for anything that might be large (the trace CLI does).
    """
    return list(iter_trace(source))


def profile_call(
    fn: Callable[[], object],
    engine: str,
    params: Optional[Dict[str, object]] = None,
    dataset: Optional[str] = None,
    track_memory: bool = False,
    stats: Optional[MiningStats] = None,
    count: Callable[[object], int] = lambda result: len(result),  # type: ignore[arg-type]
) -> Tuple[object, MiningTelemetry]:
    """Run ``fn`` under a fresh collector and package the telemetry.

    This is the generic profiling wrapper for code paths that do not go
    through ``mine_recurring_patterns`` (baseline miners, the
    noise-tolerant miner): any :func:`~repro.obs.spans.span` calls made
    inside ``fn`` are captured as the phase breakdown.

    ``count`` extracts ``patterns_found`` from the result (``len`` by
    default); ``stats`` supplies counters when the callee populates
    them, otherwise an empty :class:`MiningStats` is attached.
    """
    collector = SpanCollector(track_memory=track_memory)
    with collector:
        with span("run") as run_span:
            result = fn()
    run_stats = stats if stats is not None else MiningStats()
    if run_stats.patterns_found == 0:
        run_stats.patterns_found = count(result)
    telemetry = MiningTelemetry(
        engine=engine,
        params=dict(params or {}),
        stats=run_stats,
        spans=collector.spans,
        patterns_found=count(result),
        seconds=run_span.seconds,
        memory_peak_bytes=collector.memory_peak_bytes,
        dataset=dataset,
    )
    return result, telemetry


def _format_bytes(value: Optional[int]) -> str:
    if value is None:
        return ""
    if value >= 1 << 20:
        return f"{value / (1 << 20):.1f} MiB"
    if value >= 1 << 10:
        return f"{value / (1 << 10):.1f} KiB"
    return f"{value} B"
