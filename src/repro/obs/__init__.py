"""repro.obs — the observability layer.

Cross-cutting measurement for every mining path:

* :mod:`repro.obs.spans` — nested wall-clock spans, near-zero cost
  when no collector is active;
* :mod:`repro.obs.counters` — the shared :class:`MiningStats` counter
  protocol all engines populate;
* :mod:`repro.obs.memory` — opt-in ``tracemalloc`` peak sampling;
* :mod:`repro.obs.report` — sinks: summary tables, stdlib logging and
  JSON-lines traces whose run records follow the documented
  ``repro-run/v1`` schema;
* :mod:`repro.obs.metrics` — a process-safe counter/gauge/histogram
  registry with ``repro-metrics/v1`` snapshots and Prometheus-style
  text exposition;
* :mod:`repro.obs.progress` — live progress/ETA lines, worker
  heartbeat gauges and stale-worker reports for long runs;
* :mod:`repro.obs.analyze` — post-hoc trace analysis: span trees,
  phase aggregates, critical path and A/B comparison (the
  ``repro-mine trace`` subcommand).

Most users never touch this package directly — they pass
``collect_stats=True`` (and friends) to
:func:`repro.mine_recurring_patterns`, or ``--profile`` /
``--trace-out`` / ``--progress`` to the CLI — but the pieces are
public and composable.
"""

from repro.obs.analyze import (
    TraceAnalysis,
    analyze_trace,
    render_analysis,
    render_comparison,
    render_span_tree,
)
from repro.obs.counters import MiningStats, StatsSource
from repro.obs.memory import MemoryTracker, peak_memory
from repro.obs.metrics import (
    METRICS_SCHEMA,
    MetricsEmitter,
    MetricsRegistry,
    publish_mining_stats,
    render_prometheus,
    validate_metrics_record,
)
from repro.obs.progress import (
    MiningMonitor,
    ProgressReporter,
    ProgressTracker,
    StaleWorkerReport,
    monitor_from_options,
)
from repro.obs.report import (
    RUN_SCHEMA,
    SWEEP_SCHEMA,
    MiningTelemetry,
    TraceWriter,
    iter_trace,
    profile_call,
    read_trace,
    validate_run_record,
    validate_sweep_record,
)
from repro.obs.spans import Span, SpanCollector, current_collector, span

__all__ = [
    "MiningStats",
    "StatsSource",
    "MemoryTracker",
    "peak_memory",
    "METRICS_SCHEMA",
    "MetricsEmitter",
    "MetricsRegistry",
    "publish_mining_stats",
    "render_prometheus",
    "validate_metrics_record",
    "MiningMonitor",
    "ProgressReporter",
    "ProgressTracker",
    "StaleWorkerReport",
    "monitor_from_options",
    "TraceAnalysis",
    "analyze_trace",
    "render_analysis",
    "render_comparison",
    "render_span_tree",
    "RUN_SCHEMA",
    "SWEEP_SCHEMA",
    "MiningTelemetry",
    "TraceWriter",
    "iter_trace",
    "profile_call",
    "read_trace",
    "validate_run_record",
    "validate_sweep_record",
    "Span",
    "SpanCollector",
    "current_collector",
    "span",
]
