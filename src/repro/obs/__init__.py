"""repro.obs — the observability layer.

Cross-cutting measurement for every mining path:

* :mod:`repro.obs.spans` — nested wall-clock spans, near-zero cost
  when no collector is active;
* :mod:`repro.obs.counters` — the shared :class:`MiningStats` counter
  protocol all engines populate;
* :mod:`repro.obs.memory` — opt-in ``tracemalloc`` peak sampling;
* :mod:`repro.obs.report` — sinks: summary tables, stdlib logging and
  JSON-lines traces whose run records follow the documented
  ``repro-run/v1`` schema.

Most users never touch this package directly — they pass
``collect_stats=True`` (and friends) to
:func:`repro.mine_recurring_patterns`, or ``--profile`` /
``--trace-out`` to the CLI — but the pieces are public and composable.
"""

from repro.obs.counters import MiningStats, StatsSource
from repro.obs.memory import MemoryTracker, peak_memory
from repro.obs.report import (
    RUN_SCHEMA,
    SWEEP_SCHEMA,
    MiningTelemetry,
    TraceWriter,
    profile_call,
    read_trace,
    validate_run_record,
    validate_sweep_record,
)
from repro.obs.spans import Span, SpanCollector, current_collector, span

__all__ = [
    "MiningStats",
    "StatsSource",
    "MemoryTracker",
    "peak_memory",
    "RUN_SCHEMA",
    "SWEEP_SCHEMA",
    "MiningTelemetry",
    "TraceWriter",
    "profile_call",
    "read_trace",
    "validate_run_record",
    "validate_sweep_record",
    "Span",
    "SpanCollector",
    "current_collector",
    "span",
]
