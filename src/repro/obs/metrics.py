"""Process-safe metrics: counters, gauges and fixed-bucket histograms.

PR 1's telemetry (:mod:`repro.obs.report`) is *post-hoc*: a run record
exists only after the run finishes.  This module is the *live* side —
the metrics surface ROADMAP item 2's service daemon assumes, shared by
the batch CLI, the bench harness and the supervised pool:

* :class:`MetricsRegistry` — a named family of :class:`Counter` /
  :class:`Gauge` / :class:`Histogram` instruments.  Every mutation and
  every snapshot happens under one registry-wide lock, so a snapshot
  taken while other threads update is always internally consistent.
  Cross-*process* safety comes from the same design as the rest of the
  parallel layer: workers never touch the parent's registry — their
  numbers travel through the existing chunk-result channel (counters in
  the merged :class:`~repro.obs.counters.MiningStats`, heartbeats as
  marker-file mtimes) and the parent publishes them, or whole snapshots
  are combined with :meth:`MetricsRegistry.merge_snapshot`.
* ``repro-metrics/v1`` — the JSONL snapshot record
  (:meth:`MetricsRegistry.snapshot`, checked by
  :func:`validate_metrics_record`), written through the same
  :class:`~repro.obs.report.TraceWriter` sink as every other schema,
  periodically via :class:`MetricsEmitter`.
* :func:`render_prometheus` — the text exposition format a future
  ``/metrics`` endpoint will serve, with cumulative ``le`` buckets.

:func:`publish_mining_stats` maps the engines' additive
:class:`~repro.obs.counters.MiningStats` onto registry counters, so
every mining path feeds the same instrument names.
"""

from __future__ import annotations

import re
import threading
import time
from bisect import bisect_left
from typing import (
    IO,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.exceptions import ParameterError
from repro.obs.counters import MiningStats

__all__ = [
    "METRICS_SCHEMA",
    "DEFAULT_SECONDS_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsEmitter",
    "publish_mining_stats",
    "render_prometheus",
    "validate_metrics_record",
]

#: Schema tag carried by every metrics snapshot record.
METRICS_SCHEMA = "repro-metrics/v1"

#: Default histogram boundaries for run/phase durations, spanning the
#: running example (sub-millisecond) to a quest-scale sweep (minutes).
DEFAULT_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0,
)

#: Prometheus-compatible metric and label names.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: The identity of one instrument: name plus its sorted label items.
_Key = Tuple[str, Tuple[Tuple[str, str], ...]]


def _labels_key(labels: Optional[Mapping[str, str]]) -> Tuple[Tuple[str, str], ...]:
    if not labels:
        return ()
    for name, value in labels.items():
        if not _LABEL_RE.match(name):
            raise ParameterError(f"invalid label name {name!r}")
        if not isinstance(value, str):
            raise ParameterError(
                f"label {name!r} value must be str, "
                f"got {type(value).__name__}"
            )
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing count.  Create via the registry."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...],
                 lock: threading.RLock):
        self.name = name
        self.labels = labels
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ParameterError(
                f"counter {self.name!r} cannot decrease (inc {amount!r})"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (e.g. heartbeat age)."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...],
                 lock: threading.RLock):
        self.name = name
        self.labels = labels
        self._lock = lock
        self._value = 0.0

    def set(self, value: Union[int, float]) -> None:
        """Replace the gauge value."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-boundary histogram of observations.

    ``boundaries`` are the upper bucket edges; internally each bucket
    holds the *non-cumulative* count of observations in ``(prev, edge]``
    (plus one overflow bucket above the last edge).  An observation
    exactly equal to an edge lands in that edge's bucket — i.e. the
    snapshot and exposition follow Prometheus ``le`` (≤) semantics.
    """

    __slots__ = ("name", "labels", "boundaries", "_lock", "_counts",
                 "_sum", "_count")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...],
                 boundaries: Tuple[float, ...], lock: threading.RLock):
        if not boundaries:
            raise ParameterError(
                f"histogram {name!r} needs at least one bucket boundary"
            )
        if any(b2 <= b1 for b1, b2 in zip(boundaries, boundaries[1:])):
            raise ParameterError(
                f"histogram {name!r} boundaries must be strictly "
                f"increasing, got {boundaries!r}"
            )
        self.name = name
        self.labels = labels
        self.boundaries = boundaries
        self._lock = lock
        self._counts = [0] * (len(boundaries) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: Union[int, float]) -> None:
        """Record one observation."""
        index = bisect_left(self.boundaries, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def bucket_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts, overflow last."""
        with self._lock:
            return list(self._counts)

    def cumulative_counts(self) -> List[int]:
        """Cumulative ``le`` counts, one per boundary plus ``+Inf``."""
        counts = self.bucket_counts()
        out: List[int] = []
        running = 0
        for count in counts:
            running += count
            out.append(running)
        return out


class MetricsRegistry:
    """The named instrument family every mining path publishes into.

    Instruments are identified by ``(name, labels)``; :meth:`counter` /
    :meth:`gauge` / :meth:`histogram` get-or-create, so publishing code
    never needs registration boilerplate.  One ``RLock`` guards every
    instrument *and* :meth:`snapshot`, which is what makes a snapshot
    taken under concurrent updates internally consistent (pinned by
    ``tests/obs/test_metrics.py``).
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: Dict[_Key, object] = {}

    # -- get-or-create -------------------------------------------------
    def _get(self, name: str, labels, kind, **kwargs):
        if not _NAME_RE.match(name):
            raise ParameterError(f"invalid metric name {name!r}")
        key: _Key = (name, _labels_key(labels))
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise ParameterError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, not {kind.__name__}"
                    )
                boundaries = kwargs.get("boundaries")
                if boundaries is not None and tuple(boundaries) != (
                    existing.boundaries  # type: ignore[union-attr]
                ):
                    raise ParameterError(
                        f"histogram {name!r} already registered with "
                        f"different boundaries"
                    )
                return existing
            metric = kind(name, key[1], lock=self._lock, **kwargs)
            self._metrics[key] = metric
            return metric

    def counter(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Counter:
        """Get or create the counter ``name`` with ``labels``."""
        return self._get(name, labels, Counter)

    def gauge(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Gauge:
        """Get or create the gauge ``name`` with ``labels``."""
        return self._get(name, labels, Gauge)

    def histogram(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        boundaries: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
    ) -> Histogram:
        """Get or create the histogram ``name`` with ``labels``.

        Re-requesting an existing histogram with different
        ``boundaries`` raises — mixed-boundary merging is undefined.
        """
        return self._get(
            name, labels, Histogram, boundaries=tuple(boundaries)
        )

    def instruments(self) -> List[object]:
        """Every registered instrument, in deterministic name order."""
        with self._lock:
            return [
                self._metrics[key] for key in sorted(self._metrics)
            ]

    # -- the repro-metrics/v1 record -----------------------------------
    def snapshot(self) -> Dict[str, object]:
        """The ``repro-metrics/v1`` record of the current state."""
        counters: List[Dict[str, object]] = []
        gauges: List[Dict[str, object]] = []
        histograms: List[Dict[str, object]] = []
        with self._lock:
            for key in sorted(self._metrics):
                metric = self._metrics[key]
                entry: Dict[str, object] = {
                    "name": metric.name,  # type: ignore[attr-defined]
                    "labels": dict(metric.labels),  # type: ignore[attr-defined]
                }
                if isinstance(metric, Counter):
                    entry["value"] = metric.value
                    counters.append(entry)
                elif isinstance(metric, Gauge):
                    entry["value"] = metric.value
                    gauges.append(entry)
                else:
                    histogram = metric
                    assert isinstance(histogram, Histogram)
                    entry["boundaries"] = list(histogram.boundaries)
                    entry["counts"] = histogram.bucket_counts()
                    entry["sum"] = histogram.sum
                    entry["count"] = histogram.count
                    histograms.append(entry)
        return {
            "schema": METRICS_SCHEMA,
            "kind": "metrics",
            "at_unix": time.time(),
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def merge_snapshot(self, record: Mapping[str, object]) -> None:
        """Fold one ``repro-metrics/v1`` record into this registry.

        Counters and histogram buckets add; gauges overwrite per label
        set (last writer wins — the merge semantics of instantaneous
        values).  This is how per-process snapshots combine: each
        worker pool or job serializes its registry through the result
        channel and the parent merges.
        """
        validate_metrics_record(record)
        for entry in record["counters"]:  # type: ignore[union-attr]
            self.counter(entry["name"], entry["labels"]).inc(entry["value"])
        for entry in record["gauges"]:  # type: ignore[union-attr]
            self.gauge(entry["name"], entry["labels"]).set(entry["value"])
        for entry in record["histograms"]:  # type: ignore[union-attr]
            histogram = self.histogram(
                entry["name"], entry["labels"],
                boundaries=entry["boundaries"],
            )
            with histogram._lock:
                for index, count in enumerate(entry["counts"]):
                    histogram._counts[index] += count
                histogram._sum += entry["sum"]
                histogram._count += entry["count"]


def validate_metrics_record(record: Mapping[str, object]) -> None:
    """Raise ``ValueError`` unless ``record`` is a valid metrics record.

    Examples
    --------
    >>> validate_metrics_record({"schema": "bogus"})
    Traceback (most recent call last):
        ...
    ValueError: metrics record schema 'bogus' != 'repro-metrics/v1'
    """
    schema = record.get("schema")
    if schema != METRICS_SCHEMA:
        raise ValueError(
            f"metrics record schema {schema!r} != {METRICS_SCHEMA!r}"
        )
    if record.get("kind") != "metrics":
        raise ValueError(
            f"metrics record kind {record.get('kind')!r} != 'metrics'"
        )
    for key in ("at_unix", "counters", "gauges", "histograms"):
        if key not in record:
            raise ValueError(f"metrics record missing required key {key!r}")
    if not isinstance(record["at_unix"], (int, float)) or isinstance(
        record["at_unix"], bool
    ):
        raise ValueError("metrics record 'at_unix' must be a number")
    for section in ("counters", "gauges"):
        entries = record[section]
        if not isinstance(entries, list):
            raise ValueError(f"metrics record {section!r} must be a list")
        for entry in entries:
            for key in ("name", "labels", "value"):
                if key not in entry:
                    raise ValueError(
                        f"metrics record {section} entry missing {key!r}"
                    )
            if not isinstance(entry["labels"], dict):
                raise ValueError(
                    f"metrics record {section} entry 'labels' must be dict"
                )
    histograms = record["histograms"]
    if not isinstance(histograms, list):
        raise ValueError("metrics record 'histograms' must be a list")
    for entry in histograms:
        for key in ("name", "labels", "boundaries", "counts", "sum",
                    "count"):
            if key not in entry:
                raise ValueError(
                    f"metrics record histogram entry missing {key!r}"
                )
        boundaries = entry["boundaries"]
        counts = entry["counts"]
        if not isinstance(boundaries, list) or not isinstance(counts, list):
            raise ValueError(
                "metrics record histogram 'boundaries' and 'counts' "
                "must be lists"
            )
        if len(counts) != len(boundaries) + 1:
            raise ValueError(
                f"metrics record histogram {entry['name']!r} must have "
                f"len(boundaries) + 1 counts, got {len(counts)} counts "
                f"for {len(boundaries)} boundaries"
            )
        if sum(counts) != entry["count"]:
            raise ValueError(
                f"metrics record histogram {entry['name']!r} counts sum "
                f"to {sum(counts)} but 'count' says {entry['count']}"
            )


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _labels_text(
    labels: Iterable[Tuple[str, str]],
    extra: Optional[Tuple[str, str]] = None,
) -> str:
    pairs = list(labels)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in pairs
    )
    return "{" + inner + "}"


def _format_value(value: Union[int, float]) -> str:
    if value == int(value):
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in the Prometheus text exposition format.

    One ``# TYPE`` line per metric name (first label set seen), then
    one sample line per label set; histograms expand to cumulative
    ``_bucket{le=...}`` samples plus ``_sum`` and ``_count``.  This is
    the payload a ``/metrics`` endpoint serves verbatim.
    """
    lines: List[str] = []
    typed: set = set()
    for metric in registry.instruments():
        if isinstance(metric, Counter):
            kind = "counter"
        elif isinstance(metric, Gauge):
            kind = "gauge"
        else:
            kind = "histogram"
        if metric.name not in typed:  # type: ignore[attr-defined]
            typed.add(metric.name)  # type: ignore[attr-defined]
            lines.append(f"# TYPE {metric.name} {kind}")  # type: ignore[attr-defined]
        if isinstance(metric, (Counter, Gauge)):
            lines.append(
                f"{metric.name}{_labels_text(metric.labels)} "
                f"{_format_value(metric.value)}"
            )
            continue
        cumulative = metric.cumulative_counts()
        edges = [str(edge) for edge in metric.boundaries] + ["+Inf"]
        for edge, count in zip(edges, cumulative):
            labels = _labels_text(metric.labels, extra=("le", edge))
            lines.append(f"{metric.name}_bucket{labels} {count}")
        labels = _labels_text(metric.labels)
        lines.append(f"{metric.name}_sum{labels} {_format_value(metric.sum)}")
        lines.append(f"{metric.name}_count{labels} {metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Periodic snapshot emission
# ----------------------------------------------------------------------
class MetricsEmitter:
    """Writes registry snapshots as JSONL at a bounded rate.

    ``maybe_emit()`` is safe to call from any hot path: it returns
    immediately unless ``interval`` seconds have passed since the last
    emission.  ``emit()`` forces a snapshot (used for the final flush
    when a run ends).  The target is anything
    :class:`~repro.obs.report.TraceWriter` accepts — a path or an open
    text handle.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        target: Union[str, IO[str]],
        interval: float = 1.0,
    ) -> None:
        from repro.obs.report import TraceWriter

        if interval <= 0:
            raise ParameterError(
                f"emitter interval must be positive, got {interval!r}"
            )
        self.registry = registry
        self.interval = interval
        self._writer = TraceWriter(target)
        self._last: Optional[float] = None
        self._closed = False

    def maybe_emit(self) -> bool:
        """Emit a snapshot if the interval has elapsed; report whether."""
        now = time.monotonic()
        if self._last is not None and now - self._last < self.interval:
            return False
        self.emit()
        return True

    def emit(self) -> Dict[str, object]:
        """Write one validated snapshot record now and return it."""
        record = self.registry.snapshot()
        validate_metrics_record(record)
        if not self._closed:
            self._writer.write_record(record)
        self._last = time.monotonic()
        return record

    def close(self, final: bool = True) -> None:
        """Flush a last snapshot (by default) and release the sink."""
        if self._closed:
            return
        if final:
            self.emit()
        self._closed = True
        self._writer.close()


# ----------------------------------------------------------------------
# MiningStats -> counters
# ----------------------------------------------------------------------
def publish_mining_stats(
    registry: MetricsRegistry,
    stats: MiningStats,
    engine: Optional[str] = None,
) -> None:
    """Add one run's engine counters to ``registry``.

    Every :class:`MiningStats` field becomes the counter
    ``repro_mining_<field>_total`` (labelled by ``engine`` when given).
    The stats are additive over runs, so calling this per completed run
    accumulates a service-lifetime total — exactly the Prometheus
    counter contract.
    """
    labels = {"engine": engine} if engine else None
    for name in MiningStats.field_names():
        registry.counter(f"repro_mining_{name}_total", labels).inc(
            getattr(stats, name)
        )
