"""Post-hoc analysis of repro JSON-lines traces.

This is the engine behind the ``repro-mine trace`` subcommand: given a
trace produced anywhere in the toolchain — ``repro-run/v1`` run records
(façade ``--trace-out``), ``repro-sweep/v1`` sweep records,
``repro-qa/v1`` gate reports, ``repro-metrics/v1`` snapshots, plus the
per-span lines :class:`~repro.obs.report.TraceWriter` interleaves — it
answers the questions a human asks after a long run:

* *where did the time go?* — the span tree and per-phase aggregates;
* *what was the bottleneck?* — the critical path (the chain of
  largest children from the slowest root);
* *did run B actually get faster?* — A/B comparison with percent
  deltas per phase.

Everything reads through :func:`~repro.obs.report.iter_trace`, so a
multi-gigabyte nightly trace streams in O(longest line) memory; only
the aggregates are kept.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import IO, Dict, Iterable, List, Optional, Tuple, Union

from repro.obs.metrics import METRICS_SCHEMA
from repro.obs.report import iter_trace
from repro.obs.spans import Span

__all__ = [
    "TraceAnalysis",
    "analyze_trace",
    "render_analysis",
    "render_comparison",
    "render_span_tree",
]


@dataclass
class TraceAnalysis:
    """Aggregated view of one JSON-lines trace.

    Record payloads are bucketed by ``kind``; span trees are rebuilt
    from run/sweep records when present (the per-span lines a
    :meth:`~repro.obs.report.TraceWriter.write_run` interleaves
    duplicate the run record's own tree, so counting both would double
    every phase — standalone span lines are used only when no record
    carries spans).
    """

    source: Optional[str] = None
    runs: List[Dict[str, object]] = field(default_factory=list)
    sweeps: List[Dict[str, object]] = field(default_factory=list)
    qa_reports: List[Dict[str, object]] = field(default_factory=list)
    metrics: List[Dict[str, object]] = field(default_factory=list)
    span_lines: List[Dict[str, object]] = field(default_factory=list)
    other: List[Dict[str, object]] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_records(
        cls,
        records: Iterable[Dict[str, object]],
        source: Optional[str] = None,
    ) -> "TraceAnalysis":
        """Bucket a stream of trace records (generators welcome)."""
        analysis = cls(source=source)
        for record in records:
            kind = record.get("kind")
            schema = record.get("schema")
            if kind == "run":
                analysis.runs.append(record)
            elif kind == "sweep":
                analysis.sweeps.append(record)
            elif kind == "qa-report" or (
                isinstance(schema, str) and schema.startswith("repro-qa/")
            ):
                analysis.qa_reports.append(record)
            elif kind == "metrics" or schema == METRICS_SCHEMA:
                analysis.metrics.append(record)
            elif kind == "span":
                analysis.span_lines.append(record)
            else:
                analysis.other.append(record)
        return analysis

    @property
    def record_count(self) -> int:
        return (
            len(self.runs) + len(self.sweeps) + len(self.qa_reports)
            + len(self.metrics) + len(self.span_lines) + len(self.other)
        )

    # ------------------------------------------------------------------
    # Span trees
    # ------------------------------------------------------------------
    def span_roots(self) -> List[Span]:
        """Every span tree in the trace, rebuilt from the records.

        Preference order per the double-counting rule: run-record
        spans, then sweep cell spans, then (only if neither exists)
        a tree reassembled from the standalone ``kind=span`` lines'
        dotted paths.
        """
        roots: List[Span] = []
        for run in self.runs:
            for payload in run.get("spans", ()):  # type: ignore[union-attr]
                roots.append(Span.from_dict(payload))
        for sweep in self.sweeps:
            for cell in sweep.get("cells", ()):  # type: ignore[union-attr]
                label = _cell_label(cell)
                children = [
                    Span.from_dict(payload)
                    for payload in cell.get("spans", ())
                ]
                roots.append(
                    Span(
                        name=label,
                        started=0.0,
                        seconds=float(cell.get("seconds", 0.0)),
                        children=children,
                    )
                )
        if roots or not self.span_lines:
            return roots
        return _tree_from_span_lines(self.span_lines)

    def phase_totals(self) -> Dict[str, float]:
        """Summed seconds per span name, first-seen order."""
        totals: Dict[str, float] = {}
        for root in self.span_roots():
            for _, item in root.walk():
                totals[item.name] = (
                    totals.get(item.name, 0.0) + item.seconds
                )
        return totals

    def total_seconds(self) -> float:
        """Wall-clock accounted by the trace's top-level records."""
        total = sum(float(r.get("seconds", 0.0)) for r in self.runs)
        total += sum(float(r.get("seconds", 0.0)) for r in self.sweeps)
        total += sum(
            float(r.get("seconds", 0.0)) for r in self.qa_reports
        )
        if total == 0.0 and self.span_lines:
            total = sum(
                float(r.get("seconds", 0.0))
                for r in self.span_lines
                if "." not in str(r.get("path", ""))
            )
        return total

    def critical_path(self) -> List[Tuple[str, float]]:
        """The chain of largest children from the slowest root.

        The first element is the most expensive top-level span; each
        subsequent element is the most expensive child of the previous
        one.  On a parallel run this names the chunk that bounded the
        wall-clock — the LPT schedule's longest bar.
        """
        roots = self.span_roots()
        if not roots:
            return []
        node = max(roots, key=lambda item: item.seconds)
        path = [(node.name, node.seconds)]
        while node.children:
            node = max(node.children, key=lambda item: item.seconds)
            path.append((node.name, node.seconds))
        return path


def analyze_trace(source: Union[str, IO[str]]) -> TraceAnalysis:
    """Stream-parse a JSON-lines trace into a :class:`TraceAnalysis`."""
    label = source if isinstance(source, str) else getattr(
        source, "name", None
    )
    return TraceAnalysis.from_records(
        iter_trace(source),
        source=label if isinstance(label, str) else None,
    )


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_span_tree(roots: Iterable[Span]) -> str:
    """Indented span tree with per-span seconds and share of its root."""
    lines: List[str] = []
    for root in roots:
        denominator = root.seconds if root.seconds > 0 else None
        for depth, item in root.walk():
            share = (
                f" ({item.seconds / denominator * 100:5.1f}%)"
                if denominator is not None
                else ""
            )
            lines.append(
                f"{'  ' * depth}{item.name}  {item.seconds:.6f}s{share}"
            )
    return "\n".join(lines)


def render_analysis(analysis: TraceAnalysis) -> str:
    """The full human-readable report for one trace."""
    from repro.bench.reporting import format_table  # avoid cycle

    sections: List[str] = []
    header = analysis.source or "trace"
    sections.append(
        f"{header}: {analysis.record_count} records — "
        f"{len(analysis.runs)} run, {len(analysis.sweeps)} sweep, "
        f"{len(analysis.qa_reports)} qa, {len(analysis.metrics)} "
        f"metrics, {len(analysis.span_lines)} span lines"
    )
    for run in analysis.runs:
        engine = run.get("engine", "?")
        sections.append(
            f"run[{engine}]: {run.get('patterns_found', '?')} patterns "
            f"in {float(run.get('seconds', 0.0)):.3f}s "
            f"params={run.get('params')}"
        )
    for sweep in analysis.sweeps:
        counters = sweep.get("counters", {})
        sections.append(
            f"sweep[{sweep.get('engine', '?')}]: "
            f"{counters.get('cells_total', '?')} cells "  # type: ignore[union-attr]
            f"({counters.get('cells_mined', '?')} mined, "  # type: ignore[union-attr]
            f"{counters.get('cells_derived', '?')} derived) "  # type: ignore[union-attr]
            f"in {float(sweep.get('seconds', 0.0)):.3f}s"
        )
    for report in analysis.qa_reports:
        verdict = "PASS" if report.get("passed") else "FAIL"
        sections.append(
            f"qa: {verdict} in {float(report.get('seconds', 0.0)):.3f}s "
            f"(budget {float(report.get('budget_seconds', 0.0)):.1f}s, "
            f"seed {report.get('seed', '?')})"
        )

    roots = analysis.span_roots()
    if roots:
        sections.append("span tree:\n" + render_span_tree(roots))

    totals = analysis.phase_totals()
    if totals:
        grand = sum(totals.values())
        rows = [
            [
                name,
                f"{seconds:.6f}",
                f"{seconds / grand * 100:.1f}%" if grand > 0 else "",
            ]
            for name, seconds in sorted(
                totals.items(), key=lambda pair: -pair[1]
            )
        ]
        sections.append(
            format_table(
                ["phase", "seconds", "share"], rows,
                title="per-phase aggregate",
            )
        )

    path = analysis.critical_path()
    if path:
        sections.append(
            "critical path: "
            + " -> ".join(
                f"{name} ({seconds:.6f}s)" for name, seconds in path
            )
        )

    if analysis.metrics:
        last = analysis.metrics[-1]
        rows = [
            [
                _metric_label(entry),
                _format_value(entry.get("value")),
            ]
            for entry in last.get("counters", ())  # type: ignore[union-attr]
        ]
        if rows:
            sections.append(
                format_table(
                    ["counter", "value"], rows,
                    title=(
                        f"final metrics snapshot "
                        f"({len(analysis.metrics)} snapshots)"
                    ),
                )
            )
        stale = [
            entry
            for snapshot in analysis.metrics
            for entry in snapshot.get("counters", ())  # type: ignore[union-attr]
            if entry.get("name") == "repro_worker_stale_total"
        ]
        if stale:
            sections.append(
                "stale workers were reported — check the supervisor "
                "notes above the deadline faults"
            )
    return "\n\n".join(sections)


def render_comparison(
    a: TraceAnalysis,
    b: TraceAnalysis,
    label_a: str = "A",
    label_b: str = "B",
) -> str:
    """Per-phase A/B table with percent deltas (B relative to A)."""
    from repro.bench.reporting import format_table  # avoid cycle

    totals_a = a.phase_totals()
    totals_b = b.phase_totals()
    names = list(totals_a)
    names.extend(
        name for name in totals_b if name not in totals_a
    )
    rows: List[List[object]] = []
    for name in names:
        rows.append(
            _delta_row(name, totals_a.get(name), totals_b.get(name))
        )
    rows.append(
        _delta_row("total", a.total_seconds(), b.total_seconds())
    )
    patterns_a = sum(
        int(run.get("patterns_found", 0)) for run in a.runs  # type: ignore[arg-type]
    )
    patterns_b = sum(
        int(run.get("patterns_found", 0)) for run in b.runs  # type: ignore[arg-type]
    )
    table = format_table(
        ["phase", f"{label_a} (s)", f"{label_b} (s)", "delta"],
        rows,
        title=f"{label_a} = {a.source or '?'}  vs  "
        f"{label_b} = {b.source or '?'}",
    )
    if patterns_a or patterns_b:
        marker = "" if patterns_a == patterns_b else "  <-- DIFFER"
        table += (
            f"\npatterns: {label_a}={patterns_a} "
            f"{label_b}={patterns_b}{marker}"
        )
    return table


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _cell_label(cell: Dict[str, object]) -> str:
    params = cell.get("params")
    if isinstance(params, dict):
        label = (
            f"cell[per={params.get('per')},"
            f"minPS={params.get('min_ps')},"
            f"minRec={params.get('min_rec')}]"
        )
    else:
        label = "cell"
    if cell.get("derived"):
        label += " (derived)"
    return label


def _tree_from_span_lines(
    records: Iterable[Dict[str, object]]
) -> List[Span]:
    """Reassemble span trees from dotted-``path`` span lines."""
    roots: List[Span] = []
    by_path: Dict[str, Span] = {}
    for record in records:
        path = str(record.get("path", record.get("name", "?")))
        node = Span(
            name=str(record.get("name", path.rsplit(".", 1)[-1])),
            started=0.0,
            seconds=float(record.get("seconds", 0.0)),  # type: ignore[arg-type]
            memory_peak_bytes=record.get("memory_peak_bytes"),  # type: ignore[arg-type]
        )
        by_path[path] = node
        parent = by_path.get(path.rsplit(".", 1)[0]) \
            if "." in path else None
        if parent is not None:
            parent.children.append(node)
        else:
            roots.append(node)
    return roots


def _metric_label(entry: Dict[str, object]) -> str:
    labels = entry.get("labels")
    if isinstance(labels, dict) and labels:
        inner = ",".join(
            f"{key}={value}" for key, value in sorted(labels.items())
        )
        return f"{entry.get('name')}{{{inner}}}"
    return str(entry.get("name"))


def _format_value(value: object) -> str:
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return str(value)


def _delta_row(
    name: str, seconds_a: Optional[float], seconds_b: Optional[float]
) -> List[object]:
    cell_a = f"{seconds_a:.6f}" if seconds_a is not None else "-"
    cell_b = f"{seconds_b:.6f}" if seconds_b is not None else "-"
    if seconds_a and seconds_b is not None and seconds_a > 0:
        delta = (seconds_b - seconds_a) / seconds_a * 100.0
        sign = "+" if delta >= 0 else ""
        return [name, cell_a, cell_b, f"{sign}{delta:.1f}%"]
    return [name, cell_a, cell_b, "n/a"]
