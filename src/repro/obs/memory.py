"""Opt-in peak-memory sampling built on :mod:`tracemalloc`.

``tracemalloc`` is stdlib, deterministic and portable, which makes it
the right default for reproducible memory numbers (the paper's Table 6
reports peak memory per run); its cost — every allocation is traced —
is why memory tracking is opt-in everywhere in :mod:`repro.obs`.

:class:`MemoryTracker` owns the start/stop lifecycle (it will not stop
a trace it did not start, so it composes with an outer profiler) and
exposes the two operations the span layer needs: the current traced
peak and a peak reset, which is how per-span windows are carved out of
tracemalloc's single global peak counter.
"""

from __future__ import annotations

import tracemalloc
from typing import Tuple

__all__ = ["MemoryTracker", "peak_memory"]


class MemoryTracker:
    """Scoped access to ``tracemalloc`` peak measurements.

    Examples
    --------
    >>> tracker = MemoryTracker()
    >>> tracker.start()
    >>> blob = bytearray(256 * 1024)
    >>> tracker.peak() >= 256 * 1024
    True
    >>> tracker.stop()
    """

    def __init__(self) -> None:
        self._started_here = False

    def start(self) -> None:
        """Begin tracing (a no-op when tracing is already on)."""
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_here = True
        tracemalloc.reset_peak()

    def stop(self) -> None:
        """Stop tracing, but only if this tracker started it."""
        if self._started_here:
            tracemalloc.stop()
            self._started_here = False

    @staticmethod
    def sample() -> Tuple[int, int]:
        """``(current, peak)`` traced bytes since the last reset."""
        return tracemalloc.get_traced_memory()

    @staticmethod
    def peak() -> int:
        """Peak traced bytes since tracing started or the last reset."""
        return tracemalloc.get_traced_memory()[1]

    @staticmethod
    def reset_peak() -> None:
        """Restart the peak window at the current usage."""
        tracemalloc.reset_peak()


class peak_memory:
    """Context manager measuring the peak allocation of a block.

    The measured peak (bytes) is available as ``.bytes`` after exit.

    Examples
    --------
    >>> with peak_memory() as measured:
    ...     blob = bytearray(512 * 1024)
    >>> measured.bytes >= 512 * 1024
    True
    """

    def __init__(self) -> None:
        self.bytes = 0
        self._tracker = MemoryTracker()

    def __enter__(self) -> "peak_memory":
        self._tracker.start()
        self._tracker.reset_peak()
        return self

    def __exit__(self, *exc: object) -> bool:
        self.bytes = self._tracker.peak()
        self._tracker.stop()
        return False
