"""Post-mining analysis of recurring patterns' temporal structure.

Recurring patterns carry *when* they fire; this module turns that into
answers to the questions the paper's applications actually ask:

* :func:`interval_coverage` — what fraction of a time range does a
  pattern behave periodically in?
* :func:`temporal_overlap` — Jaccard overlap between two patterns'
  periodic time (do they burst together?);
* :func:`co_seasonal_groups` — cluster patterns whose seasons overlap
  (the Table 6 story: `#oklahoma`, `#tornado` and `#prayforoklahoma`
  belong to one event even before anyone reads the tag names);
* :func:`seasonality_score` — how concentrated a pattern's occurrences
  are inside its interesting intervals (1.0 = perfectly seasonal,
  like `#uttarakhand`; low = background-ish).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro._validation import check_non_negative
from repro.core.model import PeriodicInterval, RecurringPattern
from repro.exceptions import ParameterError
from repro.timeseries.database import TransactionalDatabase

__all__ = [
    "interval_coverage",
    "temporal_overlap",
    "co_seasonal_groups",
    "seasonality_score",
]

Span = Tuple[float, float]


def _merge_spans(spans: Iterable[Span]) -> List[Span]:
    """Union of closed intervals as a sorted list of disjoint spans."""
    ordered = sorted(spans)
    merged: List[Span] = []
    for start, end in ordered:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def _total_length(spans: Sequence[Span]) -> float:
    return sum(end - start for start, end in spans)


def _intersect_length(left: Sequence[Span], right: Sequence[Span]) -> float:
    total = 0.0
    i = j = 0
    while i < len(left) and j < len(right):
        start = max(left[i][0], right[j][0])
        end = min(left[i][1], right[j][1])
        if start < end:
            total += end - start
        if left[i][1] < right[j][1]:
            i += 1
        else:
            j += 1
    return total


def _pattern_spans(pattern: RecurringPattern) -> List[Span]:
    return _merge_spans(
        (interval.start, interval.end) for interval in pattern.intervals
    )


def interval_coverage(
    pattern: RecurringPattern, start: float, end: float
) -> float:
    """Fraction of ``[start, end]`` covered by the pattern's intervals.

    Examples
    --------
    >>> from repro.core.model import PeriodicInterval, RecurringPattern
    >>> p = RecurringPattern(frozenset("x"), 6, (
    ...     PeriodicInterval(0, 5, 3), PeriodicInterval(15, 20, 3)))
    >>> interval_coverage(p, 0, 20)
    0.5
    """
    if end <= start:
        raise ParameterError(f"end {end} must exceed start {start}")
    clipped = [
        (max(s, start), min(e, end))
        for s, e in _pattern_spans(pattern)
        if min(e, end) > max(s, start)
    ]
    return _total_length(clipped) / (end - start)


def temporal_overlap(
    left: RecurringPattern, right: RecurringPattern
) -> float:
    """Jaccard overlap of the two patterns' periodic time.

    1.0 means identical seasons; 0.0 means disjoint.  Zero-length
    (single-occurrence) interval unions make the measure undefined and
    return 0.0.

    Examples
    --------
    >>> from repro.core.model import PeriodicInterval, RecurringPattern
    >>> a = RecurringPattern(frozenset("a"), 4, (PeriodicInterval(0, 10, 4),))
    >>> b = RecurringPattern(frozenset("b"), 4, (PeriodicInterval(5, 15, 4),))
    >>> temporal_overlap(a, b)  # 5 units shared of 15 total
    0.3333333333333333
    """
    left_spans = _pattern_spans(left)
    right_spans = _pattern_spans(right)
    intersection = _intersect_length(left_spans, right_spans)
    union = (
        _total_length(left_spans)
        + _total_length(right_spans)
        - intersection
    )
    if union <= 0:
        return 0.0
    return intersection / union


def co_seasonal_groups(
    patterns: Iterable[RecurringPattern],
    min_overlap: float = 0.5,
) -> List[List[RecurringPattern]]:
    """Group patterns whose seasons overlap by at least ``min_overlap``.

    Connected components under the pairwise
    :func:`temporal_overlap` >= ``min_overlap`` relation, computed with
    union-find.  Groups come back largest-first, members in
    deterministic item order.

    Examples
    --------
    >>> from repro.core.model import PeriodicInterval, RecurringPattern
    >>> storm = [
    ...     RecurringPattern(frozenset((tag,)), 4, (PeriodicInterval(0, 10, 4),))
    ...     for tag in ("tornado", "oklahoma")]
    >>> flood = [RecurringPattern(
    ...     frozenset(("yyc",)), 4, (PeriodicInterval(100, 120, 4),))]
    >>> groups = co_seasonal_groups(storm + flood)
    >>> [len(group) for group in groups]
    [2, 1]
    """
    if not 0 <= min_overlap <= 1:
        raise ParameterError(
            f"min_overlap must be in [0, 1], got {min_overlap!r}"
        )
    members = list(patterns)
    parent = list(range(len(members)))

    def find(node: int) -> int:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    def union(a: int, b: int) -> None:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[root_b] = root_a

    for i in range(len(members)):
        for j in range(i + 1, len(members)):
            if temporal_overlap(members[i], members[j]) >= min_overlap:
                union(i, j)

    groups: Dict[int, List[RecurringPattern]] = {}
    for index, pattern in enumerate(members):
        groups.setdefault(find(index), []).append(pattern)
    ordered = [
        sorted(group, key=lambda p: p.sorted_items())
        for group in groups.values()
    ]
    ordered.sort(key=lambda group: (-len(group), group[0].sorted_items()))
    return ordered


def seasonality_score(
    pattern: RecurringPattern, database: TransactionalDatabase
) -> float:
    """Fraction of the pattern's occurrences inside interesting intervals.

    1.0 — every occurrence sits in an interesting periodic-interval
    (purely seasonal, like a planted burst); values near the intervals'
    share of the time axis — background behaviour.
    """
    timestamps = database.timestamps_of(pattern.items)
    if not timestamps:
        return 0.0
    inside = sum(
        1
        for ts in timestamps
        if any(iv.start <= ts <= iv.end for iv in pattern.intervals)
    )
    return inside / len(timestamps)
