"""Calendar arithmetic over minute-granularity timestamps.

The paper's real workloads — and this library's synthetic stand-ins —
use *minutes since a stream epoch* as the timestamp unit, with common
thresholds like "six hours" (360) or "one day" (1440).  These helpers
centralise that arithmetic so examples and analyses stop hand-rolling
``// 1440``.
"""

from __future__ import annotations

from typing import Tuple

from repro._validation import Number, check_non_negative

__all__ = [
    "MINUTES_PER_HOUR",
    "MINUTES_PER_DAY",
    "MINUTES_PER_WEEK",
    "minutes",
    "day_of",
    "minute_of_day",
    "hour_of_day",
    "day_and_time",
    "format_minutes",
]

MINUTES_PER_HOUR = 60
MINUTES_PER_DAY = 24 * MINUTES_PER_HOUR
MINUTES_PER_WEEK = 7 * MINUTES_PER_DAY


def minutes(
    days: Number = 0, hours: Number = 0, mins: Number = 0
) -> float:
    """Compose a duration in minutes.

    Examples
    --------
    >>> minutes(days=1)
    1440
    >>> minutes(hours=6)
    360
    >>> minutes(days=1, hours=2, mins=30)
    1590
    """
    check_non_negative(days, "days")
    check_non_negative(hours, "hours")
    check_non_negative(mins, "mins")
    total = days * MINUTES_PER_DAY + hours * MINUTES_PER_HOUR + mins
    return int(total) if float(total).is_integer() else total


def day_of(ts: Number) -> int:
    """The (0-based) day index a minute timestamp falls on.

    Examples
    --------
    >>> day_of(1439), day_of(1440)
    (0, 1)
    """
    return int(ts // MINUTES_PER_DAY)


def minute_of_day(ts: Number) -> int:
    """Minutes since that day's midnight."""
    return int(ts % MINUTES_PER_DAY)


def hour_of_day(ts: Number) -> int:
    """The hour-of-day (0-23) of a minute timestamp."""
    return minute_of_day(ts) // MINUTES_PER_HOUR


def day_and_time(ts: Number) -> Tuple[int, int, int]:
    """``(day, hour, minute)`` decomposition of a minute timestamp.

    Examples
    --------
    >>> day_and_time(minutes(days=3, hours=14, mins=5))
    (3, 14, 5)
    """
    day = day_of(ts)
    remainder = minute_of_day(ts)
    return day, remainder // MINUTES_PER_HOUR, remainder % MINUTES_PER_HOUR


def format_minutes(ts: Number) -> str:
    """Human form ``d<day> HH:MM`` of a minute timestamp.

    Examples
    --------
    >>> format_minutes(minutes(days=51, hours=1, mins=8))
    'd51 01:08'
    """
    day, hour, minute = day_and_time(ts)
    return f"d{day} {hour:02d}:{minute:02d}"
