"""Columnar (vertical, array-backed) view of a transactional database.

The pure-python :class:`~repro.timeseries.database.TransactionalDatabase`
stores transactions as tuples of frozensets and per-item point sequences
as tuples of numbers — ideal for correctness, hostile to NumPy.  This
module materialises the same information once as flat arrays, the
backbone of the ``rp-eclat-vec`` engine (:mod:`repro.core.rp_eclat_vec`):

* ``timestamps`` — one sorted ``int64`` (or ``float64``) array with the
  timestamp of every transaction; position in this array is the
  *transaction id*;
* ``items`` / ``indptr`` / ``indices`` — a CSR-style index: item ``i``
  (in deterministic sorted-by-``repr`` order) occurs in the transactions
  ``indices[indptr[i]:indptr[i + 1]]``, each row strictly increasing.

Ts-lists become integer index arrays into ``timestamps``, so set
intersection is array intersection and interval extraction is one
``np.diff`` sweep over a gather (see ``docs/performance.md``,
"Columnar kernel").

The view is built from the cached
:meth:`~repro.timeseries.database.TransactionalDatabase.item_timestamps`
scan and is itself cached on the database
(:meth:`~repro.timeseries.database.TransactionalDatabase.columnar`), so
repeated mines and sweep columns share one materialisation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, NamedTuple, Tuple

import numpy as np

from repro.timeseries.events import Item

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.timeseries.database import TransactionalDatabase

__all__ = ["ColumnarTDB"]


class ColumnarTDB(NamedTuple):
    """Immutable columnar view of a :class:`TransactionalDatabase`.

    Examples
    --------
    >>> from repro.timeseries.database import TransactionalDatabase
    >>> db = TransactionalDatabase([(1, "ab"), (3, "a"), (4, "ab")])
    >>> column = db.columnar()
    >>> column.timestamps
    array([1, 3, 4])
    >>> column.items
    ('a', 'b')
    >>> column.item_rows(1)  # transaction ids containing 'b'
    array([0, 2], dtype=int32)
    """

    timestamps: np.ndarray
    items: Tuple[Item, ...]
    indptr: np.ndarray
    indices: np.ndarray

    @classmethod
    def from_database(cls, database: "TransactionalDatabase") -> "ColumnarTDB":
        """Materialise the columnar view of ``database``.

        Raises
        ------
        ParameterError
            If timestamps overflow int64, sit in the diff-unsafe range
            (|ts| >= 2**62), or mix large integers into a float column
            (see :func:`repro.core.accel.as_timestamp_array`).
        """
        from repro.core.accel import as_timestamp_array

        timestamps = as_timestamp_array(
            [transaction.ts for transaction in database.transactions]
        )
        index = database.item_timestamps()
        items = tuple(sorted(index, key=repr))
        index_dtype = np.int32 if timestamps.size < 2 ** 31 else np.int64
        indptr = np.zeros(len(items) + 1, dtype=np.int64)
        rows = []
        for position, item in enumerate(items):
            row = np.searchsorted(timestamps, np.asarray(index[item]))
            rows.append(row.astype(index_dtype, copy=False))
            indptr[position + 1] = indptr[position] + row.size
        if rows:
            indices = np.concatenate(rows)
        else:
            indices = np.zeros(0, dtype=index_dtype)
        return cls(timestamps, items, indptr, indices)

    @property
    def n_transactions(self) -> int:
        """Number of transactions (the id universe for ``indices``)."""
        return self.timestamps.size

    def item_rows(self, position: int) -> np.ndarray:
        """Transaction ids containing item ``position`` (a view, not a copy)."""
        return self.indices[self.indptr[position] : self.indptr[position + 1]]
