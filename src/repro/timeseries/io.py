"""Plain-text readers and writers for event sequences and databases.

Two line-oriented formats are supported, both friendly to shell tools:

* **event format** — one event per line: ``<ts><TAB><item>``;
* **transaction format** — one transaction per line:
  ``<ts><TAB><item> <item> ...`` (items separated by single spaces).

Timestamps are parsed as ``int`` when possible, otherwise ``float``.
Blank lines and lines starting with ``#`` are ignored.  Malformed lines
raise :class:`~repro.exceptions.DataFormatError` with the line number.

Besides the eager loaders, the transaction format has a *streaming*
surface for out-of-core work (:mod:`repro.shard`):

* :func:`stream_transaction_rows` lazily yields parsed ``(ts, items)``
  rows — optionally via ``mmap`` — without materializing the file;
* :func:`load_transactional_database_streaming` builds a database from
  that stream (byte-identical to :func:`load_transactional_database`);
* :func:`iter_database_chunks` cuts a *time-sorted* file into bounded
  :class:`~repro.timeseries.database.TransactionalDatabase` chunks,
  merging rows that share a timestamp and never splitting one across
  chunks.
"""

from __future__ import annotations

import mmap as _mmap
import os
from typing import IO, Iterator, List, Tuple, Union

from repro.exceptions import DataFormatError
from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.events import EventSequence

PathOrFile = Union[str, "os.PathLike[str]", IO[str]]

__all__ = [
    "load_event_sequence",
    "save_event_sequence",
    "load_transactional_database",
    "save_transactional_database",
    "load_transactional_database_streaming",
    "stream_transaction_rows",
    "iter_database_chunks",
    "load_spmf_transactions",
    "save_spmf_transactions",
]


def load_event_sequence(source: PathOrFile) -> EventSequence:
    """Read an event sequence from ``source`` (path or open text file)."""
    pairs = []
    for line_no, line in _lines(source):
        parts = line.split("\t")
        if len(parts) != 2 or not parts[1]:
            raise DataFormatError(
                f"line {line_no}: expected '<ts>\\t<item>', got {line!r}"
            )
        pairs.append((parts[1], _parse_ts(parts[0], line_no)))
    return EventSequence(pairs)


def save_event_sequence(events: EventSequence, target: PathOrFile) -> None:
    """Write an event sequence in event format.

    Items whose string form contains a tab or newline cannot be
    represented in the format and raise
    :class:`~repro.exceptions.DataFormatError` (silent corruption would
    be worse).
    """
    tab_or_newline = "\t\n"
    with _open_for_write(target) as handle:
        for event in events:
            item_text = _checked_item(event.item, separators=tab_or_newline)
            handle.write(f"{_format_ts(event.ts)}\t{item_text}\n")


def load_transactional_database(source: PathOrFile) -> TransactionalDatabase:
    """Read a transactional database from ``source``."""
    rows: List[Tuple[float, List[str]]] = []
    for line_no, line in _lines(source):
        rows.append(_parse_transaction_line(line_no, line))
    return TransactionalDatabase(rows)


def stream_transaction_rows(
    source: PathOrFile, *, use_mmap: bool = False
) -> Iterator[Tuple[float, List[str]]]:
    """Lazily yield ``(ts, items)`` rows of a transaction-format source.

    The generator parses one line at a time, so the file is never
    materialized: blank lines and ``#`` comments are skipped exactly as
    the eager loader skips them, and a malformed line raises
    :class:`~repro.exceptions.DataFormatError` *when the iterator
    reaches it*, carrying the same line number the eager loader would
    report.

    With ``use_mmap=True`` (paths only) the file is memory-mapped and
    lines are decoded straight from the mapping — the OS pages the data
    in and out instead of the Python heap holding it.
    """
    for line_no, line in _lines(source, use_mmap=use_mmap):
        yield _parse_transaction_line(line_no, line)


def load_transactional_database_streaming(
    source: PathOrFile, *, use_mmap: bool = False
) -> TransactionalDatabase:
    """Build a database by streaming ``source`` row by row.

    Byte-identical to :func:`load_transactional_database` on any input
    (same parsing, same grouping, same errors); only the peak memory
    profile differs — no intermediate row list is ever built.
    """
    return TransactionalDatabase(
        stream_transaction_rows(source, use_mmap=use_mmap)
    )


def iter_database_chunks(
    source: PathOrFile, max_transactions: int, *, use_mmap: bool = False
) -> Iterator[TransactionalDatabase]:
    """Cut a *time-sorted* transaction file into bounded database chunks.

    Yields :class:`~repro.timeseries.database.TransactionalDatabase`
    chunks of at most ``max_transactions`` transactions each.  Rows
    sharing a timestamp are merged into one transaction (exactly like
    the eager loader's constructor pass) and are never split across a
    chunk boundary, so concatenating the chunks reproduces the eager
    database transaction for transaction.

    Timestamps must be non-decreasing in file order — chunking an
    unsorted file by position would not partition the *time* axis, so a
    timestamp regression raises
    :class:`~repro.exceptions.DataFormatError` with the offending line
    number.  This is the reader that feeds the out-of-core sharded
    miner (:mod:`repro.shard`); chunk boundaries are deterministic, so
    repeated passes over the same file see identical chunks.
    """
    if isinstance(max_transactions, bool) or not isinstance(
        max_transactions, int
    ) or max_transactions < 1:
        raise DataFormatError(
            f"max_transactions must be a positive int, "
            f"got {max_transactions!r}"
        )
    rows: List[Tuple[float, List[str]]] = []
    distinct = 0
    previous_ts: float = float("-inf")
    for line_no, line in _lines(source, use_mmap=use_mmap):
        ts, items = _parse_transaction_line(line_no, line)
        if ts < previous_ts:
            raise DataFormatError(
                f"line {line_no}: timestamps must be non-decreasing for "
                f"chunked reading, saw {previous_ts!r} then {ts!r}"
            )
        if ts != previous_ts:
            if distinct == max_transactions:
                yield TransactionalDatabase(rows)
                rows = []
                distinct = 0
            distinct += 1
            previous_ts = ts
        rows.append((ts, items))
    if rows:
        yield TransactionalDatabase(rows)


def save_transactional_database(
    database: TransactionalDatabase, target: PathOrFile
) -> None:
    """Write a database in transaction format (items sorted per line).

    Items whose string form contains whitespace cannot be represented
    (the format separates items with spaces) and raise
    :class:`~repro.exceptions.DataFormatError`.
    """
    with _open_for_write(target) as handle:
        for ts, itemset in database:
            items = " ".join(
                _checked_item(item, separators=" \t\n")
                for item in sorted(itemset, key=repr)
            )
            handle.write(f"{_format_ts(ts)}\t{items}\n")


def load_spmf_transactions(
    source: PathOrFile, start_ts: int = 1
) -> TransactionalDatabase:
    """Read an SPMF-style transaction file.

    The SPMF library (whose format much of the periodic-pattern-mining
    ecosystem shares) writes one transaction per line as space-separated
    items, with ``@``-prefixed metadata lines and ``%`` comments.  The
    format has no timestamps, so — exactly like the paper does for
    T10I4D100K — consecutive integer timestamps starting at
    ``start_ts`` are assigned in file order.

    Lines containing the sequence markers ``-1``/``-2`` are rejected:
    that is SPMF's *sequence* format, which holds ordering information
    this loader would silently discard.
    """
    rows: List[Tuple[float, List[str]]] = []
    ts = start_ts
    for line_no, line in _lines(source):
        stripped = line.strip()
        if stripped.startswith("@") or stripped.startswith("%"):
            continue
        items = stripped.split()
        if "-1" in items or "-2" in items:
            raise DataFormatError(
                f"line {line_no}: SPMF sequence markers found; this is a "
                "sequence file, not a transaction file"
            )
        rows.append((ts, items))
        ts += 1
    return TransactionalDatabase(rows)


def save_spmf_transactions(
    database: TransactionalDatabase, target: PathOrFile
) -> None:
    """Write a database as SPMF transactions (timestamps are dropped).

    Items are sorted per line for determinism.  The temporal structure
    beyond transaction order is lost — that is inherent to the format,
    and precisely the limitation of symbolic-sequence mining the paper
    discusses.
    """
    with _open_for_write(target) as handle:
        for _, itemset in database:
            items = " ".join(
                _checked_item(item, separators=" \t\n")
                for item in sorted(itemset, key=repr)
            )
            handle.write(items + "\n")


# ----------------------------------------------------------------------
# Internal helpers
# ----------------------------------------------------------------------
def _lines(
    source: PathOrFile, *, use_mmap: bool = False
) -> Iterator[Tuple[int, str]]:
    """Yield (line_number, stripped_line), skipping blanks and comments."""
    if hasattr(source, "read"):
        yield from _iter_handle(source)  # type: ignore[arg-type]
    elif use_mmap:
        yield from _iter_mmap(source)
    else:
        with open(source, "r", encoding="utf-8") as handle:
            yield from _iter_handle(handle)


def _iter_handle(handle: IO[str]) -> Iterator[Tuple[int, str]]:
    for line_no, raw in enumerate(handle, start=1):
        line = raw.rstrip("\n")
        if not line.strip() or line.lstrip().startswith("#"):
            continue
        yield line_no, line


def _iter_mmap(path: Union[str, "os.PathLike[str]"]) -> Iterator[Tuple[int, str]]:
    """Line iterator over a memory-mapped file.

    Matches :func:`_iter_handle` on ``\\n``- and ``\\r\\n``-terminated
    files (lone-``\\r`` line endings need the buffered reader, which
    applies universal-newline translation).
    """
    with open(path, "rb") as handle:
        if os.fstat(handle.fileno()).st_size == 0:
            return
        with _mmap.mmap(
            handle.fileno(), 0, access=_mmap.ACCESS_READ
        ) as mapped:
            line_no = 0
            while True:
                raw = mapped.readline()
                if not raw:
                    return
                line_no += 1
                line = raw.decode("utf-8").rstrip("\r\n")
                if not line.strip() or line.lstrip().startswith("#"):
                    continue
                yield line_no, line


def _parse_transaction_line(
    line_no: int, line: str
) -> Tuple[float, List[str]]:
    """Parse one transaction-format line (shared by eager and streaming)."""
    parts = line.split("\t")
    if len(parts) != 2 or not parts[1].strip():
        raise DataFormatError(
            f"line {line_no}: expected '<ts>\\t<items>', got {line!r}"
        )
    return _parse_ts(parts[0], line_no), parts[1].split()


class _WriteContext:
    """Context manager that opens paths but leaves open handles alone."""

    def __init__(self, target: PathOrFile):
        self._target = target
        self._owned = not hasattr(target, "write")
        self._handle: IO[str] = None  # type: ignore[assignment]

    def __enter__(self) -> IO[str]:
        if self._owned:
            self._handle = open(self._target, "w", encoding="utf-8")
        else:
            self._handle = self._target  # type: ignore[assignment]
        return self._handle

    def __exit__(self, *exc_info: object) -> None:
        if self._owned:
            self._handle.close()


def _open_for_write(target: PathOrFile) -> _WriteContext:
    return _WriteContext(target)


def _parse_ts(text: str, line_no: int) -> float:
    text = text.strip()
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError as exc:
        raise DataFormatError(
            f"line {line_no}: unparsable timestamp {text!r}"
        ) from exc


def _checked_item(item: object, separators: str) -> str:
    """Stringify ``item``, refusing strings the format cannot hold."""
    text = str(item)
    if not text or any(ch in text for ch in separators):
        raise DataFormatError(
            f"item {text!r} cannot be written: it is empty or contains "
            "a separator character of the file format"
        )
    return text


def _format_ts(ts: float) -> str:
    if isinstance(ts, int) or (isinstance(ts, float) and ts.is_integer()):
        return str(int(ts))
    return repr(ts)
