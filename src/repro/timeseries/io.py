"""Plain-text readers and writers for event sequences and databases.

Two line-oriented formats are supported, both friendly to shell tools:

* **event format** — one event per line: ``<ts><TAB><item>``;
* **transaction format** — one transaction per line:
  ``<ts><TAB><item> <item> ...`` (items separated by single spaces).

Timestamps are parsed as ``int`` when possible, otherwise ``float``.
Blank lines and lines starting with ``#`` are ignored.  Malformed lines
raise :class:`~repro.exceptions.DataFormatError` with the line number.
"""

from __future__ import annotations

import os
from typing import IO, Iterator, List, Tuple, Union

from repro.exceptions import DataFormatError
from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.events import EventSequence

PathOrFile = Union[str, "os.PathLike[str]", IO[str]]

__all__ = [
    "load_event_sequence",
    "save_event_sequence",
    "load_transactional_database",
    "save_transactional_database",
    "load_spmf_transactions",
    "save_spmf_transactions",
]


def load_event_sequence(source: PathOrFile) -> EventSequence:
    """Read an event sequence from ``source`` (path or open text file)."""
    pairs = []
    for line_no, line in _lines(source):
        parts = line.split("\t")
        if len(parts) != 2 or not parts[1]:
            raise DataFormatError(
                f"line {line_no}: expected '<ts>\\t<item>', got {line!r}"
            )
        pairs.append((parts[1], _parse_ts(parts[0], line_no)))
    return EventSequence(pairs)


def save_event_sequence(events: EventSequence, target: PathOrFile) -> None:
    """Write an event sequence in event format.

    Items whose string form contains a tab or newline cannot be
    represented in the format and raise
    :class:`~repro.exceptions.DataFormatError` (silent corruption would
    be worse).
    """
    tab_or_newline = "\t\n"
    with _open_for_write(target) as handle:
        for event in events:
            item_text = _checked_item(event.item, separators=tab_or_newline)
            handle.write(f"{_format_ts(event.ts)}\t{item_text}\n")


def load_transactional_database(source: PathOrFile) -> TransactionalDatabase:
    """Read a transactional database from ``source``."""
    rows: List[Tuple[float, List[str]]] = []
    for line_no, line in _lines(source):
        parts = line.split("\t")
        if len(parts) != 2 or not parts[1].strip():
            raise DataFormatError(
                f"line {line_no}: expected '<ts>\\t<items>', got {line!r}"
            )
        items = parts[1].split()
        rows.append((_parse_ts(parts[0], line_no), items))
    return TransactionalDatabase(rows)


def save_transactional_database(
    database: TransactionalDatabase, target: PathOrFile
) -> None:
    """Write a database in transaction format (items sorted per line).

    Items whose string form contains whitespace cannot be represented
    (the format separates items with spaces) and raise
    :class:`~repro.exceptions.DataFormatError`.
    """
    with _open_for_write(target) as handle:
        for ts, itemset in database:
            items = " ".join(
                _checked_item(item, separators=" \t\n")
                for item in sorted(itemset, key=repr)
            )
            handle.write(f"{_format_ts(ts)}\t{items}\n")


def load_spmf_transactions(
    source: PathOrFile, start_ts: int = 1
) -> TransactionalDatabase:
    """Read an SPMF-style transaction file.

    The SPMF library (whose format much of the periodic-pattern-mining
    ecosystem shares) writes one transaction per line as space-separated
    items, with ``@``-prefixed metadata lines and ``%`` comments.  The
    format has no timestamps, so — exactly like the paper does for
    T10I4D100K — consecutive integer timestamps starting at
    ``start_ts`` are assigned in file order.

    Lines containing the sequence markers ``-1``/``-2`` are rejected:
    that is SPMF's *sequence* format, which holds ordering information
    this loader would silently discard.
    """
    rows: List[Tuple[float, List[str]]] = []
    ts = start_ts
    for line_no, line in _lines(source):
        stripped = line.strip()
        if stripped.startswith("@") or stripped.startswith("%"):
            continue
        items = stripped.split()
        if "-1" in items or "-2" in items:
            raise DataFormatError(
                f"line {line_no}: SPMF sequence markers found; this is a "
                "sequence file, not a transaction file"
            )
        rows.append((ts, items))
        ts += 1
    return TransactionalDatabase(rows)


def save_spmf_transactions(
    database: TransactionalDatabase, target: PathOrFile
) -> None:
    """Write a database as SPMF transactions (timestamps are dropped).

    Items are sorted per line for determinism.  The temporal structure
    beyond transaction order is lost — that is inherent to the format,
    and precisely the limitation of symbolic-sequence mining the paper
    discusses.
    """
    with _open_for_write(target) as handle:
        for _, itemset in database:
            items = " ".join(
                _checked_item(item, separators=" \t\n")
                for item in sorted(itemset, key=repr)
            )
            handle.write(items + "\n")


# ----------------------------------------------------------------------
# Internal helpers
# ----------------------------------------------------------------------
def _lines(source: PathOrFile) -> Iterator[Tuple[int, str]]:
    """Yield (line_number, stripped_line), skipping blanks and comments."""
    if hasattr(source, "read"):
        yield from _iter_handle(source)  # type: ignore[arg-type]
    else:
        with open(source, "r", encoding="utf-8") as handle:
            yield from _iter_handle(handle)


def _iter_handle(handle: IO[str]) -> Iterator[Tuple[int, str]]:
    for line_no, raw in enumerate(handle, start=1):
        line = raw.rstrip("\n")
        if not line.strip() or line.lstrip().startswith("#"):
            continue
        yield line_no, line


class _WriteContext:
    """Context manager that opens paths but leaves open handles alone."""

    def __init__(self, target: PathOrFile):
        self._target = target
        self._owned = not hasattr(target, "write")
        self._handle: IO[str] = None  # type: ignore[assignment]

    def __enter__(self) -> IO[str]:
        if self._owned:
            self._handle = open(self._target, "w", encoding="utf-8")
        else:
            self._handle = self._target  # type: ignore[assignment]
        return self._handle

    def __exit__(self, *exc_info: object) -> None:
        if self._owned:
            self._handle.close()


def _open_for_write(target: PathOrFile) -> _WriteContext:
    return _WriteContext(target)


def _parse_ts(text: str, line_no: int) -> float:
    text = text.strip()
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError as exc:
        raise DataFormatError(
            f"line {line_no}: unparsable timestamp {text!r}"
        ) from exc


def _checked_item(item: object, separators: str) -> str:
    """Stringify ``item``, refusing strings the format cannot hold."""
    text = str(item)
    if not text or any(ch in text for ch in separators):
        raise DataFormatError(
            f"item {text!r} cannot be written: it is empty or contains "
            "a separator character of the file format"
        )
    return text


def _format_ts(ts: float) -> str:
    if isinstance(ts, int) or (isinstance(ts, float) and ts.is_integer()):
        return str(int(ts))
    return repr(ts)
