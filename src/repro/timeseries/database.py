"""Temporally ordered transactional databases (Section 3 of the paper).

A transaction is a pair ``(ts, Y)`` of a timestamp and an itemset.  A
transactional database is a timestamp-ordered set of transactions with
*unique* timestamps — the construction from a time series groups all
events sharing a timestamp into one transaction, so the point sequence
of every pattern in the database equals its point sequence in the
original series (no temporal information is lost).
"""

from __future__ import annotations

import bisect
import math
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from repro.exceptions import DataFormatError, EmptyDatabaseError
from repro.timeseries.events import Event, EventSequence, Item

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.timeseries.columnar import ColumnarTDB

__all__ = ["Transaction", "TransactionalDatabase"]


class Transaction(NamedTuple):
    """One timestamped itemset."""

    ts: float
    items: FrozenSet[Item]


class TransactionalDatabase:
    """A timestamp-ordered transactional database with unique timestamps.

    The constructor validates, merges and orders its input:

    * timestamps must be finite numbers;
    * transactions are sorted by timestamp;
    * transactions sharing a timestamp are merged (itemset union), which
      is exactly the grouping step of the paper's time-series-to-TDB
      transformation;
    * empty itemsets are dropped (a timestamp with no events does not
      produce a transaction — cf. timestamps 8 and 13 of the paper's
      running example).

    Parameters
    ----------
    transactions:
        Iterable of ``(ts, items)`` pairs; ``items`` is any iterable of
        hashable items.  **Note**: a plain string is an iterable of
        characters — ``(1, "abg")`` means the three items a, b, g
        (handy for compact examples); a single multi-character item
        must be wrapped, ``(1, ["beat"])``.

    Examples
    --------
    >>> db = TransactionalDatabase([(1, "ab"), (2, "a"), (1, "g")])
    >>> len(db)
    2
    >>> sorted(db[0].items)
    ['a', 'b', 'g']
    """

    __slots__ = ("_transactions", "_item_index", "_columnar", "_digest")

    def __init__(self, transactions: Iterable[Tuple[float, Iterable[Item]]] = ()):
        merged: Dict[float, set] = {}
        for raw in transactions:
            try:
                ts, items = raw
            except (TypeError, ValueError) as exc:
                raise DataFormatError(
                    f"transaction must be a (ts, items) pair, got {raw!r}"
                ) from exc
            if isinstance(ts, bool) or not isinstance(ts, (int, float)):
                raise DataFormatError(
                    f"transaction timestamp must be a number, got {ts!r}"
                )
            if not math.isfinite(ts):
                raise DataFormatError(
                    f"transaction timestamp must be finite, got {ts!r}"
                )
            itemset = set(items)
            if not itemset:
                continue
            merged.setdefault(ts, set()).update(itemset)
        self._transactions: Tuple[Transaction, ...] = tuple(
            Transaction(ts, frozenset(merged[ts])) for ts in sorted(merged)
        )
        self._item_index: Optional[Dict[Item, Tuple[float, ...]]] = None
        self._columnar = None
        self._digest: Optional[str] = None

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._transactions)

    def __iter__(self) -> Iterator[Transaction]:
        return iter(self._transactions)

    def __getitem__(self, index: int) -> Transaction:
        return self._transactions[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TransactionalDatabase):
            return NotImplemented
        return self._transactions == other._transactions

    def __hash__(self) -> int:
        return hash(self._transactions)

    def __repr__(self) -> str:
        if not self._transactions:
            return "TransactionalDatabase(empty)"
        return (
            f"TransactionalDatabase({len(self._transactions)} transactions, "
            f"{len(self.items())} items, span=[{self.start}, {self.end}])"
        )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def transactions(self) -> Tuple[Transaction, ...]:
        """All transactions in timestamp order."""
        return self._transactions

    @property
    def start(self) -> float:
        """Timestamp of the first transaction."""
        self._require_non_empty()
        return self._transactions[0].ts

    @property
    def end(self) -> float:
        """Timestamp of the last transaction."""
        self._require_non_empty()
        return self._transactions[-1].ts

    @property
    def span(self) -> float:
        """``end - start``; zero for a single-transaction database."""
        return self.end - self.start

    def items(self) -> FrozenSet[Item]:
        """The set of distinct items appearing in the database."""
        return frozenset(self.item_timestamps())

    # ------------------------------------------------------------------
    # Point-sequence access
    # ------------------------------------------------------------------
    def item_timestamps(self) -> Dict[Item, Tuple[float, ...]]:
        """Mapping of every item to its ordered occurrence timestamps.

        Built lazily on first use and cached; the database is immutable
        so the cache never goes stale.
        """
        if self._item_index is None:
            index: Dict[Item, List[float]] = {}
            for ts, itemset in self._transactions:
                for item in itemset:
                    index.setdefault(item, []).append(ts)
            self._item_index = {
                item: tuple(ts_list) for item, ts_list in index.items()
            }
        return self._item_index

    def columnar(self) -> "ColumnarTDB":
        """Array-backed vertical view (see :mod:`repro.timeseries.columnar`).

        Built from the cached :meth:`item_timestamps` scan on first use
        and cached alongside it; the database is immutable so neither
        cache ever goes stale.  Repeated mines and sweep columns over
        the same database therefore share one materialisation.
        """
        if self._columnar is None:
            from repro.timeseries.columnar import ColumnarTDB

            self._columnar = ColumnarTDB.from_database(self)
        return self._columnar

    def digest(self) -> str:
        """Stable content hash of the database (hex SHA-256, 64 chars).

        The hash covers the canonical line encoding the TSV writer
        uses — one ``<ts>\\t<item> <item> ...`` line per transaction in
        timestamp order, items in sorted-by-repr order — except that
        items are ``repr``-escaped so the digest is defined even for
        items the TSV format itself refuses (whitespace, tabs).  Two
        databases have equal digests iff they compare equal, because
        the constructor already canonicalises (sorts, merges, drops
        empties) and the encoding is injective on that canonical form.

        Built on first use and cached like :meth:`columnar`; the
        database is immutable so the cache never goes stale.  This is
        the ``dataset_digest`` of the service result cache and of
        ``repro-run/v1`` records.

        Examples
        --------
        >>> a = TransactionalDatabase([(1, "ab"), (2, "a")])
        >>> b = TransactionalDatabase([(2, "a"), (1, "ba")])
        >>> a.digest() == b.digest()
        True
        >>> len(a.digest())
        64
        """
        if self._digest is None:
            import hashlib

            hasher = hashlib.sha256()
            for ts, itemset in self._transactions:
                # int-valued floats print the way the TSV writer prints
                # them, so 3 and 3.0 (equal timestamps) hash equally.
                if isinstance(ts, float) and ts.is_integer():
                    ts_text = str(int(ts))
                else:
                    ts_text = repr(ts)
                line = ts_text + "\t" + " ".join(
                    sorted(repr(item) for item in itemset)
                )
                hasher.update(line.encode("utf-8"))
                hasher.update(b"\n")
            self._digest = hasher.hexdigest()
        return self._digest

    def timestamps_of(self, pattern: Iterable[Item]) -> Tuple[float, ...]:
        """``TS^X``: ordered timestamps of transactions containing ``pattern``.

        Implemented by intersecting the per-item timestamp lists,
        starting from the rarest item.
        """
        items = list(set(pattern))
        if not items:
            raise ValueError("pattern must contain at least one item")
        index = self.item_timestamps()
        try:
            lists = sorted((index[item] for item in items), key=len)
        except KeyError:
            return ()
        result = set(lists[0])
        for ts_list in lists[1:]:
            result.intersection_update(ts_list)
            if not result:
                return ()
        return tuple(sorted(result))

    def support(self, pattern: Iterable[Item]) -> int:
        """``Sup(X)``: number of transactions containing ``pattern``."""
        return len(self.timestamps_of(pattern))

    # ------------------------------------------------------------------
    # Derived databases
    # ------------------------------------------------------------------
    def restrict_items(self, keep: Iterable[Item]) -> "TransactionalDatabase":
        """Database with every transaction projected onto ``keep``."""
        keep_set = set(keep)
        return TransactionalDatabase(
            (ts, itemset & keep_set) for ts, itemset in self._transactions
        )

    def window(self, start: float, end: float) -> "TransactionalDatabase":
        """Transactions with ``start <= ts <= end``."""
        if end < start:
            raise ValueError(f"window end {end} precedes start {start}")
        ts_values = [ts for ts, _ in self._transactions]
        lo = bisect.bisect_left(ts_values, start)
        hi = bisect.bisect_right(ts_values, end)
        return TransactionalDatabase(self._transactions[lo:hi])

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_events(cls, events: EventSequence) -> "TransactionalDatabase":
        """Group a time series into a transactional database.

        This is the paper's (lossless) transformation: all events that
        share a timestamp become one transaction.
        """
        return cls((event.ts, (event.item,)) for event in events)

    def to_events(self) -> EventSequence:
        """Flatten the database back into an event sequence.

        Items within a transaction are emitted in sorted-by-repr order
        so the output is deterministic.
        """
        pairs: List[Tuple[Item, float]] = []
        for ts, itemset in self._transactions:
            for item in sorted(itemset, key=repr):
                pairs.append((item, ts))
        return EventSequence(pairs)

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _require_non_empty(self) -> None:
        if not self._transactions:
            raise EmptyDatabaseError("the database has no transactions")
