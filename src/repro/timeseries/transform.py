"""Transformations between time series and transactional databases.

The paper models a time series (event sequence) as a temporally ordered
transactional database by grouping events that share a timestamp.  This
module provides that transformation in both directions, plus timestamp
discretisation, which is how real-valued measurement times are snapped
to the minute-granularity transactions used in the paper's experiments.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Tuple

from repro._validation import check_positive
from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.events import EventSequence, Item

__all__ = [
    "events_to_database",
    "database_to_events",
    "discretize_timestamps",
]


def events_to_database(events: EventSequence) -> TransactionalDatabase:
    """Group a time series into a transactional database (lossless).

    Every set of events sharing a timestamp becomes one transaction;
    timestamps with no events simply produce no transaction, exactly as
    in the paper's running example (timestamps 8 and 13 are absent).
    """
    return TransactionalDatabase.from_events(events)


def database_to_events(database: TransactionalDatabase) -> EventSequence:
    """Flatten a transactional database back into an event sequence."""
    return database.to_events()


def discretize_timestamps(
    events: EventSequence,
    bucket: float,
    origin: float = 0.0,
    label: str = "left",
) -> EventSequence:
    """Snap event timestamps onto a regular grid of width ``bucket``.

    Real measurement streams rarely produce identical timestamps; before
    grouping into transactions one usually discretises time (the paper's
    Shop-14 and Twitter databases use one-minute buckets).  Events
    falling into the same bucket then share a timestamp and will be
    grouped into one transaction by :func:`events_to_database`.

    Parameters
    ----------
    events:
        The input series.
    bucket:
        Grid width; must be > 0.
    origin:
        Grid anchor; bucket boundaries sit at ``origin + k * bucket``.
    label:
        ``"left"`` stamps each event with its bucket's left edge,
        ``"index"`` with the integer bucket number (useful when the
        caller wants unit-spaced transactions regardless of ``bucket``).

    Examples
    --------
    >>> seq = EventSequence([("a", 0.2), ("b", 0.9), ("a", 1.4)])
    >>> [e.ts for e in discretize_timestamps(seq, bucket=1.0)]
    [0.0, 0.0, 1.0]
    """
    check_positive(bucket, "bucket")
    if label not in ("left", "index"):
        raise ValueError(f"label must be 'left' or 'index', got {label!r}")

    def bucket_of(ts: float) -> float:
        index = math.floor((ts - origin) / bucket)
        if label == "index":
            return index
        return origin + index * bucket

    return EventSequence((event.item, bucket_of(event.ts)) for event in events)


def map_items(
    events: EventSequence, mapper: Callable[[Item], Item]
) -> EventSequence:
    """Apply ``mapper`` to every event's item, keeping timestamps.

    Handy for canonicalising raw symbols (e.g. lower-casing hashtags or
    collapsing URL paths to page categories) before mining.
    """
    return EventSequence((mapper(event.item), event.ts) for event in events)


def merge_sequences(sequences: Iterable[EventSequence]) -> EventSequence:
    """Interleave several event sequences into one.

    An event sequence is "a mixture of multiple point sequences of each
    item" (Definition 2); this helper performs that mixing for callers
    that build per-source streams independently.
    """
    pairs: Tuple[Tuple[Item, float], ...] = tuple(
        (event.item, event.ts)
        for sequence in sequences
        for event in sequence
    )
    return EventSequence(pairs)
