"""Time-series substrate: events, point sequences and transactional databases.

This subpackage implements Definitions 1–2 of the paper (event sequence,
point sequence) and the temporally ordered transactional database the
recurring-pattern model is defined over, together with the
transformation between the two representations and file I/O.
"""

from repro.timeseries.calendar import (
    MINUTES_PER_DAY,
    MINUTES_PER_HOUR,
    MINUTES_PER_WEEK,
    day_and_time,
    day_of,
    format_minutes,
    hour_of_day,
    minute_of_day,
    minutes,
)
from repro.timeseries.columnar import ColumnarTDB
from repro.timeseries.database import Transaction, TransactionalDatabase
from repro.timeseries.events import Event, EventSequence
from repro.timeseries.io import (
    load_event_sequence,
    load_transactional_database,
    save_event_sequence,
    save_transactional_database,
)
from repro.timeseries.stats import DatabaseStats, describe_database
from repro.timeseries.transform import (
    database_to_events,
    discretize_timestamps,
    events_to_database,
)

__all__ = [
    "Event",
    "EventSequence",
    "Transaction",
    "TransactionalDatabase",
    "ColumnarTDB",
    "events_to_database",
    "database_to_events",
    "discretize_timestamps",
    "load_event_sequence",
    "save_event_sequence",
    "load_transactional_database",
    "save_transactional_database",
    "DatabaseStats",
    "describe_database",
    "MINUTES_PER_HOUR",
    "MINUTES_PER_DAY",
    "MINUTES_PER_WEEK",
    "minutes",
    "day_of",
    "minute_of_day",
    "hour_of_day",
    "day_and_time",
    "format_minutes",
]
