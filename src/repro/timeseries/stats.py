"""Descriptive statistics over transactional databases.

Used by the benchmark harness to report workload shape (the kind of
numbers papers quote: transaction count, item count, average transaction
length, timestamp span, inter-transaction gap profile) and by the
examples to plot per-period item frequencies (Figure 8 of the paper).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro._validation import check_positive
from repro.exceptions import EmptyDatabaseError
from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.events import Item

__all__ = ["DatabaseStats", "describe_database", "item_frequency_series"]


@dataclass(frozen=True)
class DatabaseStats:
    """Shape summary of a transactional database."""

    transaction_count: int
    item_count: int
    start: float
    end: float
    mean_transaction_length: float
    max_transaction_length: int
    mean_gap: float
    max_gap: float

    def as_rows(self) -> List[Tuple[str, str]]:
        """Key/value rows for tabular display."""
        return [
            ("transactions", str(self.transaction_count)),
            ("distinct items", str(self.item_count)),
            ("time span", f"[{self.start:g}, {self.end:g}]"),
            ("mean |transaction|", f"{self.mean_transaction_length:.2f}"),
            ("max |transaction|", str(self.max_transaction_length)),
            ("mean gap", f"{self.mean_gap:.2f}"),
            ("max gap", f"{self.max_gap:g}"),
        ]


def describe_database(database: TransactionalDatabase) -> DatabaseStats:
    """Compute :class:`DatabaseStats` for ``database``.

    Raises :class:`~repro.exceptions.EmptyDatabaseError` on an empty
    database — there is nothing meaningful to describe.
    """
    if len(database) == 0:
        raise EmptyDatabaseError("cannot describe an empty database")
    lengths = [len(itemset) for _, itemset in database]
    timestamps = [ts for ts, _ in database]
    gaps = [b - a for a, b in zip(timestamps, timestamps[1:])]
    return DatabaseStats(
        transaction_count=len(database),
        item_count=len(database.items()),
        start=database.start,
        end=database.end,
        mean_transaction_length=statistics.fmean(lengths),
        max_transaction_length=max(lengths),
        mean_gap=statistics.fmean(gaps) if gaps else 0.0,
        max_gap=max(gaps) if gaps else 0.0,
    )


def item_frequency_series(
    database: TransactionalDatabase,
    items: Iterable[Item],
    bucket: float,
) -> Dict[Item, Dict[float, int]]:
    """Occurrence counts of ``items`` per time bucket of width ``bucket``.

    This is the computation behind Figure 8 of the paper (daily hashtag
    frequencies): bucket = 1440 minutes yields per-day counts.  Bucket
    edges are anchored at the database start; the returned inner mapping
    goes from bucket left edge to count and contains only non-empty
    buckets.
    """
    check_positive(bucket, "bucket")
    wanted = set(items)
    if len(database) == 0:
        return {item: {} for item in wanted}
    origin = database.start
    series: Dict[Item, Dict[float, int]] = {item: {} for item in wanted}
    for ts, itemset in database:
        edge = origin + ((ts - origin) // bucket) * bucket
        for item in itemset & wanted:
            bucket_counts = series[item]
            bucket_counts[edge] = bucket_counts.get(edge, 0) + 1
    return series
