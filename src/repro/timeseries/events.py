"""Event sequences and point sequences (Definitions 1–2 of the paper).

An *event* is a pair ``(item, ts)`` where ``item`` is a hashable symbol
(event type) and ``ts`` is a real-valued timestamp.  An *event
sequence* is an ordered collection of events with non-decreasing
timestamps.  The *point sequence* of an item (or of a pattern) is the
ordered collection of timestamps at which it occurs.
"""

from __future__ import annotations

import math
from typing import (
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Sequence,
    Tuple,
)

from repro.exceptions import DataFormatError

Item = Hashable

__all__ = ["Item", "Event", "EventSequence"]


class Event(NamedTuple):
    """A single occurrence of an item at a timestamp."""

    item: Item
    ts: float


class EventSequence:
    """An ordered collection of events (Definition 1).

    The constructor accepts events in any order and sorts them by
    timestamp (stable, so simultaneous events keep their input order).
    Timestamps must be finite real numbers.

    Parameters
    ----------
    events:
        Iterable of ``Event`` or plain ``(item, ts)`` pairs.

    Examples
    --------
    >>> seq = EventSequence([("a", 1), ("b", 1), ("a", 2)])
    >>> len(seq)
    3
    >>> seq.point_sequence("a")
    (1, 2)
    """

    __slots__ = ("_events",)

    def __init__(self, events: Iterable[Tuple[Item, float]] = ()):
        parsed: List[Event] = []
        for raw in events:
            try:
                item, ts = raw
            except (TypeError, ValueError) as exc:
                raise DataFormatError(
                    f"event must be an (item, ts) pair, got {raw!r}"
                ) from exc
            if isinstance(ts, bool) or not isinstance(ts, (int, float)):
                raise DataFormatError(
                    f"event timestamp must be a number, got {ts!r}"
                )
            if not math.isfinite(ts):
                raise DataFormatError(
                    f"event timestamp must be finite, got {ts!r}"
                )
            parsed.append(Event(item, ts))
        parsed.sort(key=lambda event: event.ts)
        self._events: Tuple[Event, ...] = tuple(parsed)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index: int) -> Event:
        return self._events[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventSequence):
            return NotImplemented
        return self._events == other._events

    def __hash__(self) -> int:
        return hash(self._events)

    def __repr__(self) -> str:
        span = f", span=[{self.start}, {self.end}]" if self._events else ""
        return f"EventSequence({len(self._events)} events{span})"

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def events(self) -> Tuple[Event, ...]:
        """All events in timestamp order."""
        return self._events

    @property
    def start(self) -> float:
        """Timestamp of the first event.

        Raises :class:`ValueError` on an empty sequence.
        """
        if not self._events:
            raise ValueError("empty event sequence has no start")
        return self._events[0].ts

    @property
    def end(self) -> float:
        """Timestamp of the last event."""
        if not self._events:
            raise ValueError("empty event sequence has no end")
        return self._events[-1].ts

    def items(self) -> Tuple[Item, ...]:
        """Distinct items, ordered by first occurrence."""
        seen: Dict[Item, None] = {}
        for event in self._events:
            seen.setdefault(event.item, None)
        return tuple(seen)

    # ------------------------------------------------------------------
    # Point sequences (Definition 2)
    # ------------------------------------------------------------------
    def point_sequence(self, item: Item) -> Tuple[float, ...]:
        """Ordered, de-duplicated occurrence timestamps of ``item``.

        Duplicate ``(item, ts)`` events collapse to one point, matching
        the set semantics of timestamps in the transactional view.
        """
        points: List[float] = []
        for event in self._events:
            if event.item == item:
                if not points or points[-1] != event.ts:
                    points.append(event.ts)
        return tuple(points)

    def point_sequences(self) -> Dict[Item, Tuple[float, ...]]:
        """Point sequences of every item, in one pass."""
        points: Dict[Item, List[float]] = {}
        for event in self._events:
            bucket = points.setdefault(event.item, [])
            if not bucket or bucket[-1] != event.ts:
                bucket.append(event.ts)
        return {item: tuple(ts_list) for item, ts_list in points.items()}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_point_sequences(
        cls, points: Dict[Item, Sequence[float]]
    ) -> "EventSequence":
        """Build a sequence from per-item occurrence-timestamp lists."""
        pairs: List[Tuple[Item, float]] = []
        for item, ts_list in points.items():
            pairs.extend((item, ts) for ts in ts_list)
        return cls(pairs)

    def restrict_items(self, keep: Iterable[Item]) -> "EventSequence":
        """Sequence containing only events whose item is in ``keep``."""
        keep_set = set(keep)
        return EventSequence(
            (event.item, event.ts)
            for event in self._events
            if event.item in keep_set
        )

    def window(self, start: float, end: float) -> "EventSequence":
        """Events with ``start <= ts <= end`` (inclusive on both sides)."""
        if end < start:
            raise ValueError(f"window end {end} precedes start {start}")
        return EventSequence(
            (event.item, event.ts)
            for event in self._events
            if start <= event.ts <= end
        )
