"""Terminal visualisations for recurring patterns.

A recurring pattern is fundamentally a *temporal* object — the value of
the model over p-patterns is exactly the when.  These helpers render
that temporal structure in plain text so it survives logs, CI output
and code review:

* :func:`render_timeline` — one row per pattern, periodic intervals
  drawn as filled blocks along a shared time axis (a textual Gantt
  chart of the seasons);
* :func:`render_sparkline` — a unicode sparkline for frequency series
  (the Figure 8 shape at a glance);
* :func:`render_interval_ruler` — the axis line with tick labels,
  shared by the timeline.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro._validation import check_count
from repro.core.model import RecurringPattern

__all__ = ["render_timeline", "render_sparkline", "render_interval_ruler"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"
_FILLED = "█"
_EMPTY = "·"


def render_timeline(
    patterns: Iterable[RecurringPattern],
    start: float,
    end: float,
    width: int = 60,
) -> str:
    """Draw each pattern's interesting intervals along a time axis.

    Parameters
    ----------
    patterns:
        The patterns to draw (one row each, labelled by their items).
    start, end:
        The time range of the axis (usually the database span).
    width:
        Number of character cells for the axis.

    Examples
    --------
    >>> from repro.datasets import paper_running_example
    >>> from repro import mine_recurring_patterns
    >>> found = mine_recurring_patterns(
    ...     paper_running_example(), per=2, min_ps=3, min_rec=2)
    >>> print(render_timeline([found.pattern("ab")], 1, 14, width=14))
    a b |████······████|
        1^           ^14
    """
    check_count(width, "width", minimum=2)
    if end < start:
        raise ValueError(f"end {end} precedes start {start}")
    rows: List[Tuple[str, str]] = []
    for pattern in patterns:
        label = " ".join(str(item) for item in pattern.sorted_items())
        cells = [_EMPTY] * width
        for interval in pattern.intervals:
            first = _cell(interval.start, start, end, width)
            last = _cell(interval.end, start, end, width)
            for cell in range(first, last + 1):
                cells[cell] = _FILLED
        rows.append((label, "".join(cells)))
    if not rows:
        return render_interval_ruler(start, end, width)
    label_width = max(len(label) for label, _ in rows)
    lines = [
        f"{label.rjust(label_width)} |{cells}|" for label, cells in rows
    ]
    ruler = render_interval_ruler(start, end, width)
    lines.append(" " * (label_width + 1) + ruler)
    return "\n".join(lines)


def render_interval_ruler(start: float, end: float, width: int = 60) -> str:
    """The axis legend: ``start^  …  ^end`` aligned under the cells."""
    check_count(width, "width", minimum=2)
    left = f"{start:g}^"
    right = f"^{end:g}"
    gap = max(0, width + 2 - len(left) - len(right))
    return left + " " * gap + right


def render_sparkline(values: Sequence[float]) -> str:
    """Render a numeric series as a unicode sparkline.

    Examples
    --------
    >>> render_sparkline([0, 1, 2, 3, 4, 5, 6, 7])
    '▁▂▃▄▅▆▇█'
    >>> render_sparkline([5, 5, 5])
    '▁▁▁'
    """
    series = list(values)
    if not series:
        return ""
    low = min(series)
    high = max(series)
    if high == low:
        return _SPARK_LEVELS[0] * len(series)
    scale = (len(_SPARK_LEVELS) - 1) / (high - low)
    return "".join(
        _SPARK_LEVELS[round((value - low) * scale)] for value in series
    )


def _cell(ts: float, start: float, end: float, width: int) -> int:
    if end == start:
        return 0
    position = (ts - start) / (end - start)
    return min(width - 1, max(0, int(position * (width - 1) + 0.5)))
