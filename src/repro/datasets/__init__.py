"""Workload generators and reference datasets.

The paper evaluates on T10I4D100K (IBM Quest synthetic), the Shop-14
clickstream and a 2013 Twitter hashtag corpus.  None of the latter two
are redistributable, so this subpackage provides faithful synthetic
stand-ins (see the substitution table in DESIGN.md) plus the paper's
running example and a planted-pattern generator with ground truth.
"""

from repro.datasets.clickstream import ClickstreamConfig, generate_clickstream
from repro.datasets.noise import apply_dropout, apply_jitter
from repro.datasets.planted import (
    PlantedBurst,
    PlantedWorkload,
    generate_planted_workload,
)
from repro.datasets.quest import QuestConfig, generate_quest
from repro.datasets.running_example import (
    paper_running_example,
    paper_running_example_events,
    paper_table2_patterns,
)
from repro.datasets.twitter import TwitterConfig, generate_twitter

__all__ = [
    "paper_running_example",
    "paper_running_example_events",
    "paper_table2_patterns",
    "QuestConfig",
    "generate_quest",
    "ClickstreamConfig",
    "generate_clickstream",
    "TwitterConfig",
    "generate_twitter",
    "PlantedBurst",
    "PlantedWorkload",
    "generate_planted_workload",
    "apply_dropout",
    "apply_jitter",
]
