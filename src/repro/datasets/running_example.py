"""The paper's running example (Figure 1 / Table 1 / Table 2).

Used throughout the test suite to check every algorithm step against
the worked numbers in the paper.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.events import EventSequence

__all__ = [
    "paper_running_example",
    "paper_running_example_events",
    "paper_table2_patterns",
]

# Table 1 of the paper.  Timestamps 8 and 13 have no events.
_TABLE_1: Tuple[Tuple[int, str], ...] = (
    (1, "abg"),
    (2, "acd"),
    (3, "abef"),
    (4, "abcd"),
    (5, "cdefg"),
    (6, "efg"),
    (7, "abcg"),
    (9, "cd"),
    (10, "cdef"),
    (11, "abef"),
    (12, "abcdefg"),
    (14, "abg"),
)


def paper_running_example() -> TransactionalDatabase:
    """The transactional database of Table 1.

    >>> db = paper_running_example()
    >>> len(db)
    12
    >>> db.timestamps_of("ab")
    (1, 3, 4, 7, 11, 12, 14)
    """
    return TransactionalDatabase(
        (ts, tuple(items)) for ts, items in _TABLE_1
    )


def paper_running_example_events() -> EventSequence:
    """The same data as a raw time-based event sequence (Figure 1)."""
    return EventSequence(
        (item, ts) for ts, items in _TABLE_1 for item in items
    )


def paper_table2_patterns() -> Dict[str, Tuple[int, int, List[Tuple[int, int, int]]]]:
    """Expected output of mining at ``per=2, minPS=3, minRec=2``.

    Table 2 of the paper, as
    ``{items: (support, recurrence, [(start, end, ps), ...])}`` with
    items given as a sorted string.
    """
    return {
        "a": (8, 2, [(1, 4, 4), (11, 14, 3)]),
        "b": (7, 2, [(1, 4, 3), (11, 14, 3)]),
        "d": (6, 2, [(2, 5, 3), (9, 12, 3)]),
        "e": (6, 2, [(3, 6, 3), (10, 12, 3)]),
        "f": (6, 2, [(3, 6, 3), (10, 12, 3)]),
        "ab": (7, 2, [(1, 4, 3), (11, 14, 3)]),
        "cd": (6, 2, [(2, 5, 3), (9, 12, 3)]),
        "ef": (6, 2, [(3, 6, 3), (10, 12, 3)]),
    }
