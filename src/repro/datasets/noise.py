"""Noise injection for robustness experiments.

The paper's future-work section motivates handling noisy data; these
helpers corrupt a clean database in the two canonical ways so the
noise-tolerant miner (:mod:`repro.core.noise`) can be evaluated against
ground truth:

* **dropout** — each (item, transaction) occurrence is deleted
  independently with probability ``rate`` (sensor misses, lost log
  lines).  Dropout splits periodic runs, which is exactly what fault
  credits repair;
* **jitter** — each transaction's timestamp is displaced by a bounded
  random offset (clock skew, batching).  Jitter stretches inter-arrival
  times past ``per``, which a relaxed ``fault_per`` absorbs.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import numpy as np

from repro._validation import check_non_negative
from repro.exceptions import ParameterError
from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.events import Item

__all__ = ["apply_dropout", "apply_jitter"]


def apply_dropout(
    database: TransactionalDatabase, rate: float, seed: int = 0
) -> TransactionalDatabase:
    """Delete each item occurrence independently with probability ``rate``.

    Transactions that lose all their items disappear entirely (their
    timestamp becomes silent).  Deterministic per seed.

    Examples
    --------
    >>> db = TransactionalDatabase([(ts, "ab") for ts in range(10)])
    >>> len(apply_dropout(db, rate=0.0)) == len(db)
    True
    >>> len(apply_dropout(db, rate=1.0))
    0
    """
    if not 0 <= rate <= 1:
        raise ParameterError(f"rate must be in [0, 1], got {rate!r}")
    rng = np.random.default_rng(seed)
    rows: List[Tuple[float, Tuple[Item, ...]]] = []
    for ts, itemset in database:
        survivors = tuple(
            item
            for item in sorted(itemset, key=repr)
            if rng.random() >= rate
        )
        if survivors:
            rows.append((ts, survivors))
    return TransactionalDatabase(rows)


def apply_jitter(
    database: TransactionalDatabase,
    max_offset: float,
    seed: int = 0,
) -> TransactionalDatabase:
    """Displace each transaction's timestamp by U(-max_offset, +max_offset).

    Relative transaction order is preserved (offsets are clamped so a
    transaction never crosses its neighbours), and colliding timestamps
    are merged by the database constructor as usual.
    """
    check_non_negative(max_offset, "max_offset")
    if len(database) == 0 or max_offset == 0:
        return database
    rng = np.random.default_rng(seed)
    timestamps = [ts for ts, _ in database]
    jittered: List[float] = []
    for index, ts in enumerate(timestamps):
        # Keep every point strictly within half the gap to its original
        # neighbours, so jittered points can never cross each other.
        bound = max_offset
        if index > 0:
            bound = min(bound, 0.49 * (ts - timestamps[index - 1]))
        if index + 1 < len(timestamps):
            bound = min(bound, 0.49 * (timestamps[index + 1] - ts))
        offset = rng.uniform(-bound, bound) if bound > 0 else 0.0
        jittered.append(ts + offset)
    return TransactionalDatabase(
        (new_ts, itemset)
        for new_ts, (_, itemset) in zip(jittered, database)
    )
