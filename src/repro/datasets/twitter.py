"""Twitter-hashtag–style synthetic stream (2013 corpus stand-in).

The paper's Twitter database holds, per minute over 123 days, the set
of (top-1000) hashtags appearing in tweets.  This generator reproduces
the two populations that drive the paper's qualitative findings
(Table 6 / Figure 8):

* an always-on, Zipf-skewed **background** of popular hashtags
  (``h0 … h<n-1>``) tweeted throughout the whole period;
* **planted bursts** — named, rare hashtags (or hashtag groups) that
  appear only inside configured day windows, where they are tweeted
  every few minutes.  Inside a window such a group is intensely
  periodic; outside it is absent — the signature of a recurring
  pattern.  The default bursts mirror the events of the paper's
  Table 6 (Uttarakhand/Calgary floods, Fukushima radiation tweets, the
  Pakistani general election, the Oklahoma tornado).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

import numpy as np

from repro._validation import check_count, check_positive
from repro.exceptions import ParameterError
from repro.timeseries.database import TransactionalDatabase

__all__ = ["BurstSpec", "TwitterConfig", "generate_twitter", "MINUTES_PER_DAY"]

MINUTES_PER_DAY = 1440


@dataclass(frozen=True)
class BurstSpec:
    """One planted bursty hashtag group.

    Attributes
    ----------
    tags:
        The hashtags that co-occur during the burst (the recurring
        pattern to be discovered).
    windows:
        ``(first_day, last_day)`` inclusive day ranges (0-based) during
        which the group is active.  Two windows make the pattern's
        recurrence 2 at day-scale periods.
    mean_gap:
        Mean inter-tweet gap in minutes while a window is active.
    """

    tags: Tuple[str, ...]
    windows: Tuple[Tuple[int, int], ...]
    mean_gap: float = 5.0

    def __post_init__(self) -> None:
        if not self.tags:
            raise ParameterError("a burst needs at least one hashtag")
        check_positive(self.mean_gap, "mean_gap")
        for first, last in self.windows:
            if not 0 <= first <= last:
                raise ParameterError(f"bad burst window ({first}, {last})")


DEFAULT_BURSTS: Tuple[BurstSpec, ...] = (
    BurstSpec(("yyc", "uttarakhand"), ((51, 61),), mean_gap=4.0),
    BurstSpec(("nuclear", "hibaku"), ((5, 23), (61, 74)), mean_gap=6.0),
    BurstSpec(("pakvotes", "nayapakistan"), ((8, 14),), mean_gap=5.0),
    BurstSpec(
        ("oklahoma", "tornado", "prayforoklahoma"), ((20, 23),), mean_gap=3.0
    ),
)


@dataclass(frozen=True)
class TwitterConfig:
    """Parameters of the hashtag-stream generator.

    Defaults follow the paper's corpus shape (123 days, 1000 distinct
    background hashtags); pass a smaller ``days`` for quick runs — the
    default bursts all fall within the first 75 days, so ``days >= 75``
    keeps them intact while shorter streams simply truncate them.

    Background realism knobs: the hottest ``always_on_tags`` hashtags
    tweet all period long; every other background tag *trends* — it is
    fully active only inside a few randomly drawn multi-day episodes
    and is damped to ``off_episode_rate`` of its rate otherwise, the
    way real hashtags rise and fade.  Those episodes are what give
    mid-rank tags recurrence greater than one.
    """

    days: int = 123
    n_hashtags: int = 1000
    background_rate: float = 18.0
    zipf_exponent: float = 1.05
    always_on_tags: int = 5
    mean_episodes_per_tag: float = 2.0
    mean_episode_days: float = 12.0
    off_episode_rate: float = 0.05
    bursts: Tuple[BurstSpec, ...] = DEFAULT_BURSTS
    seed: int = 0

    def __post_init__(self) -> None:
        check_count(self.days, "days")
        check_count(self.n_hashtags, "n_hashtags")
        check_positive(self.background_rate, "background_rate")
        check_count(self.always_on_tags, "always_on_tags", minimum=0)
        check_positive(self.mean_episodes_per_tag, "mean_episodes_per_tag")
        check_positive(self.mean_episode_days, "mean_episode_days")
        if not 0 <= self.off_episode_rate <= 1:
            raise ParameterError(
                "off_episode_rate must be in [0, 1], got "
                f"{self.off_episode_rate!r}"
            )


def generate_twitter(
    config: TwitterConfig = TwitterConfig(),
) -> TransactionalDatabase:
    """Generate a Twitter-style database (deterministic per seed).

    Timestamps are minutes since 00:00 of day 0.

    Examples
    --------
    >>> db = generate_twitter(TwitterConfig(days=2, seed=3))
    >>> "h0" in db.items()
    True
    """
    rng = np.random.default_rng(config.seed)
    total_minutes = config.days * MINUTES_PER_DAY
    baskets: Dict[int, Set[str]] = {}

    _add_background(rng, config, total_minutes, baskets)
    for burst in config.bursts:
        _add_burst(rng, burst, total_minutes, baskets)

    return TransactionalDatabase(
        (minute, tuple(sorted(tags))) for minute, tags in baskets.items()
    )


def _add_background(
    rng: np.random.Generator,
    config: TwitterConfig,
    total_minutes: int,
    baskets: Dict[int, Set[str]],
) -> None:
    """Sprinkle Zipf-distributed background hashtags over every minute.

    Drawn in one vectorised pass: per-minute mention counts are Poisson
    with a mild diurnal modulation, and all mentions are sampled from
    the Zipf popularity vector at once.
    """
    minutes_of_day = np.arange(total_minutes) % MINUTES_PER_DAY
    hours = minutes_of_day / 60.0
    # Pronounced diurnal curve: the stream nearly dries up around
    # 05:00 and peaks around 21:00.  The nightly troughs are what break
    # mid-rank hashtags' periodic runs at sub-day periods, giving the
    # recurrence structure real tweet streams exhibit.
    modulation = 0.06 + 0.94 * np.sin((hours - 9.0) * np.pi / 12.0) ** 4
    counts = rng.poisson(config.background_rate * modulation)
    total_mentions = int(counts.sum())
    if total_mentions == 0:
        return
    ranks = np.arange(1, config.n_hashtags + 1, dtype=float)
    weights = ranks ** -config.zipf_exponent
    weights /= weights.sum()
    mentions = rng.choice(config.n_hashtags, size=total_mentions, p=weights)
    offsets = np.repeat(np.arange(total_minutes), counts)

    # Trending episodes: mentions of a tag outside its active days are
    # kept only with probability off_episode_rate.
    days = (total_minutes + MINUTES_PER_DAY - 1) // MINUTES_PER_DAY
    active = _episode_schedule(rng, config, days)
    mention_days = offsets // MINUTES_PER_DAY
    is_active = active[mentions, mention_days]
    keep = is_active | (
        rng.random(total_mentions) < config.off_episode_rate
    )
    for minute, tag_index in zip(
        offsets[keep].tolist(), mentions[keep].tolist()
    ):
        baskets.setdefault(minute, set()).add(f"h{tag_index}")


def _episode_schedule(
    rng: np.random.Generator, config: TwitterConfig, days: int
) -> np.ndarray:
    """Boolean (n_hashtags, days) activity matrix for background tags.

    The top ``always_on_tags`` rows are all-True; every other tag gets
    ``1 + Poisson(mean_episodes_per_tag - 1)`` episodes of
    exponentially distributed length placed uniformly at random.
    """
    active = np.zeros((config.n_hashtags, days), dtype=bool)
    active[: config.always_on_tags, :] = True
    for tag in range(config.always_on_tags, config.n_hashtags):
        n_episodes = 1 + rng.poisson(max(0.0, config.mean_episodes_per_tag - 1))
        for _ in range(n_episodes):
            length = max(1, round(rng.exponential(config.mean_episode_days)))
            start = int(rng.integers(0, days))
            active[tag, start:start + length] = True
    return active


def _add_burst(
    rng: np.random.Generator,
    burst: BurstSpec,
    total_minutes: int,
    baskets: Dict[int, Set[str]],
) -> None:
    """Plant one bursty hashtag group into the stream."""
    for first_day, last_day in burst.windows:
        start = first_day * MINUTES_PER_DAY
        end = min((last_day + 1) * MINUTES_PER_DAY, total_minutes)
        minute = start
        while minute < end:
            baskets.setdefault(minute, set()).update(burst.tags)
            gap = max(1, int(round(rng.exponential(burst.mean_gap))))
            minute += gap
