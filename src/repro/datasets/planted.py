"""Planted-pattern workloads with exact ground truth.

Unlike the statistical stand-ins in :mod:`repro.datasets.quest`,
:mod:`repro.datasets.clickstream` and :mod:`repro.datasets.twitter`,
this generator *constructs* the recurring patterns it plants — every
planted itemset occurs at explicitly chosen timestamps, so the expected
mining output (pattern, support, recurrence, exact interval boundaries)
is known in advance.  The recall tests in
``tests/datasets/test_planted.py`` and the integration suite use it to
verify end-to-end correctness on data the miners have never seen.

Noise items are drawn from a disjoint alphabet at timestamps chosen to
never form interesting intervals of their own (each noise item occurs
at most ``min_ps - 1`` times consecutively within ``per``).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

import numpy as np

from repro._validation import check_count, check_positive
from repro.core.model import (
    PeriodicInterval,
    RecurringPattern,
    ResolvedParameters,
)
from repro.exceptions import ParameterError
from repro.timeseries.database import TransactionalDatabase

__all__ = ["PlantedBurst", "PlantedWorkload", "generate_planted_workload"]


@dataclass(frozen=True)
class PlantedBurst:
    """One planted periodic episode of an itemset.

    The itemset occurs at ``start, start + step, …`` for ``count``
    occurrences; with ``step <= per`` this forms exactly one
    periodic-interval ``[start, start + (count - 1) * step]`` of
    periodic-support ``count``.
    """

    items: Tuple[str, ...]
    start: int
    step: int
    count: int

    def __post_init__(self) -> None:
        if not self.items:
            raise ParameterError("a planted burst needs at least one item")
        check_count(self.step, "step")
        check_count(self.count, "count")

    @property
    def end(self) -> int:
        return self.start + (self.count - 1) * self.step

    def timestamps(self) -> Tuple[int, ...]:
        """The exact occurrence timestamps of the burst."""
        return tuple(
            self.start + occurrence * self.step
            for occurrence in range(self.count)
        )


@dataclass(frozen=True)
class PlantedWorkload:
    """A generated database plus the patterns guaranteed to be in it."""

    database: TransactionalDatabase
    expected: Tuple[RecurringPattern, ...]
    per: int
    min_ps: int
    min_rec: int


def generate_planted_workload(
    per: int = 5,
    min_ps: int = 4,
    min_rec: int = 2,
    n_patterns: int = 3,
    pattern_size: int = 2,
    noise_items: int = 10,
    noise_rate: float = 0.3,
    seed: int = 0,
) -> PlantedWorkload:
    """Build a database containing ``n_patterns`` known recurring patterns.

    Each planted itemset gets exactly ``min_rec`` bursts of
    ``min_ps + burst_index`` occurrences with step ``per``, separated by
    silent spans longer than ``per``, so its expected recurrence is
    exactly ``min_rec`` and its interval boundaries are known.  Planted
    itemsets use the alphabet ``P<k>_<j>``; noise uses ``n<k>``.

    Noise occurrences are placed so that each noise item never
    accumulates ``min_ps`` occurrences within one periodic run: after at
    most ``min_ps - 1`` hits, a forced gap of ``2 * per`` is inserted.
    """
    check_positive(per, "per")
    check_count(min_ps, "min_ps")
    check_count(min_rec, "min_rec")
    check_count(n_patterns, "n_patterns")
    check_count(pattern_size, "pattern_size")
    rng = np.random.default_rng(seed)

    rows: Dict[int, Set[str]] = {}
    expected: List[RecurringPattern] = []
    cursor = 1
    for pattern_index in range(n_patterns):
        items = tuple(
            f"P{pattern_index}_{j}" for j in range(pattern_size)
        )
        bursts: List[PlantedBurst] = []
        for burst_index in range(min_rec):
            count = min_ps + burst_index
            burst = PlantedBurst(items, start=cursor, step=per, count=count)
            bursts.append(burst)
            for ts in burst.timestamps():
                rows.setdefault(ts, set()).update(items)
            # Silence strictly longer than per so runs cannot merge.
            cursor = burst.end + 2 * per + 1
        support = sum(burst.count for burst in bursts)
        intervals = tuple(
            PeriodicInterval(burst.start, burst.end, burst.count)
            for burst in bursts
        )
        # The items of a planted pattern always co-occur, so every
        # non-empty subset shares the same point sequence and is itself
        # an expected recurring pattern with identical metadata.
        for size in range(1, len(items) + 1):
            for subset in combinations(items, size):
                expected.append(
                    RecurringPattern(
                        items=frozenset(subset),
                        support=support,
                        intervals=intervals,
                    )
                )
        cursor += int(rng.integers(0, per))  # stagger the next pattern

    _add_noise(rng, rows, cursor, per, min_ps, noise_items, noise_rate)
    database = TransactionalDatabase(
        (ts, tuple(items)) for ts, items in rows.items()
    )
    return PlantedWorkload(
        database=database,
        expected=tuple(expected),
        per=per,
        min_ps=min_ps,
        min_rec=min_rec,
    )


def _add_noise(
    rng: np.random.Generator,
    rows: Dict[int, Set[str]],
    horizon: int,
    per: int,
    min_ps: int,
    noise_items: int,
    noise_rate: float,
) -> None:
    """Scatter noise items that can never become recurring on their own.

    Each noise item walks forward from a random start; after at most
    ``min_ps - 1`` occurrences within ``per`` of each other it jumps by
    more than ``per``, so every one of its periodic runs has
    periodic-support < ``min_ps``.
    """
    if noise_items <= 0 or noise_rate <= 0:
        return
    for noise_index in range(noise_items):
        ts = 1 + int(rng.integers(0, max(1, per)))
        consecutive = 0
        while ts < horizon:
            if rng.random() < noise_rate:
                rows.setdefault(ts, set()).add(f"n{noise_index}")
                consecutive += 1
            if consecutive >= min_ps - 1:
                ts += 2 * per + 1
                consecutive = 0
            else:
                ts += 1 + int(rng.integers(0, per))
