"""IBM Quest–style synthetic transactional data (T10I4D100K stand-in).

Reimplements the generation procedure of Agrawal & Srikant (SIGMOD'93 /
VLDB'94), which produced the paper's T10I4D100K database:

1. draw ``n_patterns`` *maximal potential itemsets* whose sizes are
   Poisson-distributed around ``avg_pattern_size`` and whose items are
   partly inherited from the previous pattern (controlled by
   ``correlation``), partly fresh;
2. give each potential itemset an exponentially distributed weight and
   a clipped-normal *corruption level*;
3. fill each transaction (size Poisson around
   ``avg_transaction_size``) by sampling weighted potential itemsets
   and dropping individual items with the itemset's corruption
   probability.

Transactions receive consecutive integer timestamps starting at 1,
optionally with random silent gaps so the time dimension is non-trivial
(the original file has no timestamps; the paper assigns them when
transforming to a time-based sequence).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro._validation import check_count, check_positive
from repro.exceptions import ParameterError
from repro.timeseries.database import TransactionalDatabase

__all__ = ["QuestConfig", "generate_quest"]


@dataclass(frozen=True)
class QuestConfig:
    """Parameters of the Quest generator.

    The defaults are a scaled-down T10I4D100K: mean transaction size 10,
    mean potential-itemset size 4, 941 items — only the transaction
    count is reduced (the paper used 100 000).
    """

    n_transactions: int = 10_000
    n_items: int = 941
    avg_transaction_size: float = 10.0
    avg_pattern_size: float = 4.0
    n_patterns: int = 200
    correlation: float = 0.5
    corruption_mean: float = 0.5
    corruption_sd: float = 0.1
    gap_probability: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        check_count(self.n_transactions, "n_transactions")
        check_count(self.n_items, "n_items")
        check_count(self.n_patterns, "n_patterns")
        check_positive(self.avg_transaction_size, "avg_transaction_size")
        check_positive(self.avg_pattern_size, "avg_pattern_size")
        if not 0 <= self.correlation <= 1:
            raise ParameterError(
                f"correlation must be in [0, 1], got {self.correlation!r}"
            )
        if not 0 <= self.gap_probability < 1:
            raise ParameterError(
                f"gap_probability must be in [0, 1), got "
                f"{self.gap_probability!r}"
            )


def generate_quest(config: QuestConfig = QuestConfig()) -> TransactionalDatabase:
    """Generate a Quest-style database (deterministic per seed).

    Items are the strings ``"i0" … "i<n_items-1>"``.

    Examples
    --------
    >>> db = generate_quest(QuestConfig(n_transactions=100, seed=7))
    >>> len(db) <= 100  # timestamps with empty baskets are dropped
    True
    """
    rng = np.random.default_rng(config.seed)
    potential = _potential_itemsets(rng, config)
    weights = rng.exponential(1.0, size=len(potential))
    weights /= weights.sum()
    corruption = np.clip(
        rng.normal(config.corruption_mean, config.corruption_sd, len(potential)),
        0.0,
        1.0,
    )

    rows: List[Tuple[int, Tuple[str, ...]]] = []
    ts = 0
    for _ in range(config.n_transactions):
        ts += 1
        while config.gap_probability and rng.random() < config.gap_probability:
            ts += 1  # silent timestamp: no transaction is emitted there
        size = max(1, rng.poisson(config.avg_transaction_size))
        basket = _fill_transaction(rng, potential, weights, corruption, size)
        if basket:
            rows.append((ts, tuple(f"i{i}" for i in basket)))
    return TransactionalDatabase(rows)


def _potential_itemsets(
    rng: np.random.Generator, config: QuestConfig
) -> List[np.ndarray]:
    """Draw the maximal potential itemsets (step 1 of the procedure)."""
    itemsets: List[np.ndarray] = []
    previous: np.ndarray = np.empty(0, dtype=np.int64)
    for _ in range(config.n_patterns):
        size = max(1, rng.poisson(config.avg_pattern_size))
        inherited: Sequence[int] = ()
        if len(previous):
            # The fraction of items carried over from the previous
            # itemset is exponentially distributed with the configured
            # mean, per the original generator.
            fraction = min(1.0, rng.exponential(config.correlation))
            carry = min(len(previous), int(round(fraction * size)))
            if carry:
                inherited = rng.choice(previous, size=carry, replace=False)
        fresh_needed = size - len(inherited)
        fresh = rng.integers(0, config.n_items, size=fresh_needed)
        items = np.unique(np.concatenate([np.asarray(inherited, dtype=np.int64), fresh]))
        itemsets.append(items)
        previous = items
    return itemsets


def _fill_transaction(
    rng: np.random.Generator,
    potential: List[np.ndarray],
    weights: np.ndarray,
    corruption: np.ndarray,
    size: int,
) -> List[int]:
    """Fill one basket from weighted, corrupted potential itemsets."""
    basket: List[int] = []
    seen = set()
    # The original generator keeps assigning itemsets until the basket
    # is full; an itemset that would overflow is added anyway half the
    # time, otherwise kept for the next transaction (we simply stop —
    # the distributional effect on basket sizes is the same).
    attempts = 0
    while len(basket) < size and attempts < 8 * size:
        attempts += 1
        index = int(rng.choice(len(potential), p=weights))
        drop = corruption[index]
        for item in potential[index]:
            if drop and rng.random() < drop:
                continue
            if item not in seen:
                seen.add(item)
                basket.append(int(item))
        if len(basket) > size and rng.random() < 0.5:
            del basket[size:]
            break
    return basket
