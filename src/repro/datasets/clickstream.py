"""Shop-14–style synthetic clickstream (ECML/PKDD'05 stand-in).

The paper's Shop-14 database records, per minute over 41 days, the set
of product categories visited in an on-line store (59 240 transactions,
138 categories).  This generator reproduces the structural properties
that make recurring patterns appear in such data:

* a Zipf-skewed category popularity (a few hot categories, a long tail);
* a diurnal intensity curve — the shop is quiet at night, busy at
  midday and in the evening, so per-category point sequences are dense
  during opening hours and break at night;
* navigation correlation — visiting a category drags in a related
  category with some probability, creating multi-item patterns;
* *seasonal* categories that are only active inside configured
  promotion windows, which is precisely the behaviour recurring
  patterns capture and regular-pattern models miss.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro._validation import check_count
from repro.exceptions import ParameterError
from repro.timeseries.database import TransactionalDatabase

__all__ = ["ClickstreamConfig", "generate_clickstream", "MINUTES_PER_DAY"]

MINUTES_PER_DAY = 1440


@dataclass(frozen=True)
class ClickstreamConfig:
    """Parameters of the clickstream generator.

    ``promo_windows`` maps a *seasonal* category index to the list of
    ``(first_day, last_day)`` windows (inclusive, 0-based) during which
    it is active; each seasonal category is paired with the next index
    (``c -> c+1``) so promotions yield 2-itemset recurring patterns.
    The default plants two two-window promotions, mirroring the
    jackets-and-gloves motivation of the paper's introduction.
    """

    days: int = 41
    n_categories: int = 138
    base_rate: float = 1.1
    zipf_exponent: float = 1.2
    correlation_probability: float = 0.35
    promo_windows: Tuple[Tuple[int, Tuple[Tuple[int, int], ...]], ...] = (
        (120, ((3, 9), (24, 30))),
        (125, ((6, 12), (30, 36))),
    )
    promo_rate: float = 0.55
    seed: int = 0

    def __post_init__(self) -> None:
        check_count(self.days, "days")
        check_count(self.n_categories, "n_categories")
        if self.base_rate <= 0:
            raise ParameterError(f"base_rate must be > 0, got {self.base_rate!r}")
        if not 0 <= self.correlation_probability <= 1:
            raise ParameterError(
                "correlation_probability must be in [0, 1], got "
                f"{self.correlation_probability!r}"
            )
        for category, windows in self.promo_windows:
            if not 0 <= category < self.n_categories - 1:
                raise ParameterError(
                    f"promo category {category} out of range"
                )
            for first, last in windows:
                if not 0 <= first <= last:
                    raise ParameterError(
                        f"bad promo window ({first}, {last})"
                    )


def generate_clickstream(
    config: ClickstreamConfig = ClickstreamConfig(),
) -> TransactionalDatabase:
    """Generate a Shop-14–style database (deterministic per seed).

    Timestamps are minutes since the start of day 0; categories are the
    strings ``"c0" … "c<n-1>"``.

    Examples
    --------
    >>> db = generate_clickstream(ClickstreamConfig(days=2, seed=1))
    >>> db.end < 2 * MINUTES_PER_DAY
    True
    """
    rng = np.random.default_rng(config.seed)
    popularity = _zipf_weights(config.n_categories, config.zipf_exponent)
    # Seasonal categories (and their paired partners) live outside the
    # everyday assortment: zero background weight, so their appearances
    # are governed entirely by the promotion windows.
    for category, _ in config.promo_windows:
        popularity[category] = 0.0
        popularity[category + 1] = 0.0
    total = popularity.sum()
    if total <= 0:
        raise ParameterError(
            "promo windows cover every category; none left for background"
        )
    popularity /= total
    # Related category for navigation correlation: a fixed random
    # mapping so pairs are stable across the run.  Navigation must not
    # leak into promo categories either, so promo targets are redirected
    # to the (always background) category 0.
    related = rng.permutation(config.n_categories)
    promo_categories = {
        c for category, _ in config.promo_windows for c in (category, category + 1)
    }
    if 0 in promo_categories:
        raise ParameterError("category 0 is reserved for the background")
    for index, target in enumerate(related):
        if int(target) in promo_categories:
            related[index] = 0

    promo_by_day = _promo_schedule(config)

    rows: List[Tuple[int, Tuple[str, ...]]] = []
    total_minutes = config.days * MINUTES_PER_DAY
    for minute in range(total_minutes):
        minute_of_day = minute % MINUTES_PER_DAY
        day = minute // MINUTES_PER_DAY
        intensity = config.base_rate * _diurnal(minute_of_day)
        if intensity <= 0:
            continue
        visits = rng.poisson(intensity)
        basket = set()
        if visits:
            chosen = rng.choice(
                config.n_categories, size=visits, p=popularity
            )
            for category in chosen:
                basket.add(int(category))
                if rng.random() < config.correlation_probability:
                    basket.add(int(related[category]))
        for category in promo_by_day.get(day, ()):
            if rng.random() < config.promo_rate * _diurnal(minute_of_day):
                basket.add(category)
                basket.add(category + 1)  # the paired promo category
        if basket:
            rows.append(
                (minute, tuple(f"c{category}" for category in sorted(basket)))
            )
    return TransactionalDatabase(rows)


def _zipf_weights(n: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** -exponent
    return weights / weights.sum()


def _diurnal(minute_of_day: int) -> float:
    """Shop activity multiplier over the day.

    Near zero from 01:00–06:00, ramps through the morning, peaks around
    13:00 and again at 20:00.  The exact curve does not matter; what
    matters is that per-category runs break every night, bounding
    periodic-intervals at roughly one day.
    """
    hour = minute_of_day / 60.0
    if 1.0 <= hour < 6.0:
        return 0.0
    midday = math.exp(-((hour - 13.0) ** 2) / 18.0)
    evening = 0.8 * math.exp(-((hour - 20.0) ** 2) / 8.0)
    return 0.15 + midday + evening


def _promo_schedule(config: ClickstreamConfig) -> Dict[int, List[int]]:
    """Map each day to the seasonal categories active on it."""
    schedule: Dict[int, List[int]] = {}
    for category, windows in config.promo_windows:
        for first, last in windows:
            for day in range(first, min(last, config.days - 1) + 1):
                schedule.setdefault(day, []).append(category)
    return schedule
