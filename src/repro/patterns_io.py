"""Persistence for mined pattern sets.

Mining a large archive can take minutes; analysts re-query the result
far more often than they re-mine.  This module serialises a
:class:`~repro.core.model.RecurringPatternSet` to a line-oriented TSV
that survives a round trip exactly (tested), keeps integer timestamps
as integers, and stays greppable:

```
# repro recurring patterns v1
a b<TAB>7<TAB>1:4:3,11:14:3
```

Columns: space-separated items, support, comma-separated
``start:end:periodic_support`` interval triples.
"""

from __future__ import annotations

import os
from typing import IO, List, Union

from repro.core.model import (
    PeriodicInterval,
    RecurringPattern,
    RecurringPatternSet,
)
from repro.exceptions import DataFormatError

PathOrFile = Union[str, "os.PathLike[str]", IO[str]]

__all__ = ["save_patterns", "load_patterns"]

_HEADER = "# repro recurring patterns v1"


def save_patterns(patterns: RecurringPatternSet, target: PathOrFile) -> None:
    """Write a pattern set (deterministic order, exact round trip)."""
    if hasattr(target, "write"):
        _write(patterns, target)  # type: ignore[arg-type]
    else:
        with open(target, "w", encoding="utf-8") as handle:
            _write(patterns, handle)


def load_patterns(source: PathOrFile) -> RecurringPatternSet:
    """Read a pattern set written by :func:`save_patterns`."""
    if hasattr(source, "read"):
        return _read(source)  # type: ignore[arg-type]
    with open(source, "r", encoding="utf-8") as handle:
        return _read(handle)


def _write(patterns: RecurringPatternSet, handle: IO[str]) -> None:
    handle.write(_HEADER + "\n")
    for pattern in patterns:
        items = " ".join(
            _checked_item(item) for item in pattern.sorted_items()
        )
        intervals = ",".join(
            f"{_num(iv.start)}:{_num(iv.end)}:{iv.periodic_support}"
            for iv in pattern.intervals
        )
        handle.write(f"{items}\t{pattern.support}\t{intervals}\n")


def _read(handle: IO[str]) -> RecurringPatternSet:
    first = handle.readline().rstrip("\n")
    if first != _HEADER:
        raise DataFormatError(
            f"missing pattern-file header; got {first!r}"
        )
    patterns: List[RecurringPattern] = []
    for line_no, raw in enumerate(handle, start=2):
        line = raw.rstrip("\n")
        if not line.strip() or line.startswith("#"):
            continue
        parts = line.split("\t")
        if len(parts) != 3:
            raise DataFormatError(
                f"line {line_no}: expected 3 tab-separated columns"
            )
        items_text, support_text, intervals_text = parts
        items = items_text.split()
        if not items:
            raise DataFormatError(f"line {line_no}: empty itemset")
        try:
            support = int(support_text)
        except ValueError as error:
            raise DataFormatError(
                f"line {line_no}: bad support {support_text!r}"
            ) from error
        intervals = []
        for chunk in intervals_text.split(","):
            fields = chunk.split(":")
            if len(fields) != 3:
                raise DataFormatError(
                    f"line {line_no}: bad interval {chunk!r}"
                )
            try:
                intervals.append(
                    PeriodicInterval(
                        _parse_num(fields[0]),
                        _parse_num(fields[1]),
                        int(fields[2]),
                    )
                )
            except ValueError as error:
                raise DataFormatError(
                    f"line {line_no}: bad interval {chunk!r}"
                ) from error
        patterns.append(
            RecurringPattern(
                items=frozenset(items),
                support=support,
                intervals=tuple(intervals),
            )
        )
    return RecurringPatternSet(patterns)


def _checked_item(item: object) -> str:
    """Stringify ``item``, refusing strings the format cannot hold."""
    text = str(item)
    if not text or any(ch in text for ch in " \t\n,:"):
        raise DataFormatError(
            f"item {text!r} cannot be written: it is empty or contains "
            "a separator character of the pattern-file format"
        )
    return text


def _num(value: float) -> str:
    if isinstance(value, int) or (
        isinstance(value, float) and value.is_integer()
    ):
        return str(int(value))
    return repr(value)


def _parse_num(text: str) -> float:
    try:
        return int(text)
    except ValueError:
        return float(text)
