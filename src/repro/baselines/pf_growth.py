"""Periodic-frequent pattern mining (Tanbeer et al. 2009; Kiran &
Kitsuregawa 2014 — "PF-growth++" semantics).

A frequent pattern is *periodic-frequent* when it exhibits complete
cyclic repetitions throughout the database: its maximum periodicity —
the largest inter-arrival time over its whole point sequence,
including the lead-in from the first transaction of the database and
the lead-out to the last — must not exceed ``max_per``, and its support
must reach ``min_sup``.

Both measures are anti-monotone (a superset's point sequence is a
subset, so gaps only merge and grow), so the search is a plain
depth-first lattice walk over ts-list intersections; this reproduces
the *model* the paper compares against in Table 8 — the comparison
there is about pattern counts, not about the mining engine.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

from repro._validation import Number, check_positive, resolve_count_threshold
from repro.baselines.model import PatternCollection, PeriodicFrequentPattern
from repro.core.rp_eclat import intersect_sorted
from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.events import Item

__all__ = ["max_periodicity", "mine_periodic_frequent_patterns"]


def max_periodicity(
    timestamps: Sequence[float], db_start: float, db_end: float
) -> float:
    """The periodicity measure: largest gap over the whole database span.

    ``max(ts_1 - db_start, iat_1, …, iat_k, db_end - ts_last)``.
    An empty point sequence has infinite periodicity.

    Examples
    --------
    >>> max_periodicity([1, 3, 4, 7, 11, 12, 14], db_start=1, db_end=14)
    4
    """
    if not timestamps:
        return float("inf")
    worst = max(timestamps[0] - db_start, db_end - timestamps[-1])
    for earlier, later in zip(timestamps, timestamps[1:]):
        gap = later - earlier
        if gap > worst:
            worst = gap
    return worst


def mine_periodic_frequent_patterns(
    database: TransactionalDatabase,
    min_sup: Union[int, float],
    max_per: Number,
) -> PatternCollection[PeriodicFrequentPattern]:
    """Mine all periodic-frequent patterns.

    Parameters
    ----------
    database:
        The transactional database.
    min_sup:
        Minimum support (count, or fraction of the database size).
    max_per:
        Maximum allowed periodicity.

    Examples
    --------
    In the paper's running example, ``a`` appears at
    {1,2,3,4,7,11,12,14}: its largest gap is 4, so it is
    periodic-frequent at ``max_per=4`` but not at ``max_per=3``:

    >>> from repro.datasets import paper_running_example
    >>> db = paper_running_example()
    >>> found = mine_periodic_frequent_patterns(db, 6, 4)
    >>> found.pattern("a").periodicity
    4
    >>> "a" in mine_periodic_frequent_patterns(db, 6, 3)
    False
    """
    check_positive(max_per, "max_per")
    if len(database) == 0:
        return PatternCollection()
    threshold = resolve_count_threshold(min_sup, "min_sup", len(database))
    db_start, db_end = database.start, database.end

    item_ts = database.item_timestamps()
    roots: List[Tuple[Item, Tuple[float, ...]]] = []
    for item in sorted(item_ts, key=repr):
        ts_list = item_ts[item]
        if (
            len(ts_list) >= threshold
            and max_periodicity(ts_list, db_start, db_end) <= max_per
        ):
            roots.append((item, ts_list))
    roots.sort(key=lambda pair: (len(pair[1]), repr(pair[0])))

    found: List[PeriodicFrequentPattern] = []

    def grow(
        prefix: Tuple[Item, ...],
        prefix_ts: Sequence[float],
        extensions: List[Tuple[Item, Tuple[float, ...]]],
    ) -> None:
        found.append(
            PeriodicFrequentPattern(
                frozenset(prefix),
                len(prefix_ts),
                max_periodicity(prefix_ts, db_start, db_end),
            )
        )
        for index, (item, item_ts_list) in enumerate(extensions):
            new_ts = intersect_sorted(prefix_ts, item_ts_list)
            if (
                len(new_ts) >= threshold
                and max_periodicity(new_ts, db_start, db_end) <= max_per
            ):
                grow(prefix + (item,), new_ts, extensions[index + 1:])

    for index, (item, ts_list) in enumerate(roots):
        grow((item,), ts_list, roots[index + 1:])
    return PatternCollection(found)
