"""FP-growth frequent-itemset mining (Han, Pei, Yin & Mao, 2004).

The classic algorithm, implemented over
:class:`~repro.timeseries.database.TransactionalDatabase`: build a
support-descending FP-tree with counted nodes, then recursively mine
conditional trees.  It serves three roles here:

* the structural ancestor of the paper's RP-tree (Section 4.2 contrasts
  the two);
* the frequent-itemset substrate of the p-pattern association step;
* a sanity baseline in tests (every recurring pattern is frequent at
  ``minSup = minPS``... within its intervals; the test suite checks the
  precise containment relations).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro._validation import resolve_count_threshold
from repro.baselines.model import FrequentPattern, PatternCollection
from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.events import Item

__all__ = ["FPTreeNode", "FPTree", "mine_frequent_patterns"]


class FPTreeNode:
    """A counted FP-tree node."""

    __slots__ = ("item", "count", "parent", "children")

    def __init__(
        self, item: Optional[Item], parent: Optional["FPTreeNode"]
    ):
        self.item = item
        self.count = 0
        self.parent = parent
        self.children: Dict[Item, "FPTreeNode"] = {}

    def __repr__(self) -> str:
        label = "root" if self.item is None else repr(self.item)
        return f"FPTreeNode({label}, count={self.count})"


class FPTree:
    """FP-tree with a per-item node registry (header table)."""

    def __init__(self, order: Dict[Item, int]):
        self.root = FPTreeNode(None, None)
        self.order = order
        self.nodes_by_item: Dict[Item, List[FPTreeNode]] = {}

    def insert(self, sorted_items: Iterable[Item], count: int = 1) -> None:
        """Insert one (already ordered) transaction path ``count`` times."""
        node = self.root
        for item in sorted_items:
            child = node.children.get(item)
            if child is None:
                child = FPTreeNode(item, node)
                node.children[item] = child
                self.nodes_by_item.setdefault(item, []).append(child)
            child.count += count
            node = child

    def header_bottom_up(self) -> List[Item]:
        """Items in the tree, least-frequent first (mining order)."""
        return sorted(
            self.nodes_by_item, key=self.order.__getitem__, reverse=True
        )

    def item_support(self, item: Item) -> int:
        """Total count over every node of ``item``."""
        return sum(node.count for node in self.nodes_by_item.get(item, ()))

    def prefix_paths(self, item: Item) -> List[Tuple[List[Item], int]]:
        """Conditional pattern base: (root-to-parent path, count) pairs."""
        base: List[Tuple[List[Item], int]] = []
        for node in self.nodes_by_item.get(item, ()):
            path: List[Item] = []
            ancestor = node.parent
            while ancestor is not None and ancestor.item is not None:
                path.append(ancestor.item)
                ancestor = ancestor.parent
            path.reverse()
            if path:
                base.append((path, node.count))
        return base


def mine_frequent_patterns(
    database: TransactionalDatabase,
    min_sup: Union[int, float],
    max_length: Optional[int] = None,
) -> PatternCollection[FrequentPattern]:
    """Mine all frequent itemsets with FP-growth.

    Parameters
    ----------
    database:
        The transactional database.
    min_sup:
        Minimum support — an absolute count (``int``) or a fraction of
        the database size (``float`` in (0, 1]).
    max_length:
        Optional cap on pattern length (mining stops growing beyond it),
        useful on dense data.

    Examples
    --------
    >>> from repro.datasets import paper_running_example
    >>> frequent = mine_frequent_patterns(paper_running_example(), 7)
    >>> sorted("".join(sorted(p.items)) for p in frequent)
    ['a', 'ab', 'b', 'c']
    """
    if len(database) == 0:
        return PatternCollection()
    threshold = resolve_count_threshold(min_sup, "min_sup", len(database))

    supports: Dict[Item, int] = {
        item: len(ts) for item, ts in database.item_timestamps().items()
    }
    keep = {
        item: support
        for item, support in supports.items()
        if support >= threshold
    }
    if not keep:
        return PatternCollection()
    ranked = sorted(keep, key=lambda item: (-keep[item], repr(item)))
    order = {item: rank for rank, item in enumerate(ranked)}

    tree = FPTree(order)
    for _, itemset in database:
        sorted_items = sorted(
            (item for item in itemset if item in order),
            key=order.__getitem__,
        )
        if sorted_items:
            tree.insert(sorted_items)

    found: List[FrequentPattern] = []
    _mine(tree, (), threshold, max_length, found)
    return PatternCollection(found)


def _mine(
    tree: FPTree,
    suffix: Tuple[Item, ...],
    threshold: int,
    max_length: Optional[int],
    found: List[FrequentPattern],
) -> None:
    for item in tree.header_bottom_up():
        support = tree.item_support(item)
        if support < threshold:
            continue
        beta = suffix + (item,)
        found.append(FrequentPattern(frozenset(beta), support))
        if max_length is not None and len(beta) >= max_length:
            continue
        base = tree.prefix_paths(item)
        if not base:
            continue
        conditional_support: Dict[Item, int] = {}
        for path, count in base:
            for path_item in path:
                conditional_support[path_item] = (
                    conditional_support.get(path_item, 0) + count
                )
        keep = {
            path_item
            for path_item, support_count in conditional_support.items()
            if support_count >= threshold
        }
        if not keep:
            continue
        conditional = FPTree(tree.order)
        for path, count in base:
            conditional.insert(
                [path_item for path_item in path if path_item in keep], count
            )
        _mine(conditional, beta, threshold, max_length, found)
