"""Segment-based partial periodic patterns (Han, Dong & Yin, ICDE'99).

This is the classic *symbolic-sequence* model the paper's related-work
section starts from — and argues against, because it ignores actual
event timestamps.  It is included both as a baseline and to demonstrate
that criticism concretely (see
``tests/baselines/test_partial_periodic.py``).

The model: view the data as a symbolic sequence of itemsets
``s_1 s_2 … s_n`` (one per position, *not* per timestamp), fix a period
``p``, and chop the sequence into ``floor(n / p)`` disjoint
*period-segments* of length ``p``.  A **partial periodic pattern** is a
tuple of ``p`` slots, each either the wildcard ``*`` or a non-empty
itemset; a segment *matches* when every non-wildcard slot's itemset is
contained in the segment's itemset at that offset.  A pattern is
frequent when its fraction of matching segments reaches ``minConf``
(Han's confidence).

Mining is level-wise over the non-wildcard slot/item choices (the
"1-patterns" are single (offset, item) pairs), which is the max-subpattern
tree paper's candidate space explored Apriori-style — fine at the
pattern sizes the comparison needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple, Union

from repro._validation import check_count, resolve_count_threshold
from repro.exceptions import ParameterError
from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.events import Item

__all__ = [
    "PartialPeriodicPattern",
    "mine_partial_periodic_patterns",
    "database_to_symbolic_sequence",
]

# A slot assignment: (offset within the period, item).
Slot = Tuple[int, Item]


@dataclass(frozen=True)
class PartialPeriodicPattern:
    """One partial periodic pattern over a fixed period.

    ``slots`` holds the non-wildcard positions as (offset, item) pairs;
    every other offset is the wildcard.  ``support`` counts matching
    period-segments.
    """

    period: int
    slots: FrozenSet[Slot]
    support: int

    def __post_init__(self) -> None:
        if not self.slots:
            raise ValueError("a pattern needs at least one bound slot")
        for offset, _ in self.slots:
            if not 0 <= offset < self.period:
                raise ValueError(
                    f"slot offset {offset} outside period {self.period}"
                )

    @property
    def length(self) -> int:
        """Number of bound (non-wildcard) slot/item assignments."""
        return len(self.slots)

    def sorted_slots(self) -> Tuple[Slot, ...]:
        """Slots in deterministic (offset, item) order."""
        return tuple(sorted(self.slots, key=lambda slot: (slot[0], repr(slot[1]))))

    def __str__(self) -> str:
        by_offset: Dict[int, List[Item]] = {}
        for offset, item in self.slots:
            by_offset.setdefault(offset, []).append(item)
        rendered = []
        for offset in range(self.period):
            if offset in by_offset:
                rendered.append(
                    "{" + "".join(
                        str(i) for i in sorted(by_offset[offset], key=repr)
                    ) + "}"
                )
            else:
                rendered.append("*")
        return "".join(rendered) + f" [support={self.support}]"


def database_to_symbolic_sequence(
    database: TransactionalDatabase,
) -> List[FrozenSet[Item]]:
    """Flatten a database to the symbolic sequence this model assumes.

    This is precisely the lossy step the paper criticises: transaction
    *positions* replace timestamps, so the silent gaps (e.g. the
    missing timestamps 8 and 13 of the running example) disappear.
    """
    return [itemset for _, itemset in database]


def mine_partial_periodic_patterns(
    sequence_or_database: Union[Sequence[FrozenSet[Item]], TransactionalDatabase],
    period: int,
    min_sup: Union[int, float],
    max_length: int = 4,
) -> List[PartialPeriodicPattern]:
    """Mine all partial periodic patterns of one fixed period.

    Parameters
    ----------
    sequence_or_database:
        A symbolic sequence (list of itemsets) or a database (flattened
        first via :func:`database_to_symbolic_sequence`).
    period:
        Segment length ``p``.
    min_sup:
        Minimum number (or fraction) of matching period-segments.
    max_length:
        Cap on bound slots per pattern (the candidate space is the
        product of offsets and items; real uses of this model keep
        patterns short).

    Examples
    --------
    A perfectly alternating sequence has the length-2 pattern
    ``{a}{b}`` at period 2:

    >>> seq = [frozenset("a"), frozenset("b")] * 4
    >>> patterns = mine_partial_periodic_patterns(seq, period=2, min_sup=4)
    >>> sorted(str(p) for p in patterns)
    ['*{b} [support=4]', '{a}* [support=4]', '{a}{b} [support=4]']
    """
    check_count(period, "period")
    check_count(max_length, "max_length")
    if isinstance(sequence_or_database, TransactionalDatabase):
        sequence = database_to_symbolic_sequence(sequence_or_database)
    else:
        sequence = list(sequence_or_database)
    n_segments = len(sequence) // period
    if n_segments == 0:
        return []
    threshold = resolve_count_threshold(min_sup, "min_sup", n_segments)
    segments = [
        sequence[index * period:(index + 1) * period]
        for index in range(n_segments)
    ]

    # Level 1: count every (offset, item) slot.
    slot_counts: Dict[Slot, int] = {}
    for segment in segments:
        for offset, itemset in enumerate(segment):
            for item in itemset:
                slot = (offset, item)
                slot_counts[slot] = slot_counts.get(slot, 0) + 1
    current: Dict[FrozenSet[Slot], int] = {
        frozenset((slot,)): count
        for slot, count in slot_counts.items()
        if count >= threshold
    }

    found: List[PartialPeriodicPattern] = []
    level = 1
    while current:
        found.extend(
            PartialPeriodicPattern(period, slots, support)
            for slots, support in current.items()
        )
        if level >= max_length:
            break
        candidates = _join(set(current), level)
        counts = _count(segments, candidates)
        current = {
            slots: support
            for slots, support in counts.items()
            if support >= threshold
        }
        level += 1
    found.sort(key=lambda p: (p.length, p.sorted_slots()))
    return found


def _join(
    frequent: Set[FrozenSet[Slot]], level: int
) -> Set[FrozenSet[Slot]]:
    """Apriori join+prune over slot sets.

    Two same-offset slots with different items ARE allowed together
    (Han's model permits itemsets per position), so the join is plain
    set union of compatible slot sets.
    """
    candidates: Set[FrozenSet[Slot]] = set()
    ordered = sorted(
        frequent,
        key=lambda slots: tuple(
            sorted((offset, repr(item)) for offset, item in slots)
        ),
    )
    for left, right in combinations(ordered, 2):
        union = left | right
        if len(union) != level + 1:
            continue
        if all(
            frozenset(subset) in frequent
            for subset in combinations(sorted(union, key=repr), level)
        ):
            candidates.add(union)
    return candidates


def _count(
    segments: List[List[FrozenSet[Item]]],
    candidates: Set[FrozenSet[Slot]],
) -> Dict[FrozenSet[Slot], int]:
    counts: Dict[FrozenSet[Slot], int] = dict.fromkeys(candidates, 0)
    for segment in segments:
        for candidate in candidates:
            if all(
                item in segment[offset] for offset, item in candidate
            ):
                counts[candidate] += 1
    return counts
