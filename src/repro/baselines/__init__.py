"""Baseline pattern-mining algorithms the paper compares against.

* :mod:`repro.baselines.fp_growth` — FP-growth frequent-itemset mining
  (Han et al. 2004), the substrate RP-growth's tree machinery descends
  from;
* :mod:`repro.baselines.apriori` — level-wise Apriori (Agrawal et al.
  1993), the substrate of periodic-first p-pattern mining;
* :mod:`repro.baselines.pf_growth` — periodic-frequent patterns
  (Tanbeer et al. 2009, PF-growth++ semantics of Kiran & Kitsuregawa
  2014);
* :mod:`repro.baselines.ppattern` — Ma & Hellerstein's p-patterns
  (ICDE 2001), periodic-first algorithm, including chi-square period
  detection in :mod:`repro.baselines.period_detection`.
"""

from repro.baselines.apriori import mine_frequent_patterns_apriori
from repro.baselines.async_periodic import (
    AsyncPeriodicPattern,
    mine_async_periodic_patterns,
)
from repro.baselines.fp_growth import mine_frequent_patterns
from repro.baselines.model import (
    FrequentPattern,
    PatternCollection,
    PeriodicFrequentPattern,
    PPattern,
)
from repro.baselines.partial_periodic import (
    PartialPeriodicPattern,
    mine_partial_periodic_patterns,
)
from repro.baselines.period_detection import detect_periods
from repro.baselines.pf_growth import mine_periodic_frequent_patterns
from repro.baselines.pf_tree import mine_periodic_frequent_patterns_tree
from repro.baselines.ppattern import mine_p_patterns

__all__ = [
    "FrequentPattern",
    "PeriodicFrequentPattern",
    "PPattern",
    "PartialPeriodicPattern",
    "AsyncPeriodicPattern",
    "PatternCollection",
    "mine_frequent_patterns",
    "mine_frequent_patterns_apriori",
    "mine_periodic_frequent_patterns",
    "mine_periodic_frequent_patterns_tree",
    "mine_p_patterns",
    "mine_partial_periodic_patterns",
    "mine_async_periodic_patterns",
    "detect_periods",
]
