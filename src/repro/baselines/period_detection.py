"""Chi-square period detection (Ma & Hellerstein, ICDE 2001).

p-pattern mining assumes the period is *unknown*; the periodic-first
algorithm therefore first inspects each item's point sequence and asks
which inter-arrival times occur significantly more often than they
would under a random (Poisson) arrival process of the same rate.

For a candidate period ``p`` with tolerance ``delta``, let ``C_p`` be
the number of observed inter-arrival times in ``[p - delta, p + delta]``
and ``n`` the total number of inter-arrival times.  Under the Poisson
null with rate ``rho`` (occurrences per unit time), an inter-arrival
time lands in that window with probability

``q = exp(-rho * max(0, p - delta)) - exp(-rho * (p + delta))``

and the test statistic ``(C_p - n*q)^2 / (n * q * (1 - q))`` is
approximately chi-square with one degree of freedom; values above 3.84
reject randomness at the 95% level.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro._validation import check_non_negative, check_positive

__all__ = ["DetectedPeriod", "detect_periods", "chi_square_statistic"]

#: 95th percentile of the chi-square distribution with 1 degree of freedom.
CHI_SQUARE_95 = 3.841


@dataclass(frozen=True)
class DetectedPeriod:
    """One statistically significant period of a point sequence."""

    period: float
    count: int
    statistic: float


def chi_square_statistic(
    observed: int, trials: int, probability: float
) -> float:
    """The one-cell chi-square statistic against a binomial null."""
    if trials <= 0 or not 0 < probability < 1:
        return 0.0
    expected = trials * probability
    return (observed - expected) ** 2 / (
        trials * probability * (1 - probability)
    )


def detect_periods(
    timestamps: Sequence[float],
    delta: float = 0.0,
    significance: float = CHI_SQUARE_95,
    min_count: int = 2,
) -> List[DetectedPeriod]:
    """Find the significant periods of one point sequence.

    Parameters
    ----------
    timestamps:
        Strictly increasing occurrence timestamps.
    delta:
        Tolerance around a candidate period (the Ma–Hellerstein ``δ``);
        0 means exact-match periods, which suits integer-timestamp data.
    significance:
        Chi-square rejection threshold (default: 95% for 1 dof).
    min_count:
        Candidate periods observed fewer times are ignored outright —
        with one or two observations the test is meaningless.

    Returns
    -------
    Detected periods sorted by decreasing statistic.  An empty or
    single-point sequence has no periods.

    Examples
    --------
    A strongly periodic sequence is detected; pure arithmetic noise is
    not guaranteed to be:

    >>> [p.period for p in detect_periods(range(0, 100, 5))]
    [5]
    """
    check_non_negative(delta, "delta")
    check_positive(significance, "significance")
    points = list(timestamps)
    if len(points) < 3:
        return []
    span = points[-1] - points[0]
    if span <= 0:
        raise ValueError("timestamps must be strictly increasing")
    gaps = [later - earlier for earlier, later in zip(points, points[1:])]
    n = len(gaps)
    rho = len(points) / span

    # Candidate periods: the distinct observed inter-arrival times.
    counts: Dict[float, int] = {}
    for gap in gaps:
        counts[gap] = counts.get(gap, 0) + 1
    if delta > 0:
        # With tolerance, a candidate collects all gaps in its window.
        candidates = sorted(counts)
        windowed: Dict[float, int] = {}
        for candidate in candidates:
            windowed[candidate] = sum(
                count
                for gap, count in counts.items()
                if abs(gap - candidate) <= delta
            )
        counts = windowed

    detected: List[DetectedPeriod] = []
    for period, observed in counts.items():
        if observed < min_count:
            continue
        low = max(0.0, period - delta)
        high = period + delta
        if delta == 0:
            # Point probability of an integer-valued gap under a
            # geometric-like discretisation of the exponential.
            probability = math.exp(-rho * max(0.0, period - 0.5)) - math.exp(
                -rho * (period + 0.5)
            )
        else:
            probability = math.exp(-rho * low) - math.exp(-rho * high)
        probability = min(max(probability, 1e-12), 1 - 1e-12)
        statistic = chi_square_statistic(observed, n, probability)
        if statistic >= significance and observed > n * probability:
            detected.append(DetectedPeriod(period, observed, statistic))
    detected.sort(key=lambda d: (-d.statistic, d.period))
    return detected
