"""Tree-based periodic-frequent pattern mining (PF-growth++).

The paper's comparison uses Kiran & Kitsuregawa's PF-growth++, a
pattern-growth algorithm over a PF-tree — structurally the same
timestamp-list tail-node prefix tree as the RP-tree (in fact the paper
credits that design to the periodic-frequent literature, [9]).  This
module therefore reuses :class:`~repro.core.rp_tree.RPTree` and mines
it with the periodic-frequent predicate: support >= ``minSup`` and
maximum periodicity (database-boundary inclusive) <= ``maxPer``.

Both measures are anti-monotone, so conditional trees prune exactly.
Output is identical to the vertical miner in
:mod:`repro.baselines.pf_growth` (property-tested); the two exist for
the same reason RP-growth and RP-eclat both do — independent
implementations that cross-validate each other, plus an engine ablation.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Union

from repro._validation import (
    Number,
    check_positive,
    resolve_count_threshold,
)
from repro.baselines.model import PatternCollection, PeriodicFrequentPattern
from repro.baselines.pf_growth import max_periodicity
from repro.core.rp_tree import RPTree
from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.events import Item

__all__ = ["mine_periodic_frequent_patterns_tree"]


def mine_periodic_frequent_patterns_tree(
    database: TransactionalDatabase,
    min_sup: Union[int, float],
    max_per: Number,
) -> PatternCollection[PeriodicFrequentPattern]:
    """Mine periodic-frequent patterns with the PF-tree algorithm.

    Parameters and output match
    :func:`repro.baselines.pf_growth.mine_periodic_frequent_patterns`.

    Examples
    --------
    >>> from repro.datasets import paper_running_example
    >>> found = mine_periodic_frequent_patterns_tree(
    ...     paper_running_example(), 6, 4)
    >>> sorted("".join(sorted(p.items)) for p in found)
    ['a', 'ab', 'b', 'c', 'cd', 'd', 'e', 'ef', 'f']
    """
    check_positive(max_per, "max_per")
    if len(database) == 0:
        return PatternCollection()
    threshold = resolve_count_threshold(min_sup, "min_sup", len(database))
    db_start, db_end = database.start, database.end

    def qualifies(timestamps) -> bool:
        return (
            len(timestamps) >= threshold
            and max_periodicity(timestamps, db_start, db_end) <= max_per
        )

    item_ts = database.item_timestamps()
    candidates = {
        item: ts for item, ts in item_ts.items() if qualifies(ts)
    }
    if not candidates:
        return PatternCollection()
    ranked = sorted(
        candidates, key=lambda item: (-len(candidates[item]), repr(item))
    )
    order = {item: rank for rank, item in enumerate(ranked)}

    tree = RPTree(order)
    for ts, itemset in database:
        sorted_items = sorted(
            (item for item in itemset if item in order),
            key=order.__getitem__,
        )
        if sorted_items:
            tree.insert(sorted_items, (ts,))

    found: List[PeriodicFrequentPattern] = []
    _mine(tree, (), qualifies, db_start, db_end, found)
    return PatternCollection(found)


def _mine(
    tree: RPTree,
    suffix: Tuple[Item, ...],
    qualifies,
    db_start: float,
    db_end: float,
    found: List[PeriodicFrequentPattern],
) -> None:
    for item in tree.header_bottom_up():
        beta = suffix + (item,)
        beta_ts = tree.pattern_timestamps(item)
        if qualifies(beta_ts):
            found.append(
                PeriodicFrequentPattern(
                    frozenset(beta),
                    len(beta_ts),
                    max_periodicity(beta_ts, db_start, db_end),
                )
            )
            conditional = _conditional_tree(tree, item, qualifies)
            if conditional is not None:
                _mine(conditional, beta, qualifies, db_start, db_end, found)
        tree.remove_item(item)


def _conditional_tree(tree: RPTree, item: Item, qualifies) -> RPTree | None:
    base = tree.prefix_paths(item)
    if not base:
        return None
    conditional_ts: Dict[Item, List[float]] = {}
    for path, ts_list in base:
        for path_item in path:
            conditional_ts.setdefault(path_item, []).extend(ts_list)
    keep = set()
    for path_item, ts_list in conditional_ts.items():
        ts_list.sort()
        if qualifies(ts_list):
            keep.add(path_item)
    if not keep:
        return None
    conditional = RPTree(tree.order)
    for path, ts_list in base:
        conditional.insert(
            [path_item for path_item in path if path_item in keep],
            ts_list,
        )
    return conditional
