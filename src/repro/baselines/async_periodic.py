"""Asynchronous periodic patterns (Yang, Wang & Yu, TKDE 2003).

The related work the paper singles out as closest to recurring
patterns: a pattern in a *symbolic sequence* that repeats with period
``p`` in *valid segments* (at least ``min_rep`` back-to-back perfect
repetitions) which may be separated by bounded noise (*disturbance* of
at most ``max_dis`` positions), possibly shifting phase across the
disturbance.  The mined object is the **longest valid subsequence** —
the chain of valid segments maximising total repetitions.

The paper's criticism, which the tests demonstrate: the model works on
sequence positions, not timestamps, so it cannot distinguish a one-hour
from a one-week silence between occurrences — information the
recurring-pattern model keeps.

Implementation notes: for a fixed ``period`` the occurrence positions
of a pattern decompose uniquely into maximal arithmetic runs of step
``period``; runs of length >= ``min_rep`` are the valid segments, and a
quadratic DP chains them under the disturbance bound.  Itemset patterns
are searched level-wise — the longest-valid-subsequence measure is
anti-monotone because a superset's positions are a subset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple, Union

from repro._validation import check_count
from repro.baselines.apriori import generate_candidates
from repro.baselines.partial_periodic import database_to_symbolic_sequence
from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.events import Item

__all__ = [
    "Segment",
    "AsyncPeriodicPattern",
    "longest_valid_subsequence",
    "mine_async_periodic_patterns",
]


@dataclass(frozen=True)
class Segment:
    """One valid segment: ``repetitions`` occurrences at
    ``start, start + period, …, end``."""

    start: int
    end: int
    repetitions: int


@dataclass(frozen=True)
class AsyncPeriodicPattern:
    """An itemset with its longest valid subsequence at one period."""

    items: FrozenSet[Item]
    period: int
    repetitions: int
    segments: Tuple[Segment, ...]

    @property
    def length(self) -> int:
        return len(self.items)

    def sorted_items(self) -> Tuple[Item, ...]:
        """Items in deterministic (repr-sorted) display order."""
        return tuple(sorted(self.items, key=repr))

    def __str__(self) -> str:
        items = "".join(str(item) for item in self.sorted_items())
        chain = ", ".join(
            f"[{s.start}..{s.end}]x{s.repetitions}" for s in self.segments
        )
        return (
            f"{items} [period={self.period}, reps={self.repetitions}, "
            f"{{{chain}}}]"
        )


def longest_valid_subsequence(
    positions: Sequence[int],
    period: int,
    min_rep: int,
    max_dis: int,
) -> Tuple[int, Tuple[Segment, ...]]:
    """The longest valid subsequence of an occurrence-position list.

    Parameters
    ----------
    positions:
        Strictly increasing positions where the pattern occurs.
    period:
        The repetition period (in positions).
    min_rep:
        Minimum perfect repetitions per valid segment.
    max_dis:
        Maximum number of positions strictly between two chained
        segments (the disturbance).

    Returns
    -------
    ``(total_repetitions, segments)``; ``(0, ())`` when no valid
    segment exists.

    Examples
    --------
    >>> longest_valid_subsequence([0, 3, 6, 13, 16, 19], 3, 2, 10)
    (6, (Segment(start=0, end=6, repetitions=3), \
Segment(start=13, end=19, repetitions=3)))
    >>> longest_valid_subsequence([0, 3, 6], 3, 4, 0)
    (0, ())
    """
    check_count(period, "period")
    check_count(min_rep, "min_rep")
    check_count(max_dis, "max_dis", minimum=0)
    segments = _valid_segments(positions, period, min_rep)
    if not segments:
        return 0, ()
    # DP over segments in start order: best chain ending at each.
    best: List[int] = [segment.repetitions for segment in segments]
    parent: List[int] = [-1] * len(segments)
    for index, segment in enumerate(segments):
        for earlier in range(index):
            previous = segments[earlier]
            disturbance = segment.start - previous.end - 1
            if 0 <= disturbance <= max_dis:
                candidate = best[earlier] + segment.repetitions
                if candidate > best[index]:
                    best[index] = candidate
                    parent[index] = earlier
    winner = max(range(len(segments)), key=lambda i: (best[i], -segments[i].start))
    chain: List[Segment] = []
    cursor = winner
    while cursor != -1:
        chain.append(segments[cursor])
        cursor = parent[cursor]
    chain.reverse()
    return best[winner], tuple(chain)


def _valid_segments(
    positions: Sequence[int], period: int, min_rep: int
) -> List[Segment]:
    """Maximal arithmetic runs of step ``period`` with enough reps."""
    segments: List[Segment] = []
    position_set = set(positions)
    for position in sorted(position_set):
        if position - period in position_set:
            continue  # not a run head
        length = 1
        cursor = position
        while cursor + period in position_set:
            cursor += period
            length += 1
        if length >= min_rep:
            segments.append(Segment(position, cursor, length))
    segments.sort(key=lambda segment: segment.start)
    return segments


def mine_async_periodic_patterns(
    sequence_or_database: Union[
        Sequence[FrozenSet[Item]], TransactionalDatabase
    ],
    period: int,
    min_rep: int,
    max_dis: int,
    max_length: int = 3,
) -> List[AsyncPeriodicPattern]:
    """Mine all asynchronous periodic itemset patterns at one period.

    A pattern qualifies when it has at least one valid segment (its
    longest valid subsequence is non-empty).  Results are sorted by
    (length, items).

    Examples
    --------
    >>> seq = [frozenset("ab"), frozenset("c")] * 5
    >>> [str(p) for p in mine_async_periodic_patterns(seq, 2, 3, 0)
    ...  if p.length == 2]
    ['ab [period=2, reps=5, {[0..8]x5}]']
    """
    check_count(max_length, "max_length")
    if isinstance(sequence_or_database, TransactionalDatabase):
        sequence = database_to_symbolic_sequence(sequence_or_database)
    else:
        sequence = list(sequence_or_database)

    positions_of: Dict[FrozenSet[Item], List[int]] = {}
    for position, itemset in enumerate(sequence):
        for item in itemset:
            positions_of.setdefault(frozenset((item,)), []).append(position)

    found: List[AsyncPeriodicPattern] = []
    current: Set[FrozenSet[Item]] = set()
    for singleton, positions in positions_of.items():
        repetitions, segments = longest_valid_subsequence(
            positions, period, min_rep, max_dis
        )
        if repetitions:
            found.append(
                AsyncPeriodicPattern(singleton, period, repetitions, segments)
            )
            current.add(singleton)

    level = 1
    while current and level < max_length:
        candidates = generate_candidates(current)
        current = set()
        for candidate in candidates:
            positions = [
                position
                for position, itemset in enumerate(sequence)
                if candidate <= itemset
            ]
            repetitions, segments = longest_valid_subsequence(
                positions, period, min_rep, max_dis
            )
            if repetitions:
                found.append(
                    AsyncPeriodicPattern(
                        candidate, period, repetitions, segments
                    )
                )
                current.add(candidate)
        level += 1
    found.sort(key=lambda pattern: (pattern.length, pattern.sorted_items()))
    return found
