"""p-pattern mining — Ma & Hellerstein, ICDE 2001 (periodic-first).

A *p-pattern* is a set of items whose joint occurrences are
(partially) periodic: the number of its periodic inter-arrival times
throughout the data must reach ``minSup``.  Note the twist the paper
stresses: in this model ``minSup`` thresholds *periodic appearances*,
not plain occurrences.

Two notions of "periodic inter-arrival time" are supported:

* ``mode="threshold"`` (default) — an inter-arrival time qualifies when
  it is ≤ ``per``.  This is how the EDBT'15 paper parameterises
  p-patterns in its comparison (Table 8 uses ``per`` and ``minSup``
  with ``w = 1`` on minute-stamped data, where the window is absorbed
  by the timestamp granularity).  The count of qualifying gaps is
  anti-monotone, so the level-wise search is exact.
* ``mode="tolerance"`` — an inter-arrival time qualifies when it is
  within ``window`` of ``per`` (the original fixed-period semantics,
  with the period found by
  :func:`~repro.baselines.period_detection.detect_periods` when
  unknown).  The periodic count is *not* anti-monotone here, so the
  level-wise search prunes on plain support (which upper-bounds the
  periodic count by ``support - 1``); the result is still exact, just
  less aggressively pruned — matching the "periodic-first" algorithm's
  candidate structure.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Union

from repro._validation import (
    Number,
    check_non_negative,
    check_positive,
    resolve_count_threshold,
)
from repro.baselines.apriori import generate_candidates
from repro.baselines.model import PatternCollection, PPattern
from repro.core.rp_eclat import intersect_sorted
from repro.exceptions import ParameterError
from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.events import Item

__all__ = ["periodic_appearances", "mine_p_patterns"]

_MODES = ("threshold", "tolerance")
_ALGORITHMS = ("periodic-first", "association-first")


def periodic_appearances(
    timestamps: Sequence[float],
    per: Number,
    window: Optional[Number] = None,
) -> int:
    """Count the periodic inter-arrival times of a point sequence.

    With ``window=None`` a gap qualifies when it is ≤ ``per``
    (threshold semantics); otherwise when ``|gap - per| <= window``
    (tolerance semantics).

    Examples
    --------
    >>> periodic_appearances([1, 3, 4, 7, 11, 12, 14], per=2)
    4
    >>> periodic_appearances([1, 3, 4, 7, 11, 12, 14], per=2, window=1)
    5
    """
    check_positive(per, "per")
    count = 0
    for earlier, later in zip(timestamps, timestamps[1:]):
        gap = later - earlier
        if window is None:
            if gap <= per:
                count += 1
        elif abs(gap - per) <= window:
            count += 1
    return count


def mine_p_patterns(
    database: TransactionalDatabase,
    per: Number,
    min_sup: Union[int, float],
    window: Number = 0,
    mode: str = "threshold",
    algorithm: str = "periodic-first",
) -> PatternCollection[PPattern]:
    """Mine all p-patterns.

    Ma & Hellerstein propose two Apriori-like algorithms;
    ``algorithm`` selects between them (identical output, tested):

    * ``"periodic-first"`` (default) — level-wise search pruned on the
      periodicity structure; the paper uses this one because it is
      "relatively faster than the association-first algorithm";
    * ``"association-first"`` — mine frequent itemsets first (every
      p-pattern with ``minSup`` periodic gaps occurs in at least
      ``minSup + 1`` transactions), then filter by periodic count.

    Parameters
    ----------
    database:
        The transactional database (items co-occurring at a timestamp
        are already grouped, which subsumes the original's
        ``w``-windowed co-occurrence for minute-granularity data).
    per:
        The period.
    min_sup:
        Minimum number of periodic appearances (count, or fraction of
        the database size).
    window:
        Tolerance around ``per`` (only used in ``"tolerance"`` mode).
    mode:
        ``"threshold"`` or ``"tolerance"`` (see module docstring).

    Examples
    --------
    >>> from repro.datasets import paper_running_example
    >>> found = mine_p_patterns(paper_running_example(), per=2, min_sup=4)
    >>> found.pattern("ab").periodic_support
    4
    """
    if mode not in _MODES:
        raise ParameterError(f"mode must be one of {_MODES}, got {mode!r}")
    if algorithm not in _ALGORITHMS:
        raise ParameterError(
            f"algorithm must be one of {_ALGORITHMS}, got {algorithm!r}"
        )
    check_positive(per, "per")
    check_non_negative(window, "window")
    if len(database) == 0:
        return PatternCollection()
    threshold = resolve_count_threshold(min_sup, "min_sup", len(database))
    tolerance = window if mode == "tolerance" else None

    if algorithm == "association-first":
        return _association_first(database, per, threshold, tolerance)

    item_ts = database.item_timestamps()

    def qualifies_for_expansion(timestamps: Sequence[float]) -> bool:
        if mode == "threshold":
            return periodic_appearances(timestamps, per) >= threshold
        # Tolerance mode: periodic count is not anti-monotone; prune on
        # its anti-monotone upper bound, the gap count.
        return len(timestamps) - 1 >= threshold

    # Level 1: periodic items ("periodic-first").
    ts_of: Dict[FrozenSet[Item], Sequence[float]] = {}
    current: Set[FrozenSet[Item]] = set()
    for item, timestamps in item_ts.items():
        if qualifies_for_expansion(timestamps):
            singleton = frozenset((item,))
            ts_of[singleton] = timestamps
            current.add(singleton)

    found: List[PPattern] = []
    while current:
        for itemset in current:
            timestamps = ts_of[itemset]
            count = periodic_appearances(timestamps, per, tolerance)
            if count >= threshold:
                found.append(PPattern(itemset, len(timestamps), count))
        candidates = generate_candidates(current)
        next_level: Set[FrozenSet[Item]] = set()
        for candidate in candidates:
            parts = sorted(candidate, key=repr)
            timestamps: Sequence[float] = item_ts[parts[0]]
            for part in parts[1:]:
                timestamps = intersect_sorted(timestamps, item_ts[part])
                if not timestamps:
                    break
            if timestamps and qualifies_for_expansion(timestamps):
                ts_of[candidate] = timestamps
                next_level.add(candidate)
        current = next_level
    return PatternCollection(found)


def _association_first(
    database: TransactionalDatabase,
    per: Number,
    threshold: int,
    tolerance: Optional[Number],
) -> PatternCollection[PPattern]:
    """The association-first algorithm: frequent itemsets, then filter.

    A pattern with ``threshold`` periodic inter-arrival times has at
    least ``threshold + 1`` occurrences, so FP-growth at
    ``min_sup = threshold + 1`` yields a superset of all p-patterns,
    which a single periodicity pass then filters.
    """
    from repro.baselines.fp_growth import mine_frequent_patterns

    frequent = mine_frequent_patterns(database, threshold + 1)
    found: List[PPattern] = []
    for pattern in frequent:
        timestamps = database.timestamps_of(pattern.items)
        count = periodic_appearances(timestamps, per, tolerance)
        if count >= threshold:
            found.append(PPattern(pattern.items, pattern.support, count))
    return PatternCollection(found)
