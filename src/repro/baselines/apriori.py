"""Level-wise Apriori frequent-itemset mining (Agrawal et al., 1993).

Kept deliberately textbook: candidate generation by joining frequent
(k−1)-itemsets sharing a (k−2)-prefix, the subset-pruning step, and a
counting pass per level.  Used as the association machinery of the
periodic-first p-pattern miner (the paper notes p-pattern mining has
only Apriori-like algorithms) and as an independent oracle for the
FP-growth tests.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from repro._validation import resolve_count_threshold
from repro.baselines.model import FrequentPattern, PatternCollection
from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.events import Item

__all__ = ["mine_frequent_patterns_apriori", "generate_candidates"]


def mine_frequent_patterns_apriori(
    database: TransactionalDatabase,
    min_sup: Union[int, float],
    max_length: Optional[int] = None,
) -> PatternCollection[FrequentPattern]:
    """Mine all frequent itemsets with Apriori.

    Parameters mirror
    :func:`~repro.baselines.fp_growth.mine_frequent_patterns`, whose
    output this function must equal on every input (tested).

    Examples
    --------
    >>> from repro.datasets import paper_running_example
    >>> frequent = mine_frequent_patterns_apriori(
    ...     paper_running_example(), 7)
    >>> sorted("".join(sorted(p.items)) for p in frequent)
    ['a', 'ab', 'b', 'c']
    """
    if len(database) == 0:
        return PatternCollection()
    threshold = resolve_count_threshold(min_sup, "min_sup", len(database))

    found: List[FrequentPattern] = []
    current: Dict[FrozenSet[Item], int] = {
        frozenset((item,)): len(ts)
        for item, ts in database.item_timestamps().items()
        if len(ts) >= threshold
    }
    level = 1
    while current:
        found.extend(
            FrequentPattern(items, support)
            for items, support in current.items()
        )
        if max_length is not None and level >= max_length:
            break
        candidates = generate_candidates(set(current))
        if not candidates:
            break
        counts = _count_candidates(database, candidates)
        current = {
            items: support
            for items, support in counts.items()
            if support >= threshold
        }
        level += 1
    return PatternCollection(found)


def generate_candidates(
    frequent: Set[FrozenSet[Item]],
) -> Set[FrozenSet[Item]]:
    """Join step + prune step of Apriori.

    Two frequent k-itemsets sharing k−1 items join into a (k+1)-itemset
    candidate; a candidate survives only if *all* its k-subsets are
    frequent.
    """
    if not frequent:
        return set()
    size = len(next(iter(frequent)))
    # Join: group by sorted (k-1)-prefix.
    buckets: Dict[Tuple[Item, ...], List[Tuple[Item, ...]]] = {}
    for itemset in frequent:
        ordered = tuple(sorted(itemset, key=repr))
        buckets.setdefault(ordered[:-1], []).append(ordered)
    candidates: Set[FrozenSet[Item]] = set()
    for members in buckets.values():
        for left, right in combinations(members, 2):
            candidate = frozenset(left) | frozenset(right)
            if len(candidate) != size + 1:
                continue
            if all(
                frozenset(subset) in frequent
                for subset in combinations(
                    sorted(candidate, key=repr), size
                )
            ):
                candidates.add(candidate)
    return candidates


def _count_candidates(
    database: TransactionalDatabase,
    candidates: Set[FrozenSet[Item]],
) -> Dict[FrozenSet[Item], int]:
    counts: Dict[FrozenSet[Item], int] = dict.fromkeys(candidates, 0)
    for _, itemset in database:
        for candidate in candidates:
            if candidate <= itemset:
                counts[candidate] += 1
    return counts
