"""Result types shared by the baseline miners."""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Generic,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    TypeVar,
)

from repro.timeseries.events import Item

__all__ = [
    "FrequentPattern",
    "PeriodicFrequentPattern",
    "PPattern",
    "PatternCollection",
]


@dataclass(frozen=True)
class FrequentPattern:
    """An itemset with its support count."""

    items: FrozenSet[Item]
    support: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "items", frozenset(self.items))
        if not self.items:
            raise ValueError("a pattern must contain at least one item")
        if self.support < 1:
            raise ValueError(f"support must be >= 1, got {self.support}")

    @property
    def length(self) -> int:
        return len(self.items)

    def sorted_items(self) -> Tuple[Item, ...]:
        """Items in deterministic (repr-sorted) display order."""
        return tuple(sorted(self.items, key=repr))

    def __str__(self) -> str:
        items = "".join(str(item) for item in self.sorted_items())
        return f"{items} [support={self.support}]"


@dataclass(frozen=True)
class PeriodicFrequentPattern:
    """A frequent pattern whose maximum periodicity passes the threshold.

    ``periodicity`` is the largest inter-arrival time over the pattern's
    whole point sequence, *including* the lead-in from the database
    start and the lead-out to the database end (Tanbeer et al. 2009) —
    the pattern must cycle through the entire database.
    """

    items: FrozenSet[Item]
    support: int
    periodicity: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "items", frozenset(self.items))
        if not self.items:
            raise ValueError("a pattern must contain at least one item")
        if self.support < 1:
            raise ValueError(f"support must be >= 1, got {self.support}")
        if self.periodicity < 0:
            raise ValueError(
                f"periodicity must be >= 0, got {self.periodicity}"
            )

    @property
    def length(self) -> int:
        return len(self.items)

    def sorted_items(self) -> Tuple[Item, ...]:
        """Items in deterministic (repr-sorted) display order."""
        return tuple(sorted(self.items, key=repr))

    def __str__(self) -> str:
        items = "".join(str(item) for item in self.sorted_items())
        return (
            f"{items} [support={self.support}, "
            f"periodicity={self.periodicity:g}]"
        )


@dataclass(frozen=True)
class PPattern:
    """A Ma–Hellerstein p-pattern.

    ``periodic_support`` is the number of *periodic appearances* — the
    count of inter-arrival times that qualify as periodic under the
    chosen period/tolerance — which is what ``minSup`` thresholds in
    that model (unlike plain support in frequent-pattern mining).
    """

    items: FrozenSet[Item]
    support: int
    periodic_support: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "items", frozenset(self.items))
        if not self.items:
            raise ValueError("a pattern must contain at least one item")
        if self.support < 1:
            raise ValueError(f"support must be >= 1, got {self.support}")
        if self.periodic_support < 0:
            raise ValueError(
                f"periodic_support must be >= 0, got {self.periodic_support}"
            )

    @property
    def length(self) -> int:
        return len(self.items)

    def sorted_items(self) -> Tuple[Item, ...]:
        """Items in deterministic (repr-sorted) display order."""
        return tuple(sorted(self.items, key=repr))

    def __str__(self) -> str:
        items = "".join(str(item) for item in self.sorted_items())
        return (
            f"{items} [support={self.support}, "
            f"periodic_support={self.periodic_support}]"
        )


PatternT = TypeVar("PatternT")


class PatternCollection(Generic[PatternT]):
    """Deterministically ordered collection of baseline patterns.

    Works for any pattern type exposing ``items``, ``length`` and
    ``sorted_items()``; ordering is by (length, sorted items) to match
    :class:`~repro.core.model.RecurringPatternSet`.
    """

    def __init__(self, patterns: Iterable[PatternT] = ()):
        ordered = sorted(
            patterns, key=lambda p: (p.length, p.sorted_items())
        )
        self._patterns: Tuple[PatternT, ...] = tuple(ordered)
        self._by_items: Dict[FrozenSet[Item], PatternT] = {
            pattern.items: pattern for pattern in self._patterns
        }
        if len(self._by_items) != len(self._patterns):
            raise ValueError("duplicate patterns in result set")

    def __len__(self) -> int:
        return len(self._patterns)

    def __iter__(self) -> Iterator[PatternT]:
        return iter(self._patterns)

    def __contains__(self, items: Iterable[Item]) -> bool:
        return frozenset(items) in self._by_items

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PatternCollection):
            return NotImplemented
        return self._patterns == other._patterns

    def __repr__(self) -> str:
        return f"PatternCollection({len(self._patterns)} patterns)"

    @property
    def patterns(self) -> Tuple[PatternT, ...]:
        return self._patterns

    def pattern(self, items: Iterable[Item]) -> PatternT:
        """The pattern with exactly ``items`` (KeyError if absent)."""
        return self._by_items[frozenset(items)]

    def get(
        self, items: Iterable[Item], default: Optional[PatternT] = None
    ) -> Optional[PatternT]:
        """The pattern with exactly ``items``, or ``default``."""
        return self._by_items.get(frozenset(items), default)

    def itemsets(self) -> FrozenSet[FrozenSet[Item]]:
        """The set of discovered itemsets (ignores metadata)."""
        return frozenset(self._by_items)

    def max_length(self) -> int:
        """Length of the longest pattern (Table 8's column 'II')."""
        return max((p.length for p in self._patterns), default=0)
