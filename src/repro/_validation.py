"""Shared parameter-validation helpers.

These helpers centralise the small amount of defensive checking the
public mining functions perform, so every entry point reports the same
error messages for the same mistakes.
"""

from __future__ import annotations

import math
from typing import Union

from repro.exceptions import ParameterError

Number = Union[int, float]

__all__ = [
    "Number",
    "check_positive",
    "check_non_negative",
    "check_count",
    "check_count_threshold",
    "resolve_count_threshold",
]


def check_positive(value: Number, name: str) -> Number:
    """Return ``value`` if it is a finite number > 0, else raise."""
    _check_finite_number(value, name)
    if value <= 0:
        raise ParameterError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(value: Number, name: str) -> Number:
    """Return ``value`` if it is a finite number >= 0, else raise."""
    _check_finite_number(value, name)
    if value < 0:
        raise ParameterError(f"{name} must be >= 0, got {value!r}")
    return value


def check_count(value: int, name: str, minimum: int = 1) -> int:
    """Return ``value`` if it is an integer >= ``minimum``, else raise."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ParameterError(f"{name} must be an integer, got {value!r}")
    if value < minimum:
        raise ParameterError(f"{name} must be >= {minimum}, got {value!r}")
    return value


def check_count_threshold(value: Number, name: str) -> Number:
    """Validate a count-or-fraction threshold *without* resolving it.

    Accepts exactly what :func:`resolve_count_threshold` accepts — an
    integer count >= 1 or a float fraction in ``(0, 1]`` — and raises
    the same error messages, but needs no database size.  Entry points
    use this to reject a bad threshold eagerly, before any transform
    or scan work happens, instead of failing mid-mine at resolve time.
    """
    if isinstance(value, bool):
        raise ParameterError(f"{name} must be a count or fraction, got {value!r}")
    if isinstance(value, int):
        return check_count(value, name)
    if isinstance(value, float):
        if not math.isfinite(value):
            raise ParameterError(f"{name} must be finite, got {value!r}")
        if not 0 < value <= 1:
            raise ParameterError(
                f"fractional {name} must be in (0, 1], got {value!r}"
            )
        return value
    raise ParameterError(f"{name} must be an int or float, got {value!r}")


def resolve_count_threshold(value: Number, name: str, total: int) -> int:
    """Resolve a support-like threshold to an absolute count.

    The paper notes that support, periodic-support and similar measures
    "can also be expressed in percentage of |TDB|".  Following that
    convention:

    * an ``int`` is taken as an absolute count and must be >= 1;
    * a ``float`` in ``(0, 1]`` is taken as a fraction of ``total`` and
      resolved with ``ceil`` (the smallest count that satisfies the
      fraction), but never below 1;
    * any other value raises :class:`ParameterError`.
    """
    value = check_count_threshold(value, name)
    if isinstance(value, int):
        return value
    return max(1, math.ceil(value * total))


def _check_finite_number(value: Number, name: str) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ParameterError(f"{name} must be a number, got {value!r}")
    if not math.isfinite(value):
        raise ParameterError(f"{name} must be finite, got {value!r}")
