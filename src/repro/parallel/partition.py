"""Prefix partitioning of the mining search space.

Both engine families decompose into independent sub-problems along
their first explored dimension:

* **vertical engines** (RP-eclat, FastRPEclat) — the depth-first
  lattice walk rooted at candidate index ``i`` only ever touches
  ``candidates[i]`` and the extensions after it in the canonical order
  (:mod:`repro.core.ordering`).  Each root index is therefore a
  self-contained task;
* **RP-growth** — each suffix item's conditional pattern base
  (Algorithm 4) is mined into a conditional tree that never interacts
  with any other suffix's tree.  The bottom-up header sweep that
  *produces* the bases mutates the shared tree (the Lemma 3 push-up)
  and stays serial — it is a cheap tree traversal — while the
  expensive conditional mining becomes the task.

:func:`plan_chunks` then groups tasks into worker-sized chunks using
longest-processing-time (LPT) greedy binning on a per-task size
estimate, and orders the chunks largest first, so the biggest
sub-problems start immediately and small ones backfill — the classic
defence against straggler tails.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

from repro.core.intervals import estimated_recurrence
from repro.core.model import RecurringPattern, ResolvedParameters
from repro.core.rp_tree import RPTree
from repro.obs.counters import MiningStats
from repro.timeseries.events import Item

__all__ = [
    "GrowthTask",
    "collect_growth_tasks",
    "growth_task_size",
    "plan_chunks",
]

#: One RP-growth sub-problem: the suffix item and its serialized
#: conditional pattern base — ``(path root→parent, ts-list)`` pairs,
#: deep-copied so the payload survives later tree mutation.
GrowthTask = Tuple[Item, List[Tuple[List[Item], List[float]]]]


def plan_chunks(sizes: Sequence[int], max_chunks: int) -> List[List[int]]:
    """Group task indices into at most ``max_chunks`` balanced chunks.

    LPT greedy: tasks are visited largest first (ties by index) and
    each lands in the currently lightest chunk.  The returned chunks
    are ordered by total size, largest first — the submission order —
    and the whole plan is deterministic.

    Examples
    --------
    >>> plan_chunks([1, 8, 2, 4], max_chunks=2)
    [[1], [3, 2, 0]]
    >>> plan_chunks([5, 5], max_chunks=8)
    [[0], [1]]
    """
    if not sizes:
        return []
    if max_chunks < 1:
        raise ValueError(f"max_chunks must be >= 1, got {max_chunks!r}")
    n_bins = min(len(sizes), max_chunks)
    bins: List[List[int]] = [[] for _ in range(n_bins)]
    totals = [0] * n_bins
    # (total, bin index) heap; the index tie-break keeps it deterministic.
    heap = [(0, index) for index in range(n_bins)]
    heapq.heapify(heap)
    for index in sorted(range(len(sizes)), key=lambda i: (-sizes[i], i)):
        total, bin_index = heapq.heappop(heap)
        bins[bin_index].append(index)
        totals[bin_index] = total + sizes[index]
        heapq.heappush(heap, (totals[bin_index], bin_index))
    ranked = sorted(range(n_bins), key=lambda b: (-totals[b], b))
    return [bins[b] for b in ranked if bins[b]]


def collect_growth_tasks(
    tree: RPTree,
    params: ResolvedParameters,
    found: List[RecurringPattern],
    stats: MiningStats,
    max_length: Optional[int] = None,
) -> List[GrowthTask]:
    """The serial header sweep of Algorithm 4, yielding parallel tasks.

    Performs exactly the top level of :meth:`RPGrowth._mine_tree` —
    bottom-up over the header, per suffix item: assemble the pattern's
    point sequence, apply the ``Erec`` candidate test, report the
    1-extension pattern into ``found``, then push the item's ts-lists
    up (Lemma 3) — but instead of recursing into each conditional
    tree it snapshots the conditional pattern base as a picklable
    :data:`GrowthTask`.

    Counter increments mirror the serial top level exactly, so after
    the workers' counters (which cover conditional construction and
    recursion) are merged back, the totals equal a serial run's.

    The base must be snapshotted (deep-copied) here: ``prefix_paths``
    returns live references into the tree, and the subsequent
    ``remove_item`` push-ups splice those lists into parent nodes
    which later suffixes will serialize again.
    """
    tasks: List[GrowthTask] = []
    for item in tree.header_bottom_up():
        beta = (item,)
        beta_ts = tree.pattern_timestamps(item)
        stats.erec_evaluations += 1
        if (
            estimated_recurrence(beta_ts, params.per, params.min_ps)
            >= params.min_rec
        ):
            stats.candidate_patterns += 1
            stats.recurrence_evaluations += 1
            pattern = params.pattern_from_timestamps(beta, beta_ts)
            if pattern is not None:
                stats.patterns_found += 1
                found.append(pattern)
            if max_length is None or len(beta) < max_length:
                base = tree.prefix_paths(item)
                if base:
                    tasks.append((
                        item,
                        [
                            (list(path), list(ts_list))
                            for path, ts_list in base
                        ],
                    ))
        tree.remove_item(item)
    return tasks


def growth_task_size(task: GrowthTask) -> int:
    """Size estimate of one RP-growth task: ts entries in its base."""
    return sum(len(ts_list) for _, ts_list in task[1])
