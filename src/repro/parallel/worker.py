"""Worker-process entry points for the parallel mining layer.

Everything in this module runs inside pool worker processes.  The
design is shared-nothing: a worker receives its engine configuration
once through the pool initializer (kept in a module global, which is
both ``fork``- and ``spawn``-safe because this module is importable by
name) and each task payload afterwards is small — candidate indices
for the vertical engines, serialized conditional bases for RP-growth.

Every chunk function returns a ``(patterns, stats, spans)`` triple:

* ``patterns`` — the :class:`RecurringPattern` objects mined by the
  chunk (picklable value objects);
* ``stats`` — a fresh :class:`MiningStats` covering only this chunk's
  work, merged into the parent's counters via
  :meth:`MiningStats.merge`;
* ``spans`` — the chunk's span tree as ``Span.as_dict()`` payloads,
  grafted under the parent's ``mine`` span so ``--profile`` output and
  ``repro-run/v1`` traces show per-chunk timings.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.model import (
    RecurringPattern,
    ResolvedParameters,
)
from repro.core.rp_growth import RPGrowth, conditional_tree_from_base
from repro.obs.counters import MiningStats
from repro.obs.spans import SpanCollector, span
from repro.parallel import faults as _faults
from repro.parallel.partition import GrowthTask
from repro.timeseries.events import Item

__all__ = [
    "init_vertical_worker",
    "mine_vertical_chunk",
    "init_growth_worker",
    "mine_growth_chunk",
]

#: Per-process engine state installed by the pool initializer.
_VERTICAL_STATE: Optional[Tuple[str, ResolvedParameters, str, Optional[int], list, object]] = None
_GROWTH_STATE: Optional[Tuple[ResolvedParameters, Dict[Item, int], Optional[int]]] = None


def init_vertical_worker(
    engine: str,
    params: ResolvedParameters,
    pruning: str,
    max_length: Optional[int],
    candidates: list,
    context: object = None,
) -> None:
    """Install the shared vertical-engine state in this worker process.

    ``candidates`` is the full canonical candidate list — every worker
    holds it because task ``i`` needs ``candidates[i + 1:]`` as its
    extension set; shipping it once via the initializer instead of per
    task keeps payloads to bare indices.  ``context`` is extra shared
    engine state the serial first scan produced (the columnar
    :class:`~repro.core.rp_eclat_vec.VecContext` for ``rp-eclat-vec``;
    ``None`` for the engines that need nothing beyond candidates).
    """
    global _VERTICAL_STATE
    _VERTICAL_STATE = (engine, params, pruning, max_length, candidates, context)


def mine_vertical_chunk(
    chunk_id: int, indices: Sequence[int]
) -> Tuple[List[RecurringPattern], MiningStats, List[dict]]:
    """Mine the lattice subtrees rooted at ``indices``.

    Runs the serial engine's ``_grow`` recursion unchanged for each
    root — ``prefix = (candidates[i][0],)``, extensions
    ``candidates[i + 1:]`` — so the union over all chunks is exactly
    the serial search space.
    """
    assert _VERTICAL_STATE is not None, "worker initializer did not run"
    engine, params, pruning, max_length, candidates, context = _VERTICAL_STATE
    stats = MiningStats()
    found: List[RecurringPattern] = []
    collector = SpanCollector()
    with collector, span(f"chunk[{chunk_id}]"):
        if engine == "rp-eclat":
            from repro.core.rp_eclat import RPEclat

            miner = RPEclat(
                params.per, params.min_ps, params.min_rec,
                pruning=pruning, max_length=max_length,
            )
        elif engine == "rp-eclat-vec":
            from repro.core.rp_eclat_vec import RPEclatVec

            miner = RPEclatVec(
                params.per, params.min_ps, params.min_rec,
                max_length=max_length,
            )
            miner.attach_context(context)
        else:
            from repro.core.accel import FastRPEclat

            miner = FastRPEclat(params.per, params.min_ps, params.min_rec)
        for index in indices:
            # Between lattice subtrees is the natural heartbeat point: a
            # worker that stops beating is stuck inside one subtree.
            _faults.maybe_beat()
            item, ts_list = candidates[index]
            miner._grow(
                (item,), ts_list, candidates[index + 1:],
                params, found, stats,
            )
    return found, stats, [root.as_dict() for root in collector.spans]


def init_growth_worker(
    params: ResolvedParameters,
    order: Dict[Item, int],
    max_length: Optional[int],
) -> None:
    """Install the shared RP-growth state in this worker process."""
    global _GROWTH_STATE
    _GROWTH_STATE = (params, order, max_length)


def mine_growth_chunk(
    chunk_id: int, tasks: Sequence[GrowthTask]
) -> Tuple[List[RecurringPattern], MiningStats, List[dict]]:
    """Mine the conditional trees of a chunk of suffix items.

    For each ``(suffix item, base)`` task: rebuild the conditional
    tree from the serialized base (the shared
    :func:`~repro.core.rp_growth.conditional_tree_from_base`, identical
    counters included) and run the serial ``_mine_tree`` recursion on
    it with ``suffix = (item,)``.
    """
    assert _GROWTH_STATE is not None, "worker initializer did not run"
    params, order, max_length = _GROWTH_STATE
    stats = MiningStats()
    found: List[RecurringPattern] = []
    miner = RPGrowth(
        params.per, params.min_ps, params.min_rec, max_length=max_length
    )
    collector = SpanCollector()
    with collector, span(f"chunk[{chunk_id}]"):
        for item, base in tasks:
            _faults.maybe_beat()
            conditional = conditional_tree_from_base(
                base, order, params, stats
            )
            if conditional is not None:
                miner._mine_tree(conditional, (item,), params, found, stats)
    return found, stats, [root.as_dict() for root in collector.spans]
