"""The multiprocess mining wrapper.

:class:`ParallelMiner` mines the same model as the serial engines by
partitioning the search space along its first explored dimension
(:mod:`repro.parallel.partition`), fanning the resulting sub-problems
out to a ``concurrent.futures.ProcessPoolExecutor`` and merging the
workers' patterns, counters and spans back into one result:

* the pattern set is **identical** to the serial run's — the partition
  covers the serial search space exactly, and
  :class:`~repro.core.model.RecurringPatternSet` orders patterns
  deterministically regardless of arrival order;
* the merged :class:`~repro.obs.counters.MiningStats` equals the
  serial counters exactly (the counters are additive over the
  partition);
* worker span trees are grafted under the parent's ``mine`` span, so
  ``--profile`` tables and ``repro-run/v1`` traces stay coherent.

Chunk execution is supervised by :mod:`repro.parallel.resilience`: a
crashed, hung or misbehaving worker costs a retry (and, after
``max_retries``, an in-process serial re-mine or a
:class:`~repro.exceptions.ChunkFailedError`), never the whole run.

See ``docs/performance.md`` for the partitioning scheme, the chunking
policy, when ``jobs > 1`` actually helps, and the "Failure handling"
section for the retry/fallback semantics.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple, Union

from repro._validation import Number
from repro.core.engines import PARALLEL_ENGINES, get_engine
from repro.core.model import (
    MiningParameters,
    RecurringPattern,
    RecurringPatternSet,
)
from repro.core.options import ResilienceOptions
from repro.core.rp_list import build_rp_list
from repro.core.rp_tree import build_rp_tree
from repro.exceptions import ChunkFailedError, ParameterError
from repro.obs.counters import MiningStats
from repro.obs.spans import Span, span
from repro.parallel import partition as _partition
from repro.parallel import worker as _worker
from repro.parallel.faults import FaultPlan
from repro.parallel.resilience import (
    FALLBACK_MODES,
    FaultEvent,
    RetryPolicy,
    supervise,
)
from repro.timeseries.database import TransactionalDatabase

__all__ = ["ParallelMiner", "PARALLEL_ENGINES", "default_jobs"]

# PARALLEL_ENGINES is re-exported from the engine registry
# (repro.core.engines): the live view over every engine whose spec has
# ``supports_jobs``.  ``naive`` lacks the capability by design: it
# exists to be an obviously-correct reference, and a partitioned
# reference is no longer obviously correct.


def default_jobs() -> int:
    """Default worker count: one per available CPU (at least 1)."""
    return os.cpu_count() or 1


class ParallelMiner:
    """Shared-nothing multiprocess front end over the serial engines.

    Parameters
    ----------
    per, min_ps, min_rec:
        Model thresholds, exactly as for the serial engines.
    engine:
        One of :data:`PARALLEL_ENGINES`.
    jobs:
        Worker process count; ``None`` means one per CPU.  ``jobs=1``
        delegates to the serial engine in-process — no pool, no pickling,
        byte-identical behaviour.
    chunks_per_job:
        Target chunk count per worker (default 4).  More chunks means
        finer-grained load balancing but more IPC; the default keeps
        the straggler tail short without measurable overhead.
    mp_context:
        A :mod:`multiprocessing` context or start-method name.  The
        default prefers ``fork`` (cheap, inherits the imported
        library) and falls back to ``spawn`` where fork is unavailable
        (Windows, macOS defaults); both work because worker state
        travels through the pool initializer, never through globals
        that only exist in the parent.
    pruning, max_length, item_order:
        Forwarded to the underlying engine (``pruning`` to RP-eclat,
        ``item_order`` to RP-growth's tree build).
    timeout:
        Per-chunk deadline in seconds (measured from submission to the
        pool).  ``None`` (default) disables deadlines.  An expired
        chunk is treated like a crashed one: retried, then handled by
        ``fallback``.
    max_retries:
        Failed executions a chunk may accumulate before ``fallback``
        applies (default 2; the first execution is not a retry).
    fallback:
        What to do with a chunk whose retries are exhausted:
        ``"serial"`` (default) re-mines it in-process with the serial
        engine so the run always completes; ``"raise"`` raises
        :class:`~repro.exceptions.ChunkFailedError` naming the missing
        prefixes and carrying the partial pattern set.
    retry_backoff:
        Base delay in seconds before the first retry of a chunk
        (doubles per retry, deterministic jitter added; ``0`` retries
        immediately).
    fault_plan:
        A :class:`~repro.parallel.faults.FaultPlan` injected into the
        pool workers — deterministic failure for tests.  ``None``
        (default, production) injects nothing.
    resilience:
        A :class:`~repro.core.options.ResilienceOptions` bundling
        ``timeout`` / ``max_retries`` / ``fallback`` / ``fault_plan``
        — the same object the façade and the sweep engine accept.
        Mutually exclusive with passing those four knobs flat.
    supervised:
        ``False`` bypasses the resilience layer entirely (raw PR-2
        fan-out: one ``future.result()`` per chunk, a worker crash
        aborts the run).  Exists so the scaling bench can measure
        supervision overhead; production code should leave it ``True``.
    monitor:
        A :class:`~repro.obs.progress.MiningMonitor` receiving live
        progress: one weighted phase per mine (unit = chunk, weight =
        its LPT cost estimate, so the ETA respects unequal chunks),
        per-worker heartbeat gauges and stale-worker reports from the
        supervisor.  ``None`` (default) reports nothing.  Ignored when
        ``supervised=False`` (the bench baseline measures the bare
        pool).

    Examples
    --------
    >>> from repro.datasets import paper_running_example
    >>> miner = ParallelMiner(per=2, min_ps=3, min_rec=2, jobs=2)
    >>> len(miner.mine(paper_running_example()))
    8
    """

    def __init__(
        self,
        per: Number,
        min_ps: Union[int, float],
        min_rec: int,
        engine: str = "rp-growth",
        *,
        jobs: Optional[int] = None,
        chunks_per_job: int = 4,
        mp_context: Union[str, object, None] = None,
        pruning: str = "erec",
        max_length: Optional[int] = None,
        item_order: str = "support-desc",
        timeout: Optional[float] = None,
        max_retries: int = 2,
        fallback: str = "serial",
        retry_backoff: float = 0.05,
        fault_plan: Optional[FaultPlan] = None,
        resilience: Optional[ResilienceOptions] = None,
        supervised: bool = True,
        monitor=None,
    ):
        if engine not in PARALLEL_ENGINES:
            raise ParameterError(
                f"engine {engine!r} is not parallel-capable; "
                f"expected one of {PARALLEL_ENGINES}"
            )
        if resilience is not None:
            flat = {
                "timeout": (timeout, None),
                "max_retries": (max_retries, 2),
                "fallback": (fallback, "serial"),
                "fault_plan": (fault_plan, None),
            }
            conflicts = sorted(
                name
                for name, (value, default) in flat.items()
                if value != default
            )
            if conflicts:
                raise ParameterError(
                    f"pass either resilience=ResilienceOptions(...) or "
                    f"the flat keyword(s) {conflicts} — not both"
                )
            timeout = resilience.timeout
            max_retries = resilience.max_retries
            fallback = resilience.fallback
            fault_plan = resilience.fault_plan
        if jobs is None:
            jobs = default_jobs()
        if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
            raise ParameterError(f"jobs must be a positive int, got {jobs!r}")
        if chunks_per_job < 1:
            raise ParameterError(
                f"chunks_per_job must be >= 1, got {chunks_per_job!r}"
            )
        if fallback not in FALLBACK_MODES:
            raise ParameterError(
                f"fallback must be one of {FALLBACK_MODES}, got {fallback!r}"
            )
        self.params = MiningParameters(per=per, min_ps=min_ps, min_rec=min_rec)
        self.engine = engine
        self.jobs = jobs
        self.chunks_per_job = chunks_per_job
        self.mp_context = mp_context
        self.pruning = pruning
        self.max_length = max_length
        self.item_order = item_order
        # Validates timeout / max_retries / backoff eagerly.
        self.retry_policy = RetryPolicy(
            timeout=timeout, max_retries=max_retries, backoff=retry_backoff
        )
        self.fallback = fallback
        self.fault_plan = fault_plan
        self.supervised = supervised
        self.monitor = monitor
        self.last_stats: Optional[MiningStats] = None
        #: Fault log of the most recent ``mine()`` call — one
        #: :class:`~repro.parallel.resilience.FaultEvent` per retry or
        #: fallback, in occurrence order.  Empty for clean runs.
        self.last_faults: List[FaultEvent] = []

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def mine(self, database: TransactionalDatabase) -> RecurringPatternSet:
        """Mine ``database``, identical in result to the serial engine."""
        self.last_faults = []
        if self.jobs == 1:
            # Serial delegation still reports: a single-unit phase plus
            # the in-process heartbeat, so progress/metrics never go
            # silent just because jobs=1 (see docs/observability.md).
            if self.monitor is not None:
                self.monitor.phase_started(f"mine[{self.engine}]", units=1)
            try:
                serial = self._serial_engine()
                result = serial.mine(database)
                if self.monitor is not None:
                    self.monitor.unit_done(0)
                    self.monitor.serial_beat()
            finally:
                if self.monitor is not None:
                    self.monitor.phase_finished()
            self.last_stats = serial.last_stats
            return result
        stats = MiningStats()
        self.last_stats = stats
        if len(database) == 0:
            return RecurringPatternSet()
        params = self.params.resolve(len(database))
        if get_engine(self.engine).family == "growth":
            return self._mine_growth(database, params, stats)
        return self._mine_vertical(database, params, stats)

    # ------------------------------------------------------------------
    # Engine-specific orchestration
    # ------------------------------------------------------------------
    def _mine_vertical(self, database, params, stats) -> RecurringPatternSet:
        serial = self._serial_engine()
        with span("first_scan"):
            candidates = serial._first_scan(database, params, stats)
        if not candidates:
            return RecurringPatternSet()
        # Task i is the lattice subtree rooted at candidates[i]; its
        # point-sequence length is the documented cost proxy.
        sizes = [len(ts_list) for _, ts_list in candidates]
        chunks = _partition.plan_chunks(
            sizes,
            max_chunks=self.jobs * self.chunks_per_job,
        )
        found: List[RecurringPattern] = []
        with span("mine") as mine_span:
            self._run_pool(
                initializer=_worker.init_vertical_worker,
                initargs=(
                    self.engine, params, self.pruning, self.max_length,
                    candidates, getattr(serial, "parallel_context", None),
                ),
                chunk_fn=_worker.mine_vertical_chunk,
                chunks=chunks,
                found=found,
                stats=stats,
                mine_span=mine_span,
                chunk_prefixes=[
                    [str(candidates[index][0]) for index in chunk]
                    for chunk in chunks
                ],
                chunk_weights=[
                    float(sum(sizes[index] for index in chunk))
                    for chunk in chunks
                ],
            )
        return RecurringPatternSet(found)

    def _mine_growth(self, database, params, stats) -> RecurringPatternSet:
        with span("first_scan"):
            rp_list = build_rp_list(database, params)
        stats.candidate_items = len(rp_list.candidates)
        stats.pruned_items = len(rp_list.entries) - len(rp_list.candidates)
        if not rp_list.candidates:
            return RecurringPatternSet()
        with span("tree_build"):
            tree, _ = build_rp_tree(
                database, params, rp_list, item_order=self.item_order
            )
        stats.initial_tree_nodes = tree.node_count()
        found: List[RecurringPattern] = []
        with span("mine") as mine_span:
            with span("partition"):
                tasks = _partition.collect_growth_tasks(
                    tree, params, found, stats, self.max_length
                )
            if tasks:
                sizes = [
                    _partition.growth_task_size(task) for task in tasks
                ]
                chunks = _partition.plan_chunks(
                    sizes,
                    max_chunks=self.jobs * self.chunks_per_job,
                )
                payload_chunks = [
                    [tasks[index] for index in chunk] for chunk in chunks
                ]
                self._run_pool(
                    initializer=_worker.init_growth_worker,
                    initargs=(params, tree.order, self.max_length),
                    chunk_fn=_worker.mine_growth_chunk,
                    chunks=payload_chunks,
                    found=found,
                    stats=stats,
                    mine_span=mine_span,
                    chunk_prefixes=[
                        [str(item) for item, _ in chunk]
                        for chunk in payload_chunks
                    ],
                    chunk_weights=[
                        float(sum(sizes[index] for index in chunk))
                        for chunk in chunks
                    ],
                )
        return RecurringPatternSet(found)

    # ------------------------------------------------------------------
    # Pool plumbing
    # ------------------------------------------------------------------
    def _run_pool(
        self,
        initializer,
        initargs: tuple,
        chunk_fn,
        chunks: Sequence[object],
        found: List[RecurringPattern],
        stats: MiningStats,
        mine_span: Optional[Span],
        chunk_prefixes: Sequence[Sequence[str]],
        chunk_weights: Optional[Sequence[float]] = None,
    ) -> None:
        """Fan ``chunks`` out to a supervised pool and merge the results.

        ``chunk_prefixes[i]`` names the search-space prefixes chunk
        ``i`` covers (first items for the vertical engines, suffix
        items for RP-growth) — the vocabulary of
        :class:`~repro.exceptions.ChunkFailedError`.
        ``chunk_weights[i]`` is chunk ``i``'s LPT cost estimate; the
        monitor's progress fraction and ETA are weight-based, so the
        bar is honest even when the chunk plan is deliberately uneven.
        """
        workers = min(self.jobs, len(chunks))
        if not self.supervised:
            self._run_pool_unsupervised(
                initializer, initargs, chunk_fn, chunks, found, stats,
                mine_span, workers,
            )
            return
        if self.monitor is not None:
            self.monitor.phase_started(
                f"mine[{self.engine}]",
                weights=chunk_weights,
                units=len(chunks),
            )
        try:
            results, events, failed = supervise(
                workers=workers,
                mp_context=self._context(),
                initializer=initializer,
                initargs=initargs,
                chunk_fn=chunk_fn,
                payloads=chunks,
                policy=self.retry_policy,
                fallback=self.fallback,
                fault_plan=self.fault_plan,
                monitor=self.monitor,
            )
        finally:
            if self.monitor is not None:
                self.monitor.phase_finished()
        self.last_faults = list(events)
        stats.chunks_retried += sum(
            1 for event in events if event.action == "retry"
        )
        stats.chunks_fallback += sum(
            1 for event in events if event.action == "fallback-serial"
        )
        for triple in results:
            if triple is None:  # terminally failed, fallback="raise"
                continue
            chunk_found, chunk_stats, chunk_spans = triple
            found.extend(chunk_found)
            stats.merge(chunk_stats)
            if mine_span is not None:
                mine_span.children.extend(
                    Span.from_dict(record) for record in chunk_spans
                )
        if failed:
            prefixes = [
                prefix
                for chunk_id in sorted(failed)
                for prefix in chunk_prefixes[chunk_id]
            ]
            raise ChunkFailedError(
                f"{len(failed)} of {len(chunks)} parallel chunk(s) failed "
                f"after {self.retry_policy.max_retries} retries; missing "
                f"search-space prefixes: {', '.join(prefixes)}",
                failed_prefixes=prefixes,
                partial=RecurringPatternSet(found),
                events=events,
            )

    def _run_pool_unsupervised(
        self,
        initializer,
        initargs: tuple,
        chunk_fn,
        chunks: Sequence[object],
        found: List[RecurringPattern],
        stats: MiningStats,
        mine_span: Optional[Span],
        workers: int,
    ) -> None:
        """PR 2's raw fan-out, kept as the bench baseline for measuring
        supervision overhead (``supervised=False``).  A worker failure
        here surfaces as a bare ``BrokenProcessPool``."""
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=self._context(),
            initializer=initializer,
            initargs=initargs,
        ) as pool:
            futures = [
                pool.submit(chunk_fn, chunk_id, chunk)
                for chunk_id, chunk in enumerate(chunks)
            ]
            for future in futures:
                chunk_found, chunk_stats, chunk_spans = future.result()
                found.extend(chunk_found)
                stats.merge(chunk_stats)
                if mine_span is not None:
                    mine_span.children.extend(
                        Span.from_dict(record) for record in chunk_spans
                    )

    def _context(self):
        context = self.mp_context
        if context is None:
            methods = multiprocessing.get_all_start_methods()
            context = "fork" if "fork" in methods else "spawn"
        if isinstance(context, str):
            return multiprocessing.get_context(context)
        return context

    def _serial_engine(self):
        # The registry factory accepts the union of engine options and
        # forwards only what the concrete engine understands.
        return get_engine(self.engine).factory(
            self.params.per, self.params.min_ps, self.params.min_rec,
            item_order=self.item_order, pruning=self.pruning,
            max_length=self.max_length,
        )
