"""Fault-tolerant supervision of the parallel mining pool.

PR 2's fan-out was fire-and-forget: one ``future.result()`` per chunk,
so a single OOM-killed fork, pickling failure or hung worker aborted
the whole mine with a bare ``BrokenProcessPool`` and no partial result.
This module is the supervision layer between :class:`ParallelMiner`
and the ``ProcessPoolExecutor``:

* **detection** — per-chunk worker exceptions, corrupted (poisoned)
  result payloads, pool breakage (``BrokenProcessPool``) and per-chunk
  ``timeout=`` deadlines are all recognised and *attributed to a
  specific chunk* using the start/done marker protocol of
  :mod:`repro.parallel.faults`;
* **retry** — a failed chunk is resubmitted up to
  ``max_retries`` times with exponential backoff and deterministic
  jitter (:class:`RetryPolicy`), to a fresh pool when the previous one
  died;
* **degradation** — once retries are exhausted the chunk is re-mined
  in-process by the serial engine code (``fallback="serial"``, the
  default: the mine *always* completes), or collected into a
  :class:`~repro.exceptions.ChunkFailedError` naming the missing
  prefixes and carrying the partial pattern set
  (``fallback="raise"``);
* **telemetry** — every retry and fallback is recorded as a
  :class:`FaultEvent` (surfaced as the ``faults`` section of the
  ``repro-run/v1`` trace record and the ``chunks_retried`` /
  ``chunks_fallback`` counters) and as ``retry`` / ``fallback`` spans
  nested under the parent's ``mine`` span;
* **liveness** — with a :class:`~repro.obs.progress.MiningMonitor`
  attached, each accepted chunk advances the live progress bar, every
  in-flight chunk's heartbeat age (from the ``beat-*`` marker files of
  :mod:`repro.parallel.faults`) feeds a per-worker gauge, and a worker
  silent past ``monitor.stale_after`` is reported as a stale-heartbeat
  hint *before* its deadline kills the pool — so when the deadline
  does fire, the fault is already attributed.

Correctness note: recurring patterns are not anti-monotone (Example 10
of the paper), so a recovery path may not *approximate* — it must
re-execute exactly the lost sub-problem.  Both recovery paths here
re-run the identical chunk function on the identical payload (in a
fresh worker, or in-process), and merged ``MiningStats`` are taken
from exactly one accepted execution per chunk, so the recovered
result and counters stay byte-identical to the serial oracle.  The
fault-injection matrix in ``tests/parallel/test_resilience.py``
asserts this for every fault kind and engine.
"""

from __future__ import annotations

import random
import shutil
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ParameterError
from repro.obs.spans import Span, span
from repro.parallel import faults as _faults

__all__ = [
    "FALLBACK_MODES",
    "RetryPolicy",
    "FaultEvent",
    "supervise",
]

#: What to do with a chunk whose retries are exhausted.
FALLBACK_MODES = ("serial", "raise")

#: Consecutive pool deaths with no chunk ever starting before the
#: supervisor charges the failure to the chunks themselves (guards
#: against e.g. an initializer that crashes every fresh pool).
_MAX_BARREN_POOL_DEATHS = 2


@dataclass(frozen=True)
class RetryPolicy:
    """When to give up on a chunk and how long to wait in between.

    Parameters
    ----------
    timeout:
        Per-chunk deadline in seconds, measured from submission to the
        pool.  ``None`` (default) disables deadlines.  A chunk that was
        *executing* past its deadline is charged a failure; a chunk
        whose deadline lapsed while it was still queued behind others
        is merely resubmitted (queue starvation is not the chunk's
        fault).
    max_retries:
        Failed executions a chunk may accumulate before the fallback
        kicks in; the first execution is not a retry, so a chunk runs
        at most ``max_retries + 1`` times in the pool.
    backoff:
        Base delay before the first retry; doubles per subsequent
        retry of the same chunk (``backoff * 2**(n-1)``), capped at
        ``max_delay``.  ``0`` retries immediately (used by tests).
    max_delay:
        Upper bound on any single backoff delay.
    jitter:
        Fractional jitter added to each delay.  The jitter is drawn
        from a generator seeded with ``(chunk, failure count)``, so a
        rerun of the same failing run waits the same amounts — the
        whole supervision schedule stays reproducible.
    """

    timeout: Optional[float] = None
    max_retries: int = 2
    backoff: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.timeout is not None and not self.timeout > 0:
            raise ParameterError(
                f"timeout must be positive or None, got {self.timeout!r}"
            )
        if not isinstance(self.max_retries, int) or isinstance(
            self.max_retries, bool
        ) or self.max_retries < 0:
            raise ParameterError(
                f"max_retries must be a non-negative int, "
                f"got {self.max_retries!r}"
            )
        if self.backoff < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ParameterError(
                "backoff, max_delay and jitter must be non-negative"
            )

    def delay(self, chunk: int, failures: int) -> float:
        """Backoff before retry number ``failures`` of ``chunk``."""
        if self.backoff <= 0:
            return 0.0
        base = min(self.backoff * (2 ** (failures - 1)), self.max_delay)
        rng = random.Random((chunk + 1) * 2654435761 + failures)
        return base * (1.0 + self.jitter * rng.random())


@dataclass(frozen=True)
class FaultEvent:
    """One supervised failure: what went wrong and what was done.

    ``action`` is ``"retry"`` (resubmitted to a pool),
    ``"fallback-serial"`` (re-mined in-process) or ``"raise"``
    (collected into a ``ChunkFailedError``).
    """

    chunk: int
    execution: int
    reason: str
    action: str

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready view (used by the ``faults`` trace section)."""
        return {
            "chunk": self.chunk,
            "execution": self.execution,
            "reason": self.reason,
            "action": self.action,
        }


@dataclass
class _ChunkState:
    """Parent-side bookkeeping for one chunk."""

    executions: int = 0  # submissions known to have actually run
    failures: int = 0  # failures attributed to this chunk


@dataclass(frozen=True)
class _Flight:
    """One in-flight submission."""

    chunk: int
    execution: int
    deadline: Optional[float]


def _valid_result(value: object) -> bool:
    """Is ``value`` a structurally sound ``(patterns, stats, spans)``?

    The import lives inside the function so this module stays cheap to
    import from worker processes.
    """
    from repro.core.model import RecurringPattern
    from repro.obs.counters import MiningStats

    if not isinstance(value, tuple) or len(value) != 3:
        return False
    patterns, stats, spans = value
    if not isinstance(patterns, list) or not isinstance(stats, MiningStats):
        return False
    if not all(isinstance(p, RecurringPattern) for p in patterns):
        return False
    if not isinstance(spans, list):
        return False
    return all(isinstance(record, dict) for record in spans)


def _stop_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down *now*, hung or dead workers included.

    ``shutdown(wait=False, cancel_futures=True)`` alone would leave a
    hung worker sleeping forever (and the interpreter joining it at
    exit), so the worker processes are terminated explicitly.  The
    ``_processes`` attribute is CPython's; the ``getattr`` guard keeps
    alternative implementations merely slower, not broken.
    """
    processes = list(getattr(pool, "_processes", {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        try:
            process.terminate()
        except (OSError, ValueError):  # already gone
            continue
    for process in processes:
        process.join(timeout=5)
        if process.is_alive():  # pragma: no cover - stuck in kernel
            process.kill()
            process.join(timeout=5)


def supervise(
    *,
    workers: int,
    mp_context,
    initializer: Callable[..., None],
    initargs: tuple,
    chunk_fn: Callable,
    payloads: Sequence[object],
    policy: RetryPolicy,
    fallback: str = "serial",
    fault_plan: Optional[_faults.FaultPlan] = None,
    monitor=None,
) -> Tuple[List[Optional[tuple]], List[FaultEvent], List[int]]:
    """Run every chunk to an accepted result, a fallback, or a verdict.

    Parameters mirror :class:`ParallelMiner`'s pool plumbing:
    ``chunk_fn(chunk_id, payloads[chunk_id])`` is the engine's chunk
    function, ``initializer(*initargs)`` its per-worker setup.  The
    supervisor wraps both — workers run
    :func:`repro.parallel.faults.guarded_chunk` under a chained
    initializer that installs ``fault_plan`` (``None`` in production)
    and the failure-attribution markers.

    ``monitor`` (a :class:`~repro.obs.progress.MiningMonitor`, or
    ``None``) receives ``unit_done`` per accepted chunk, heartbeat-age
    gauges for in-flight chunks, stale-worker reports past
    ``monitor.stale_after`` and one ``fault`` call per handled failure.

    Returns
    -------
    (results, events, failed):
        ``results[i]`` is chunk ``i``'s accepted ``(patterns, stats,
        spans)`` triple — from its first successful pool execution, or
        from the in-process serial fallback — or ``None`` when the
        chunk failed terminally under ``fallback="raise"``; ``events``
        is the fault log; ``failed`` lists the terminally failed chunk
        ids (always empty with ``fallback="serial"``).

    Each chunk's stats triple is accepted **exactly once**, so merging
    the returned triples reproduces the serial counters even when a
    chunk was executed several times.
    """
    if fallback not in FALLBACK_MODES:
        raise ParameterError(
            f"fallback must be one of {FALLBACK_MODES}, got {fallback!r}"
        )
    total = len(payloads)
    results: List[Optional[tuple]] = [None] * total
    events: List[FaultEvent] = []
    failed: List[int] = []
    if total == 0:
        return results, events, failed

    states = [_ChunkState() for _ in range(total)]
    marker_dir = tempfile.mkdtemp(prefix="repro-chunk-markers-")
    pool: Optional[ProcessPoolExecutor] = None
    in_flight: Dict[Future, _Flight] = {}
    # (chunk id, not-before monotonic time); submission order preserves
    # the deterministic largest-first chunk plan.
    queue: List[Tuple[int, float]] = [(index, 0.0) for index in range(total)]
    barren_pool_deaths = 0
    serial_ready = False

    def make_pool() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=workers,
            mp_context=mp_context,
            initializer=_faults.init_worker,
            initargs=(fault_plan, marker_dir, initializer, initargs),
        )

    def run_serial_fallback(chunk: int) -> None:
        """Re-mine one chunk in-process with the serial engine code."""
        nonlocal serial_ready
        if not serial_ready:
            initializer(*initargs)
            serial_ready = True
        with span("fallback") as fallback_span:
            if fallback_span is not None:
                fallback_span.children.append(
                    Span(name=f"chunk[{chunk}]", started=0.0)
                )
            value = chunk_fn(chunk, payloads[chunk])
        results[chunk] = value
        if monitor is not None:
            # A serial fallback still counts as progress — requesting
            # live output must never go silent just because the pool
            # degraded (the track_memory no-op lesson).
            monitor.serial_beat()
            monitor.unit_done(chunk)

    def handle_failure(chunk: int, execution: int, reason: str) -> None:
        """Charge a failure to ``chunk``; retry, fall back, or record."""
        state = states[chunk]
        state.failures += 1
        if state.failures <= policy.max_retries:
            events.append(FaultEvent(chunk, execution, reason, "retry"))
            if monitor is not None:
                monitor.fault("retry", chunk, reason)
            with span("retry") as retry_span:
                if retry_span is not None:
                    retry_span.children.append(
                        Span(
                            name=f"chunk[{chunk}] execution {execution}: "
                            f"{reason}",
                            started=0.0,
                        )
                    )
            queue.append(
                (chunk, time.monotonic() + policy.delay(chunk, state.failures))
            )
        elif fallback == "serial":
            events.append(
                FaultEvent(chunk, execution, reason, "fallback-serial")
            )
            if monitor is not None:
                monitor.fault("fallback-serial", chunk, reason)
            run_serial_fallback(chunk)
        else:
            events.append(FaultEvent(chunk, execution, reason, "raise"))
            if monitor is not None:
                monitor.fault("raise", chunk, reason)
            failed.append(chunk)

    def requeue_after_pool_death(flight: _Flight, reason: str) -> None:
        """Marker-based attribution after the pool died under us."""
        started = _faults.has_marker(
            marker_dir, "start", flight.chunk, flight.execution
        )
        finished = _faults.has_marker(
            marker_dir, "done", flight.chunk, flight.execution
        )
        if started:
            states[flight.chunk].executions = flight.execution
        if started and not finished:
            handle_failure(flight.chunk, flight.execution, reason)
        else:
            # Never started, or completed with the result lost in
            # transit: re-execute without charging a retry.
            queue.append((flight.chunk, time.monotonic()))

    def check_heartbeats() -> None:
        """Read every in-flight chunk's beat file into the monitor.

        Beat mtimes are wall-clock stamps from the workers' own
        writes; parent and workers share the filesystem, so the age is
        directly comparable to ``time.time()``.  Chunks whose beat file
        does not exist yet (still queued inside the pool) are skipped —
        a worker that never started is not silent, just waiting.
        """
        now_wall = time.time()
        for flight in in_flight.values():
            beat = _faults.latest_beat(
                marker_dir, flight.chunk, flight.execution
            )
            if beat is None:
                continue
            mtime, pid = beat
            age = max(0.0, now_wall - mtime)
            monitor.worker_beat(flight.chunk, pid, age)
            if age >= monitor.stale_after:
                monitor.worker_stale(
                    flight.chunk, pid, age, execution=flight.execution
                )

    def drain_pool(reason: str, charge_all: bool) -> None:
        """Tear the pool down and reschedule everything in flight."""
        nonlocal pool
        if pool is not None:
            _stop_pool(pool)
            pool = None
        flights = list(in_flight.values())
        in_flight.clear()
        for flight in flights:
            if charge_all:
                states[flight.chunk].executions = flight.execution
                handle_failure(flight.chunk, flight.execution, reason)
            else:
                requeue_after_pool_death(flight, reason)

    try:
        while queue or in_flight:
            now = time.monotonic()
            # -- submit everything whose backoff has elapsed ------------
            ready = [entry for entry in queue if entry[1] <= now]
            if ready:
                queue[:] = [entry for entry in queue if entry[1] > now]
                for chunk, _ in ready:
                    execution = states[chunk].executions + 1
                    deadline = (
                        now + policy.timeout
                        if policy.timeout is not None
                        else None
                    )
                    try:
                        if pool is None:
                            pool = make_pool()
                        future = pool.submit(
                            _faults.guarded_chunk,
                            chunk_fn,
                            chunk,
                            payloads[chunk],
                            execution,
                        )
                    except (BrokenProcessPool, RuntimeError):
                        # The pool died between submissions; rebuild
                        # once and let the next loop iteration resubmit.
                        drain_pool("worker pool broke", charge_all=False)
                        queue.append((chunk, time.monotonic()))
                        continue
                    in_flight[future] = _Flight(chunk, execution, deadline)

            if not in_flight:
                if queue:  # everything is backing off
                    time.sleep(
                        max(0.0, min(t for _, t in queue) - time.monotonic())
                    )
                continue

            # -- wait for a completion, a deadline, or a backoff expiry -
            wake_times = [
                flight.deadline
                for flight in in_flight.values()
                if flight.deadline is not None
            ]
            wake_times.extend(t for _, t in queue)
            if monitor is not None:
                # Wake often enough to notice a silent worker well
                # before stale_after has fully elapsed again.
                poll = min(1.0, max(0.02, monitor.stale_after / 4.0))
                wake_times.append(time.monotonic() + poll)
            wait_timeout = (
                max(0.0, min(wake_times) - time.monotonic())
                if wake_times
                else None
            )
            done, _ = futures_wait(
                set(in_flight), timeout=wait_timeout,
                return_when=FIRST_COMPLETED,
            )
            if monitor is not None:
                check_heartbeats()

            # -- completions first: keep every result that made it back -
            pool_broke = False
            for future in done:
                flight = in_flight.pop(future)
                error = future.exception()
                if error is None:
                    states[flight.chunk].executions = flight.execution
                    value = future.result()
                    if _valid_result(value):
                        if results[flight.chunk] is None:
                            results[flight.chunk] = value
                            if monitor is not None:
                                monitor.unit_done(flight.chunk)
                    else:
                        handle_failure(
                            flight.chunk,
                            flight.execution,
                            f"poisoned result ({type(value).__name__})",
                        )
                elif isinstance(error, BrokenProcessPool):
                    pool_broke = True
                    in_flight[future] = flight  # handled by drain below
                else:
                    states[flight.chunk].executions = flight.execution
                    handle_failure(
                        flight.chunk,
                        flight.execution,
                        f"worker error: {error!r}",
                    )

            if pool_broke:
                had_start_markers = any(
                    _faults.has_marker(
                        marker_dir, "start", flight.chunk, flight.execution
                    )
                    for flight in in_flight.values()
                )
                if had_start_markers:
                    barren_pool_deaths = 0
                    drain_pool("worker crashed (pool broke)",
                               charge_all=False)
                else:
                    # The pool died before any chunk ran — likely the
                    # pool itself (initializer, start method) is the
                    # problem.  Retry a bounded number of times, then
                    # charge the chunks so the fallback can decide.
                    barren_pool_deaths += 1
                    drain_pool(
                        "worker pool died before any chunk started",
                        charge_all=barren_pool_deaths
                        >= _MAX_BARREN_POOL_DEATHS,
                    )
                continue

            # -- deadlines: only *executing* chunks are charged ---------
            now = time.monotonic()
            expired = [
                flight
                for flight in in_flight.values()
                if flight.deadline is not None and flight.deadline <= now
            ]
            if expired:
                # A hung worker cannot be cancelled individually, so the
                # whole pool is recycled; chunks that were merely queued
                # are resubmitted without losing a retry credit.
                drain_pool("deadline exceeded", charge_all=False)
    finally:
        if pool is not None:
            pool.shutdown(wait=True)
        shutil.rmtree(marker_dir, ignore_errors=True)

    return results, events, failed
