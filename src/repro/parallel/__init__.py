"""repro.parallel — shared-nothing multiprocess mining.

The search space of every pruning engine decomposes along its first
explored dimension — first-item prefixes for the vertical engines,
suffix-item conditional trees for RP-growth — into sub-problems that
never interact.  This package partitions along that dimension
(:mod:`repro.parallel.partition`), runs the existing serial recursions
unchanged inside pool workers (:mod:`repro.parallel.worker`) and merges
patterns, counters and spans back together
(:class:`~repro.parallel.miner.ParallelMiner`).

Chunk execution is fault-tolerant: :mod:`repro.parallel.resilience`
supervises the pool (per-chunk retries with backoff, deadlines,
in-process serial fallback or :class:`~repro.exceptions.ChunkFailedError`)
and :mod:`repro.parallel.faults` provides the deterministic
fault-injection hook (:class:`~repro.parallel.faults.FaultPlan`) that
makes those failure paths testable.

Most users reach it through ``mine_recurring_patterns(..., jobs=N)``
or the CLI's ``--jobs``; the pieces are public for callers that need
pool-lifecycle control.  ``jobs=1`` is always the serial engine,
byte-identical to not using this package at all.
"""

from repro.exceptions import ChunkFailedError
from repro.parallel.faults import FAULT_KINDS, FaultPlan, FaultSpec
from repro.parallel.miner import PARALLEL_ENGINES, ParallelMiner, default_jobs
from repro.parallel.partition import (
    collect_growth_tasks,
    growth_task_size,
    plan_chunks,
)
from repro.parallel.resilience import (
    FALLBACK_MODES,
    FaultEvent,
    RetryPolicy,
    supervise,
)

__all__ = [
    "PARALLEL_ENGINES",
    "ParallelMiner",
    "default_jobs",
    "collect_growth_tasks",
    "growth_task_size",
    "plan_chunks",
    "FAULT_KINDS",
    "FALLBACK_MODES",
    "FaultPlan",
    "FaultSpec",
    "FaultEvent",
    "RetryPolicy",
    "supervise",
    "ChunkFailedError",
]
