"""Deterministic fault injection for the parallel mining layer.

Testing a supervision layer against failures that are merely *hoped
for* (an OOM kill that may or may not arrive) produces flaky tests and
unreproducible bugs.  This module makes worker failure a first-class,
reproducible input instead: a :class:`FaultPlan` names exactly which
chunk fails, on which execution, and how —

``crash``
    the worker process dies immediately (``os._exit``), which breaks
    the whole ``ProcessPoolExecutor`` exactly like an OOM-killed fork;
``hang``
    the worker sleeps past any per-chunk deadline, exercising the
    timeout path;
``slow``
    the worker sleeps briefly and then completes normally — a
    straggler, not a failure;
``poison``
    the worker returns a corrupted payload instead of the
    ``(patterns, stats, spans)`` triple, exercising result validation.

The plan travels into every worker through the pool initializer
(:func:`init_worker`, which chains the engine's own initializer), and
fault decisions are a pure function of ``(chunk id, execution
number)`` — the parent passes the execution number with each
submission — so an injected failure fires identically no matter which
worker process picks the chunk up.

The module also owns the *marker protocol* the supervisor uses to
attribute failures after a pool death: before running a chunk the
worker touches ``start-<chunk>-<execution>`` in a parent-owned marker
directory, and after finishing it touches ``done-<chunk>-<execution>``.
When the pool breaks, chunks with a ``start`` but no ``done`` marker
were executing and are charged a retry; chunks never started (or
finished with the result lost in transit) are resubmitted without
burning a retry credit.

The same directory carries the **heartbeat channel**: when a chunk
starts, the worker writes ``beat-<chunk>-<execution>`` containing its
pid, and the chunk loops call :func:`maybe_beat` between tasks to
re-touch it (rate-limited).  No background thread beats on the
worker's behalf — deliberately, so a worker stuck *inside* one task
(or asleep under an injected ``hang``) stops beating and the
supervisor can report "worker N silent for Xs" from the file's mtime
*before* the chunk deadline fires.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.exceptions import ParameterError

__all__ = [
    "FAULT_KINDS",
    "POISONED_RESULT",
    "FaultSpec",
    "FaultPlan",
    "install_fault_plan",
    "init_worker",
    "guarded_chunk",
    "marker_path",
    "has_marker",
    "maybe_beat",
    "latest_beat",
]

#: The injectable failure modes, in the order the test matrix runs them.
FAULT_KINDS = ("crash", "hang", "slow", "poison")

#: What a poisoned chunk returns instead of its result triple.
POISONED_RESULT = "repro-poisoned-chunk-result"

#: Exit status of a crash-injected worker (anything non-zero breaks the
#: pool; 17 is recognisable in core dumps and CI logs).
_CRASH_STATUS = 17


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: *kind* on the Nth execution of chunk K.

    Parameters
    ----------
    chunk:
        The chunk id (the submission index of the chunk plan, which is
        deterministic — see ``plan_chunks``).
    kind:
        One of :data:`FAULT_KINDS`.
    execution:
        Fire on this execution of the chunk (1-based; retries re-execute
        with the next number).  ``None`` fires on *every* execution —
        a persistent fault that forces the retry budget to exhaust.
    seconds:
        Sleep duration for ``hang``/``slow`` (ignored otherwise).
    """

    chunk: int
    kind: str
    execution: Optional[int] = 1
    seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ParameterError(
                f"fault kind {self.kind!r} is not one of {FAULT_KINDS}"
            )
        if self.execution is not None and self.execution < 1:
            raise ParameterError(
                f"fault execution must be >= 1 or None, got {self.execution!r}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A picklable set of :class:`FaultSpec` injected into pool workers.

    Examples
    --------
    >>> plan = FaultPlan.single("poison", chunk=2)
    >>> plan.find(2, 1).kind
    'poison'
    >>> plan.find(2, 2) is None
    True
    """

    specs: Tuple[FaultSpec, ...] = ()

    @classmethod
    def of(cls, *specs: FaultSpec) -> "FaultPlan":
        """A plan from individual specs."""
        return cls(specs=tuple(specs))

    @classmethod
    def single(
        cls,
        kind: str,
        chunk: int = 0,
        execution: Optional[int] = 1,
        seconds: float = 30.0,
    ) -> "FaultPlan":
        """The common one-fault plan used by the test matrix."""
        return cls(specs=(FaultSpec(chunk, kind, execution, seconds),))

    def find(self, chunk: int, execution: int) -> Optional[FaultSpec]:
        """The spec firing on this ``(chunk, execution)``, if any."""
        for spec in self.specs:
            if spec.chunk == chunk and (
                spec.execution is None or spec.execution == execution
            ):
                return spec
        return None


# ----------------------------------------------------------------------
# Worker-process state (module globals are both fork- and spawn-safe
# because this module is importable by name, like repro.parallel.worker)
# ----------------------------------------------------------------------
_PLAN: Optional[FaultPlan] = None
_MARKER_DIR: Optional[str] = None

#: The (chunk, execution) this worker is currently running, if any —
#: set by guarded_chunk so maybe_beat() knows which beat file to touch.
_CURRENT: Optional[Tuple[int, int]] = None
_LAST_BEAT = 0.0

#: Minimum seconds between beat-file touches from the chunk loops.
BEAT_INTERVAL = 0.05


def install_fault_plan(
    plan: Optional[FaultPlan], marker_dir: Optional[str] = None
) -> None:
    """Install ``plan`` (and the marker directory) in this process."""
    global _PLAN, _MARKER_DIR
    _PLAN = plan
    _MARKER_DIR = marker_dir


def init_worker(
    plan: Optional[FaultPlan],
    marker_dir: Optional[str],
    initializer,
    initargs: Sequence[object],
) -> None:
    """Pool initializer: install fault state, then run the engine's own.

    This is the hook the resilience layer passes to every
    ``ProcessPoolExecutor`` it builds — the engine initializer
    (``init_vertical_worker`` / ``init_growth_worker``) still runs
    exactly as before, after the fault plan lands.
    """
    install_fault_plan(plan, marker_dir)
    if initializer is not None:
        initializer(*initargs)


def marker_path(
    marker_dir: str, prefix: str, chunk: int, execution: int
) -> str:
    """The marker file for one ``(prefix, chunk, execution)``."""
    return os.path.join(marker_dir, f"{prefix}-{chunk}-{execution}")


def has_marker(
    marker_dir: Optional[str], prefix: str, chunk: int, execution: int
) -> bool:
    """Parent-side check: did a worker leave this marker?"""
    if marker_dir is None:
        return False
    return os.path.exists(marker_path(marker_dir, prefix, chunk, execution))


def _mark(prefix: str, chunk: int, execution: int) -> None:
    if _MARKER_DIR is None:
        return
    try:
        with open(marker_path(_MARKER_DIR, prefix, chunk, execution), "w"):
            pass
    except OSError:  # pragma: no cover - marker dir vanished mid-run
        pass


def _write_beat(chunk: int, execution: int) -> None:
    """Touch this chunk's beat file, recording the worker pid."""
    if _MARKER_DIR is None:
        return
    try:
        path = marker_path(_MARKER_DIR, "beat", chunk, execution)
        with open(path, "w") as handle:
            handle.write(str(os.getpid()))
    except OSError:  # pragma: no cover - marker dir vanished mid-run
        pass


def maybe_beat(min_interval: float = BEAT_INTERVAL) -> bool:
    """Re-touch the current chunk's beat file, rate-limited.

    Called by the worker chunk loops between tasks.  A no-op outside a
    guarded chunk or without a marker directory; returns whether a beat
    was actually written.
    """
    global _LAST_BEAT
    if _CURRENT is None or _MARKER_DIR is None:
        return False
    now = time.monotonic()
    if now - _LAST_BEAT < min_interval:
        return False
    _LAST_BEAT = now
    _write_beat(*_CURRENT)
    return True


def latest_beat(
    marker_dir: Optional[str], chunk: int, execution: int
) -> Optional[Tuple[float, Optional[int]]]:
    """Parent-side: ``(mtime, pid)`` of a chunk's beat file, if any.

    ``mtime`` is wall-clock (``time.time`` base — parent and workers
    share the filesystem clock); ``pid`` is ``None`` when the file
    content is unreadable or empty.
    """
    if marker_dir is None:
        return None
    path = marker_path(marker_dir, "beat", chunk, execution)
    try:
        mtime = os.path.getmtime(path)
        with open(path, "r") as handle:
            content = handle.read().strip()
    except OSError:
        return None
    pid = int(content) if content.isdigit() else None
    return mtime, pid


def guarded_chunk(chunk_fn, chunk_id: int, payload, execution: int):
    """Run one chunk inside a worker, applying any planned fault.

    This is the callable the supervisor actually submits to the pool:
    it brackets ``chunk_fn(chunk_id, payload)`` with the start/done
    markers (plus an initial heartbeat) and consults the installed
    :class:`FaultPlan` first.  The heartbeat is written *before* the
    fault check on purpose: an injected ``hang`` then looks exactly
    like a production hang — one beat at chunk start, silence after.
    With no plan installed (production) the overhead is three
    ``open()`` calls per chunk.
    """
    global _CURRENT, _LAST_BEAT
    _mark("start", chunk_id, execution)
    _CURRENT = (chunk_id, execution)
    _LAST_BEAT = time.monotonic()
    _write_beat(chunk_id, execution)
    try:
        spec = _PLAN.find(chunk_id, execution) if _PLAN is not None else None
        if spec is not None:
            if spec.kind == "crash":
                os._exit(_CRASH_STATUS)
            if spec.kind in ("hang", "slow"):
                time.sleep(spec.seconds)
            if spec.kind == "poison":
                _mark("done", chunk_id, execution)
                return POISONED_RESULT
        result = chunk_fn(chunk_id, payload)
        _mark("done", chunk_id, execution)
        return result
    finally:
        _CURRENT = None
