"""The ``repro-stream/v1`` checkpoint format.

A checkpoint is a JSON-lines document written through the same
:class:`~repro.obs.report.TraceWriter` sink as every other record
schema in this repo (``repro-run/v1``, ``repro-sweep/v1``, …):

* one ``{"kind": "stream-checkpoint", ...}`` header line carrying the
  registry configuration (shard count, thresholds, stream census), and
* one ``{"kind": "stream-state", ...}`` line per stream — active or
  spilled alike — whose ``state`` payload is the monitor's
  :meth:`~repro.streaming.monitor.StreamingRecurrenceMonitor.state_dict`.

Records are validated on write *and* on read by
:func:`~repro.obs.report.validate_stream_record`, and streams are
emitted in a deterministic order (shard, then encoded key), so two
registries in identical logical state produce byte-identical
checkpoints — the property the QA gate's checkpoint-resume relation
pins.

:func:`monitor_from_state` is the single factory that turns a
``state`` payload back into the right monitor class (plain or
calendar), used by both checkpoint restore and eviction re-admission.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.exceptions import DataFormatError
from repro.obs.report import (
    STREAM_SCHEMA,
    TraceWriter,
    iter_trace,
    validate_stream_record,
)

from repro.streaming.calendar import CalendarRecurrenceMonitor
from repro.streaming.monitor import (
    StreamingRecurrenceMonitor,
    decode_item,
    encode_item,
    item_sort_key,
)

__all__ = [
    "monitor_from_state",
    "read_checkpoint",
    "write_checkpoint",
]

#: Either monitor flavour the registry can host.
AnyMonitor = Union[StreamingRecurrenceMonitor, CalendarRecurrenceMonitor]


def monitor_from_state(
    state: Mapping[str, object], on_interval=None
) -> AnyMonitor:
    """Rebuild the right monitor class from a ``state`` payload.

    Dispatches on the payload's ``kind`` tag (``"monitor"`` or
    ``"calendar-monitor"``); restoration is bit-exact — re-serializing
    the result yields the identical payload.

    Examples
    --------
    >>> monitor = StreamingRecurrenceMonitor(per=2, min_ps=2)
    >>> monitor.observe(1, ["a"])
    >>> clone = monitor_from_state(monitor.state_dict())
    >>> clone.state_dict() == monitor.state_dict()
    True
    """
    kind = state.get("kind")
    if kind == "monitor":
        return StreamingRecurrenceMonitor.from_state(
            state, on_interval=on_interval
        )
    if kind == "calendar-monitor":
        return CalendarRecurrenceMonitor.from_state(
            state, on_interval=on_interval
        )
    raise DataFormatError(
        f"unknown monitor state kind {kind!r} (expected 'monitor' or "
        f"'calendar-monitor')"
    )


def write_checkpoint(
    target,
    *,
    shards: int,
    params: Mapping[str, object],
    states: Iterable[Tuple[object, int, Mapping[str, object]]],
    lru: Iterable[object] = (),
    watched: Iterable[Tuple[object, Iterable[object]]] = (),
) -> int:
    """Write one ``repro-stream/v1`` checkpoint; return bytes written.

    Parameters
    ----------
    target:
        A path or text handle (anything ``TraceWriter`` accepts).
    shards, params:
        Registry configuration for the header record.
    states:
        ``(stream_key, shard, state_dict)`` triples.  They are sorted
        by ``(shard, encoded key)`` before writing, so the byte output
        is independent of dict iteration order.
    lru:
        The *active* stream keys in least-recently-observed-first
        order.  Restore re-materializes exactly these, in this order,
        so the active set, the eviction order and the header census
        all survive the round trip — without this, a restored registry
        would checkpoint different bytes than the original.
    watched:
        Registry-level ``(label, itemset)`` composite watches.  These
        must ride in the header because they apply to streams that do
        not exist yet — a monitor created *after* restore must watch
        the same composites a pre-checkpoint one would have.
    """
    lru_keys = list(lru)
    rows = sorted(
        (
            (shard, json.dumps(encode_item(key), sort_keys=True), key, state)
            for key, shard, state in states
        ),
        key=lambda row: (row[0], row[1]),
    )
    watch_rows = sorted(
        (
            (
                encode_item(label),
                [
                    encode_item(i)
                    for i in sorted(items, key=item_sort_key)
                ],
            )
            for label, items in watched
        ),
        key=lambda row: json.dumps(row[0], sort_keys=True),
    )
    header = {
        "schema": STREAM_SCHEMA,
        "kind": "stream-checkpoint",
        "shards": shards,
        "params": dict(params),
        "streams": len(rows),
        "active": len(lru_keys),
        "evicted": len(rows) - len(lru_keys),
        "lru": [encode_item(key) for key in lru_keys],
        "watched": [list(row) for row in watch_rows],
    }
    validate_stream_record(header)
    written = 0
    with TraceWriter(target) as writer:
        writer.write_record(header)
        written += len(json.dumps(header, sort_keys=False)) + 1
        for shard, _, key, state in rows:
            record = {
                "schema": STREAM_SCHEMA,
                "kind": "stream-state",
                "stream": encode_item(key),
                "shard": shard,
                "state": dict(state),
            }
            validate_stream_record(record)
            writer.write_record(record)
            written += len(json.dumps(record, sort_keys=False)) + 1
    return written


def read_checkpoint(
    source,
) -> Tuple[Dict[str, object], List[Tuple[object, int, Dict[str, object]]]]:
    """Read and validate a ``repro-stream/v1`` checkpoint.

    Returns the header record and the ``(stream_key, shard,
    state_dict)`` triples, in file order.  Raises
    :class:`~repro.exceptions.DataFormatError` on a missing or
    malformed header and ``ValueError`` on any invalid record.
    """
    header: Optional[Dict[str, object]] = None
    states: List[Tuple[object, int, Dict[str, object]]] = []
    for record in iter_trace(source):
        if record.get("schema") != STREAM_SCHEMA:
            continue
        validate_stream_record(record)
        if record["kind"] == "stream-checkpoint":
            if header is not None:
                raise DataFormatError(
                    "checkpoint contains more than one header record"
                )
            header = record
        else:
            states.append(
                (decode_item(record["stream"]), record["shard"],
                 record["state"])
            )
    if header is None:
        raise DataFormatError(
            "not a repro-stream/v1 checkpoint: no stream-checkpoint "
            "header record found"
        )
    if len(states) != header["streams"]:
        raise DataFormatError(
            f"checkpoint header promises {header['streams']} streams, "
            f"found {len(states)}"
        )
    return header, states
