"""Sharded multi-tenant streaming recurrence.

One :class:`~repro.streaming.monitor.StreamingRecurrenceMonitor` per
tenant does not scale to the ROADMAP's "millions of independent user
streams" by itself — a service needs O(1) routing of an event to its
stream's monitor, a bounded active set under memory pressure, and a
restart story.  :class:`ShardedMonitorRegistry` supplies all three:

* **Hash partitioning.**  Stream keys are routed to one of N shards by
  a *stable* hash (``zlib.crc32`` of the key's canonical encoding —
  never the salted builtin ``hash``), so placement is identical across
  processes, restarts and checkpoint/restore, and a registry restored
  at a different shard count re-derives every placement from the key
  alone.
* **Idle-stream eviction with exact re-admission.**  With
  ``max_active`` set, the least-recently-*observed* stream is evicted
  when the cap is exceeded — but its state is spilled (serialized via
  ``state_dict``), not dropped.  A returning stream is re-admitted
  from the spill bit-identically, open-run counters included, so
  eviction is observationally invisible (tested, and pinned by the QA
  gate's streamed≡batch relation which runs under eviction pressure).
  Recency means *arrival order at the registry*: per-stream clocks are
  independent, so their timestamps are not comparable across streams.
* **Checkpoint/restore.**  :meth:`ShardedMonitorRegistry.checkpoint`
  serializes every stream (active and spilled) into a versioned
  ``repro-stream/v1`` document and
  :meth:`ShardedMonitorRegistry.restore` rebuilds a registry that
  resumes byte-identically — the QA gate's checkpoint-resume relation
  holds the two futures equal.

Observability: with a :class:`~repro.obs.metrics.MetricsRegistry`
attached, the registry maintains ``repro_stream_*`` gauges and
counters (active/evicted streams, events, evictions, re-admissions,
checkpoint bytes), and checkpoint/restore run inside ``span``s.

Examples
--------
>>> registry = ShardedMonitorRegistry(per=2, min_ps=3, shards=4)
>>> for ts in [1, 3, 4]:
...     registry.observe("alice", ts, ["login"])
...     registry.observe("bob", ts * 10, ["backup"])
>>> registry.monitor("alice").recurrence("login", include_open_run=True)
1
>>> registry.active_streams
2
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from typing import Callable, Dict, Iterable, List, Optional

from repro._validation import Number, check_count, check_positive
from repro.exceptions import ParameterError
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import span
from repro.timeseries.events import Item

from repro.streaming.calendar import CalendarPeriod, CalendarRecurrenceMonitor
from repro.streaming.checkpoint import (
    AnyMonitor,
    monitor_from_state,
    read_checkpoint,
    write_checkpoint,
)
from repro.streaming.monitor import (
    StreamingRecurrenceMonitor,
    decode_item,
    item_sort_key,
)

__all__ = ["ShardedMonitorRegistry", "shard_of"]

#: Registry-level interval callback: (stream, item, interval) for plain
#: monitors, (stream, slot, item, interval) for calendar monitors.
RegistryIntervalCallback = Callable[..., None]


def shard_of(stream: object, shards: int) -> int:
    """The shard a stream key routes to — stable across processes.

    Built on CRC-32 of the key's canonical JSON encoding, *not* the
    builtin ``hash``, which is salted per process and would scatter a
    restored registry's streams differently than the original's.

    Examples
    --------
    >>> shard_of("alice", 16) == shard_of("alice", 16)
    True
    >>> 0 <= shard_of("bob", 4) < 4
    True
    """
    check_count(shards, "shards")
    return zlib.crc32(item_sort_key(stream).encode("utf-8")) % shards


class ShardedMonitorRegistry:
    """Track recurrence over many independent streams, sharded.

    Parameters
    ----------
    per:
        Inter-arrival threshold for plain monitors.  Exactly one of
        ``per`` and ``calendar`` must be given.
    min_ps, min_rec:
        Model thresholds (absolute counts — streams are unbounded).
    shards:
        Number of hash partitions (fixed for the registry's lifetime;
        :meth:`restore` may pick a different count).
    max_active:
        Optional cap on simultaneously materialized monitors.  When
        exceeded, the least-recently-observed stream is spilled.
    calendar:
        A :class:`~repro.streaming.calendar.CalendarPeriod` for
        calendar-anchored recurrence instead of a plain ``per``.
    calendar_per:
        Tick tolerance for calendar monitors (default 1).
    on_interval:
        Optional callback fired when any stream closes an interesting
        interval: ``(stream, item, interval)`` for plain monitors,
        ``(stream, slot, item, interval)`` for calendar monitors.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` receiving
        the ``repro_stream_*`` gauges and counters.
    """

    def __init__(
        self,
        per: Optional[Number] = None,
        min_ps: int = 1,
        min_rec: int = 1,
        *,
        shards: int = 16,
        max_active: Optional[int] = None,
        calendar: Optional[CalendarPeriod] = None,
        calendar_per: int = 1,
        on_interval: Optional[RegistryIntervalCallback] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if (per is None) == (calendar is None):
            raise ParameterError(
                "exactly one of per= and calendar= must be given"
            )
        if per is not None:
            check_positive(per, "per")
        check_count(shards, "shards")
        if max_active is not None:
            check_count(max_active, "max_active")
        self.per = per
        self.min_ps = check_count(min_ps, "min_ps")
        self.min_rec = check_count(min_rec, "min_rec")
        self.shards = shards
        self.max_active = max_active
        self.calendar = calendar
        self.calendar_per = check_count(calendar_per, "calendar_per")
        self.on_interval = on_interval
        self._metrics = metrics
        #: Active monitors, per shard.
        self._active: List[Dict[object, AnyMonitor]] = [
            {} for _ in range(shards)
        ]
        #: Spilled (evicted) state dicts, per shard.
        self._spilled: List[Dict[object, Dict[str, object]]] = [
            {} for _ in range(shards)
        ]
        #: Global recency order of *active* streams (LRU at the front).
        self._lru: "OrderedDict[object, None]" = OrderedDict()
        #: Watched composite patterns, applied to every monitor.
        self._watched: Dict[Item, frozenset] = {}
        self._update_gauges()

    # ------------------------------------------------------------------
    # Routing and feeding
    # ------------------------------------------------------------------
    def shard_of(self, stream: object) -> int:
        """The shard ``stream`` routes to in this registry."""
        return shard_of(stream, self.shards)

    def watch_pattern(self, items: Iterable[Item], label: Item) -> None:
        """Watch an itemset as composite ``label`` on *every* stream.

        Applies to already-active monitors immediately and to each
        later-created or re-admitted monitor at materialization.
        """
        itemset = frozenset(items)
        if not itemset:
            raise ValueError("a watched pattern needs at least one item")
        self._watched[label] = itemset
        for shard in self._active:
            for monitor in shard.values():
                monitor.watch_pattern(itemset, label)

    def observe(self, stream: object, ts: float, items: Iterable[Item]) -> None:
        """Feed one event of ``stream`` — O(1) routing per event.

        Timestamps must be non-decreasing *per stream*; different
        streams have fully independent clocks.
        """
        monitor = self._materialize(stream)
        monitor.observe(ts, items)
        self._lru.move_to_end(stream)
        self._inc("repro_stream_events_total")
        self._enforce_cap()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def monitor(self, stream: object) -> AnyMonitor:
        """The (re-admitted if necessary) monitor of ``stream``.

        Raises ``KeyError`` for a stream the registry has never seen.
        Touching a monitor counts as use for LRU purposes.
        """
        shard = self.shard_of(stream)
        if stream not in self._active[shard] \
                and stream not in self._spilled[shard]:
            raise KeyError(f"unknown stream {stream!r}")
        monitor = self._materialize(stream)
        self._lru.move_to_end(stream)
        self._enforce_cap()
        return monitor

    def streams(self) -> List[object]:
        """Every known stream key (active and spilled), sorted."""
        keys: List[object] = []
        for shard in range(self.shards):
            keys.extend(self._active[shard])
            keys.extend(self._spilled[shard])
        return sorted(keys, key=item_sort_key)

    @property
    def active_streams(self) -> int:
        """How many streams currently hold a live monitor."""
        return sum(len(shard) for shard in self._active)

    @property
    def evicted_streams(self) -> int:
        """How many streams are currently spilled."""
        return sum(len(shard) for shard in self._spilled)

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def _params(self) -> Dict[str, object]:
        """The threshold configuration for the checkpoint header."""
        params: Dict[str, object] = {
            "min_ps": self.min_ps,
            "min_rec": self.min_rec,
            "max_active": self.max_active,
        }
        if self.calendar is not None:
            params["calendar"] = self.calendar.mode
            params["calendar_per"] = self.calendar_per
        else:
            params["per"] = self.per
        return params

    def checkpoint(self, target) -> int:
        """Write a ``repro-stream/v1`` checkpoint; return bytes written.

        Serializes *every* stream — active monitors and spilled state
        alike — in deterministic order, so two registries in the same
        logical state write identical bytes.  ``target`` is a path or
        text handle.  Also updates the
        ``repro_stream_checkpoint_bytes`` gauge.
        """
        with span("stream_checkpoint"):
            states = []
            for shard in range(self.shards):
                for key, monitor in self._active[shard].items():
                    states.append((key, shard, monitor.state_dict()))
                for key, state in self._spilled[shard].items():
                    states.append((key, shard, state))
            written = write_checkpoint(
                target,
                shards=self.shards,
                params=self._params(),
                states=states,
                lru=list(self._lru),
                watched=sorted(
                    self._watched.items(),
                    key=lambda pair: item_sort_key(pair[0]),
                ),
            )
        self._inc("repro_stream_checkpoints_total")
        self._set("repro_stream_checkpoint_bytes", written)
        return written

    @classmethod
    def restore(
        cls,
        source,
        *,
        shards: Optional[int] = None,
        max_active: Optional[int] = None,
        on_interval: Optional[RegistryIntervalCallback] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> "ShardedMonitorRegistry":
        """Rebuild a registry from a checkpoint, losing nothing.

        Spilled streams stay spilled; the checkpoint's active streams
        are re-materialized in their recorded LRU order, so the
        restored registry is in the *identical* state — same active
        set, same eviction order, same monitor internals — and a
        re-checkpoint writes the identical bytes.  ``shards`` may
        differ from the checkpointed count — placement is re-derived
        from the stable key hash, so resharding on restore is safe.

        Examples
        --------
        >>> import io
        >>> registry = ShardedMonitorRegistry(per=2, min_ps=2, shards=4)
        >>> registry.observe("alice", 1, ["a"])
        >>> buffer = io.StringIO()
        >>> _ = registry.checkpoint(buffer)
        >>> _ = buffer.seek(0)
        >>> clone = ShardedMonitorRegistry.restore(buffer, shards=2)
        >>> clone.monitor("alice").support("a")
        1
        """
        with span("stream_restore"):
            header, states = read_checkpoint(source)
            params = header["params"]
            kwargs: Dict[str, object] = {}
            if "calendar" in params:
                kwargs["calendar"] = CalendarPeriod(params["calendar"])
                kwargs["calendar_per"] = params.get("calendar_per", 1)
            else:
                kwargs["per"] = params["per"]
            if max_active is None:
                max_active = params.get("max_active")
            registry = cls(
                min_ps=params["min_ps"],
                min_rec=params["min_rec"],
                shards=header["shards"] if shards is None else shards,
                max_active=max_active,
                on_interval=on_interval,
                metrics=metrics,
                **kwargs,
            )
            for label, items in header["watched"]:
                registry._watched[decode_item(label)] = frozenset(
                    decode_item(i) for i in items
                )
            for key, _, state in states:
                registry._spilled[registry.shard_of(key)][key] = dict(state)
            for encoded in header["lru"]:
                key = decode_item(encoded)
                shard = registry.shard_of(key)
                state = registry._spilled[shard].pop(key)
                registry._active[shard][key] = monitor_from_state(
                    state, on_interval=registry._stream_callback(key)
                )
                registry._lru[key] = None
            registry._update_gauges()
        registry._inc("repro_stream_restores_total")
        return registry

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _new_monitor(self, stream: object) -> AnyMonitor:
        """A fresh monitor configured like every other in the registry."""
        monitor: AnyMonitor
        if self.calendar is not None:
            monitor = CalendarRecurrenceMonitor(
                self.calendar,
                min_ps=self.min_ps,
                min_rec=self.min_rec,
                per=self.calendar_per,
                on_interval=self._stream_callback(stream),
            )
        else:
            monitor = StreamingRecurrenceMonitor(
                per=self.per,
                min_ps=self.min_ps,
                min_rec=self.min_rec,
                on_interval=self._stream_callback(stream),
            )
        return monitor

    def _stream_callback(self, stream: object):
        """Bridge a monitor's interval callback to the registry's."""
        if self.on_interval is None:
            return None

        def fire(*parts):
            self.on_interval(stream, *parts)

        return fire

    def _materialize(self, stream: object) -> AnyMonitor:
        """The live monitor of ``stream``, re-admitting or creating it."""
        shard = self.shard_of(stream)
        monitor = self._active[shard].get(stream)
        if monitor is not None:
            return monitor
        spilled = self._spilled[shard].pop(stream, None)
        if spilled is not None:
            monitor = monitor_from_state(
                spilled, on_interval=self._stream_callback(stream)
            )
            self._inc("repro_stream_readmissions_total")
        else:
            monitor = self._new_monitor(stream)
            for label, pattern in self._watched.items():
                monitor.watch_pattern(pattern, label)
        self._active[shard][stream] = monitor
        self._lru[stream] = None
        self._update_gauges()
        return monitor

    def _enforce_cap(self) -> None:
        """Spill least-recently-observed streams past ``max_active``."""
        if self.max_active is None:
            return
        while len(self._lru) > self.max_active:
            victim, _ = self._lru.popitem(last=False)
            shard = self.shard_of(victim)
            monitor = self._active[shard].pop(victim)
            self._spilled[shard][victim] = monitor.state_dict()
            self._inc("repro_stream_evictions_total")
        self._update_gauges()

    def _inc(self, name: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(name).inc()

    def _set(self, name: str, value: Number) -> None:
        if self._metrics is not None:
            self._metrics.gauge(name).set(value)

    def _update_gauges(self) -> None:
        self._set("repro_stream_active_streams", self.active_streams)
        self._set("repro_stream_evicted_streams", self.evicted_streams)
