"""Calendar-aware recurrence: hour-of-day and day-of-week periods.

The paper's ``per`` threshold is a plain inter-arrival bound, but many
operational periodicities are *calendar-anchored* — "every morning
around 9", "every Monday" — the interval-based calendar periodicities
of Dutta & Mahanta (see PAPERS.md).  This module grounds that notion in
the existing model instead of inventing a new one:

* A :class:`CalendarPeriod` maps a raw minute timestamp to a calendar
  **slot** (hour-of-day 0–23, or day-of-week 0–6) and a **tick** (the
  day index, or the week index).
* Within one slot, occurrences form an ordinary point sequence over the
  tick axis, so the paper's machinery applies unchanged with ``per``
  measured in ticks (default 1: consecutive days / consecutive weeks).
  "Recurring at 9am" is literally "recurring with per=1 on the day
  axis, restricted to the 9am slot".

Both consumption styles are provided: :func:`mine_calendar_patterns`
projects a batch database per slot and runs any registered engine, and
:class:`CalendarRecurrenceMonitor` maintains one lazily-created
:class:`~repro.streaming.monitor.StreamingRecurrenceMonitor` per slot
for O(1) per-event streaming.  Multiple events in the same slot of the
same tick (two logins inside the 9am hour) collapse into one
occurrence via the monitor's same-timestamp merge — mirroring the
batch projection, where they share a tick timestamp.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro._validation import Number, check_count
from repro.core.model import PeriodicInterval, RecurringPattern
from repro.exceptions import DataFormatError, ParameterError
from repro.timeseries.calendar import day_of, hour_of_day
from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.events import Item

from repro.streaming.monitor import (
    ItemState,
    StreamingRecurrenceMonitor,
    encode_item,
    decode_item,
    item_sort_key,
)

__all__ = [
    "CALENDAR_MODES",
    "CalendarPeriod",
    "CalendarRecurrenceMonitor",
    "mine_calendar_patterns",
]

#: The supported calendar anchorings.
CALENDAR_MODES = ("hour-of-day", "day-of-week")

_DAY_NAMES = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")


@dataclass(frozen=True)
class CalendarPeriod:
    """A calendar anchoring of the recurrence model.

    Parameters
    ----------
    mode:
        ``"hour-of-day"`` (slots 0–23, ticks are day indices) or
        ``"day-of-week"`` (slots 0–6 with day 0 of the epoch being
        slot 0, ticks are week indices).

    Examples
    --------
    >>> cal = CalendarPeriod("hour-of-day")
    >>> cal.slot(9 * 60 + 30), cal.tick(9 * 60 + 30)   # 09:30 of day 0
    (9, 0)
    >>> CalendarPeriod("day-of-week").slots
    7
    """

    mode: str

    def __post_init__(self):
        if self.mode not in CALENDAR_MODES:
            raise ParameterError(
                f"calendar mode must be one of {CALENDAR_MODES}, "
                f"got {self.mode!r}"
            )

    @property
    def slots(self) -> int:
        """How many slots this anchoring has (24 or 7)."""
        return 24 if self.mode == "hour-of-day" else 7

    def slot(self, ts: Number) -> int:
        """The calendar slot a minute timestamp falls in."""
        if self.mode == "hour-of-day":
            return hour_of_day(ts)
        return day_of(ts) % 7

    def tick(self, ts: Number) -> int:
        """The recurrence axis: day index or week index of ``ts``."""
        if self.mode == "hour-of-day":
            return day_of(ts)
        return day_of(ts) // 7

    def label(self, slot: int) -> str:
        """Human name of ``slot`` (``"09h"`` / ``"Mon"``).

        Examples
        --------
        >>> CalendarPeriod("hour-of-day").label(9)
        '09h'
        >>> CalendarPeriod("day-of-week").label(0)
        'Mon'
        """
        if not 0 <= slot < self.slots:
            raise ParameterError(
                f"slot must be in [0, {self.slots}), got {slot!r}"
            )
        if self.mode == "hour-of-day":
            return f"{slot:02d}h"
        return _DAY_NAMES[slot]

    def project(
        self, database: TransactionalDatabase
    ) -> Dict[int, TransactionalDatabase]:
        """Split a batch database into one tick-axis database per slot.

        Transactions landing in the same slot of the same tick merge
        (the ``TransactionalDatabase`` constructor groups by
        timestamp), exactly matching the streaming monitor's
        same-timestamp merge.  Empty slots are omitted.
        """
        rows: Dict[int, List[Tuple[int, FrozenSet[Item]]]] = {}
        for ts, itemset in database:
            rows.setdefault(self.slot(ts), []).append(
                (self.tick(ts), itemset)
            )
        return {
            slot: TransactionalDatabase(slot_rows)
            for slot, slot_rows in sorted(rows.items())
        }


def mine_calendar_patterns(
    database: TransactionalDatabase,
    calendar: CalendarPeriod,
    min_ps: Number,
    min_rec: int = 1,
    *,
    per: int = 1,
    engine: str = "rp-growth",
    jobs: int = 1,
) -> Dict[int, Tuple[RecurringPattern, ...]]:
    """Batch-mine calendar-anchored recurring patterns, per slot.

    Each slot's projected tick-axis database is mined with the chosen
    engine at ``per`` ticks (default 1: strictly consecutive days /
    weeks).  Fractional ``min_ps`` resolves against each *slot's*
    transaction count.  Slots with no transactions, or no patterns, are
    omitted from the result.

    Examples
    --------
    Logins inside the 9am hour on days 0, 1, 2 recur at 9am:

    >>> rows = [(d * 1440 + 9 * 60 + 5, ["login"]) for d in range(3)]
    >>> db = TransactionalDatabase(rows)
    >>> by_slot = mine_calendar_patterns(
    ...     db, CalendarPeriod("hour-of-day"), min_ps=3)
    >>> sorted(by_slot)
    [9]
    >>> [p.items for p in by_slot[9]]
    [frozenset({'login'})]
    """
    from repro.core.miner import mine_recurring_patterns

    result: Dict[int, Tuple[RecurringPattern, ...]] = {}
    for slot, projected in calendar.project(database).items():
        patterns = mine_recurring_patterns(
            projected,
            per=per,
            min_ps=min_ps,
            min_rec=min_rec,
            engine=engine,
            jobs=jobs,
        )
        if patterns:
            result[slot] = tuple(patterns)
    return result


class CalendarRecurrenceMonitor:
    """Streaming calendar-anchored recurrence over one event stream.

    Routes each event to its slot's
    :class:`~repro.streaming.monitor.StreamingRecurrenceMonitor`
    (created lazily) with the timestamp replaced by the tick, so every
    query the plain monitor offers is available *per slot*.  Feeding a
    whole database gives exactly the patterns
    :func:`mine_calendar_patterns` mines from the same database
    (property-tested).

    Parameters
    ----------
    calendar:
        The :class:`CalendarPeriod` anchoring.
    min_ps, min_rec:
        Model thresholds (absolute counts).
    per:
        Tick tolerance within a slot (default 1 tick).
    on_interval:
        Optional callback ``(slot, item, interval)`` fired when a
        slot's interesting interval closes; interval bounds are ticks.

    Examples
    --------
    >>> cal = CalendarPeriod("hour-of-day")
    >>> monitor = CalendarRecurrenceMonitor(cal, min_ps=3)
    >>> for d in range(3):
    ...     monitor.observe(d * 1440 + 9 * 60, ["login"])
    >>> monitor.recurrence("login", slot=9, include_open_run=True)
    1
    """

    def __init__(
        self,
        calendar: CalendarPeriod,
        min_ps: int,
        min_rec: int = 1,
        *,
        per: int = 1,
        on_interval=None,
    ):
        check_count(per, "per")
        check_count(min_ps, "min_ps")
        check_count(min_rec, "min_rec")
        self.calendar = calendar
        self.per = per
        self.min_ps = min_ps
        self.min_rec = min_rec
        self.on_interval = on_interval
        self._slots: Dict[int, StreamingRecurrenceMonitor] = {}
        self._patterns: Dict[Item, FrozenSet[Item]] = {}
        self._last_ts: Optional[float] = None

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def watch_pattern(self, items: Iterable[Item], label: Item) -> None:
        """Track the itemset as composite ``label`` in every slot."""
        itemset = frozenset(items)
        if not itemset:
            raise ValueError("a watched pattern needs at least one item")
        self._patterns[label] = itemset
        for monitor in self._slots.values():
            monitor.watch_pattern(itemset, label)

    def observe(self, ts: float, items: Iterable[Item]) -> None:
        """Feed one transaction (raw minute timestamp, non-decreasing)."""
        if self._last_ts is not None and ts < self._last_ts:
            raise ValueError(
                f"timestamps must be non-decreasing; got {ts!r} after "
                f"{self._last_ts!r}"
            )
        self._last_ts = ts
        slot = self.calendar.slot(ts)
        self._monitor(slot).observe(self.calendar.tick(ts), items)

    def observe_database(self, database: TransactionalDatabase) -> None:
        """Feed a whole (timestamp-ordered) database."""
        for ts, itemset in database:
            self.observe(ts, itemset)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def active_slots(self) -> List[int]:
        """Slots that have received at least one event, ascending."""
        return sorted(self._slots)

    def state(self, item: Item, slot: int) -> ItemState:
        """The tick-axis state of ``item`` in ``slot`` (KeyError if unseen)."""
        return self._slots[slot].state(item)

    def recurrence(
        self, item: Item, slot: int, include_open_run: bool = False
    ) -> int:
        """Interesting tick-axis intervals of ``item`` in ``slot``."""
        monitor = self._slots.get(slot)
        return 0 if monitor is None else monitor.recurrence(
            item, include_open_run
        )

    def intervals(
        self, item: Item, slot: int, include_open_run: bool = False
    ) -> Tuple[PeriodicInterval, ...]:
        """Interesting intervals (tick bounds) of ``item`` in ``slot``."""
        monitor = self._slots.get(slot)
        return () if monitor is None else monitor.intervals(
            item, include_open_run
        )

    def support(self, item: Item, slot: int) -> int:
        """Ticks of ``slot`` in which ``item`` occurred."""
        monitor = self._slots.get(slot)
        return 0 if monitor is None else monitor.support(item)

    def is_recurring(self, item: Item, slot: int) -> bool:
        """Has ``item`` reached ``min_rec`` intervals in ``slot``?"""
        monitor = self._slots.get(slot)
        return False if monitor is None else monitor.is_recurring(item)

    def recurring_items(self) -> List[Tuple[int, Item]]:
        """All currently recurring ``(slot, item)`` pairs, sorted."""
        return [
            (slot, item)
            for slot in self.active_slots()
            for item in self._slots[slot].recurring_items()
        ]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Deterministic, JSON-ready snapshot of the whole monitor."""
        return {
            "kind": "calendar-monitor",
            "mode": self.calendar.mode,
            "per": self.per,
            "min_ps": self.min_ps,
            "min_rec": self.min_rec,
            "last_ts": self._last_ts,
            "patterns": [
                [
                    encode_item(label),
                    [
                        encode_item(i)
                        for i in sorted(
                            self._patterns[label], key=item_sort_key
                        )
                    ],
                ]
                for label in sorted(self._patterns, key=item_sort_key)
            ],
            "slots": [
                [slot, self._slots[slot].state_dict()]
                for slot in sorted(self._slots)
            ],
        }

    @classmethod
    def from_state(
        cls, payload: Mapping[str, object], on_interval=None
    ) -> "CalendarRecurrenceMonitor":
        """Rebuild a calendar monitor bit-identically from a snapshot."""
        if payload.get("kind") != "calendar-monitor":
            raise DataFormatError(
                f"expected a calendar-monitor state dict, got kind="
                f"{payload.get('kind')!r}"
            )
        monitor = cls(
            CalendarPeriod(payload["mode"]),
            min_ps=payload["min_ps"],
            min_rec=payload["min_rec"],
            per=payload["per"],
            on_interval=on_interval,
        )
        monitor._last_ts = payload["last_ts"]
        monitor._patterns = {
            decode_item(encoded): frozenset(decode_item(i) for i in items)
            for encoded, items in payload["patterns"]
        }
        for slot, slot_state in payload["slots"]:
            sub = StreamingRecurrenceMonitor.from_state(
                slot_state, on_interval=monitor._slot_callback(slot)
            )
            monitor._slots[slot] = sub
        return monitor

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _slot_callback(self, slot: int):
        """The per-slot interval callback bridging to ``on_interval``."""
        if self.on_interval is None:
            return None

        def fire(item, interval):
            self.on_interval(slot, item, interval)

        return fire

    def _monitor(self, slot: int) -> StreamingRecurrenceMonitor:
        monitor = self._slots.get(slot)
        if monitor is None:
            monitor = StreamingRecurrenceMonitor(
                per=self.per,
                min_ps=self.min_ps,
                min_rec=self.min_rec,
                on_interval=self._slot_callback(slot),
            )
            for label, pattern in self._patterns.items():
                monitor.watch_pattern(pattern, label)
            self._slots[slot] = monitor
        return monitor
